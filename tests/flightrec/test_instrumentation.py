"""The black box wired into the executive, transports and endpoints."""

from __future__ import annotations

import pytest

from repro.analysis.sanitize import DoubleFreeError, SanitizingTableAllocator
from repro.core.device import FunctionalListener, Listener
from repro.core.executive import Executive
from repro.core.reliable import ReliableEndpoint
from repro.core.watchdog import HandlerWatchdog
from repro.flightrec import FlightRecorder, load_dump, unpack3
from repro.flightrec.records import (
    EV_DISPATCH_BEGIN,
    EV_DISPATCH_END,
    EV_DISPATCH_ERROR,
    EV_FRAME_ALLOC,
    EV_FRAME_INGEST,
    EV_FRAME_RELEASE,
    EV_FRAME_TRANSMIT,
    EV_HARD_STOP,
    EV_JOURNAL_COMMIT,
    EV_JOURNAL_RETIRE,
    EV_LIVENESS,
    EV_POOL_EXHAUSTED,
    EV_REL_ACK,
    EV_REL_DELIVER,
    EV_REL_RETRANSMIT,
    EV_REL_SEND,
    EV_SANITIZER,
    EV_TIMER_FIRE,
    EV_WATCHDOG_TRIP,
    LIVE_ALIVE,
    LIVE_DEAD,
    LIVE_SUSPECT,
    RECORD_SIZE,
    RECORD_STRUCT,
    SAN_DOUBLE_FREE,
    FlightRecord,
)
from repro.i2o.errors import I2OError
from repro.i2o.frame import HEADER_SIZE
from repro.i2o.tid import EXECUTIVE_TID
from repro.mem.pool import BufferPool, OriginalAllocator, PoolExhausted
from repro.transports.agent import PeerTransportAgent
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport

from tests.conftest import make_loopback_cluster, pump


def records_of(recorder: FlightRecorder, *kinds: int) -> list[FlightRecord]:
    """Decode the live ring (no spill needed) and filter by kind."""
    body = recorder.ring_bytes()
    out = [
        FlightRecord(*RECORD_STRUCT.unpack_from(body, i * RECORD_SIZE))
        for i in range(len(body) // RECORD_SIZE)
    ]
    return [r for r in out if not kinds or r.kind in kinds]


def make_recorded_exe(**kwargs) -> Executive:
    return Executive(
        node=kwargs.pop("node", 0),
        flightrec=FlightRecorder(capacity=1024),
        **kwargs,
    )


class TestDispatchPath:
    def test_begin_end_bracket_every_dispatch(self):
        exe = make_recorded_exe()
        echo = FunctionalListener(name="echo", handlers={0x1: lambda f: None})
        tid = exe.install(echo)
        sender = Listener("sender")
        exe.install(sender)
        sender.send(tid, b"ping", xfunction=0x1)
        exe.run_until_idle()
        begins = records_of(exe.flightrec, EV_DISPATCH_BEGIN)
        ends = records_of(exe.flightrec, EV_DISPATCH_END)
        assert len(begins) == len(ends) >= 1
        # The echo dispatch: packed header carries (target, fn, xfn).
        hit = [r for r in begins if unpack3(r.b)[0] == int(tid)]
        assert hit and unpack3(hit[0].b)[2] == 0x1
        # The matching end carries the same ctx/header plus a duration.
        end = [r for r in ends if r.b == hit[0].b]
        assert end and end[0].t_ns >= hit[0].t_ns

    def test_frame_alloc_and_release_recorded(self):
        exe = make_recorded_exe()
        frame = exe.frame_alloc(16, target=EXECUTIVE_TID, initiator=EXECUTIVE_TID, xfunction=0x1)
        allocs = records_of(exe.flightrec, EV_FRAME_ALLOC)
        assert allocs and allocs[-1].a == HEADER_SIZE + 16
        assert allocs[-1].b == exe.pool.in_flight
        exe.frame_free(frame)
        assert records_of(exe.flightrec, EV_FRAME_RELEASE)

    def test_pool_exhaustion_recorded_before_raising(self):
        exe = Executive(
            node=0,
            pool=BufferPool(OriginalAllocator(block_size=64, block_count=1)),
            flightrec=FlightRecorder(capacity=64),
        )
        held = exe.frame_alloc(8, target=EXECUTIVE_TID, initiator=EXECUTIVE_TID, xfunction=0x1)
        with pytest.raises(PoolExhausted):
            exe.frame_alloc(8, target=EXECUTIVE_TID, initiator=EXECUTIVE_TID, xfunction=0x1)
        exhausted = records_of(exe.flightrec, EV_POOL_EXHAUSTED)
        assert exhausted and exhausted[0].a == HEADER_SIZE + 8
        exe.frame_free(held)

    def test_handler_exception_records_error_and_spills(self, tmp_path):
        exe = Executive(
            node=0,
            flightrec=FlightRecorder(capacity=64, dump_dir=tmp_path),
        )

        def boom(frame):
            if not frame.is_reply:
                raise RuntimeError("boom")

        tid = exe.install(FunctionalListener(name="bad", handlers={0x1: boom}))
        sender = Listener("sender")
        exe.install(sender)
        sender.send(tid, b"", xfunction=0x1)
        exe.run_until_idle()
        assert records_of(exe.flightrec, EV_DISPATCH_ERROR)
        dump = load_dump(exe.flightrec.dump_path())
        assert dump.reason == "dispatch-exception"
        assert dump.of_kind(EV_DISPATCH_ERROR)


class TestCrashPaths:
    def test_hard_stop_spills_a_decodable_dump(self, tmp_path):
        exe = Executive(
            node=5,
            flightrec=FlightRecorder(capacity=64, dump_dir=tmp_path),
        )
        exe.frame_alloc(8, target=EXECUTIVE_TID, initiator=EXECUTIVE_TID, xfunction=0x1)
        exe.hard_stop()
        path = tmp_path / "node005.flightrec"
        assert path.exists()
        dump = load_dump(path)
        assert dump.reason == "hard_stop"
        assert dump.of_kind(EV_HARD_STOP)
        # The drain's frame releases happen before the spill, so the
        # black box shows the full cleanup.
        assert dump.of_kind(EV_FRAME_ALLOC)

    def test_watchdog_quarantine_spills(self, tmp_path):
        import time

        exe = Executive(
            node=0,
            watchdog=HandlerWatchdog(limit_ns=1_000_000),
            flightrec=FlightRecorder(capacity=64, dump_dir=tmp_path),
        )

        def slow(frame):
            if not frame.is_reply:
                time.sleep(0.01)

        tid = exe.install(FunctionalListener(name="slow", handlers={0x1: slow}))
        sender = Listener("sender")
        exe.install(sender)
        sender.send(tid, b"", xfunction=0x1)
        exe.run_until_idle()
        trips = records_of(exe.flightrec, EV_WATCHDOG_TRIP)
        assert trips and trips[0].a == int(tid)
        assert load_dump(exe.flightrec.dump_path()).reason == "watchdog"

    def test_sanitizer_violation_spills_before_raising(self, tmp_path):
        exe = Executive(
            node=0,
            pool=BufferPool(SanitizingTableAllocator()),
            flightrec=FlightRecorder(capacity=64, dump_dir=tmp_path),
        )
        block = exe.pool.alloc(64)
        exe.pool.free(block)
        with pytest.raises(DoubleFreeError):
            exe.pool.free(block)
        violations = records_of(exe.flightrec, EV_SANITIZER)
        assert violations and violations[0].a == SAN_DOUBLE_FREE
        assert load_dump(exe.flightrec.dump_path()).reason == "sanitizer"


class TestLivenessAndTimers:
    def test_peer_transitions_recorded(self):
        exe = make_recorded_exe()
        exe.peers.watch(7)
        for _ in range(20):
            exe.peers.interval_missed(7)
        for _ in range(20):
            exe.peers.heartbeat_seen(7)
        transitions = [
            (r.a, r.b) for r in records_of(exe.flightrec, EV_LIVENESS)
        ]
        assert (7, LIVE_SUSPECT) in transitions
        assert (7, LIVE_DEAD) in transitions
        assert (7, LIVE_ALIVE) in transitions  # the rejoin

    def test_timer_fires_recorded(self):
        exe = make_recorded_exe()
        owner = exe.install(Listener("owner"))
        timer_id = exe.timers.start(owner=owner, delay_ns=0, context=99)
        exe.run_until_idle()
        fires = records_of(exe.flightrec, EV_TIMER_FIRE)
        assert fires and fires[0].a == timer_id
        assert fires[0].b == int(owner)
        assert fires[0].c == 99


class TestAttachment:
    def test_attach_twice_raises(self):
        exe = make_recorded_exe()
        with pytest.raises(I2OError, match="already has a flight recorder"):
            exe.attach_flight_recorder(FlightRecorder(capacity=8))

    def test_recorder_adopts_node_and_clock(self):
        rec = FlightRecorder(capacity=8)
        exe = Executive(node=9, flightrec=rec)
        assert rec.node == 9
        assert rec.clock is exe.clock

    def test_accounting_gauges_exported(self):
        exe = make_recorded_exe()
        exe.frame_alloc(8, target=EXECUTIVE_TID, initiator=EXECUTIVE_TID, xfunction=0x1)
        snap = exe.metrics.snapshot()
        assert snap["flightrec_records_total"] >= 1
        assert snap["flightrec_dropped_total"] == 0
        assert snap["flightrec_spills_total"] == 0

    def test_off_mode_records_nothing(self):
        exe = Executive(node=0)
        assert exe.flightrec is None
        frame = exe.frame_alloc(8, target=EXECUTIVE_TID, initiator=EXECUTIVE_TID, xfunction=0x1)
        exe.frame_free(frame)  # no recorder: hot path is one is-None test


class TestWirePath:
    def test_transmit_and_ingest_join_across_nodes(self):
        cluster = make_loopback_cluster(2)
        for node, exe in cluster.items():
            exe.attach_flight_recorder(FlightRecorder(capacity=256))
        received = []
        echo = FunctionalListener(
            name="echo", handlers={0x1: lambda f: received.append(bytes(f.payload))}
        )
        remote_tid = cluster[1].install(echo)
        sender = Listener("sender")
        cluster[0].install(sender)
        proxy = cluster[0].create_proxy(1, remote_tid)
        sender.send(proxy, b"over-the-wire", xfunction=0x1)
        pump(cluster)
        assert received == [b"over-the-wire"]
        transmits = records_of(cluster[0].flightrec, EV_FRAME_TRANSMIT)
        assert transmits
        dest, tid, xfn = unpack3(transmits[0].b)
        assert (dest, xfn) == (1, 0x1)
        ingests = records_of(cluster[1].flightrec, EV_FRAME_INGEST)
        assert ingests
        src, target, xfn = unpack3(ingests[0].b)
        assert (src, xfn) == (0, 0x1)
        assert ingests[0].c == transmits[0].c  # same bytes on both ends


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def _reliable_pair(journal_dir=None):
    """Two recorded nodes with reliable endpoints on manual clocks."""
    network = LoopbackNetwork()
    clocks, exes, endpoints = {}, {}, {}
    for node in range(2):
        clock = _ManualClock()
        exe = Executive(
            node=node, clock=clock, flightrec=FlightRecorder(capacity=512)
        )
        PeerTransportAgent.attach(exe).register(
            LoopbackTransport(network), default=True
        )
        ep = ReliableEndpoint(retransmit_ns=1000, max_retries=5)
        exe.install(ep)
        if journal_dir is not None:
            from repro.durable.segments import SegmentStore

            ep.attach_journal(SegmentStore(journal_dir / f"n{node}.journal"))
        clocks[node], exes[node], endpoints[node] = clock, exe, ep
    return clocks, exes, endpoints


def _run(clocks, exes, rounds=50):
    for tick in range(rounds):
        for clock in clocks.values():
            clock.t = tick * 1000
        for _ in range(4):
            if not any(exe.step() for exe in exes.values()):
                break


class TestReliableStream:
    def test_full_stream_lifecycle_recorded(self, tmp_path):
        clocks, exes, eps = _reliable_pair(journal_dir=tmp_path)
        received = []
        eps[1].consumer = lambda src, data: received.append(data)
        peer = exes[0].create_proxy(1, eps[1].tid)
        seq = eps[0].send_reliable(peer, b"hello")
        _run(clocks, exes, rounds=5)
        assert received == [b"hello"]
        sender_rec = exes[0].flightrec
        kinds_for_seq = [
            r.kind for r in records_of(sender_rec)
            if r.kind in (
                EV_JOURNAL_COMMIT, EV_REL_SEND, EV_REL_ACK, EV_JOURNAL_RETIRE
            ) and r.a == seq
        ]
        assert kinds_for_seq == [
            EV_JOURNAL_COMMIT, EV_REL_SEND, EV_REL_ACK, EV_JOURNAL_RETIRE
        ]
        sends = [
            r for r in records_of(sender_rec, EV_REL_SEND) if r.a == seq
        ]
        assert sends[0].b == 1  # destination node rides the record
        delivers = records_of(exes[1].flightrec, EV_REL_DELIVER)
        assert [(r.a, r.b) for r in delivers] == [(seq, 0)]

    def test_retransmissions_recorded(self):
        from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport

        network = LoopbackNetwork()
        clocks, exes, eps = {}, {}, {}
        for node in range(2):
            clock = _ManualClock()
            exe = Executive(
                node=node, clock=clock,
                flightrec=FlightRecorder(capacity=512),
            )
            PeerTransportAgent.attach(exe).register(
                FaultyLoopbackTransport(
                    network, FaultPlan(drop_rate=0.4), seed=3 + node
                ),
                default=True,
            )
            ep = ReliableEndpoint(retransmit_ns=1000, max_retries=50)
            exe.install(ep)
            clocks[node], exes[node], eps[node] = clock, exe, ep
        received = []
        eps[1].consumer = lambda src, data: received.append(data)
        peer = exes[0].create_proxy(1, eps[1].tid)
        for i in range(10):
            eps[0].send_reliable(peer, b"m%d" % i)
        _run(clocks, exes, rounds=400)
        assert len(received) == 10
        assert records_of(exes[0].flightrec, EV_REL_RETRANSMIT)
