"""Merging per-node dumps into one causal cluster timeline."""

from __future__ import annotations

import pytest

from repro.core.tracing import make_trace_id
from repro.flightrec import (
    EV_DISPATCH_BEGIN,
    EV_FRAME_TRANSMIT,
    EV_HARD_STOP,
    EV_REL_ACK,
    EV_REL_DELIVER,
    EV_REL_RETRANSMIT,
    EV_REL_SEND,
    FlightRecorder,
    in_flight_sends,
    load_dump,
    merge_dumps,
    pack3,
)


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def _dump(tmp_path, node, events, name=None):
    """Spill `(t_ns, kind, a, b, c)` tuples as node `node`'s black box."""
    clock = _ManualClock()
    rec = FlightRecorder(
        node=node, capacity=64, dump_dir=tmp_path,
        clock=clock, name=name or f"n{node}",
    )
    for t_ns, kind, a, b, c in events:
        clock.t = t_ns
        rec.record(kind, a, b, c)
    return load_dump(rec.spill("test"))


class TestMergeOrdering:
    def test_events_interleave_across_nodes_by_time(self, tmp_path):
        a = _dump(tmp_path, 1, [(10, EV_REL_SEND, 1, 2, 8),
                                (30, EV_REL_ACK, 1, 0, 0)])
        b = _dump(tmp_path, 2, [(20, EV_REL_DELIVER, 1, 1, 8)])
        timeline = merge_dumps([a, b])
        assert [(e.node, e.record.t_ns) for e in timeline.events] == [
            (1, 10), (2, 20), (1, 30),
        ]
        assert timeline.nodes == [1, 2]

    def test_time_ties_break_by_node_then_seq(self, tmp_path):
        a = _dump(tmp_path, 2, [(5, EV_HARD_STOP, 0, 0, 0)])
        b = _dump(tmp_path, 1, [(5, EV_REL_SEND, 1, 2, 8),
                                (5, EV_REL_SEND, 2, 2, 8)])
        timeline = merge_dumps([b, a])
        assert [(e.node, e.record.seq) for e in timeline.events] == [
            (1, 0), (1, 1), (2, 0),
        ]


class TestStreamJoin:
    def test_stream_follows_one_seq_across_nodes(self, tmp_path):
        sender = _dump(tmp_path, 1, [
            (10, EV_REL_SEND, 7, 2, 16),
            (11, EV_REL_SEND, 8, 2, 16),       # different seq, excluded
            (20, EV_REL_RETRANSMIT, 7, 2, 0),
            (40, EV_REL_ACK, 7, 0, 0),
        ])
        receiver = _dump(tmp_path, 2, [(30, EV_REL_DELIVER, 7, 1, 16)])
        timeline = merge_dumps([sender, receiver])
        hops = timeline.stream(sender=1, seq=7)
        assert [(e.node, e.record.kind) for e in hops] == [
            (1, EV_REL_SEND),
            (1, EV_REL_RETRANSMIT),
            (2, EV_REL_DELIVER),
            (1, EV_REL_ACK),
        ]
        assert timeline.delivered(1, 2, 7)
        assert not timeline.delivered(1, 2, 8)


class TestTraceJoin:
    def test_trace_follows_a_trace_id_across_nodes(self, tmp_path):
        ctx = make_trace_id(1, 42)
        sender = _dump(tmp_path, 1, [
            (10, EV_FRAME_TRANSMIT, ctx, pack3(2, 8, 0xF001), 64),
        ])
        receiver = _dump(tmp_path, 2, [
            (20, EV_DISPATCH_BEGIN, ctx, pack3(8, 1, 0xF001), 0),
        ])
        timeline = merge_dumps([sender, receiver])
        hops = timeline.trace(ctx)
        assert [(e.node, e.record.kind) for e in hops] == [
            (1, EV_FRAME_TRANSMIT),
            (2, EV_DISPATCH_BEGIN),
        ]
        assert timeline.gaps() == []


class TestGaps:
    def test_send_with_no_deliver_anywhere_is_a_gap(self, tmp_path):
        sender = _dump(tmp_path, 1, [
            (10, EV_REL_SEND, 7, 2, 16),
            (20, EV_REL_SEND, 8, 2, 16),
        ])
        receiver = _dump(tmp_path, 2, [(30, EV_REL_DELIVER, 7, 1, 16)])
        gaps = merge_dumps([sender, receiver]).gaps()
        assert len(gaps) == 1
        gap = gaps[0]
        assert gap.kind == "send-no-deliver"
        assert gap.node == 1
        assert gap.record.a == 8
        assert "rel seq 8" in gap.describe()

    def test_traced_transmit_with_no_remote_dispatch_is_a_gap(self, tmp_path):
        ctx = make_trace_id(1, 9)
        sender = _dump(tmp_path, 1, [
            (10, EV_FRAME_TRANSMIT, ctx, pack3(2, 8, 0xF001), 64),
            # A local dispatch of the same ctx must NOT count as arrival.
            (11, EV_DISPATCH_BEGIN, ctx, pack3(8, 1, 0xF001), 0),
        ])
        gaps = merge_dumps([sender]).gaps()
        assert [g.kind for g in gaps] == ["transmit-no-dispatch"]
        assert "never dispatched remotely" in gaps[0].describe()

    def test_untraced_transmit_contexts_are_ignored(self, tmp_path):
        # Plain application contexts (small ints) can collide across
        # nodes; only 0xACE-tagged trace ids join transmits.
        sender = _dump(tmp_path, 1, [
            (10, EV_FRAME_TRANSMIT, 5, pack3(2, 8, 0xF001), 64),
        ])
        assert merge_dumps([sender]).gaps() == []

    def test_describe_renders_events_and_gaps(self, tmp_path):
        sender = _dump(tmp_path, 1, [(10, EV_REL_SEND, 7, 2, 16)])
        text = merge_dumps([sender]).describe()
        assert "1 dump(s)" in text
        assert "rel-send" in text
        assert "1 gap(s)" in text


class TestInFlightSends:
    def test_unacked_sends_survive(self, tmp_path):
        dump = _dump(tmp_path, 1, [
            (10, EV_REL_SEND, 1, 2, 8),
            (11, EV_REL_SEND, 2, 2, 8),
            (12, EV_REL_SEND, 3, 2, 8),
            (20, EV_REL_ACK, 1, 0, 0),
            (30, EV_REL_RETRANSMIT, 3, 2, 0),
        ])
        pending = in_flight_sends(dump)
        assert [r.a for r in pending] == [2, 3]
        # Seq 3's latest sighting is the retransmit, not the send.
        assert pending[1].kind == EV_REL_RETRANSMIT

    def test_fully_acked_dump_has_nothing_in_flight(self, tmp_path):
        dump = _dump(tmp_path, 1, [
            (10, EV_REL_SEND, 1, 2, 8),
            (20, EV_REL_ACK, 1, 0, 0),
        ])
        assert in_flight_sends(dump) == []


class TestCli:
    def test_decode_prints_symbolic_records(self, tmp_path, capsys):
        from repro.flightrec.__main__ import main

        _dump(tmp_path, 5, [(10, EV_HARD_STOP, 0, 0, 0)], name="node005")
        assert main(["decode", str(tmp_path / "node005.flightrec")]) == 0
        out = capsys.readouterr().out
        assert "hard-stop" in out
        assert "node 5" in out or "node005" in out or "node=5" in out

    def test_merge_reports_gaps_and_in_flight(self, tmp_path, capsys):
        from repro.flightrec.__main__ import main

        _dump(tmp_path, 1, [
            (10, EV_REL_SEND, 13, 2, 8),
            (11, EV_REL_SEND, 14, 2, 8),
        ], name="n1")
        _dump(tmp_path, 2, [(20, EV_REL_DELIVER, 13, 1, 8)], name="n2")
        code = main([
            "merge",
            str(tmp_path / "n1.flightrec"),
            str(tmp_path / "n2.flightrec"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "send->no-deliver" in out
        assert "in flight when node 1 spilled" in out
        assert "13, 14" in out

    def test_bad_file_exits_2(self, tmp_path, capsys):
        from repro.flightrec.__main__ import main

        bogus = tmp_path / "bogus.flightrec"
        bogus.write_bytes(b"not a dump")
        assert main(["decode", str(bogus)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        from repro.flightrec.__main__ import main

        assert main(["decode", str(tmp_path / "absent.flightrec")]) == 2
        assert "error:" in capsys.readouterr().err
