"""The flight recorder ring, the dump codec and its integrity checks."""

from __future__ import annotations

import struct
import zlib

import pytest

from repro.flightrec import (
    EV_DISPATCH_BEGIN,
    EV_DISPATCH_END,
    EV_HARD_STOP,
    EV_LIVENESS,
    EV_REL_SEND,
    EV_TIMER_FIRE,
    FlightRecError,
    FlightRecord,
    FlightRecorder,
    load_dump,
    pack3,
    unpack3,
)
from repro.flightrec.dump import describe_dump
from repro.flightrec.recorder import DUMP_HEADER, DUMP_HEADER_SIZE
from repro.flightrec.records import RECORD_SIZE, RECORD_STRUCT


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


class TestRecordCodec:
    def test_record_is_48_bytes(self):
        assert RECORD_SIZE == 48
        assert RECORD_STRUCT.size == 48

    def test_pack_unpack_round_trip(self):
        record = FlightRecord(
            seq=7, t_ns=123456789, a=0xACE0_0000_0000_0001,
            b=pack3(3, 16, 0xF001), c=64, kind=EV_REL_SEND,
        )
        raw = record.pack()
        assert len(raw) == RECORD_SIZE
        assert FlightRecord(*RECORD_STRUCT.unpack(raw)) == record

    def test_pack3_round_trip(self):
        assert unpack3(pack3(5, 16, 0xF001)) == (5, 16, 0xF001)
        assert unpack3(pack3(0xFFFFFFFF, 0xFFFF, 0xFFFF)) == (
            0xFFFFFFFF, 0xFFFF, 0xFFFF,
        )

    def test_describe_is_symbolic(self):
        record = FlightRecord(
            seq=0, t_ns=0, a=9, b=2, c=32, kind=EV_REL_SEND
        )
        assert "rel-send" in record.describe()
        assert "seq=9" in record.describe()
        assert "dest=node2" in record.describe()

    def test_unknown_kind_still_describes(self):
        record = FlightRecord(seq=0, t_ns=0, a=0, b=0, c=0, kind=200)
        assert "unknown(200)" in record.describe()


class TestRing:
    def test_records_before_wrap_kept_in_order(self):
        rec = FlightRecorder(node=1, capacity=8, clock=_ManualClock())
        for i in range(5):
            rec.record(EV_TIMER_FIRE, i)
        assert rec.total_records == 5
        assert rec.stored_records == 5
        assert rec.dropped_records == 0
        body = rec.ring_bytes()
        seqs = [
            RECORD_STRUCT.unpack_from(body, i * RECORD_SIZE)[0]
            for i in range(5)
        ]
        assert seqs == [0, 1, 2, 3, 4]

    def test_wrap_drops_oldest_first(self):
        rec = FlightRecorder(node=1, capacity=4, clock=_ManualClock())
        for i in range(10):
            rec.record(EV_TIMER_FIRE, i)
        assert rec.total_records == 10
        assert rec.stored_records == 4
        assert rec.dropped_records == 6
        body = rec.ring_bytes()
        rows = [
            RECORD_STRUCT.unpack_from(body, i * RECORD_SIZE)
            for i in range(4)
        ]
        assert [row[0] for row in rows] == [6, 7, 8, 9]  # oldest first
        assert [row[2] for row in rows] == [6, 7, 8, 9]  # a tracks i

    def test_no_allocation_per_record(self):
        rec = FlightRecorder(node=1, capacity=16, clock=_ManualClock())
        ring = rec._ring
        for i in range(100):
            rec.record(EV_TIMER_FIRE, i)
        assert rec._ring is ring  # written in place, never reallocated

    def test_capacity_validated(self):
        with pytest.raises(FlightRecError):
            FlightRecorder(node=1, capacity=0)

    def test_timestamps_use_the_given_clock(self):
        clock = _ManualClock()
        rec = FlightRecorder(node=1, capacity=4, clock=clock)
        clock.t = 777
        rec.record(EV_TIMER_FIRE, 1)
        assert RECORD_STRUCT.unpack_from(rec.ring_bytes(), 0)[1] == 777

    def test_explicit_t_ns_skips_the_clock_read(self):
        rec = FlightRecorder(node=1, capacity=4, clock=_ManualClock())
        rec.record(EV_DISPATCH_BEGIN, t_ns=42)
        assert RECORD_STRUCT.unpack_from(rec.ring_bytes(), 0)[1] == 42


class TestSpillAndLoad:
    def test_dump_round_trip(self, tmp_path):
        clock = _ManualClock()
        rec = FlightRecorder(
            node=3, capacity=8, dump_dir=tmp_path, clock=clock
        )
        clock.t = 10
        rec.record(EV_DISPATCH_BEGIN, 0xACE, 5)
        clock.t = 20
        rec.record(EV_DISPATCH_END, 0xACE, 5, 10)
        rec.record(EV_HARD_STOP)
        path = rec.spill("hard_stop")
        assert path is not None and path.exists()
        assert path.name == "node003.flightrec"
        dump = load_dump(path)
        assert dump.node == 3
        assert dump.capacity == 8
        assert dump.total == 3
        assert dump.dropped == 0
        assert dump.reason == "hard_stop"
        kinds = [r.kind for r in dump.records]
        assert kinds == [EV_DISPATCH_BEGIN, EV_DISPATCH_END, EV_HARD_STOP]
        assert dump.records[1].t_ns == 20

    def test_dump_after_wrap_reports_drops(self, tmp_path):
        rec = FlightRecorder(
            node=1, capacity=4, dump_dir=tmp_path, clock=_ManualClock()
        )
        for i in range(9):
            rec.record(EV_TIMER_FIRE, i)
        dump = load_dump(rec.spill("test"))
        assert dump.total == 9
        assert len(dump.records) == 4
        assert dump.dropped == 5
        assert [r.a for r in dump.records] == [5, 6, 7, 8]

    def test_respill_replaces_atomically(self, tmp_path):
        rec = FlightRecorder(
            node=1, capacity=4, dump_dir=tmp_path, clock=_ManualClock()
        )
        rec.record(EV_TIMER_FIRE, 1)
        rec.spill("first")
        rec.record(EV_TIMER_FIRE, 2)
        rec.spill("second")
        assert rec.spills == 2
        dump = load_dump(rec.dump_path())
        assert dump.reason == "second"
        assert len(dump.records) == 2
        assert not list(tmp_path.glob("*.tmp"))  # tmp file replaced away

    def test_custom_name_controls_the_filename(self, tmp_path):
        rec = FlightRecorder(
            node=1, capacity=4, dump_dir=tmp_path,
            clock=_ManualClock(), name="feed-incarnation2",
        )
        rec.record(EV_TIMER_FIRE, 1)
        assert rec.spill("x").name == "feed-incarnation2.flightrec"

    def test_spill_without_dump_dir_is_a_noop(self):
        rec = FlightRecorder(node=1, capacity=4, clock=_ManualClock())
        rec.record(EV_TIMER_FIRE, 1)
        assert rec.spill("x") is None
        assert rec.spills == 0

    def test_liveness_record_decodes(self, tmp_path):
        rec = FlightRecorder(
            node=1, capacity=4, dump_dir=tmp_path, clock=_ManualClock()
        )
        rec.record(EV_LIVENESS, 7, 2)  # node 7 -> DEAD
        dump = load_dump(rec.spill("x"))
        assert "peer=node7 -> DEAD" in dump.records[0].describe()

    def test_describe_dump_lists_every_record(self, tmp_path):
        rec = FlightRecorder(
            node=1, capacity=4, dump_dir=tmp_path, clock=_ManualClock()
        )
        rec.record(EV_TIMER_FIRE, 3)
        rec.record(EV_HARD_STOP)
        text = describe_dump(load_dump(rec.spill("boom")))
        assert "reason 'boom'" in text
        assert "timer-fire" in text
        assert "hard-stop" in text


class TestDumpIntegrity:
    def _dump(self, tmp_path):
        rec = FlightRecorder(
            node=1, capacity=4, dump_dir=tmp_path, clock=_ManualClock()
        )
        rec.record(EV_TIMER_FIRE, 1)
        rec.record(EV_TIMER_FIRE, 2)
        return rec.spill("x")

    def test_truncated_header_refused(self, tmp_path):
        path = self._dump(tmp_path)
        path.write_bytes(path.read_bytes()[: DUMP_HEADER_SIZE - 1])
        with pytest.raises(FlightRecError, match="too short"):
            load_dump(path)

    def test_bad_magic_refused(self, tmp_path):
        path = self._dump(tmp_path)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(FlightRecError, match="magic"):
            load_dump(path)

    def test_torn_body_refused(self, tmp_path):
        path = self._dump(tmp_path)
        path.write_bytes(path.read_bytes()[:-5])  # not a whole record
        with pytest.raises(FlightRecError, match="torn"):
            load_dump(path)

    def test_flipped_record_byte_fails_crc(self, tmp_path):
        path = self._dump(tmp_path)
        data = bytearray(path.read_bytes())
        data[DUMP_HEADER_SIZE + 16] ^= 0x01  # corrupt a record argument
        path.write_bytes(bytes(data))
        with pytest.raises(FlightRecError, match="CRC"):
            load_dump(path)

    def test_wrong_record_size_refused(self, tmp_path):
        path = self._dump(tmp_path)
        data = bytearray(path.read_bytes())
        fields = list(DUMP_HEADER.unpack_from(data, 0))
        fields[3] = 56  # claim a different record size
        struct.pack_into(
            DUMP_HEADER.format, data, 0, *fields[:-1], fields[-1]
        )
        path.write_bytes(bytes(data))
        with pytest.raises(FlightRecError, match="record size"):
            load_dump(path)

    def test_header_body_count_mismatch_refused(self, tmp_path):
        path = self._dump(tmp_path)
        data = bytearray(path.read_bytes())
        # Drop one whole record but leave the header claiming two;
        # recompute the CRC so only the count check can complain.
        body = bytes(data[DUMP_HEADER_SIZE:-RECORD_SIZE])
        fields = list(DUMP_HEADER.unpack_from(data, 0))
        fields[7] = zlib.crc32(body)
        path.write_bytes(DUMP_HEADER.pack(*fields) + body)
        with pytest.raises(FlightRecError, match="stored"):
            load_dump(path)
