"""Resource and Store semantics."""

from __future__ import annotations

import pytest

from repro.sim.kernel import SimError, Simulator, delay
from repro.sim.resources import Resource, Store


class TestResource:
    def test_acquire_within_capacity_is_immediate(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        assert res.acquire().fired
        assert res.acquire().fired
        assert res.in_use == 2

    def test_over_capacity_queues_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        first = res.acquire()
        grants = []
        for tag in ("a", "b"):
            res.acquire().add_callback(lambda _v, tag=tag: grants.append(tag))
        assert first.fired and res.queued == 2
        res.release()
        res.release()
        sim.run()
        assert grants == ["a", "b"]

    def test_release_idle_raises(self):
        with pytest.raises(SimError):
            Resource(Simulator()).release()

    def test_capacity_validation(self):
        with pytest.raises(SimError):
            Resource(Simulator(), capacity=0)

    def test_serialises_process_access(self):
        sim = Simulator()
        res = Resource(sim, capacity=1, name="bus")
        spans = []

        def user(name, hold):
            yield res.acquire()
            start = sim.now
            yield delay(hold)
            res.release()
            spans.append((name, start, sim.now))

        sim.process(user("x", 100))
        sim.process(user("y", 50))
        sim.run()
        assert spans == [("x", 0, 100), ("y", 100, 150)]


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        got = []
        store.get().add_callback(got.append)
        sim.run()
        assert got == ["item"]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []
        store.get().add_callback(got.append)
        sim.run()
        assert got == []
        store.put("late")
        sim.run()
        assert got == ["late"]

    def test_fifo_order(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        got = []
        for _ in range(5):
            store.get().add_callback(got.append)
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_bounded_put_blocks(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        assert store.put("a").fired
        second = store.put("b")
        assert not second.fired
        assert store.free == 0
        got = []
        store.get().add_callback(got.append)
        sim.run()
        assert second.fired  # freed slot admitted the blocked put
        assert got == ["a"]
        assert len(store) == 1

    def test_try_get(self):
        sim = Simulator()
        store = Store(sim)
        assert store.try_get() == (False, None)
        store.put(7)
        assert store.try_get() == (True, 7)

    def test_capacity_validation(self):
        with pytest.raises(SimError):
            Store(Simulator(), capacity=0)

    def test_handoff_to_waiting_getter(self):
        sim = Simulator()
        store = Store(sim, capacity=1)
        got = []
        store.get().add_callback(got.append)
        store.put("direct")
        sim.run()
        assert got == ["direct"]
        assert len(store) == 0
