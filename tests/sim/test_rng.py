"""Named RNG substreams: determinism and independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.rng import RngStreams


def test_same_seed_same_name_same_draws():
    a = RngStreams(7).stream("payload")
    b = RngStreams(7).stream("payload")
    assert np.array_equal(a.integers(0, 1000, 50), b.integers(0, 1000, 50))


def test_different_names_differ():
    streams = RngStreams(7)
    a = streams.stream("payload").integers(0, 1_000_000, 20)
    b = streams.stream("jitter").integers(0, 1_000_000, 20)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").integers(0, 1_000_000, 20)
    b = RngStreams(2).stream("x").integers(0, 1_000_000, 20)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    streams = RngStreams(0)
    assert streams.stream("a") is streams.stream("a")


def test_adding_consumer_does_not_perturb_existing():
    one = RngStreams(5)
    first = one.stream("alpha").integers(0, 100, 10)

    two = RngStreams(5)
    two.stream("beta")  # new consumer created first
    second = two.stream("alpha").integers(0, 100, 10)
    assert np.array_equal(first, second)


def test_spawn_is_deterministic_and_distinct():
    child_a = RngStreams(9).spawn("node1")
    child_b = RngStreams(9).spawn("node1")
    other = RngStreams(9).spawn("node2")
    assert child_a.root_seed == child_b.root_seed
    assert child_a.root_seed != other.root_seed


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngStreams(-1)
