"""The discrete-event kernel: ordering, processes, combinators."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Event, Process, SimError, Simulator, delay


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0

    def test_events_fire_in_timestamp_order(self):
        sim = Simulator()
        fired = []
        sim.at(30, lambda: fired.append(30))
        sim.at(10, lambda: fired.append(10))
        sim.at(20, lambda: fired.append(20))
        sim.run()
        assert fired == [10, 20, 30]

    def test_ties_break_fifo_by_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in range(10):
            sim.at(5, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_after_is_relative(self):
        sim = Simulator()
        seen = []
        sim.at(100, lambda: sim.after(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [105]

    def test_scheduling_in_past_raises(self):
        sim = Simulator()
        sim.at(10, lambda: None)
        sim.run()
        with pytest.raises(SimError):
            sim.at(5, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(SimError):
            Simulator().after(-1, lambda: None)

    def test_run_until_stops_and_tiles(self):
        sim = Simulator()
        fired = []
        sim.at(10, lambda: fired.append(10))
        sim.at(50, lambda: fired.append(50))
        sim.run(until=20)
        assert fired == [10]
        assert sim.now == 20
        sim.run(until=60)
        assert fired == [10, 50]

    def test_run_max_events_budget(self):
        sim = Simulator()
        for t in range(10):
            sim.at(t, lambda: None)
        assert sim.run(max_events=3) == 3

    def test_cancel_prevents_execution(self):
        sim = Simulator()
        fired = []
        handle = sim.at(10, lambda: fired.append("x"))
        handle.cancel()
        sim.run()
        assert fired == []
        assert handle.cancelled

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        h = sim.at(5, lambda: None)
        sim.at(9, lambda: None)
        h.cancel()
        assert sim.peek() == 9

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in range(7):
            sim.at(t, lambda: None)
        sim.run()
        assert sim.events_executed == 7

    @given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                    max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_property_execution_is_sorted_stable(self, times):
        sim = Simulator()
        order = []
        for i, t in enumerate(times):
            sim.at(t, lambda i=i, t=t: order.append((t, i)))
        sim.run()
        assert order == sorted(order)  # time asc, then schedule order


class TestEvents:
    def test_succeed_delivers_value(self):
        sim = Simulator()
        got = []
        ev = sim.event("e")
        ev.add_callback(got.append)
        ev.succeed(99)
        sim.run()
        assert got == [99]

    def test_double_fire_raises(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimError):
            ev.succeed()

    def test_value_before_fire_raises(self):
        with pytest.raises(SimError):
            _ = Simulator().event().value

    def test_callback_after_fire_runs(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("late")
        got = []
        ev.add_callback(got.append)
        sim.run()
        assert got == ["late"]

    def test_any_of_first_wins(self):
        sim = Simulator()
        winner = []
        combined = sim.any_of([sim.timeout(20), sim.timeout(10)])
        combined.add_callback(winner.append)
        sim.run()
        assert winner == [(1, None)]
        assert sim.now == 20  # the losing timeout still fires

    def test_all_of_collects_values(self):
        sim = Simulator()
        a, b = sim.event(), sim.event()
        got = []
        sim.all_of([a, b]).add_callback(got.append)
        sim.at(5, lambda: a.succeed("A"))
        sim.at(3, lambda: b.succeed("B"))
        sim.run()
        assert got == [["A", "B"]]

    def test_all_of_empty_fires_immediately(self):
        sim = Simulator()
        got = []
        sim.all_of([]).add_callback(got.append)
        sim.run()
        assert got == [[]]


class TestProcesses:
    def test_process_delays_advance_time(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(sim.now)
            yield delay(100)
            trace.append(sim.now)
            yield delay(50)
            trace.append(sim.now)

        sim.process(body())
        sim.run()
        assert trace == [0, 100, 150]

    def test_process_waits_on_event_and_receives_value(self):
        sim = Simulator()
        ev = sim.event()
        got = []

        def body():
            value = yield ev
            got.append((sim.now, value))

        sim.process(body())
        sim.at(77, lambda: ev.succeed("ping"))
        sim.run()
        assert got == [(77, "ping")]

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child():
            yield delay(10)
            return "result"

        def parent():
            value = yield sim.process(child())
            assert sim.now == 10
            return value

        p = sim.process(parent())
        sim.run()
        assert p.done.fired
        assert p.done.value == "result"

    def test_process_done_event_fires_with_return(self):
        sim = Simulator()

        def body():
            yield delay(1)
            return 42

        p = sim.process(body())
        sim.run()
        assert p.done.value == 42

    def test_bad_yield_type_raises(self):
        sim = Simulator()

        def body():
            yield "nonsense"

        sim.process(body())
        with pytest.raises(SimError):
            sim.run()

    def test_non_generator_rejected(self):
        with pytest.raises(SimError):
            Process(Simulator(), lambda: None)  # type: ignore[arg-type]

    def test_two_processes_interleave(self):
        sim = Simulator()
        trace = []

        def worker(name, period):
            for _ in range(3):
                yield delay(period)
                trace.append((sim.now, name))

        sim.process(worker("a", 10))
        sim.process(worker("b", 15))
        sim.run()
        # At t=30 both are due; b's wakeup was scheduled earlier (at 15)
        # so FIFO tie-breaking runs it first.
        assert trace == [
            (10, "a"), (15, "b"), (20, "a"), (30, "b"), (30, "a"), (45, "b"),
        ]
