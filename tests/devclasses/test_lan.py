"""The LAN device class: ports, delivery, broadcast, subscription."""

from __future__ import annotations

import pytest

from repro.devclasses.lan import BROADCAST_MAC, LanClient, LanDevice, LanSegment
from repro.i2o.errors import I2OError

from tests.conftest import make_loopback_cluster, pump


@pytest.fixture
def lan():
    """Three nodes, each with a LAN port on one segment and a client."""
    cluster = make_loopback_cluster(3)
    segment = LanSegment()
    ports, clients, port_tids = {}, {}, {}
    for node in range(3):
        port = LanDevice(segment, mac=0x100 + node)
        port_tids[node] = cluster[node].install(port)
        ports[node] = port
        client = LanClient(name=f"client{node}")
        cluster[node].install(client)
        clients[node] = client
        client.subscribe(port_tids[node])
    pump(cluster)
    return cluster, segment, ports, clients, port_tids


class TestUnicast:
    def test_point_to_point_delivery(self, lan):
        cluster, _, _, clients, port_tids = lan
        clients[0].transmit(port_tids[0], 0x101, b"to node 1")
        pump(cluster)
        assert clients[1].inbox == [(0x100, b"to node 1")]
        assert clients[2].inbox == []
        assert clients[0].send_results == [True]

    def test_unknown_mac_reports_unreached(self, lan):
        cluster, _, ports, clients, port_tids = lan
        clients[0].transmit(port_tids[0], 0xDEAD, b"void")
        pump(cluster)
        assert clients[0].send_results == [False]
        assert ports[0].dropped == 1

    def test_reply_path(self, lan):
        cluster, _, _, clients, port_tids = lan
        clients[0].transmit(port_tids[0], 0x101, b"ping")
        pump(cluster)
        src_mac, _ = clients[1].inbox[0]
        clients[1].transmit(port_tids[1], src_mac, b"pong")
        pump(cluster)
        assert clients[0].inbox == [(0x101, b"pong")]


class TestBroadcast:
    def test_broadcast_reaches_all_but_sender(self, lan):
        cluster, segment, _, clients, port_tids = lan
        clients[0].transmit(port_tids[0], BROADCAST_MAC, b"hello all")
        pump(cluster)
        assert clients[0].inbox == []
        assert clients[1].inbox == [(0x100, b"hello all")]
        assert clients[2].inbox == [(0x100, b"hello all")]
        assert segment.broadcasts == 1


class TestSegment:
    def test_duplicate_mac_rejected(self):
        segment = LanSegment()
        LanDevice(segment, mac=5)
        with pytest.raises(I2OError, match="already"):
            LanDevice(segment, mac=5)

    def test_broadcast_mac_not_attachable(self):
        with pytest.raises(I2OError):
            LanDevice(LanSegment(), mac=BROADCAST_MAC)

    def test_counters(self, lan):
        cluster, segment, ports, clients, port_tids = lan
        clients[0].transmit(port_tids[0], 0x101, b"x")
        pump(cluster)
        assert segment.packets == 1
        assert ports[0].sent == 1
        assert ports[1].received == 1
