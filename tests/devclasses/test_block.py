"""The Block Storage device class, local and over the wire."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devclasses.block import (
    BlockClient,
    BlockDeviceError,
    BlockStorageDevice,
)

from tests.conftest import make_loopback_cluster


@pytest.fixture
def rig():
    """Client on node 0, block device on node 1."""
    cluster = make_loopback_cluster(2)
    device = BlockStorageDevice(block_size=512, capacity_blocks=64)
    dev_tid = cluster[1].install(device)

    def pump():
        for exe in cluster.values():
            exe.step()

    client = BlockClient(pump=pump)
    cluster[0].install(client)
    proxy = cluster[0].create_proxy(1, dev_tid)
    return cluster, device, client, proxy


class TestReadWrite:
    def test_write_then_read_back(self, rig):
        _, device, client, proxy = rig
        block = bytes(range(256)) * 2  # 512 B
        client.write(proxy, 5, block)
        assert client.read(proxy, 5) == block
        assert device.writes == 1 and device.reads == 1

    def test_fresh_medium_reads_zeroes(self, rig):
        _, _, client, proxy = rig
        assert client.read(proxy, 0) == bytes(512)

    def test_multi_block_span(self, rig):
        _, _, client, proxy = rig
        data = b"\xAB" * (512 * 4)
        client.write(proxy, 10, data)
        assert client.read(proxy, 10, count=4) == data
        # Adjacent blocks untouched.
        assert client.read(proxy, 9) == bytes(512)
        assert client.read(proxy, 14) == bytes(512)

    def test_out_of_range_read_fails(self, rig):
        _, device, client, proxy = rig
        with pytest.raises(BlockDeviceError, match="status 1"):
            client.read(proxy, 64)
        with pytest.raises(BlockDeviceError):
            client.read(proxy, 60, count=10)
        assert device.errors == 2

    def test_partial_block_write_refused(self, rig):
        _, _, client, proxy = rig
        client.status(proxy)  # learn block size
        with pytest.raises(BlockDeviceError, match="whole number"):
            client.write(proxy, 0, b"short")

    @given(st.integers(0, 63), st.binary(min_size=512, max_size=512))
    @settings(max_examples=25, deadline=None)
    def test_property_read_after_write(self, lba, data):
        cluster = make_loopback_cluster(2)
        device = BlockStorageDevice(block_size=512, capacity_blocks=64)
        dev_tid = cluster[1].install(device)

        def pump():
            for exe in cluster.values():
                exe.step()

        client = BlockClient(pump=pump)
        cluster[0].install(client)
        proxy = cluster[0].create_proxy(1, dev_tid)
        client.write(proxy, lba, data)
        assert client.read(proxy, lba) == data


class TestStatusAndLock:
    def test_status_block(self, rig):
        _, _, client, proxy = rig
        status = client.status(proxy)
        assert status["capacity_blocks"] == 64
        assert status["block_size"] == 512
        assert status["media_locked"] == 0

    def test_media_lock_blocks_writes(self, rig):
        _, device, client, proxy = rig
        assert client.toggle_media_lock(proxy) is True
        with pytest.raises(BlockDeviceError, match="status 2"):
            client.write(proxy, 0, bytes(512))
        assert client.toggle_media_lock(proxy) is False
        client.write(proxy, 0, bytes(512))  # unlocked again

    def test_counters_via_standard_params(self, rig):
        cluster, device, client, proxy = rig
        client.write(proxy, 1, bytes(512))
        client.read(proxy, 1)
        assert device.export_counters()["reads"] == 1
        assert device.export_counters()["writes"] == 1

    def test_reset_releases_lock(self, rig):
        _, device, client, proxy = rig
        client.toggle_media_lock(proxy)
        device.on_reset()
        assert not device.media_locked
