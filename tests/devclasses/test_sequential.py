"""The Sequential (tape) Storage device class."""

from __future__ import annotations

import pytest

from repro.devclasses.sequential import (
    SequentialClient,
    SequentialStorageDevice,
    TapeMark,
)
from repro.i2o.errors import I2OError

from tests.conftest import make_loopback_cluster


@pytest.fixture
def rig():
    cluster = make_loopback_cluster(2)
    device = SequentialStorageDevice()
    dev_tid = cluster[1].install(device)

    def pump():
        for exe in cluster.values():
            exe.step()

    client = SequentialClient(pump=pump)
    cluster[0].install(client)
    proxy = cluster[0].create_proxy(1, dev_tid)
    return device, client, proxy


class TestSequentialAccess:
    def test_write_rewind_read(self, rig):
        _, client, tape = rig
        client.write(tape, b"record one")
        client.write(tape, b"record two")
        client.rewind(tape)
        assert client.read(tape) == b"record one"
        assert client.read(tape) == b"record two"

    def test_read_past_end_fails(self, rig):
        _, client, tape = rig
        client.write(tape, b"only")
        client.rewind(tape)
        client.read(tape)
        with pytest.raises(I2OError, match="status 1"):
            client.read(tape)

    def test_write_truncates_past_head(self, rig):
        """Tape semantics: writing mid-tape destroys what follows."""
        _, client, tape = rig
        for i in range(3):
            client.write(tape, f"r{i}".encode())
        client.rewind(tape)
        client.read(tape)  # head after r0
        client.write(tape, b"NEW")
        client.rewind(tape)
        assert client.read(tape) == b"r0"
        assert client.read(tape) == b"NEW"
        with pytest.raises(I2OError):
            client.read(tape)  # r1, r2 gone

    def test_space_moves_head_both_ways(self, rig):
        _, client, tape = rig
        for i in range(5):
            client.write(tape, f"r{i}".encode())
        client.space(tape, -2)
        assert client.read(tape) == b"r3"
        client.space(tape, -4)
        assert client.read(tape) == b"r0"

    def test_space_beyond_tape_fails(self, rig):
        _, client, tape = rig
        client.write(tape, b"x")
        with pytest.raises(I2OError):
            client.space(tape, -5)
        with pytest.raises(I2OError):
            client.space(tape, 5)

    def test_filemarks_partition_files(self, rig):
        _, client, tape = rig
        client.write(tape, b"a1")
        client.write(tape, b"a2")
        client.write_filemark(tape)
        client.write(tape, b"b1")
        client.rewind(tape)
        assert client.read_file(tape) == [b"a1", b"a2"]
        assert client.read_file(tape) == [b"b1"]

    def test_filemark_read_as_mark(self, rig):
        _, client, tape = rig
        client.write_filemark(tape)
        client.rewind(tape)
        assert isinstance(client.read(tape), TapeMark)

    def test_capacity_limit(self, rig):
        cluster = make_loopback_cluster(2)
        device = SequentialStorageDevice(max_records=2)
        dev_tid = cluster[1].install(device)

        def pump():
            for exe in cluster.values():
                exe.step()

        client = SequentialClient(pump=pump)
        cluster[0].install(client)
        tape = cluster[0].create_proxy(1, dev_tid)
        client.write(tape, b"1")
        client.write(tape, b"2")
        with pytest.raises(I2OError, match="status 1"):
            client.write(tape, b"3")

    def test_counters(self, rig):
        device, client, tape = rig
        client.write(tape, b"x")
        client.rewind(tape)
        client.read(tape)
        counters = device.export_counters()
        assert counters["records"] == 1
        assert counters["reads"] == 1
        assert counters["writes"] == 1
