"""Shared fixtures: clusters, pumps, and leak checking."""

from __future__ import annotations

import os

import pytest

from repro.core.executive import Executive
from repro.transports.agent import PeerTransportAgent
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run the whole suite with the runtime pool sanitizer on "
        "(equivalent to REPRO_SANITIZE=1)",
    )
    parser.addoption(
        "--affinity",
        action="store_true",
        default=False,
        help="run the whole suite with the thread-affinity guard on "
        "(equivalent to REPRO_AFFINITY=1)",
    )
    parser.addoption(
        "--profile",
        action="store_true",
        default=False,
        help="run the whole suite with the sampling profiler armed on "
        "every loopback-cluster executive (equivalent to "
        "REPRO_PROFILE=1) — proves the instrumentation perturbs "
        "nothing under the sanitizer",
    )


#: Suite-wide sampler when --profile / REPRO_PROFILE=1 is on.
_profiler = None


def pytest_configure(config):
    global _profiler
    if config.getoption("--sanitize"):
        os.environ["REPRO_SANITIZE"] = "1"
    if config.getoption("--affinity"):
        os.environ["REPRO_AFFINITY"] = "1"
    if config.getoption("--profile"):
        os.environ["REPRO_PROFILE"] = "1"
    from repro.analysis.sanitize import affinity_enabled, install_affinity_guard

    if affinity_enabled():
        install_affinity_guard()
    if os.environ.get("REPRO_PROFILE") == "1":
        from repro.profile.sampler import SamplingProfiler

        _profiler = SamplingProfiler(hz=197.0)
        _profiler.start()


def pytest_unconfigure(config):
    global _profiler
    if _profiler is not None:
        _profiler.stop()
        _profiler = None


def make_loopback_cluster(n_nodes: int) -> dict[int, Executive]:
    """N executives joined by one loopback network, PTA installed."""
    network = LoopbackNetwork()
    cluster: dict[int, Executive] = {}
    for node in range(n_nodes):
        exe = Executive(node=node)
        PeerTransportAgent.attach(exe).register(
            LoopbackTransport(network), default=True
        )
        if _profiler is not None:
            # Tests pump on the calling thread, not Executive.start.
            _profiler.register(exe)
            _profiler.watch_thread(node)
        cluster[node] = exe
    return cluster


def pump(cluster: dict[int, Executive], max_rounds: int = 100_000) -> int:
    """Step every executive until the whole cluster is idle."""
    for rounds in range(max_rounds):
        if not any(exe.step() for exe in cluster.values()):
            return rounds
    raise AssertionError("cluster did not go idle")


def assert_no_leaks(cluster: dict[int, Executive]) -> None:
    from repro.analysis.sanitize import assert_clean

    for exe in cluster.values():
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0, (
            f"node {exe.node} leaked {exe.pool.in_flight} blocks"
        )
        assert_clean(exe.pool)  # no-op unless REPRO_SANITIZE=1


@pytest.fixture
def two_nodes():
    """The canonical two-node loopback cluster, leak-checked on exit."""
    cluster = make_loopback_cluster(2)
    yield cluster
    pump(cluster)
    assert_no_leaks(cluster)


@pytest.fixture
def five_nodes():
    cluster = make_loopback_cluster(5)
    yield cluster
    pump(cluster)
    assert_no_leaks(cluster)
