"""The air-traffic monitoring kit: fusion, alerts, priorities."""

from __future__ import annotations

import pytest

from repro.atc import (
    AlertConsole,
    RadarSource,
    SyntheticTraffic,
    TrackCorrelator,
)
from repro.atc.protocol import (
    ALERT_PRIORITY,
    MIN_HORIZONTAL_KM,
    UPDATE_PRIORITY,
    XF_CONFLICT_ALERT,
    pack_alert,
)

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump


def build_sector(*, n_aircraft=4, n_radars=2, conflict_pair=False, seed=0):
    """Radars on nodes 1..n, correlator on 0, console on last node."""
    n_nodes = 2 + n_radars
    cluster = make_loopback_cluster(n_nodes)
    traffic = SyntheticTraffic(n_aircraft, seed=seed,
                               conflict_pair=conflict_pair)
    correlator = TrackCorrelator()
    correlator_tid = cluster[0].install(correlator)
    console = AlertConsole()
    console_tid = cluster[n_nodes - 1].install(console)
    correlator.connect(cluster[0].create_proxy(n_nodes - 1, console_tid))  # repro: noqa DFL001
    radars = []
    for r in range(n_radars):
        radar = RadarSource(radar_id=r, traffic=traffic, seed=seed + r)
        cluster[1 + r].install(radar)
        radar.connect(cluster[1 + r].create_proxy(0, correlator_tid))  # repro: noqa DFL001
        radars.append(radar)
    return cluster, traffic, radars, correlator, console


class TestFusion:
    def test_reports_become_tracks(self):
        cluster, traffic, radars, correlator, console = build_sector()
        for radar in radars:
            radar.sweep()
        pump(cluster)
        assert correlator.reports_received == 8  # 4 aircraft x 2 radars
        assert len(correlator.tracks) == 4
        assert len(console.picture) == 4
        assert_no_leaks(cluster)

    def test_fused_position_near_truth(self):
        cluster, traffic, radars, correlator, console = build_sector()
        for _ in range(5):
            for radar in radars:
                radar.sweep()
        pump(cluster)
        for state in traffic.positions():
            fused = correlator.tracks[state.aircraft_id]
            assert abs(fused.x_km - state.x_km) < 1.0  # noise is 0.1 km
            assert abs(fused.y_km - state.y_km) < 1.0

    def test_track_counters_via_standard_params(self):
        cluster, traffic, radars, correlator, console = build_sector()
        radars[0].sweep()
        pump(cluster)
        counters = correlator.export_counters()
        assert counters["reports_received"] == 4
        assert counters["tracks"] == 4


class TestConflictDetection:
    def test_separated_traffic_raises_no_alert(self):
        cluster, traffic, radars, correlator, console = build_sector()
        assert traffic.closest_pair_km() > MIN_HORIZONTAL_KM
        for radar in radars:
            radar.sweep()
        pump(cluster)
        assert console.alerts == []

    def test_converging_pair_raises_alert_before_impact(self):
        cluster, traffic, radars, correlator, console = build_sector(
            conflict_pair=True
        )
        # Fly the pair together in 20 s steps; sweep every step.
        for _ in range(30):
            traffic.advance(20.0)
            for radar in radars:
                radar.sweep()
            pump(cluster)
            if console.alerts:
                break
        assert console.alerts, "converging aircraft never alerted"
        a, b, horizontal, vertical = console.alerts[0]
        assert (a, b) == (0, 1)
        assert horizontal < MIN_HORIZONTAL_KM
        # Alerted while still apart, not at the merge point.
        assert horizontal > 0.5

    def test_no_alert_storm_for_persistent_conflict(self):
        cluster, traffic, radars, correlator, console = build_sector(
            conflict_pair=True
        )
        # Park the pair inside the minima and sweep repeatedly.
        for _ in range(40):
            traffic.advance(5.0)
        for _ in range(10):
            for radar in radars:
                radar.sweep()
            pump(cluster)
        assert correlator.alerts_sent <= 2  # one per entry, not per sweep


class TestRealTimePath:
    def test_alert_preempts_queued_updates(self):
        """The headline: a priority-0 alert dispatched ahead of a deep
        queue of priority-4 updates already waiting at the console."""
        cluster = make_loopback_cluster(2)
        console = AlertConsole()
        console_tid = cluster[1].install(console)
        correlator = TrackCorrelator()
        cluster[0].install(correlator)
        correlator.connect(cluster[0].create_proxy(1, console_tid))  # repro: noqa DFL001
        # Queue many routine updates, then one alert, all before the
        # console's executive dispatches anything.
        from repro.atc.protocol import pack_position

        for i in range(50):
            correlator.send(
                correlator.console_tid,
                pack_position(i, 0, 0.0, 0.0, 200.0, 0),
                xfunction=0x0302, priority=UPDATE_PRIORITY,
            )
        correlator.send(
            correlator.console_tid,
            pack_alert(1, 2, 3.0, 0.0),
            xfunction=XF_CONFLICT_ALERT, priority=ALERT_PRIORITY,
        )
        # Route everything to the console's scheduler without dispatch.
        cluster[0].run_until_idle()
        pt = cluster[1].pta.transport("loopback")
        pt.poll()
        cluster[1]._intake_inbound()
        assert len(cluster[1].scheduler) == 51
        # Now dispatch: the alert must come out first.
        pump(cluster)
        assert console.log[0] == ("alert", (1, 2))
        assert all(kind == "update" for kind, _ in console.log[1:])


class TestTimerDrivenRadar:
    def test_enabled_radar_sweeps_on_timer(self):
        class ManualClock:
            t = 0

            def now_ns(self):
                return self.t

        cluster, traffic, radars, correlator, console = build_sector(
            n_radars=1
        )
        clock = ManualClock()
        cluster[1].clock = clock
        radar = radars[0]
        radar.parameters["sweep_interval_ns"] = "1000000"  # 1 ms
        radar.set_state(radar.state.__class__.ENABLED)
        radar.on_enable()
        for step in range(1, 4):
            clock.t = step * 1_000_000
            pump(cluster)
        assert radar.sweeps == 3
        assert correlator.reports_received == 12  # 3 sweeps x 4 aircraft
