"""EventManager snapshot/restore and snapshot-store rejoin."""

from __future__ import annotations

import pytest

from repro.core.executive import Executive
from repro.daq import EventManager, TriggerSource
from repro.durable.segments import SnapshotStore
from repro.i2o.errors import I2OError
from repro.transports.agent import PeerTransportAgent
from repro.transports.loopback import LoopbackTransport

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump
from tests.daq.test_eventbuilder import wire_daq


class TestSnapshotDocument:
    def test_round_trip_counters_and_dedup(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        trigger.fire_burst(8)
        pump(five_nodes)
        snap = evm.snapshot()
        fresh = EventManager()
        fresh.connect(evm.ru_tids, evm.bu_tids)
        five_nodes[0].install(fresh)
        fresh.restore(snap, relaunch=False)
        assert fresh.completed == 8
        assert sorted(fresh.completed_ids) == list(range(1, 9))
        assert fresh.in_flight == 0
        # The restored history dedups a replayed trigger.
        fresh.intake_trigger(3)
        assert fresh.duplicate_triggers == 1
        assert fresh.triggers == evm.triggers

    def test_version_mismatch_refused(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        snap = evm.snapshot()
        snap["version"] = 99
        with pytest.raises(I2OError, match="version"):
            evm.restore(snap)

    def test_restore_with_assigned_needs_connect(self):
        exe = Executive(node=0)
        evm = EventManager()
        exe.install(evm)
        snap = {
            "version": 1, "assigned": {"4": 0}, "throttled": [],
            "attempts": {"4": 1}, "rr": [0], "rr_index": 0, "triggers": 1,
            "completed": 0, "completed_ids": [], "lost": [],
            "reassignments": 0, "duplicate_triggers": 0,
        }
        with pytest.raises(I2OError, match="connect"):
            evm.restore(snap)

    def test_ring_change_resets_cursor(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        trigger.fire_burst(3)  # leaves rr_index mid-ring
        pump(five_nodes)
        snap = evm.snapshot()
        snap["rr"] = [7, 8, 9]  # a different builder ring shape
        evm.restore(snap, relaunch=False)
        assert evm._rr_index == 0


class TestKillAndRejoinLoopback:
    """A mini node-death drill on the clean wire: the EVM node is
    hard-stopped with events still being built, a replacement boots
    from the snapshot store and finishes the run."""

    def _freeze_mid_flight(self, cluster, store):
        evm, trigger, rus, bus = wire_daq(cluster)
        evm.snapshot_store = store
        trigger.fire_burst(6)
        # Step ONLY the EVM node: triggers are admitted and launch
        # commands go out, but no RU/BU ever answers — six events are
        # frozen in flight when the node dies.
        for _ in range(200):
            if not cluster[0].step():
                break
        assert evm.in_flight == 6
        return evm, trigger, rus, bus

    def test_replacement_evm_finishes_the_run(self, tmp_path):
        cluster = make_loopback_cluster(5)
        store = SnapshotStore(tmp_path / "evm.snapshot")
        evm, trigger, rus, bus = self._freeze_mid_flight(cluster, store)
        evm_tid = int(evm.tid)
        dead = cluster[0]
        dead.hard_stop()

        # Boot the replacement node under the same node id, reusing
        # the network object the survivors are still attached to.
        network = cluster[1].pta.transport("loopback").network
        exe = Executive(node=0)
        PeerTransportAgent.attach(exe).register(
            LoopbackTransport(network), default=True
        )
        cluster[0] = exe
        evm2 = EventManager()
        exe.install(evm2, tid=evm_tid)  # BUs report DONE to this TiD
        trigger2 = TriggerSource()
        exe.install(trigger2)
        trigger2.connect(evm2.tid)
        evm2.connect(  # repro: noqa DFL001
            {i: exe.create_proxy(1 + i, t.tid) for i, t in rus.items()},
            {i: exe.create_proxy(3 + i, t.tid) for i, t in bus.items()},
        )
        evm2.snapshot_store = SnapshotStore(tmp_path / "evm.snapshot")
        assert evm2.recover() is True
        assert evm2.restores == 1
        assert evm2.in_flight == 6

        pump(cluster)
        assert evm2.completed == 6
        assert sorted(evm2.completed_ids) == list(range(1, 7))
        assert evm2.lost_events == []
        for ru in rus.values():
            assert ru.buffered_events == 0  # CLEAR went out on completion
        # Replayed triggers for known events are absorbed, not rebuilt.
        for event_id in (1, 2, 3):
            evm2.intake_trigger(event_id)
        assert evm2.duplicate_triggers == 3
        assert evm2.completed == 6
        assert_no_leaks(cluster)
        dead.pool.check_conservation()
        assert dead.pool.in_flight == 0

    def test_recover_without_store_raises(self):
        evm = EventManager()
        with pytest.raises(I2OError, match="no snapshot store"):
            evm.recover()

    def test_recover_cold_returns_false(self, tmp_path):
        evm = EventManager()
        evm.snapshot_store = SnapshotStore(tmp_path / "evm.snapshot")
        assert evm.recover() is False
        assert evm.restores == 0
