"""Journal codec and on-disk store units."""

from __future__ import annotations

import pytest

from repro.durable.journal import (
    HEADER_SIZE,
    MAX_RECORD_PAYLOAD,
    REC_ACK,
    REC_META,
    REC_SEND,
    JournalCorruption,
    JournalError,
    Record,
    decode_journal,
    encode_record,
    seeded_crc,
)
from repro.durable.replay import replay_records
from repro.durable.segments import SegmentStore, SnapshotStore


#: Journal records carry the *destination* TiD as plain data; these
#: stand in for TiDs some peer allocated.
PEER_TID = 9


def _send(seq, payload=b"x", node=1, tid=7):
    return Record(kind=REC_SEND, seq=seq, node=node, tid=tid, payload=payload)


class TestCodec:
    def test_round_trip(self):
        records = [
            Record(kind=REC_META, seq=5, node=0, tid=PEER_TID),
            _send(5, b"hello"),
            Record(kind=REC_ACK, seq=5),
        ]
        data = b"".join(encode_record(r) for r in records)
        result = decode_journal(data)
        assert result.records == records
        assert result.consumed == len(data)
        assert not result.truncated

    def test_empty_journal(self):
        result = decode_journal(b"")
        assert result.records == []
        assert result.consumed == 0

    def test_wire_crc_is_the_journal_crc(self):
        # One integrity discipline end to end: the reliable endpoint's
        # wire CRC and the journal's payload CRC are the same function.
        from repro.core.reliable import _data_crc

        assert _data_crc is seeded_crc

    def test_encode_rejects_unknown_kind(self):
        with pytest.raises(JournalError):
            encode_record(Record(kind=0x7F, seq=1))

    def test_encode_rejects_oversize_payload(self):
        with pytest.raises(JournalError):
            encode_record(_send(1, b"\0" * (MAX_RECORD_PAYLOAD + 1)))

    def test_torn_header_is_truncation_not_error(self):
        data = encode_record(_send(1)) + encode_record(_send(2))[: HEADER_SIZE - 4]
        result = decode_journal(data)
        assert [r.seq for r in result.records] == [1]
        assert result.truncated
        assert result.torn_bytes == HEADER_SIZE - 4

    def test_torn_payload_is_truncation_not_error(self):
        whole = encode_record(_send(1, b"abcdef"))
        data = whole + encode_record(_send(2, b"abcdef"))[:-3]
        result = decode_journal(data)
        assert [r.seq for r in result.records] == [1]
        assert result.truncated
        assert result.consumed == len(whole)

    def test_header_corruption_raises_with_offset(self):
        first = encode_record(_send(1))
        damaged = bytearray(first + encode_record(_send(2)))
        damaged[len(first) + 2] ^= 0xFF  # inside record 2's header
        with pytest.raises(JournalCorruption) as info:
            decode_journal(bytes(damaged))
        assert info.value.offset == len(first)
        assert [r.seq for r in info.value.partial] == [1]

    def test_payload_corruption_raises(self):
        damaged = bytearray(encode_record(_send(1, b"payload-bytes")))
        damaged[HEADER_SIZE + 3] ^= 0x01
        with pytest.raises(JournalCorruption) as info:
            decode_journal(bytes(damaged))
        assert "payload CRC" in str(info.value)

    def test_corrupt_length_cannot_masquerade_as_torn_tail(self):
        # A lying payload_len is covered by the header CRC, so the
        # reader reports corruption instead of silently truncating a
        # record that is actually damaged.
        damaged = bytearray(encode_record(_send(1, b"abc")))
        damaged[17] = 0xEE  # payload_len field (offset 17..20)
        with pytest.raises(JournalCorruption):
            decode_journal(bytes(damaged))


class TestReplayFold:
    def test_acks_retire_sends(self):
        records = [
            _send(1, b"a"),
            _send(2, b"b"),
            Record(kind=REC_ACK, seq=1),
            _send(3, b"c"),
        ]
        state = replay_records(records)
        assert sorted(state.pending) == [2, 3]
        assert state.next_seq == 4
        assert state.acked == 1

    def test_meta_raises_floor_and_sets_identity(self):
        state = replay_records(
            [Record(kind=REC_META, seq=41, node=2, tid=PEER_TID)]
        )
        assert state.pending == {}
        assert state.next_seq == 41
        assert state.identity == (2, PEER_TID)

    def test_ack_without_send_is_legal(self):
        # Compaction drops dead SEND+ACK pairs; an ACK surviving alone
        # (e.g. appended right after a compaction boundary) is fine.
        state = replay_records([Record(kind=REC_ACK, seq=10)])
        assert state.pending == {}


class TestSegmentStore:
    def test_fresh_store_is_empty(self, tmp_path):
        store = SegmentStore(tmp_path / "a.journal")
        assert store.depth == 0
        assert store.recovered.next_seq == 1
        store.close()

    def test_append_and_reopen_replays_unacked(self, tmp_path):
        path = tmp_path / "a.journal"
        store = SegmentStore(path)
        store.ensure_identity(0, 5)
        store.append_send(1, 1, 7, b"one")
        store.append_send(2, 1, 7, b"two")
        store.append_ack(1)
        store.close()
        reopened = SegmentStore(path)
        assert sorted(reopened.pending()) == [2]
        assert reopened.pending()[2].payload == b"two"
        assert reopened.recovered.next_seq == 3
        assert reopened.identity == (0, 5)
        reopened.close()

    def test_identity_mismatch_refused(self, tmp_path):
        path = tmp_path / "a.journal"
        store = SegmentStore(path)
        store.ensure_identity(0, 5)
        store.close()
        reopened = SegmentStore(path)
        with pytest.raises(JournalError, match="TiD 5"):
            reopened.ensure_identity(0, 6)
        reopened.close()

    def test_torn_tail_truncated_on_disk(self, tmp_path):
        path = tmp_path / "a.journal"
        store = SegmentStore(path)
        store.append_send(1, 1, 7, b"whole")
        store.close()
        with open(path, "ab") as fh:
            fh.write(encode_record(_send(2, b"never-finished"))[:-4])
        reopened = SegmentStore(path)
        assert sorted(reopened.pending()) == [1]
        assert reopened.torn_bytes_recovered > 0
        # The tail was cut off the file itself: appends land aligned
        # and a third open sees a clean journal.
        reopened.append_send(3, 1, 7, b"after")
        reopened.close()
        third = SegmentStore(path)
        assert sorted(third.pending()) == [1, 3]
        assert third.torn_bytes_recovered == 0
        third.close()

    def test_corrupt_file_refuses_to_open(self, tmp_path):
        path = tmp_path / "a.journal"
        store = SegmentStore(path)
        store.append_send(1, 1, 7, b"payload")
        store.close()
        damaged = bytearray(path.read_bytes())
        damaged[HEADER_SIZE + 2] ^= 0x10
        path.write_bytes(bytes(damaged))
        with pytest.raises(JournalCorruption):
            SegmentStore(path)

    def test_batched_flush_crash_loses_only_the_buffer(self, tmp_path):
        path = tmp_path / "a.journal"
        store = SegmentStore(path, flush_every=10)
        store.append_send(1, 1, 7, b"flushed")
        store.flush()
        store.append_send(2, 1, 7, b"buffered")
        store.crash()  # process death: user-space buffer is gone
        reopened = SegmentStore(path)
        assert sorted(reopened.pending()) == [1]
        reopened.close()

    def test_compaction_drops_dead_records(self, tmp_path):
        path = tmp_path / "a.journal"
        store = SegmentStore(
            path, compact_min_records=8, compact_live_ratio=0.5
        )
        store.ensure_identity(0, 5)
        for seq in range(1, 7):
            store.append_send(seq, 1, 7, b"p" * 64)
        size_before = path.stat().st_size
        for seq in range(1, 6):
            store.append_ack(seq)
        assert store.compactions >= 1
        assert path.stat().st_size < size_before
        assert sorted(store.pending()) == [6]
        store.close()
        # The compacted segment still carries identity and seq floor.
        reopened = SegmentStore(path)
        assert reopened.identity == (0, 5)
        assert reopened.recovered.next_seq == 7
        assert sorted(reopened.pending()) == [6]
        reopened.close()

    def test_closed_store_refuses_appends(self, tmp_path):
        store = SegmentStore(tmp_path / "a.journal")
        store.close()
        with pytest.raises(JournalError):
            store.append_send(1, 0, 0, b"")

    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            SegmentStore(tmp_path / "a.journal", flush_every=0)
        with pytest.raises(JournalError):
            SegmentStore(tmp_path / "b.journal", compact_live_ratio=1.5)


class TestSnapshotStore:
    def test_round_trip(self, tmp_path):
        store = SnapshotStore(tmp_path / "evm.snapshot")
        assert store.load() is None
        store.save({"version": 1, "assigned": {"3": 1}})
        assert store.exists()
        assert store.load() == {"version": 1, "assigned": {"3": 1}}

    def test_save_replaces_atomically(self, tmp_path):
        store = SnapshotStore(tmp_path / "evm.snapshot")
        store.save({"n": 1})
        store.save({"n": 2})
        assert store.load() == {"n": 2}
        assert store.saves == 2
        assert not (tmp_path / "evm.snapshot.tmp").exists()

    def test_corrupt_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "evm.snapshot")
        store.save({"n": 1})
        data = bytearray(store.path.read_bytes())
        data[-1] ^= 0x01
        store.path.write_bytes(bytes(data))
        with pytest.raises(JournalCorruption):
            store.load()

    def test_truncated_snapshot_raises(self, tmp_path):
        store = SnapshotStore(tmp_path / "evm.snapshot")
        store.save({"long": "x" * 100})
        store.path.write_bytes(store.path.read_bytes()[:-10])
        with pytest.raises(JournalCorruption):
            store.load()

    def test_clear(self, tmp_path):
        store = SnapshotStore(tmp_path / "evm.snapshot")
        store.save({"n": 1})
        store.clear()
        assert store.load() is None
        store.clear()  # idempotent
