"""Durable-stream tests: journal codec, stores, crash points."""
