"""Property tests for the journal codec (Hypothesis).

The claims under test are exactly the recovery guarantees DESIGN.md
§10 documents:

* a journal round-trips losslessly;
* **any** byte prefix of a valid journal decodes to a record-aligned
  prefix of the original records — torn tails truncate, they never
  raise and never yield a phantom record;
* a single flipped byte anywhere in a valid journal is always caught
  by a CRC and reported as :class:`JournalCorruption` with a
  diagnostic — never silently decoded as garbage;
* folding SEND/ACK records reproduces the live set.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durable.journal import (
    REC_ACK,
    REC_META,
    REC_SEND,
    JournalCorruption,
    Record,
    decode_journal,
    encode_record,
)
from repro.durable.replay import replay_records

#: Journal records carry the destination TiD as plain data.
PEER_TID = 2

records_st = st.lists(
    st.builds(
        Record,
        kind=st.sampled_from([REC_SEND, REC_ACK, REC_META]),
        seq=st.integers(min_value=0, max_value=2**64 - 1),
        node=st.integers(min_value=0, max_value=2**32 - 1),
        tid=st.integers(min_value=0, max_value=2**32 - 1),
        payload=st.binary(max_size=128),
    ),
    max_size=12,
)


@settings(max_examples=80, deadline=None)
@given(records_st)
def test_round_trip(records):
    data = b"".join(encode_record(r) for r in records)
    result = decode_journal(data)
    assert result.records == records
    assert result.consumed == len(data)
    assert result.torn_bytes == 0


@settings(max_examples=80, deadline=None)
@given(records_st, st.data())
def test_any_prefix_replays_an_aligned_prefix(records, data):
    """Torn tails are the normal crash artefact: a byte prefix must
    decode the whole records it contains — no exception, no partial
    record, no record invented from tail bytes."""
    blob = b"".join(encode_record(r) for r in records)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob)))
    result = decode_journal(blob[:cut])  # must not raise
    assert result.records == records[: len(result.records)]
    assert result.consumed + result.torn_bytes == cut
    # consumed is exactly the encoded length of the records returned
    replayed = b"".join(encode_record(r) for r in result.records)
    assert result.consumed == len(replayed)


@settings(max_examples=120, deadline=None)
@given(records_st.filter(lambda rs: len(rs) > 0), st.data())
def test_single_byte_corruption_always_detected(records, data):
    blob = bytearray(b"".join(encode_record(r) for r in records))
    index = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    delta = data.draw(st.integers(min_value=1, max_value=255))
    blob[index] ^= delta
    with pytest.raises(JournalCorruption) as info:
        decode_journal(bytes(blob))
    # The diagnostic names a byte offset at or before the damage.
    assert 0 <= info.value.offset <= index


@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=50), unique=True, max_size=20),
    st.data(),
)
def test_replay_fold_matches_send_minus_ack(seqs, data):
    acked = {s for s in seqs if data.draw(st.booleans())}
    records = [
        Record(kind=REC_SEND, seq=s, node=1, tid=PEER_TID,
               payload=b"p%d" % s)
        for s in seqs
    ]
    records += [Record(kind=REC_ACK, seq=s) for s in sorted(acked)]
    state = replay_records(records)
    assert sorted(state.pending) == sorted(set(seqs) - acked)
    if seqs:
        assert state.next_seq == max(seqs) + 1
