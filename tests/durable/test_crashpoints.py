"""The crash-point matrix: every window in the send commit path.

Each test kills the sending node at one named crash point, restarts it
from the journal, and proves the end state is either *full recovery*
(the message arrives exactly once) or an *explicit diagnostic* (the
send call raised before the message was accepted).  No silent loss, no
duplicate delivery, no leaked pool blocks — including the dead
executive's.
"""

from __future__ import annotations

import pytest

from repro.analysis.crashpoints import (
    CRASH_POINTS,
    CrashInjector,
    ExecutiveCrashed,
    crash_at,
)
from repro.core.executive import Executive
from repro.core.reliable import (
    CRASH_POST_APPEND,
    CRASH_PRE_ACK_RECORD,
    CRASH_PRE_APPEND,
    ReliableEndpoint,
)
from repro.durable.segments import SegmentStore
from repro.flightrec import FlightRecorder, load_dump
from repro.flightrec.records import CRASH_POINT_NAMES, EV_CRASH_POINT
from repro.transports.agent import PeerTransportAgent
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


class _Rig:
    """Two-node loopback with a journaled sender that can die and be
    rebuilt at the same identity over the same journal file."""

    def __init__(self, tmp_path):
        self.tmp_path = tmp_path
        # Every executive carries a black box; a dead sender's ring is
        # spilled here by hard_stop, one dump per incarnation.
        self.crash_dir = tmp_path / "crash"
        self.crash_dir.mkdir(parents=True, exist_ok=True)
        self.incarnation = 0
        self.network = LoopbackNetwork()
        self.clock = _ManualClock()
        self.received: list[bytes] = []

        self.rx_exe = Executive(node=1, clock=self.clock)
        self.rx_exe.attach_flight_recorder(FlightRecorder(
            capacity=512, dump_dir=self.crash_dir, name="rx"
        ))
        PeerTransportAgent.attach(self.rx_exe).register(
            LoopbackTransport(self.network), default=True
        )
        self.rx = ReliableEndpoint(name="rx", retransmit_ns=1000)
        self.rx.consumer = lambda src, data: self.received.append(bytes(data))
        self.rx_exe.install(self.rx)

        self.store = SegmentStore(tmp_path / "tx.journal")
        self.tx_exe, self.tx = self._build_sender(self.store)
        self.tx_tid = int(self.tx.tid)
        self.dead_exes: list[Executive] = []

    def _build_sender(self, store, tid=None):
        self.incarnation += 1
        exe = Executive(node=0, clock=self.clock)
        exe.attach_flight_recorder(FlightRecorder(
            capacity=512, dump_dir=self.crash_dir,
            name=f"tx-inc{self.incarnation}",
        ))
        PeerTransportAgent.attach(exe).register(
            LoopbackTransport(self.network), default=True
        )
        endpoint = ReliableEndpoint(
            name="tx", retransmit_ns=1000, journal=store
        )
        exe.install(endpoint, tid=tid)
        return exe, endpoint

    @property
    def peer(self):
        return self.tx_exe.create_proxy(1, self.rx.tid)

    def pump(self, ticks=20):
        exes = [self.tx_exe, self.rx_exe]
        for tick in range(ticks):
            self.clock.t = tick * 1000
            for _ in range(10):
                if not any(exe.step() for exe in exes):
                    break

    def kill_and_restart_sender(self):
        """kill -9 the sender node, then boot a replacement executive
        over the same journal file at the same TiD."""
        self.store.crash()
        self.tx_exe.hard_stop()
        self.dead_exes.append(self.tx_exe)
        self.store = SegmentStore(self.tmp_path / "tx.journal")
        self.tx_exe, self.tx = self._build_sender(self.store, tid=self.tx_tid)

    def assert_no_leaks(self):
        from repro.analysis.sanitize import assert_clean

        for exe in (self.tx_exe, self.rx_exe, *self.dead_exes):
            exe.pool.check_conservation()
            assert exe.pool.in_flight == 0, (
                f"node {exe.node} leaked {exe.pool.in_flight} blocks"
            )
            assert_clean(exe.pool)


@pytest.fixture
def rig(tmp_path):
    return _Rig(tmp_path)


class TestPreJournalAppend:
    def test_send_raises_and_nothing_replays(self, rig):
        """Dying before the append means the message was never
        accepted: the caller's exception IS the contract — explicit,
        not silent — and a restart must not resurrect anything."""
        with crash_at(rig.tx, CRASH_PRE_APPEND) as injector:
            with pytest.raises(ExecutiveCrashed) as info:
                rig.tx.send_reliable(rig.peer, b"never-accepted")
        assert injector.fired
        assert info.value.point == CRASH_PRE_APPEND
        assert rig.store.depth == 0
        assert rig.tx.in_flight == 0
        rig.kill_and_restart_sender()
        assert rig.tx.replayed == 0
        rig.pump()
        assert rig.received == []
        rig.assert_no_leaks()


class TestPostAppendPreTransmit:
    def test_journaled_message_replays_exactly_once(self, rig):
        """The record hit the journal but never the wire: recovery owes
        the receiver exactly one delivery."""
        with crash_at(rig.tx, CRASH_POST_APPEND):
            with pytest.raises(ExecutiveCrashed):
                rig.tx.send_reliable(rig.peer, b"journaled-only")
        assert rig.store.depth == 1
        assert rig.tx.in_flight == 0  # never entered the pending table
        rig.kill_and_restart_sender()
        assert rig.tx.replayed == 1
        assert rig.tx.recoveries == 1
        rig.pump()
        assert rig.received == [b"journaled-only"]
        assert rig.tx.in_flight == 0
        assert rig.store.depth == 0  # the replay's ack retired it
        rig.assert_no_leaks()

    def test_sequence_space_resumes_past_crashed_send(self, rig):
        rig.tx.send_reliable(rig.peer, b"before")
        with crash_at(rig.tx, CRASH_POST_APPEND):
            with pytest.raises(ExecutiveCrashed):
                rig.tx.send_reliable(rig.peer, b"crashed")
        rig.kill_and_restart_sender()
        seq = rig.tx.send_reliable(rig.peer, b"after")
        assert seq == 3  # resumed past both journaled sends
        rig.pump()
        assert sorted(rig.received) == [b"after", b"before", b"crashed"]
        rig.assert_no_leaks()


class TestPostTransmitPreAckRecord:
    def test_replay_duplicate_absorbed_by_receiver(self, rig):
        """Delivered and wire-acked, but the ack record died with the
        node: replay retransmits and the receiver's dedup keeps the
        consumer at exactly one delivery."""
        with crash_at(rig.tx, CRASH_PRE_ACK_RECORD) as injector:
            rig.tx.send_reliable(rig.peer, b"acked-on-wire")
            # The crash fires inside the ack dispatch on the sender.
            with pytest.raises(ExecutiveCrashed):
                rig.pump(ticks=3)
        assert injector.fired
        assert rig.received == [b"acked-on-wire"]  # already delivered
        assert rig.store.depth == 1  # ...but never retired on disk
        rig.kill_and_restart_sender()
        assert rig.tx.replayed == 1
        rig.pump()
        assert rig.received == [b"acked-on-wire"]  # still exactly once
        assert rig.rx.duplicates_suppressed >= 1
        assert rig.store.depth == 0
        rig.assert_no_leaks()


class TestWholeMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_no_silent_loss_at_any_point(self, tmp_path, point):
        """The acceptance invariant, uniformly: at every crash point,
        either the send call raised (explicit diagnostic) or the
        message is delivered exactly once after restart."""
        rig = _Rig(tmp_path / point)
        explicit_failure = False
        with crash_at(rig.tx, point):
            try:
                rig.tx.send_reliable(rig.peer, b"matrix")
            except ExecutiveCrashed:
                explicit_failure = True
            if not explicit_failure:
                try:
                    rig.pump(ticks=3)
                except ExecutiveCrashed:
                    pass
        rig.kill_and_restart_sender()
        rig.pump()
        if explicit_failure and rig.store.depth == 0 and not rig.received:
            # pre-journal-append: refused up front, never journaled.
            assert point == CRASH_PRE_APPEND
        else:
            assert rig.received == [b"matrix"]
        assert rig.tx.in_flight == 0
        assert rig.store.depth == 0
        rig.assert_no_leaks()


class TestBlackBoxDumps:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_every_crash_point_leaves_a_decodable_dump(self, tmp_path, point):
        """After a kill at any crash point, the dead incarnation's
        black box must be on disk, decodable, and name the crash
        window it died in."""
        rig = _Rig(tmp_path)
        with crash_at(rig.tx, point):
            try:
                rig.tx.send_reliable(rig.peer, b"matrix")
                rig.pump(ticks=3)
            except ExecutiveCrashed:
                pass
        rig.kill_and_restart_sender()
        dump = load_dump(rig.crash_dir / "tx-inc1.flightrec")
        assert dump.node == 0
        assert dump.reason == "hard_stop"
        # Every window entered leaves a record; the last one is where
        # the injector actually killed the node.
        crashes = dump.of_kind(EV_CRASH_POINT)
        assert crashes
        assert CRASH_POINT_NAMES[crashes[-1].a] == point
        # The replacement incarnation spills under its own name, so
        # the post-mortem evidence is never overwritten.
        rig.tx_exe.hard_stop()
        assert (rig.crash_dir / "tx-inc2.flightrec").exists()
        assert load_dump(rig.crash_dir / "tx-inc1.flightrec").reason == "hard_stop"


class TestInjectorUnit:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError):
            CrashInjector("between-the-keys")

    def test_at_must_be_positive(self):
        with pytest.raises(ValueError):
            CrashInjector(CRASH_PRE_APPEND, at=0)

    def test_fires_on_nth_hit_only(self):
        injector = CrashInjector(CRASH_PRE_APPEND, at=3)
        injector(CRASH_PRE_APPEND)
        injector(CRASH_POST_APPEND)  # other points don't count
        injector(CRASH_PRE_APPEND)
        assert not injector.fired
        with pytest.raises(ExecutiveCrashed):
            injector(CRASH_PRE_APPEND)
        assert injector.fired
        assert injector.hits == 3

    def test_crash_at_restores_previous_hook(self, rig):
        def sentinel(point):
            pass

        rig.tx.crash_hook = sentinel
        with crash_at(rig.tx, CRASH_PRE_APPEND):
            assert rig.tx.crash_hook is not sentinel
        assert rig.tx.crash_hook is sentinel
