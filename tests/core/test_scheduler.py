"""The I2O dispatch scheduler: priorities and round-robin fairness."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import PriorityScheduler
from repro.i2o.errors import I2OError
from repro.i2o.frame import NUM_PRIORITIES, Frame

INITIATOR_TID = 1


def frame(target: int, priority: int = 3, tag: int = 0) -> Frame:
    return Frame.build(
        target=target, initiator=INITIATOR_TID, priority=priority,
        transaction_context=tag
    )


class TestBasics:
    def test_empty_pop_returns_none(self):
        sched = PriorityScheduler()
        assert sched.pop() is None
        assert sched.empty

    def test_fifo_within_one_device(self):
        sched = PriorityScheduler()
        for tag in range(5):
            sched.push(frame(7, tag=tag))
        tags = [sched.pop().transaction_context for _ in range(5)]
        assert tags == [0, 1, 2, 3, 4]

    def test_len_tracks_depth(self):
        sched = PriorityScheduler()
        for i in range(4):
            sched.push(frame(i))
        assert len(sched) == 4
        sched.pop()
        assert len(sched) == 3

    def test_counters(self):
        sched = PriorityScheduler()
        sched.push(frame(1))
        sched.pop()
        assert sched.pushed == 1 and sched.popped == 1

    def test_depth_of_priority(self):
        sched = PriorityScheduler()
        sched.push(frame(1, priority=0))
        sched.push(frame(2, priority=0))
        sched.push(frame(3, priority=5))
        assert sched.depth_of(0) == 2
        assert sched.depth_of(5) == 1
        assert sched.depth_of(6) == 0

    def test_depth_of_validates(self):
        with pytest.raises(I2OError):
            PriorityScheduler().depth_of(7)


class TestPriorities:
    def test_higher_priority_always_first(self):
        sched = PriorityScheduler()
        sched.push(frame(1, priority=6, tag=100))
        sched.push(frame(2, priority=0, tag=200))
        sched.push(frame(3, priority=3, tag=300))
        assert sched.pop().transaction_context == 200
        assert sched.pop().transaction_context == 300
        assert sched.pop().transaction_context == 100

    def test_all_seven_levels(self):
        sched = PriorityScheduler()
        for priority in reversed(range(NUM_PRIORITIES)):
            sched.push(frame(priority + 1, priority=priority))
        order = [sched.pop().priority for _ in range(NUM_PRIORITIES)]
        assert order == list(range(NUM_PRIORITIES))

    def test_late_high_priority_preempts_queued_low(self):
        sched = PriorityScheduler()
        sched.push(frame(1, priority=4, tag=1))
        sched.push(frame(1, priority=4, tag=2))
        sched.pop()
        sched.push(frame(2, priority=1, tag=3))
        assert sched.pop().transaction_context == 3


class TestRoundRobin:
    def test_devices_alternate(self):
        sched = PriorityScheduler()
        for tag in range(3):
            sched.push(frame(10, tag=tag))
            sched.push(frame(20, tag=tag + 100))
        order = [(sched.pop().target, sched.pop().target) for _ in range(3)]
        assert order == [(10, 20)] * 3

    def test_no_starvation_with_unbalanced_load(self):
        """A device with many frames cannot lock out one with few."""
        sched = PriorityScheduler()
        for tag in range(10):
            sched.push(frame(10, tag=tag))
        sched.push(frame(20, tag=999))
        first_four = [sched.pop().target for _ in range(4)]
        assert 20 in first_four[:2]  # served on the second turn at latest

    def test_pending_devices_order(self):
        sched = PriorityScheduler()
        sched.push(frame(5))
        sched.push(frame(5))
        sched.push(frame(9))
        assert sched.pending_devices(3) == [5, 9]
        sched.pop()
        assert sched.pending_devices(3) == [9, 5]  # 5 rotated to the back

    def test_drop_device_removes_everything(self):
        sched = PriorityScheduler()
        for priority in (0, 3, 6):
            sched.push(frame(8, priority=priority))
        sched.push(frame(9))
        dropped = sched.drop_device(8)
        assert len(dropped) == 3
        assert len(sched) == 1
        assert sched.pop().target == 9

    @given(st.lists(
        st.tuples(st.integers(0, 6), st.integers(1, 5)), min_size=1, max_size=100
    ))
    @settings(max_examples=60, deadline=None)
    def test_property_priority_order_and_fairness_bound(self, pushes):
        """Pop order respects priority, and within a priority no device
        is served twice while another has an older pending frame
        (round-robin fairness)."""
        sched = PriorityScheduler()
        for priority, target in pushes:
            sched.push(frame(target, priority=priority))
        popped = []
        while True:
            f = sched.pop()
            if f is None:
                break
            popped.append((f.priority, f.target))
        assert len(popped) == len(pushes)
        assert [p for p, _ in popped] == sorted(p for p, _ in popped)
        # Compare against an independent round-robin reference model:
        # per priority, per-device FIFO queues served one frame at a
        # time in a ring ordered by first enqueue.
        from collections import OrderedDict, deque

        expected: list[tuple[int, int]] = []
        for priority in range(7):
            ring: OrderedDict[int, deque[int]] = OrderedDict()
            for p, target in pushes:
                if p == priority:
                    ring.setdefault(target, deque()).append(target)
            while ring:
                target, queue = next(iter(ring.items()))
                queue.popleft()
                del ring[target]
                if queue:
                    ring[target] = queue
                expected.append((priority, target))
        assert popped == expected
