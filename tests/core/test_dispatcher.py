"""Dispatch tables and functors."""

from __future__ import annotations

import pytest

from repro.core.dispatcher import DispatchError, DispatchTable, Functor
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import PRIVATE, UTIL_NOP

TARGET_TID = 1
INITIATOR_TID = 2


def private_frame(xfunction: int) -> Frame:
    return Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                       function=PRIVATE, xfunction=xfunction)


def util_frame() -> Frame:
    return Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                       function=UTIL_NOP)


class TestBinding:
    def test_bind_and_lookup_private(self):
        table = DispatchTable("dev")
        hits = []
        table.bind(PRIVATE, hits.append, xfunction=0x10)
        functor = table.lookup(private_frame(0x10))
        functor.prepare(private_frame(0x10))()
        assert len(hits) == 1

    def test_bind_and_lookup_standard(self):
        table = DispatchTable()
        table.bind(UTIL_NOP, lambda f: "nop")
        assert table.lookup(util_frame()).handler(util_frame()) == "nop"

    def test_xfunction_discriminates_private_only(self):
        table = DispatchTable()
        with pytest.raises(I2OError):
            table.bind(UTIL_NOP, lambda f: None, xfunction=5)

    def test_rebinding_replaces(self):
        table = DispatchTable()
        table.bind(PRIVATE, lambda f: "old", xfunction=1)
        table.bind(PRIVATE, lambda f: "new", xfunction=1)
        assert len(table) == 1
        assert table.lookup(private_frame(1)).handler(None) == "new"

    def test_unbind(self):
        table = DispatchTable()
        table.bind(PRIVATE, lambda f: None, xfunction=1)
        table.unbind(PRIVATE, xfunction=1)
        with pytest.raises(DispatchError):
            table.lookup(private_frame(1))
        with pytest.raises(DispatchError):
            table.unbind(PRIVATE, xfunction=1)

    def test_non_callable_rejected(self):
        with pytest.raises(I2OError):
            Functor("not callable", (0, 0))  # type: ignore[arg-type]

    def test_bindings_listing(self):
        table = DispatchTable()
        table.bind(PRIVATE, lambda f: None, xfunction=2)
        table.bind(UTIL_NOP, lambda f: None)
        assert table.bindings() == [(UTIL_NOP, 0), (PRIVATE, 2)]


class TestDefaults:
    def test_no_handler_no_default_raises(self):
        with pytest.raises(DispatchError, match="no handler"):
            DispatchTable("dev").lookup(private_frame(0x99))

    def test_default_catches_unbound(self):
        table = DispatchTable()
        caught = []
        table.bind_default(caught.append)
        functor = table.lookup(private_frame(0x99))
        functor.prepare(private_frame(0x99))()
        assert len(caught) == 1

    def test_exact_binding_beats_default(self):
        table = DispatchTable()
        table.bind_default(lambda f: "default")
        table.bind(PRIVATE, lambda f: "exact", xfunction=1)
        assert table.lookup(private_frame(1)).handler(None) == "exact"


class TestFunctorPrepare:
    def test_prepare_counts_calls(self):
        table = DispatchTable()
        functor = table.bind(PRIVATE, lambda f: None, xfunction=3)
        functor.prepare(private_frame(3))
        functor.prepare(private_frame(3))
        assert functor.calls == 2

    def test_prepare_rejects_mismatched_frame(self):
        table = DispatchTable()
        functor = table.bind(PRIVATE, lambda f: None, xfunction=3)
        with pytest.raises(DispatchError, match="bound to"):
            functor.prepare(private_frame(4))

    def test_prepare_returns_thunk_carrying_frame(self):
        table = DispatchTable()
        got = []
        functor = table.bind(PRIVATE, got.append, xfunction=3)
        frame = private_frame(3)
        thunk = functor.prepare(frame)
        assert got == []  # not yet invoked
        thunk()
        assert got == [frame]
