"""Telemetry agent, collector, and the shared periodic sweeper."""

from __future__ import annotations

import json

import pytest

from repro.core.executive import Executive
from repro.core.telemetry import (
    SWEEP_CONTEXT,
    TelemetryAgent,
    TelemetryCollector,
    decode_span,
    encode_span,
)
from repro.core.tracing import FrameTracer, Span
from repro.i2o.errors import I2OError
from repro.i2o.function_codes import UTIL_PARAMS_GET

from tests.conftest import make_loopback_cluster, pump

SPAN_TID = 17


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def _telemetry_cluster(n_nodes: int = 2, *, tracing: bool = True):
    cluster = make_loopback_cluster(n_nodes)
    agents = {}
    for node, exe in cluster.items():
        if tracing:
            exe.tracer = FrameTracer(node=node, capacity=128)
        agent = TelemetryAgent(name=f"agent{node}")
        exe.install(agent)
        agents[node] = agent
    collector = TelemetryCollector(name="collector")
    cluster[0].install(collector)
    for node, agent in agents.items():
        collector.watch(node, cluster[0].create_proxy(node, agent.tid))
    return cluster, collector, agents


class TestSpanCodec:
    def test_round_trip(self):
        span = Span(
            trace_id=0xACE0000000000001, span_id=9, node=3, tid=SPAN_TID,
            function=0xFF, xfunction=0x104, start_ns=123456789,
            queue_wait_ns=42, dispatch_ns=7_000,
        )
        assert decode_span(encode_span(span)) == span

    def test_malformed_record_rejected(self):
        with pytest.raises(I2OError):
            decode_span("1;2;3")


class TestCollectorSweep:
    def test_aggregates_every_node(self):
        cluster, collector, _ = _telemetry_cluster(3)
        collector.sweep()
        pump(cluster)
        # The second sweep observes the dispatches the first one caused.
        collector.sweep()
        pump(cluster)
        assert sorted(collector.node_metrics) == [0, 1, 2]
        for node, metrics in collector.node_metrics.items():
            assert metrics["exe_dispatched_total"] > 0
            assert metrics["node"] == node

    def test_spans_deduplicated_across_sweeps(self):
        cluster, collector, _ = _telemetry_cluster(2)
        collector.sweep()
        pump(cluster)
        collector.sweep()  # observes the spans sweep 1 caused
        pump(cluster)
        first = collector.spans_collected
        assert first > 0
        # The agent re-exports its whole ring; further sweeps must only
        # add spans that are actually new.
        collector.sweep()
        pump(cluster)
        second = collector.spans_collected
        collected = {(s.node, s.span_id) for s in collector._spans}
        assert len(collected) == second  # no duplicates survived

    def test_collector_speaks_only_util_params_get(self):
        cluster, collector, _ = _telemetry_cluster(2)
        sent = []
        original = cluster[0].frame_send

        def spy(frame):
            if frame.initiator == collector.tid:
                sent.append(frame.function)
            original(frame)

        cluster[0].frame_send = spy
        collector.sweep()
        pump(cluster)
        assert sent and set(sent) == {UTIL_PARAMS_GET}

    def test_collector_side_span_bound(self):
        cluster, collector, _ = _telemetry_cluster(2)
        collector.keep_spans = 3
        collector.sweep()
        pump(cluster)
        collector.sweep()
        pump(cluster)
        assert len(collector._spans) <= 3
        assert len(collector._seen) <= 3

    def test_cluster_totals_sum_across_nodes(self):
        cluster, collector, _ = _telemetry_cluster(2)
        collector.sweep()
        pump(cluster)
        totals = collector.cluster_totals()
        assert totals["exe_dispatched_total"] == sum(
            m["exe_dispatched_total"] for m in collector.node_metrics.values()
        )

    def test_observing_the_observer(self):
        # The collector answers UtilParamsGet itself — same scheme.
        from repro.daq.monitor import DaqMonitor

        cluster, collector, _ = _telemetry_cluster(2)
        monitor = DaqMonitor()
        cluster[1].install(monitor)
        monitor.watch(cluster[1].create_proxy(0, collector.tid))
        collector.sweep()
        pump(cluster)
        monitor.sweep()
        pump(cluster)
        (snapshot,) = monitor.snapshots.values()
        assert int(snapshot["sweeps"]) == 1
        assert int(snapshot["nodes_reporting"]) == 2


class TestRendering:
    def test_prometheus_dump_has_node_labels(self):
        cluster, collector, _ = _telemetry_cluster(2)
        collector.sweep()
        pump(cluster)
        text = collector.render_prometheus()
        assert 'repro_exe_dispatched_total{node="0"}' in text
        assert 'repro_exe_dispatched_total{node="1"}' in text
        assert 'repro_collector_sweeps{node="0"} 1' in text

    def test_json_dump_round_trips(self):
        cluster, collector, _ = _telemetry_cluster(2)
        collector.sweep()
        pump(cluster)
        doc = json.loads(collector.render_json())
        assert set(doc) == {"nodes", "totals", "traces"}
        assert set(doc["nodes"]) == {"0", "1"}
        for timeline in doc["traces"].values():
            for hop in timeline:
                assert {"node", "queue_wait_ns", "dispatch_ns"} <= set(hop)


class TestAgent:
    def test_fresh_snapshot_not_accumulated(self):
        cluster, collector, agents = _telemetry_cluster(2)
        collector.sweep()
        pump(cluster)
        # The agent must not accumulate exported keys as parameters —
        # span keys churn every sweep and would pile up forever.
        for agent in agents.values():
            assert not any(k.startswith("s") for k in agent.parameters)

    def test_reports_tracing_disabled(self):
        cluster, collector, _ = _telemetry_cluster(2, tracing=False)
        collector.sweep()
        pump(cluster)
        for info in collector.node_metrics.values():
            assert info["trace_enabled"] == 0


class TestPeriodicSweeper:
    def _collector_on_manual_clock(self):
        clock = _ManualClock()
        exe = Executive(node=0, clock=clock)
        agent = TelemetryAgent(name="agent")
        exe.install(agent)
        collector = TelemetryCollector(name="collector")
        collector.parameters["sweep_interval_ns"] = "1000"
        exe.install(collector)
        collector.watch(0, agent.tid)
        return clock, exe, collector

    def test_periodic_sweeps_fire_until_quiesced(self):
        clock, exe, collector = self._collector_on_manual_clock()
        collector.on_enable()
        exe.run_until_idle()
        assert collector.sweeps == 0
        clock.t = 1_000
        exe.run_until_idle()
        assert collector.sweeps == 1
        assert 0 in collector.node_metrics
        clock.t = 2_000
        exe.run_until_idle()
        assert collector.sweeps == 2  # the timer re-armed itself
        collector.on_quiesce()
        clock.t = 10_000
        exe.run_until_idle()
        assert collector.sweeps == 2  # disarmed

    def test_zero_interval_stays_manual(self):
        clock, exe, collector = self._collector_on_manual_clock()
        collector.parameters["sweep_interval_ns"] = "0"
        collector.on_enable()
        clock.t = 1_000_000
        exe.run_until_idle()
        assert collector.sweeps == 0
        assert collector._sweep_timer_id is None

    def test_bad_interval_rejected(self):
        _, _, collector = self._collector_on_manual_clock()
        collector.parameters["sweep_interval_ns"] = "soon"
        with pytest.raises(I2OError):
            collector.on_enable()

    def test_sweep_context_is_not_a_trace_id(self):
        from repro.core.tracing import is_trace_context

        assert not is_trace_context(SWEEP_CONTEXT)
