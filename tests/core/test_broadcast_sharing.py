"""Shared-block broadcast: one pool block, many deliveries.

``Executive._broadcast`` no longer clones the frame per listener — it
fans one refcounted block out as :class:`SharedFrame` deliveries.
These tests pin the sharing down (one allocation feeds N listeners)
and property-test the scary part: a RETAINing handler extends the
shared block's life past its dispatch, and no combination of retaining
and non-retaining listeners may double-free or leak it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device import RETAIN, Listener
from repro.core.executive import Executive
from repro.i2o.frame import HEADER_SIZE, Frame, SharedFrame
from repro.i2o.tid import TID_BROADCAST
from repro.mem.pool import _size_class_bits

XF = 0x7


class Retainer(Listener):
    """Keeps every broadcast frame it sees alive past its dispatch."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.kept: list[Frame] = []

    def on_plugin(self) -> None:
        self.bind(XF, self._h)

    def _h(self, frame: Frame):
        if frame.is_reply:
            return None
        self.kept.append(frame)
        return RETAIN


class Dropper(Listener):
    """Observes the payload and lets the dispatcher release the frame."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.seen: list[bytes] = []

    def on_plugin(self) -> None:
        self.bind(XF, self._h)

    def _h(self, frame: Frame) -> None:
        if not frame.is_reply:
            self.seen.append(bytes(frame.payload))


class TestSharedBroadcast:
    def test_one_allocation_feeds_every_listener(self):
        """The broadcast frame's size class gains exactly one alloc —
        no per-listener clones (other traffic, e.g. failure replies,
        lands in the 64 B class, not this one)."""
        exe = Executive()
        sender = Dropper("sender")
        exe.install(sender)
        retainers = [Retainer(f"r{i}") for i in range(3)]
        for r in retainers:
            exe.install(r)
        payload = b"z" * 300  # 332 B total -> its own 512 B class
        size_class = 1 << _size_class_bits(HEADER_SIZE + len(payload))
        before = exe.pool.stats.per_class.get(size_class, 0)
        sender.send(TID_BROADCAST, payload, xfunction=XF)
        exe.run_until_idle()

        assert exe.pool.stats.per_class.get(size_class, 0) - before == 1
        kept = [r.kept[0] for r in retainers]
        assert all(isinstance(f, SharedFrame) for f in kept)
        blocks = {id(f.block) for f in kept}
        assert len(blocks) == 1, "retained shares must alias one block"
        for f in kept:
            assert bytes(f.payload) == payload
            exe.frame_free(f)
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0

    def test_each_delivery_has_its_own_target(self):
        exe = Executive()
        sender = Dropper("sender")
        exe.install(sender)
        retainers = [Retainer(f"r{i}") for i in range(3)]
        tids = [exe.install(r) for r in retainers]
        sender.send(TID_BROADCAST, b"addressed", xfunction=XF)
        exe.run_until_idle()
        for tid, r in zip(tids, retainers):
            assert r.kept[0].target == tid
            exe.frame_free(r.kept[0])

    @given(
        payload_len=st.integers(min_value=0, max_value=4096),
        n_retainers=st.integers(min_value=0, max_value=4),
        n_droppers=st.integers(min_value=0, max_value=4),
        rounds=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_retaining_broadcast_cannot_double_free_or_leak(
        self, payload_len, n_retainers, n_droppers, rounds
    ):
        """Any mix of retaining and non-retaining listeners over any
        payload: every retained share reads the unclobbered payload,
        releasing them all returns the pool to empty, and conservation
        holds throughout (a double free would raise in release())."""
        exe = Executive()
        sender = Dropper("sender")
        exe.install(sender)
        retainers = [Retainer(f"r{i}") for i in range(n_retainers)]
        droppers = [Dropper(f"d{i}") for i in range(n_droppers)]
        for dev in [*retainers, *droppers]:
            exe.install(dev)
        for round_no in range(rounds):
            payload = bytes([round_no]) * payload_len
            sender.send(TID_BROADCAST, payload, xfunction=XF)
            exe.run_until_idle()
            for d in droppers:
                assert d.seen[-1] == payload
            for r in retainers:
                assert bytes(r.kept[-1].payload) == payload
        for r in retainers:
            for frame in r.kept:
                exe.frame_free(frame)
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0
