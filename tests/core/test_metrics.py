"""The metrics registry: counters, gauges, histogram bucket edges."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    Histogram,
    MetricsRegistry,
    openmetrics_escape,
    openmetrics_lines,
    prometheus_lines,
    sanitize_metric_name,
)
from repro.i2o.errors import I2OError


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        m = MetricsRegistry()
        assert m.inc("events") == 1
        assert m.inc("events", 4) == 5
        assert m.value("events") == 5

    def test_unknown_metric_raises(self):
        with pytest.raises(I2OError):
            MetricsRegistry().value("nope")


class TestGauges:
    def test_set_and_read(self):
        m = MetricsRegistry()
        m.gauge("depth").set(7)
        assert m.value("depth") == 7

    def test_callback_sampled_lazily(self):
        m = MetricsRegistry()
        state = {"n": 1}
        calls = []

        def sample():
            calls.append(1)
            return state["n"]

        m.gauge("live", sample)
        assert calls == []  # registering costs nothing
        state["n"] = 42
        assert m.snapshot()["live"] == 42

    def test_rebinding_callback_replaces(self):
        m = MetricsRegistry()
        m.gauge("g", lambda: 1)
        m.gauge("g", lambda: 2)
        assert m.value("g") == 2

    def test_rebind_is_a_public_method(self):
        # Device re-plug paths swap the sampled object; they go through
        # Gauge.rebind, never the private _fn attribute.
        m = MetricsRegistry()
        gauge = m.gauge("g", lambda: 1)
        gauge.rebind(lambda: 9)
        assert m.value("g") == 9

    def test_set_after_rebind_pins_the_value(self):
        m = MetricsRegistry()
        gauge = m.gauge("g", lambda: 1)
        gauge.set(5)
        assert m.value("g") == 5


class TestHistogramBucketEdges:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        # Prometheus `le` semantics: the bound is inclusive.
        h = Histogram("lat", [10, 20, 30])
        h.observe(10)
        h.observe(10.5)
        h.observe(30)
        h.observe(31)
        assert h.bucket_count(10) == 1
        assert h.bucket_count(20) == 1
        assert h.bucket_count(30) == 1
        assert h.counts[-1] == 1  # +Inf overflow
        assert h.count == 4
        assert h.sum == pytest.approx(81.5)

    def test_below_first_bound(self):
        h = Histogram("lat", [10, 20])
        h.observe(0)
        h.observe(-5)
        assert h.bucket_count(10) == 2

    def test_export_is_cumulative(self):
        h = Histogram("lat", [10, 20])
        for v in (5, 15, 25):
            h.observe(v)
        flat = h.export()
        assert flat["lat_bucket_le_10"] == 1
        assert flat["lat_bucket_le_20"] == 2
        assert flat["lat_bucket_le_inf"] == 3
        assert flat["lat_count"] == 3
        assert flat["lat_sum"] == 45

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(I2OError):
            Histogram("bad", [10, 10])
        with pytest.raises(I2OError):
            Histogram("bad", [20, 10])
        with pytest.raises(I2OError):
            Histogram("bad", [])

    def test_unknown_bucket_bound_rejected(self):
        h = Histogram("lat", [10, 20])
        with pytest.raises(I2OError):
            h.bucket_count(15)


class TestHistogramReregistration:
    def test_same_buckets_returns_the_existing_instrument(self):
        # Re-plug paths re-register their histograms; identical bounds
        # must hand back the same instrument, observations intact.
        m = MetricsRegistry()
        first = m.histogram("lat", [10, 20])
        first.observe(5)
        again = m.histogram("lat", [10, 20])
        assert again is first
        assert again.count == 1

    def test_same_buckets_from_any_iterable(self):
        m = MetricsRegistry()
        first = m.histogram("lat", (10, 20))
        assert m.histogram("lat", iter([10, 20])) is first

    def test_different_buckets_raise(self):
        m = MetricsRegistry()
        m.histogram("lat", [10, 20])
        with pytest.raises(I2OError, match="different buckets"):
            m.histogram("lat", [10, 30])
        with pytest.raises(I2OError, match="different buckets"):
            m.histogram("lat", [10])


class TestBoundRoundTrip:
    """`_fmt_bound` p/m encoding must survive the trip through export
    keys back into Prometheus ``le=`` labels."""

    def _le_labels(self, buckets):
        m = MetricsRegistry()
        m.histogram("lat", buckets)
        lines = prometheus_lines(m.snapshot(), {})
        return [
            line.split('le="')[1].split('"')[0]
            for line in lines
            if "_bucket{" in line
        ]

    def test_integer_bounds(self):
        assert self._le_labels([10, 1000]) == ["10", "1000", "+Inf"]

    def test_float_bounds(self):
        # 0.5 → key "0p5" → label "0.5"
        assert self._le_labels([0.5, 2.5]) == ["0.5", "2.5", "+Inf"]

    def test_negative_bounds(self):
        # -1.5 → key "m1p5" → label "-1.5"
        assert self._le_labels([-1.5, -0.5, 3.0]) == [
            "-1.5", "-0.5", "3", "+Inf",
        ]

    def test_negative_bounds_sort_before_positive(self):
        labels = self._le_labels([-10, -1, 1, 10])
        assert labels == ["-10", "-1", "1", "10", "+Inf"]

    def test_observe_equal_to_bound_through_the_export(self):
        # The inclusive-bound edge must hold end to end: an observation
        # exactly on a float bound counts in that bound's `le` series.
        m = MetricsRegistry()
        h = m.histogram("lat", [0.5, 2.5])
        h.observe(0.5)
        h.observe(2.5)
        flat = m.snapshot()
        assert flat["lat_bucket_le_0p5"] == 1
        assert flat["lat_bucket_le_2p5"] == 2  # cumulative
        lines = prometheus_lines(flat, {})
        assert any(
            'le="0.5"' in line and line.endswith(" 1") for line in lines
        )
        assert any(
            'le="2.5"' in line and line.endswith(" 2") for line in lines
        )


class TestSnapshotAndRendering:
    def test_snapshot_flattens_all_instruments(self):
        m = MetricsRegistry()
        m.inc("sent", 3)
        m.gauge("depth", lambda: 2)
        m.histogram("lat", [100]).observe(50)
        flat = m.snapshot()
        assert flat["sent"] == 3
        assert flat["depth"] == 2
        assert flat["lat_bucket_le_100"] == 1
        assert flat["lat_bucket_le_inf"] == 1

    def test_prometheus_text_shape(self):
        m = MetricsRegistry()
        m.inc("frames_total", 2)
        m.histogram("lat", [1000]).observe(10)
        text = m.render_prometheus({"node": 3})
        assert 'repro_frames_total{node="3"} 2' in text
        assert 'repro_lat_bucket{node="3",le="1000"} 1' in text
        assert 'repro_lat_bucket{node="3",le="+Inf"} 1' in text

    def test_bucket_lines_sorted_by_bound(self):
        m = MetricsRegistry()
        h = m.histogram("lat", [5, 50, 1000])
        h.observe(3)
        lines = prometheus_lines(m.snapshot(), {})
        bucket_lines = [l for l in lines if "_bucket{" in l]
        assert [l.split('le="')[1].split('"')[0] for l in bucket_lines] == [
            "5", "50", "1000", "+Inf",
        ]

    def test_timing_flag_defaults_off(self):
        assert MetricsRegistry().timing is False


class TestExemplars:
    def test_capture_is_opt_in(self):
        h = Histogram("lat", [10, 20])
        h.observe(5, exemplar=0xACE)
        assert h.exemplar_for(10) is None  # capture off: no-op
        h.enable_exemplars()
        h.observe(5, exemplar=0xACE)
        ex = h.exemplar_for(10)
        assert ex is not None and ex.trace_id == 0xACE and ex.value == 5

    def test_latest_exemplar_wins_per_bucket(self):
        h = Histogram("lat", [10])
        h.enable_exemplars()
        h.observe(3, exemplar=1)
        h.observe(4, exemplar=2)
        h.observe(99, exemplar=3)  # lands in +Inf, not le=10
        assert h.exemplar_for(10).trace_id == 2
        assert h.exemplar_for(float("inf")).trace_id == 3

    def test_untraced_observation_keeps_old_exemplar(self):
        h = Histogram("lat", [10])
        h.enable_exemplars()
        h.observe(3, exemplar=7)
        h.observe(4)  # no trace id: slot untouched
        assert h.exemplar_for(10).trace_id == 7

    def test_unknown_bound_raises(self):
        h = Histogram("lat", [10])
        h.enable_exemplars()
        with pytest.raises(I2OError):
            h.exemplar_for(15)

    def test_enable_is_idempotent(self):
        h = Histogram("lat", [10])
        h.enable_exemplars()
        h.observe(3, exemplar=5)
        h.enable_exemplars()  # must not wipe captured exemplars
        assert h.exemplar_for(10).trace_id == 5


class TestOpenMetricsRendering:
    def test_exemplar_suffix_on_bucket_line(self):
        m = MetricsRegistry()
        h = m.histogram("lat", [1000])
        h.enable_exemplars()
        h.observe(10, exemplar=0xACE1)
        text = m.render_openmetrics({"node": 3})
        line = next(
            l for l in text.splitlines()
            if l.startswith('repro_lat_bucket{node="3",le="1000"}')
        )
        assert '# {trace_id="ace1"} 10 ' in line
        assert text.endswith("# EOF\n")

    def test_plain_prometheus_mode_omits_exemplars(self):
        m = MetricsRegistry()
        h = m.histogram("lat", [1000])
        h.enable_exemplars()
        h.observe(10, exemplar=0xACE1)
        text = m.render_prometheus({"node": 3})
        assert "trace_id" not in text
        assert "# EOF" not in text
        assert "#" not in text

    def test_buckets_without_exemplars_render_plain(self):
        m = MetricsRegistry()
        h = m.histogram("lat", [10, 1000])
        h.enable_exemplars()
        h.observe(500, exemplar=0xB0B)
        lines = m.render_openmetrics().splitlines()
        le10 = next(l for l in lines if 'le="10"' in l)
        le1000 = next(l for l in lines if 'le="1000"' in l)
        assert "#" not in le10
        assert 'trace_id="b0b"' in le1000

    def test_non_histogram_lines_match_prometheus(self):
        m = MetricsRegistry()
        m.inc("frames_total", 2)
        m.gauge("depth").set(4)
        om = m.render_openmetrics({"node": 1}).splitlines()
        prom = m.render_prometheus({"node": 1}).splitlines()
        assert [l for l in om if l != "# EOF"] == prom

    def test_float_bound_round_trip_with_exemplar(self):
        # p/m-encoded export key → le label → exemplar lookup must all
        # agree on which bucket 0.5 names.
        m = MetricsRegistry()
        h = m.histogram("lat", [-1.5, 0.5])
        h.enable_exemplars()
        h.observe(0.25, exemplar=9)
        lines = m.render_openmetrics().splitlines()
        line = next(l for l in lines if 'le="0.5"' in l)
        assert 'trace_id="9"' in line
        assert "#" not in next(l for l in lines if 'le="-1.5"' in l)

    def test_label_escaping(self):
        assert openmetrics_escape('a\\b"c\nd') == 'a\\\\b\\"c\\nd'
        lines = openmetrics_lines({"x": 1}, {"host": 'ru"0\n'})
        assert lines[0] == 'repro_x{host="ru\\"0\\n"} 1'
        assert lines[-1] == "# EOF"
    def test_replaces_forbidden_characters(self):
        assert sanitize_metric_name("q0-1") == "q0_1"
        assert sanitize_metric_name("tcp.9001") == "tcp_9001"
        assert sanitize_metric_name("ok_name") == "ok_name"
