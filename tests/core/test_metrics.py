"""The metrics registry: counters, gauges, histogram bucket edges."""

from __future__ import annotations

import pytest

from repro.core.metrics import (
    Histogram,
    MetricsRegistry,
    prometheus_lines,
    sanitize_metric_name,
)
from repro.i2o.errors import I2OError


class TestCounters:
    def test_inc_creates_and_accumulates(self):
        m = MetricsRegistry()
        assert m.inc("events") == 1
        assert m.inc("events", 4) == 5
        assert m.value("events") == 5

    def test_unknown_metric_raises(self):
        with pytest.raises(I2OError):
            MetricsRegistry().value("nope")


class TestGauges:
    def test_set_and_read(self):
        m = MetricsRegistry()
        m.gauge("depth").set(7)
        assert m.value("depth") == 7

    def test_callback_sampled_lazily(self):
        m = MetricsRegistry()
        state = {"n": 1}
        calls = []

        def sample():
            calls.append(1)
            return state["n"]

        m.gauge("live", sample)
        assert calls == []  # registering costs nothing
        state["n"] = 42
        assert m.snapshot()["live"] == 42

    def test_rebinding_callback_replaces(self):
        m = MetricsRegistry()
        m.gauge("g", lambda: 1)
        m.gauge("g", lambda: 2)
        assert m.value("g") == 2

    def test_rebind_is_a_public_method(self):
        # Device re-plug paths swap the sampled object; they go through
        # Gauge.rebind, never the private _fn attribute.
        m = MetricsRegistry()
        gauge = m.gauge("g", lambda: 1)
        gauge.rebind(lambda: 9)
        assert m.value("g") == 9

    def test_set_after_rebind_pins_the_value(self):
        m = MetricsRegistry()
        gauge = m.gauge("g", lambda: 1)
        gauge.set(5)
        assert m.value("g") == 5


class TestHistogramBucketEdges:
    def test_value_equal_to_bound_lands_in_that_bucket(self):
        # Prometheus `le` semantics: the bound is inclusive.
        h = Histogram("lat", [10, 20, 30])
        h.observe(10)
        h.observe(10.5)
        h.observe(30)
        h.observe(31)
        assert h.bucket_count(10) == 1
        assert h.bucket_count(20) == 1
        assert h.bucket_count(30) == 1
        assert h.counts[-1] == 1  # +Inf overflow
        assert h.count == 4
        assert h.sum == pytest.approx(81.5)

    def test_below_first_bound(self):
        h = Histogram("lat", [10, 20])
        h.observe(0)
        h.observe(-5)
        assert h.bucket_count(10) == 2

    def test_export_is_cumulative(self):
        h = Histogram("lat", [10, 20])
        for v in (5, 15, 25):
            h.observe(v)
        flat = h.export()
        assert flat["lat_bucket_le_10"] == 1
        assert flat["lat_bucket_le_20"] == 2
        assert flat["lat_bucket_le_inf"] == 3
        assert flat["lat_count"] == 3
        assert flat["lat_sum"] == 45

    def test_buckets_must_strictly_increase(self):
        with pytest.raises(I2OError):
            Histogram("bad", [10, 10])
        with pytest.raises(I2OError):
            Histogram("bad", [20, 10])
        with pytest.raises(I2OError):
            Histogram("bad", [])

    def test_unknown_bucket_bound_rejected(self):
        h = Histogram("lat", [10, 20])
        with pytest.raises(I2OError):
            h.bucket_count(15)


class TestHistogramReregistration:
    def test_same_buckets_returns_the_existing_instrument(self):
        # Re-plug paths re-register their histograms; identical bounds
        # must hand back the same instrument, observations intact.
        m = MetricsRegistry()
        first = m.histogram("lat", [10, 20])
        first.observe(5)
        again = m.histogram("lat", [10, 20])
        assert again is first
        assert again.count == 1

    def test_same_buckets_from_any_iterable(self):
        m = MetricsRegistry()
        first = m.histogram("lat", (10, 20))
        assert m.histogram("lat", iter([10, 20])) is first

    def test_different_buckets_raise(self):
        m = MetricsRegistry()
        m.histogram("lat", [10, 20])
        with pytest.raises(I2OError, match="different buckets"):
            m.histogram("lat", [10, 30])
        with pytest.raises(I2OError, match="different buckets"):
            m.histogram("lat", [10])


class TestBoundRoundTrip:
    """`_fmt_bound` p/m encoding must survive the trip through export
    keys back into Prometheus ``le=`` labels."""

    def _le_labels(self, buckets):
        m = MetricsRegistry()
        m.histogram("lat", buckets)
        lines = prometheus_lines(m.snapshot(), {})
        return [
            line.split('le="')[1].split('"')[0]
            for line in lines
            if "_bucket{" in line
        ]

    def test_integer_bounds(self):
        assert self._le_labels([10, 1000]) == ["10", "1000", "+Inf"]

    def test_float_bounds(self):
        # 0.5 → key "0p5" → label "0.5"
        assert self._le_labels([0.5, 2.5]) == ["0.5", "2.5", "+Inf"]

    def test_negative_bounds(self):
        # -1.5 → key "m1p5" → label "-1.5"
        assert self._le_labels([-1.5, -0.5, 3.0]) == [
            "-1.5", "-0.5", "3", "+Inf",
        ]

    def test_negative_bounds_sort_before_positive(self):
        labels = self._le_labels([-10, -1, 1, 10])
        assert labels == ["-10", "-1", "1", "10", "+Inf"]

    def test_observe_equal_to_bound_through_the_export(self):
        # The inclusive-bound edge must hold end to end: an observation
        # exactly on a float bound counts in that bound's `le` series.
        m = MetricsRegistry()
        h = m.histogram("lat", [0.5, 2.5])
        h.observe(0.5)
        h.observe(2.5)
        flat = m.snapshot()
        assert flat["lat_bucket_le_0p5"] == 1
        assert flat["lat_bucket_le_2p5"] == 2  # cumulative
        lines = prometheus_lines(flat, {})
        assert any(
            'le="0.5"' in line and line.endswith(" 1") for line in lines
        )
        assert any(
            'le="2.5"' in line and line.endswith(" 2") for line in lines
        )


class TestSnapshotAndRendering:
    def test_snapshot_flattens_all_instruments(self):
        m = MetricsRegistry()
        m.inc("sent", 3)
        m.gauge("depth", lambda: 2)
        m.histogram("lat", [100]).observe(50)
        flat = m.snapshot()
        assert flat["sent"] == 3
        assert flat["depth"] == 2
        assert flat["lat_bucket_le_100"] == 1
        assert flat["lat_bucket_le_inf"] == 1

    def test_prometheus_text_shape(self):
        m = MetricsRegistry()
        m.inc("frames_total", 2)
        m.histogram("lat", [1000]).observe(10)
        text = m.render_prometheus({"node": 3})
        assert 'repro_frames_total{node="3"} 2' in text
        assert 'repro_lat_bucket{node="3",le="1000"} 1' in text
        assert 'repro_lat_bucket{node="3",le="+Inf"} 1' in text

    def test_bucket_lines_sorted_by_bound(self):
        m = MetricsRegistry()
        h = m.histogram("lat", [5, 50, 1000])
        h.observe(3)
        lines = prometheus_lines(m.snapshot(), {})
        bucket_lines = [l for l in lines if "_bucket{" in l]
        assert [l.split('le="')[1].split('"')[0] for l in bucket_lines] == [
            "5", "50", "1000", "+Inf",
        ]

    def test_timing_flag_defaults_off(self):
        assert MetricsRegistry().timing is False


class TestSanitize:
    def test_replaces_forbidden_characters(self):
        assert sanitize_metric_name("q0-1") == "q0_1"
        assert sanitize_metric_name("tcp.9001") == "tcp_9001"
        assert sanitize_metric_name("ok_name") == "ok_name"
