"""Device state machine."""

from __future__ import annotations

import pytest

from repro.core.states import DeviceState, StateError, check_transition


def test_happy_path_lifecycle():
    state = DeviceState.INITIALISED
    for target in (
        DeviceState.CONFIGURED,
        DeviceState.ENABLED,
        DeviceState.QUIESCED,
        DeviceState.ENABLED,
        DeviceState.QUIESCED,
        DeviceState.HALTED,
    ):
        state = check_transition(state, target)
    assert state is DeviceState.HALTED


def test_enable_straight_from_initialised():
    assert check_transition(DeviceState.INITIALISED, DeviceState.ENABLED)


def test_reconfigure_while_configured():
    assert check_transition(DeviceState.CONFIGURED, DeviceState.CONFIGURED)


def test_enabled_cannot_reconfigure_directly():
    with pytest.raises(StateError):
        check_transition(DeviceState.ENABLED, DeviceState.CONFIGURED)


def test_halted_is_terminal():
    for target in DeviceState:
        with pytest.raises(StateError):
            check_transition(DeviceState.HALTED, target)


def test_failed_only_halts():
    assert check_transition(DeviceState.FAILED, DeviceState.HALTED)
    with pytest.raises(StateError):
        check_transition(DeviceState.FAILED, DeviceState.ENABLED)


def test_any_active_state_can_fail():
    for state in (DeviceState.INITIALISED, DeviceState.CONFIGURED,
                  DeviceState.ENABLED, DeviceState.QUIESCED):
        assert check_transition(state, DeviceState.FAILED)
