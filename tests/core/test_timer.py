"""The I2O timer facility: expirations arrive as frames."""

from __future__ import annotations

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.core.probes import CostModel, Probes
from repro.core.simnode import SimNode
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.sim.kernel import Simulator


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


class TimerUser(Listener):
    def __init__(self, name: str = "tu") -> None:
        super().__init__(name)
        self.expiries: list[tuple[int, int]] = []  # (context, at_ns)

    def on_timer(self, context: int, frame: Frame) -> None:
        self.expiries.append((context, self._require_live().clock.now_ns()))


@pytest.fixture
def clocked():
    clock = _ManualClock()
    exe = Executive(node=0, clock=clock)
    dev = TimerUser()
    exe.install(dev)
    return clock, exe, dev


class TestOneShot:
    def test_fires_after_deadline_as_frame(self, clocked):
        clock, exe, dev = clocked
        dev.start_timer(1000, context=7)
        exe.run_until_idle()
        assert dev.expiries == []  # not yet due
        clock.t = 999
        exe.run_until_idle()
        assert dev.expiries == []
        clock.t = 1000
        exe.run_until_idle()
        assert dev.expiries == [(7, 1000)]

    def test_fires_once(self, clocked):
        clock, exe, dev = clocked
        dev.start_timer(10)
        clock.t = 5000
        exe.run_until_idle()
        exe.run_until_idle()
        assert len(dev.expiries) == 1

    def test_multiple_timers_fire_in_deadline_order(self, clocked):
        clock, exe, dev = clocked
        dev.start_timer(300, context=3)
        dev.start_timer(100, context=1)
        dev.start_timer(200, context=2)
        clock.t = 1000
        exe.run_until_idle()
        assert [c for c, _ in dev.expiries] == [1, 2, 3]

    def test_cancel_prevents_expiry(self, clocked):
        clock, exe, dev = clocked
        timer_id = dev.start_timer(100, context=1)
        assert dev.cancel_timer(timer_id) is True
        assert dev.cancel_timer(timer_id) is False  # already gone
        clock.t = 1000
        exe.run_until_idle()
        assert dev.expiries == []

    def test_negative_delay_rejected(self, clocked):
        _, _, dev = clocked
        with pytest.raises(I2OError):
            dev.start_timer(-1)

    def test_next_deadline(self, clocked):
        clock, exe, dev = clocked
        assert exe.timers.next_deadline_ns() is None
        dev.start_timer(500)
        t2 = dev.start_timer(100)
        assert exe.timers.next_deadline_ns() == 100
        dev.cancel_timer(t2)
        assert exe.timers.next_deadline_ns() == 500


class TestPeriodic:
    def test_periodic_rearms(self, clocked):
        clock, exe, dev = clocked
        exe.timers.start(owner=dev.tid, delay_ns=100, period_ns=100, context=9)
        for t in (100, 200, 300):
            clock.t = t
            exe.run_until_idle()
        assert dev.expiries == [(9, 100), (9, 200), (9, 300)]

    def test_periodic_cancel_stops(self, clocked):
        clock, exe, dev = clocked
        timer_id = exe.timers.start(owner=dev.tid, delay_ns=100, period_ns=100)
        clock.t = 100
        exe.run_until_idle()
        exe.timers.cancel(timer_id)
        clock.t = 1000
        exe.run_until_idle()
        assert len(dev.expiries) == 1

    def test_bad_period_rejected(self, clocked):
        _, exe, dev = clocked
        with pytest.raises(I2OError):
            exe.timers.start(owner=dev.tid, delay_ns=1, period_ns=0)


class TestTimerPriority:
    def test_timer_frames_outrank_data(self, clocked):
        """Timer expirations use priority 1: queued data at default
        priority 3 must not delay them."""
        clock, exe, dev = clocked
        order = []
        dev.bind(0x01, lambda f: order.append("data"))
        original = dev.on_timer
        dev.on_timer = lambda ctx, f: order.append("timer")  # type: ignore
        dev.start_timer(10)
        clock.t = 10
        # enqueue data BEFORE polling timers would run
        frame = exe.frame_alloc(0, target=dev.tid, initiator=dev.tid,
                                xfunction=0x01)
        exe.post_inbound(frame)
        exe.run_until_idle()
        assert order[0] == "timer"
        dev.on_timer = original  # restore


class TestSimPlaneTimers:
    def test_simnode_sleeps_until_timer_deadline(self):
        sim = Simulator()
        exe = Executive(node=0, probes=Probes("model", CostModel({})))
        dev = TimerUser()
        exe.install(dev)
        node = SimNode(sim, exe)
        dev.start_timer(5_000, context=1)
        sim.run(until=100_000)
        assert dev.expiries == [(1, 5_000)]
