"""Executive control messages: DDM destroy and path claim over the wire."""

from __future__ import annotations

import pytest

from repro.core.device import Listener, decode_params, encode_params
from repro.i2o.function_codes import EXEC_DDM_DESTROY, EXEC_PATH_CLAIM
from repro.i2o.tid import EXECUTIVE_TID, PTA_TID

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump


class Collector(Listener):
    def __init__(self, name="collector"):
        super().__init__(name)
        self.replies = []

    def on_plugin(self):
        for func in (EXEC_DDM_DESTROY, EXEC_PATH_CLAIM):
            self.table.bind(func, self._on_reply)

    def _on_reply(self, frame):
        if frame.is_reply:
            self.replies.append((frame.is_failure, bytes(frame.payload)))


@pytest.fixture
def rig():
    cluster = make_loopback_cluster(2)
    collector = Collector()
    cluster[0].install(collector)
    exec_proxy = cluster[0].create_proxy(1, EXECUTIVE_TID)
    return cluster, collector, exec_proxy


class TestDdmDestroy:
    def test_destroys_remote_device(self, rig):
        cluster, collector, exec_proxy = rig
        victim_tid = cluster[1].install(Listener("victim"))
        collector.send(exec_proxy, str(victim_tid).encode(),
                       function=EXEC_DDM_DESTROY)
        pump(cluster)
        assert collector.replies == [(False, b"")]
        assert victim_tid not in cluster[1].devices()
        assert_no_leaks(cluster)

    @pytest.mark.parametrize("tid", [EXECUTIVE_TID, PTA_TID])
    def test_infrastructure_refused(self, rig, tid):
        cluster, collector, exec_proxy = rig
        collector.send(exec_proxy, str(tid).encode(),
                       function=EXEC_DDM_DESTROY)
        pump(cluster)
        assert collector.replies[0][0] is True  # failure
        assert tid in cluster[1].devices()

    def test_transport_refused(self, rig):
        cluster, collector, exec_proxy = rig
        pt_tid = cluster[1].pta.transport("loopback").tid
        collector.send(exec_proxy, str(pt_tid).encode(),
                       function=EXEC_DDM_DESTROY)
        pump(cluster)
        assert collector.replies[0][0] is True

    def test_garbage_payload_fails_cleanly(self, rig):
        cluster, collector, exec_proxy = rig
        collector.send(exec_proxy, b"not-a-tid", function=EXEC_DDM_DESTROY)
        pump(cluster)
        assert collector.replies[0][0] is True

    def test_unknown_tid_fails_cleanly(self, rig):
        cluster, collector, exec_proxy = rig
        collector.send(exec_proxy, b"999", function=EXEC_DDM_DESTROY)
        pump(cluster)
        assert collector.replies[0][0] is True


class TestPathClaim:
    def test_builds_usable_remote_proxy(self, rig):
        """Node 0 asks node 1's executive to build a proxy back to a
        device on node 0, then node 1 traffic flows through it."""
        cluster, collector, exec_proxy = rig
        target = Listener("target-on-0")
        target_tid = cluster[0].install(target)
        hits = []
        target.bind(0x5, lambda f: hits.append(f) if not f.is_reply else None)
        collector.send(
            exec_proxy,
            encode_params({"node": "0", "tid": str(target_tid)}),
            function=EXEC_PATH_CLAIM,
        )
        pump(cluster)
        failed, payload = collector.replies[0]
        assert not failed
        proxy_on_1 = int(decode_params(payload)["proxy"])
        # Use the claimed path from node 1.
        sender = Listener("sender-on-1")
        cluster[1].install(sender)
        sender.send(proxy_on_1, b"via claimed path", xfunction=0x5)
        pump(cluster)
        assert len(hits) == 1

    def test_malformed_request_fails(self, rig):
        cluster, collector, exec_proxy = rig
        collector.send(exec_proxy, encode_params({"node": "x"}),
                       function=EXEC_PATH_CLAIM)
        pump(cluster)
        assert collector.replies[0][0] is True
