"""SimNode: executives as simulation processes."""

from __future__ import annotations

from repro.bench.pingpong import build_gm_cluster
from repro.core.device import Listener
from repro.core.executive import Executive
from repro.core.probes import CostModel
from repro.core.simnode import SimNode
from repro.hw.clock import SimClock
from repro.sim.kernel import Simulator


class _Sink(Listener):
    def on_plugin(self):
        self.bind(0x9, lambda frame: None)


def test_simnode_replaces_clock_and_probes():
    sim = Simulator()
    exe = Executive(node=0)
    SimNode(sim, exe)
    assert isinstance(exe.clock, SimClock)
    assert exe.probes.mode == "model"


def test_costs_become_virtual_time():
    sim = Simulator()
    exe = Executive(node=0)
    node = SimNode(sim, exe, cost_model=CostModel({"demultiplex": 1000,
                                                   "upcall": 0,
                                                   "application": 0,
                                                   "postprocess": 0,
                                                   "frame_alloc": 0,
                                                   "frame_free": 0}))
    sink = _Sink()
    tid = exe.install(sink)
    for _ in range(5):
        frame = exe.frame_alloc(0, target=tid, initiator=tid, xfunction=0x9)
        exe.post_inbound(frame)
    sim.run(until=1_000_000)
    # 5 dispatches x 1000 ns demultiplex cost = 5 us of busy time.
    assert node.busy_ns == 5_000


def test_idle_node_wakes_on_post():
    sim = Simulator()
    exe = Executive(node=0)
    SimNode(sim, exe, cost_model=CostModel({}, default_ns=10))
    sink = _Sink()
    tid = exe.install(sink)

    def inject():
        frame = exe.frame_alloc(0, target=tid, initiator=tid, xfunction=0x9)
        exe.post_inbound(frame)

    sim.at(50_000, inject)
    sim.run(until=1_000_000)
    assert exe.dispatched == 1


def test_halt_stops_the_process():
    sim = Simulator()
    exe = Executive(node=0)
    node = SimNode(sim, exe)
    node.halt()
    sim.run(until=10_000)
    assert node.process.done.fired


def test_gm_cluster_round_trip_deterministic():
    """Same seedless deterministic kernel: two runs, identical RTTs."""

    def run_once():
        cluster = build_gm_cluster()
        cluster.ping.configure(cluster.ping.peer, 128, 20)
        cluster.sim.at(0, cluster.ping.kick)
        cluster.sim.run()
        return cluster.ping.rtts_ns

    assert run_once() == run_once()


def test_gm_cluster_node_busy_accounting():
    cluster = build_gm_cluster()
    cluster.ping.configure(cluster.ping.peer, 128, 10)
    cluster.sim.at(0, cluster.ping.kick)
    cluster.sim.run()
    # Echo node handles 10 messages at ~9.7 us modelled each.
    assert cluster.node_b.busy_ns == 10 * 9_700
