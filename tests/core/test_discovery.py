"""Automatic peer discovery via executive LCT messages."""

from __future__ import annotations

import pytest

from repro.core.device import Listener
from repro.core.discovery import DiscoveryError, DiscoveryService
from repro.daq import BuilderUnit, EventManager, ReadoutUnit, TriggerSource

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump


class Worker(Listener):
    device_class = "test_worker"


@pytest.fixture
def rig():
    cluster = make_loopback_cluster(4)

    def pump_once():
        for exe in cluster.values():
            exe.step()

    discovery = DiscoveryService(nodes=list(cluster), pump=pump_once)
    cluster[0].install(discovery)
    return cluster, discovery


class TestFindAll:
    def test_finds_instances_across_nodes(self, rig):
        cluster, discovery = rig
        tids = {node: cluster[node].install(Worker(name=f"w{node}"))
                for node in (1, 2, 3)}
        found = discovery.find_all("test_worker")
        assert set(found) == {(node, tid) for node, tid in tids.items()}
        # Each proxy actually routes to the right node.
        for (node, remote_tid), proxy in found.items():
            route = cluster[0].route_for(proxy)
            assert route.node == node and route.remote_tid == remote_tid

    def test_includes_local_instances_as_real_tids(self, rig):
        cluster, discovery = rig
        local_tid = cluster[0].install(Worker(name="local"))
        found = discovery.find_all("test_worker")
        assert found[(0, local_tid)] == local_tid

    def test_empty_result_for_unknown_class(self, rig):
        _, discovery = rig
        assert discovery.find_all("unicorn") == {}

    def test_tables_cached(self, rig):
        cluster, discovery = rig
        cluster[2].install(Worker())
        discovery.find_all("test_worker")
        assert 2 in discovery.tables
        # Cached lookup works without refreshing.
        found = discovery.find_all("test_worker", refresh=False)
        assert len(found) == 1


class TestFindOne:
    def test_single_instance(self, rig):
        cluster, discovery = rig
        tid = cluster[2].install(Worker())
        proxy = discovery.find_one("test_worker")
        assert cluster[0].route_for(proxy).remote_tid == tid

    def test_zero_raises(self, rig):
        _, discovery = rig
        with pytest.raises(DiscoveryError, match="no instance"):
            discovery.find_one("test_worker")

    def test_many_raises(self, rig):
        cluster, discovery = rig
        cluster[1].install(Worker())
        cluster[2].install(Worker())
        with pytest.raises(DiscoveryError, match="2 instances"):
            discovery.find_one("test_worker")

    def test_dead_node_times_out(self, rig):
        cluster, discovery = rig
        discovery.add_node(77)  # unreachable
        discovery.max_pumps = 50
        with pytest.raises(DiscoveryError, match="did not answer"):
            discovery.refresh(77)


class TestDiscoveryDrivenDaq:
    def test_event_builder_wired_by_discovery(self):
        """The paper's §4 story end to end: devices find their peers
        through the executives, no hand-built proxy tables."""
        cluster = make_loopback_cluster(5)

        def pump_once():
            for exe in cluster.values():
                exe.step()

        evm, trigger = EventManager(), TriggerSource()
        evm_tid = cluster[0].install(evm)
        cluster[0].install(trigger)
        trigger.connect(evm_tid)
        for i in (0, 1):
            cluster[1 + i].install(ReadoutUnit(ru_id=i))
        for i in (0, 1):
            cluster[3 + i].install(BuilderUnit(bu_id=i))

        # The EVM's node discovers RUs and BUs by class.
        evm_disc = DiscoveryService(nodes=list(cluster), pump=pump_once)
        cluster[0].install(evm_disc)
        ru_proxies = evm_disc.find_all("daq_readout")
        bu_proxies = evm_disc.find_all("daq_builder")
        evm.connect(
            {node: proxy for (node, _), proxy in sorted(ru_proxies.items())},
            {node: proxy for (node, _), proxy in sorted(bu_proxies.items())},
        )
        # Each BU node discovers the EVM and the RUs.
        for node in (3, 4):
            disc = DiscoveryService(nodes=list(cluster), pump=pump_once)
            cluster[node].install(disc)
            bu = next(
                dev for dev in cluster[node].devices().values()
                if dev.device_class == "daq_builder"
            )
            bu.connect(
                disc.find_one("daq_eventmanager"),
                {n: p for (n, _), p in sorted(disc.find_all(
                    "daq_readout").items())},
            )
        trigger.fire_burst(8)
        pump(cluster)
        assert evm.completed == 8
        assert_no_leaks(cluster)
