"""Reliable delivery over adversarial transports."""

from __future__ import annotations

import pytest

from repro.core.executive import Executive
from repro.core.reliable import ReliableEndpoint
from repro.i2o.errors import I2OError
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def build_pair(plan: FaultPlan | None = None, *, seed: int = 1,
               max_retries: int = 50, ordered: bool = False):
    """Two nodes with reliable endpoints; manual clocks drive timers."""
    network = LoopbackNetwork()
    clocks, exes, endpoints = {}, {}, {}
    for node in range(2):
        clock = _ManualClock()
        exe = Executive(node=node, clock=clock)
        pta = PeerTransportAgent.attach(exe)
        if plan is None:
            pta.register(LoopbackTransport(network), default=True)
        else:
            pta.register(
                FaultyLoopbackTransport(network, plan, seed=seed + node),
                default=True,
            )
        clocks[node], exes[node] = clock, exe
        ep = ReliableEndpoint(retransmit_ns=1000, max_retries=max_retries,
                              ordered=ordered)
        exe.install(ep)
        endpoints[node] = ep
    return clocks, exes, endpoints


def run(clocks, exes, rounds: int = 400) -> None:
    """Pump the cluster, advancing virtual time so timers fire.

    Tick 0 pumps without advancing the clock, so in-flight exchanges
    complete 'instantly' before any retransmit deadline can pass —
    the loss-free path must see zero retransmissions.
    """
    for tick in range(rounds):
        for clock in clocks.values():
            clock.t = tick * 1000
        for _ in range(4):
            if not any(exe.step() for exe in exes.values()):
                break


class TestLossFreePath:
    def test_single_message_delivered_and_acked(self):
        clocks, exes, eps = build_pair()
        received = []
        eps[1].consumer = lambda src, data: received.append(data)
        peer = exes[0].create_proxy(1, eps[1].tid)
        eps[0].send_reliable(peer, b"hello")
        run(clocks, exes, rounds=10)
        assert received == [b"hello"]
        assert eps[0].in_flight == 0
        assert eps[0].retransmissions == 0

    def test_sequences_are_distinct(self):
        clocks, exes, eps = build_pair()
        peer = exes[0].create_proxy(1, eps[1].tid)
        seqs = [eps[0].send_reliable(peer, b"m") for _ in range(5)]
        assert len(set(seqs)) == 5
        run(clocks, exes, rounds=10)


class TestLossyPath:
    @pytest.mark.parametrize("drop", [0.2, 0.5])
    def test_all_messages_delivered_exactly_once(self, drop):
        plan = FaultPlan(drop_rate=drop)
        clocks, exes, eps = build_pair(plan, max_retries=200)
        received = []
        eps[1].consumer = lambda src, data: received.append(data)
        peer = exes[0].create_proxy(1, eps[1].tid)
        messages = [f"msg-{i}".encode() for i in range(40)]
        for m in messages:
            eps[0].send_reliable(peer, m)
        run(clocks, exes, rounds=3000)
        assert sorted(received) == sorted(messages)  # exactly once
        assert eps[0].in_flight == 0
        assert eps[0].retransmissions > 0  # drops actually happened

    def test_duplicates_suppressed(self):
        plan = FaultPlan(duplicate_rate=0.8)
        clocks, exes, eps = build_pair(plan)
        received = []
        eps[1].consumer = lambda src, data: received.append(data)
        peer = exes[0].create_proxy(1, eps[1].tid)
        for i in range(20):
            eps[0].send_reliable(peer, f"d{i}".encode())
        run(clocks, exes, rounds=100)
        assert len(received) == 20
        assert eps[1].duplicates_suppressed > 0

    def test_reordering_tolerated(self):
        plan = FaultPlan(delay_rate=0.5)
        clocks, exes, eps = build_pair(plan)
        received = []
        eps[1].consumer = lambda src, data: received.append(data)
        peer = exes[0].create_proxy(1, eps[1].tid)
        messages = [f"r{i}".encode() for i in range(25)]
        for m in messages:
            eps[0].send_reliable(peer, m)
        run(clocks, exes, rounds=500)
        assert sorted(received) == sorted(messages)

    def test_total_loss_reports_failure(self):
        plan = FaultPlan(drop_rate=1.0)
        clocks, exes, eps = build_pair(plan, max_retries=3)
        failures = []
        eps[0].on_failed = lambda seq, target, payload: failures.append(seq)
        peer = exes[0].create_proxy(1, eps[1].tid)
        seq = eps[0].send_reliable(peer, b"doomed")
        run(clocks, exes, rounds=50)
        assert failures == [seq]
        assert eps[0].in_flight == 0
        assert eps[0].failures == 1

    def test_corrupted_copies_discarded_and_retransmitted(self):
        """A flipped byte anywhere in a data or ack frame fails the
        endpoint's CRC: the copy is dropped (never delivered as
        garbage, never acked at the wrong seq) and the sender's timer
        recovers with a clean retransmission."""
        plan = FaultPlan(corrupt_rate=0.3, drop_rate=0.2)
        clocks, exes, eps = build_pair(plan, max_retries=100)
        received = []
        eps[1].consumer = lambda src, data: received.append(bytes(data))
        peer = exes[0].create_proxy(1, eps[1].tid)
        messages = [f"c{i}".encode() for i in range(20)]
        for m in messages:
            eps[0].send_reliable(peer, m)
        run(clocks, exes, rounds=2000)
        assert sorted(received) == sorted(messages)  # intact, exactly once
        assert eps[0].in_flight == 0
        assert eps[1].corrupt_discarded > 0  # corruption really happened


class TestOrderedMode:
    def test_reordered_wire_delivers_in_sequence(self):
        plan = FaultPlan(delay_rate=0.5, drop_rate=0.2)
        clocks, exes, eps = build_pair(plan, max_retries=200, ordered=True)
        received = []
        eps[1].consumer = lambda src, data: received.append(bytes(data))
        peer = exes[0].create_proxy(1, eps[1].tid)
        messages = [f"o{i:02d}".encode() for i in range(30)]
        for m in messages:
            eps[0].send_reliable(peer, m)
        run(clocks, exes, rounds=2000)
        assert received == messages  # exact send order, exactly once
        assert eps[1].held_back == 0

    def test_gap_holds_back_later_messages(self):
        clocks, exes, eps = build_pair(ordered=True)
        received = []
        eps[1].consumer = lambda src, data: received.append(bytes(data))
        peer = exes[0].create_proxy(1, eps[1].tid)
        # Lose seq 1's first copy on the wire, deliver 2 and 3: a gap.
        eps[0].send_reliable(peer, b"first")
        pt1 = exes[1].pta.transport("loopback")
        for _ in range(10):
            exes[0].step()
            if pt1._staged:
                break
        pt1._staged.clear()          # the wire eats seq 1
        for payload in (b"second", b"third"):
            eps[0].send_reliable(peer, payload)
        for _ in range(100):         # pump without advancing the clock:
            if not any(e.step() for e in exes.values()):
                break                # no retransmit deadline can pass
        assert received == []
        assert eps[1].held_back == 2
        run(clocks, exes, rounds=20)  # retransmit timer resends seq 1
        assert received == [b"first", b"second", b"third"]
        assert eps[1].held_back == 0


class TestJournaledEndpoint:
    def test_acked_stream_retires_the_journal(self, tmp_path):
        from repro.durable.journal import REC_ACK, REC_META, REC_SEND, decode_journal
        from repro.durable.segments import SegmentStore

        clocks, exes, eps = build_pair()
        store = SegmentStore(tmp_path / "tx.journal")
        eps[0].attach_journal(store)
        received = []
        eps[1].consumer = lambda src, data: received.append(bytes(data))
        peer = exes[0].create_proxy(1, eps[1].tid)
        messages = [f"j{i}".encode() for i in range(5)]
        for m in messages:
            eps[0].send_reliable(peer, m)
        assert store.depth == 5  # write-ahead: journaled at commit
        run(clocks, exes, rounds=10)
        assert received == messages
        assert store.depth == 0
        assert store.acks_recorded == 5
        store.close()
        kinds = [r.kind for r in decode_journal(store.path.read_bytes()).records]
        assert kinds.count(REC_META) == 1
        assert kinds.count(REC_SEND) == 5
        assert kinds.count(REC_ACK) == 5

    def test_second_journal_refused(self, tmp_path):
        from repro.durable.segments import SegmentStore

        clocks, exes, eps = build_pair()
        eps[0].attach_journal(SegmentStore(tmp_path / "a.journal"))
        with pytest.raises(I2OError):
            eps[0].attach_journal(SegmentStore(tmp_path / "b.journal"))

    def test_exhausted_retries_retire_the_record(self, tmp_path):
        """A message reported dead through on_failed must not
        resurrect when the endpoint later restarts."""
        from repro.durable.segments import SegmentStore

        plan = FaultPlan(drop_rate=1.0)
        clocks, exes, eps = build_pair(plan, max_retries=2)
        store = SegmentStore(tmp_path / "tx.journal")
        eps[0].attach_journal(store)
        failures = []
        eps[0].on_failed = lambda seq, target, payload: failures.append(seq)
        peer = exes[0].create_proxy(1, eps[1].tid)
        eps[0].send_reliable(peer, b"doomed")
        run(clocks, exes, rounds=50)
        assert len(failures) == 1
        assert store.depth == 0


class TestAbortPayloadSnapshot:
    def test_on_failed_payload_survives_pool_recycling(self):
        """Regression: the payload handed to ``on_failed`` at abort
        time must be a private snapshot.  A caller that sent a view
        into a pool frame and then freed the frame must not see the
        sanitizer's poison pattern (or another message's bytes) in the
        failure report."""
        from repro.analysis.sanitize import SanitizingTableAllocator
        from repro.mem.pool import BufferPool

        network = LoopbackNetwork()
        clock0 = _ManualClock()
        exes, eps = {}, {}
        for node in range(2):
            exe = Executive(
                node=node, clock=clock0,
                pool=BufferPool(SanitizingTableAllocator()),
            )
            PeerTransportAgent.attach(exe).register(
                LoopbackTransport(network), default=True
            )
            ep = ReliableEndpoint(retransmit_ns=1000)
            exe.install(ep)
            exes[node], eps[node] = exe, ep

        pattern = bytes(range(64))
        block = exes[0].pool.alloc(len(pattern))
        block.memory[: len(pattern)] = pattern
        reports = []
        eps[0].on_failed = (
            lambda seq, target, payload: reports.append(bytes(payload))
        )
        peer = exes[0].create_proxy(1, eps[1].tid)
        eps[0].send_reliable(peer, block.memory[: len(pattern)])
        exes[0].pool.free(block)  # sanitizer poisons the freed block
        # Supervision declares the peer dead: the pending message is
        # aborted and reported — with the original bytes, not poison.
        assert eps[0].on_peer_dead(1) == 1
        assert reports == [pattern]
        # Drain staged traffic from the initial transmit (and the ack
        # it provokes) so the conservation check sees a settled wire.
        for _ in range(100):
            if not any(exe.step() for exe in exes.values()):
                break
        for exe in exes.values():
            exe.pool.check_conservation()
            assert exe.pool.in_flight == 0


class TestPoolHygiene:
    def test_no_leaks_after_lossy_run(self):
        plan = FaultPlan(drop_rate=0.4, duplicate_rate=0.2)
        clocks, exes, eps = build_pair(plan, max_retries=100)
        eps[1].consumer = lambda src, data: None
        peer = exes[0].create_proxy(1, eps[1].tid)
        for i in range(30):
            eps[0].send_reliable(peer, bytes(50))
        run(clocks, exes, rounds=2000)
        for exe in exes.values():
            exe.pool.check_conservation()
            assert exe.pool.in_flight == 0
