"""Heartbeat liveness, peer tables, and the failover cascade."""

from __future__ import annotations

import pytest

from repro.core.device import Listener
from repro.core.discovery import DiscoveryService
from repro.core.executive import Executive
from repro.core.liveness import HeartbeatService, PeerTable
from repro.core.reliable import ReliableEndpoint
from repro.core.states import PeerState
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


class TestPeerTable:
    def test_peers_start_alive(self):
        table = PeerTable()
        table.watch(1)
        assert table.state(1) is PeerState.ALIVE
        assert table.alive_nodes() == [1]

    def test_unwatched_peer_raises(self):
        with pytest.raises(I2OError, match="not watched"):
            PeerTable().state(9)

    def test_miss_progression_alive_suspect_dead(self):
        table = PeerTable(suspect_after=2, dead_after=4)
        table.watch(1)
        assert table.interval_missed(1) is PeerState.ALIVE
        assert table.interval_missed(1) is PeerState.SUSPECT
        assert table.interval_missed(1) is PeerState.SUSPECT
        assert table.interval_missed(1) is PeerState.DEAD
        assert table.dead_nodes() == [1]
        assert table.deaths == 1 and table.suspicions == 1

    def test_beat_clears_suspicion(self):
        table = PeerTable(suspect_after=2, dead_after=4)
        table.watch(1)
        table.interval_missed(1)
        table.interval_missed(1)
        assert table.state(1) is PeerState.SUSPECT
        table.heartbeat_seen(1)
        assert table.state(1) is PeerState.ALIVE
        assert table.health(1).misses == 0

    def test_callbacks_fire_once_per_transition(self):
        table = PeerTable(suspect_after=1, dead_after=2)
        dead, suspect = [], []
        table.on_dead(dead.append)
        table.on_suspect(suspect.append)
        table.watch(1)
        for _ in range(5):
            table.interval_missed(1)
        assert dead == [1] and suspect == [1]

    def test_rejoin_needs_consecutive_beats(self):
        table = PeerTable(suspect_after=1, dead_after=2, rejoin_after=3)
        rejoined = []
        table.on_alive(rejoined.append)
        table.watch(1)
        table.interval_missed(1)
        table.interval_missed(1)
        assert table.state(1) is PeerState.DEAD
        table.heartbeat_seen(1)
        table.heartbeat_seen(1)
        assert table.state(1) is PeerState.DEAD  # backoff not yet served
        table.heartbeat_seen(1)
        assert table.state(1) is PeerState.ALIVE
        assert rejoined == [1] and table.rejoins == 1

    def test_miss_resets_rejoin_backoff(self):
        table = PeerTable(suspect_after=1, dead_after=2, rejoin_after=2)
        table.watch(1)
        table.interval_missed(1)
        table.interval_missed(1)
        table.heartbeat_seen(1)
        table.interval_missed(1)  # flap: backoff starts over
        table.heartbeat_seen(1)
        assert table.state(1) is PeerState.DEAD
        table.heartbeat_seen(1)
        assert table.state(1) is PeerState.ALIVE

    def test_threshold_validation(self):
        with pytest.raises(I2OError, match="must exceed"):
            PeerTable().configure(suspect_after=3, dead_after=3)
        with pytest.raises(I2OError, match=">= 1"):
            PeerTable().configure(suspect_after=0, dead_after=4)

    def test_counters(self):
        table = PeerTable(suspect_after=1, dead_after=2)
        table.watch(1)
        table.watch(2)
        table.interval_missed(2)
        table.interval_missed(2)
        counters = table.export_counters()
        assert counters["watched"] == 2
        assert counters["alive"] == 1
        assert counters["dead"] == 1


def build_supervised(
    n_nodes: int = 3,
    *,
    interval_ns: int = 1_000,
    suspect_after: int = 2,
    dead_after: int = 4,
    rejoin_after: int = 3,
    policy: str = "rebind",
    discovery_on: int | None = None,
):
    """N executives on a faulty loopback (clean plan) with a full mesh
    of heartbeat services, all driven by one manual clock."""
    network = LoopbackNetwork()
    clock = _ManualClock()
    cluster: dict[int, Executive] = {}
    faulty: dict[int, FaultyLoopbackTransport] = {}
    for node in range(n_nodes):
        exe = Executive(node=node, clock=clock)
        pt = FaultyLoopbackTransport(network, FaultPlan(), seed=node)
        PeerTransportAgent.attach(exe).register(pt, default=True)
        cluster[node] = exe
        faulty[node] = pt

    def pump_once():
        for exe in cluster.values():
            exe.step()

    discovery = None
    if discovery_on is not None:
        discovery = DiscoveryService(nodes=list(cluster), pump=pump_once)
        cluster[discovery_on].install(discovery)

    hbs: dict[int, HeartbeatService] = {}
    for node, exe in cluster.items():
        hb = HeartbeatService(
            name=f"hb{node}",
            discovery=discovery if node == discovery_on else None,
        )
        hb.parameters.update({
            "interval_ns": str(interval_ns),
            "suspect_after": str(suspect_after),
            "dead_after": str(dead_after),
            "rejoin_after": str(rejoin_after),
            "failover_policy": policy,
        })
        exe.install(hb)
        hbs[node] = hb
    for node, hb in hbs.items():
        for peer in cluster:
            if peer != node:
                hb.monitor(peer, cluster[node].create_proxy(peer, hbs[peer].tid))
    for hb in hbs.values():
        hb.start()
    return cluster, clock, hbs, faulty, discovery


def tick(cluster, clock, n: int = 1, step_ns: int = 1_000) -> None:
    for _ in range(n):
        clock.t += step_ns
        for _ in range(10_000):
            if not any(exe.step() for exe in cluster.values()):
                break


class TestHeartbeatService:
    def test_healthy_cluster_stays_alive(self):
        cluster, clock, hbs, _, _ = build_supervised(3)
        tick(cluster, clock, 10)
        for node, exe in cluster.items():
            assert exe.peers.alive_nodes() == [
                n for n in cluster if n != node
            ]
        assert hbs[0].beats_received > 0
        assert cluster[0].metrics.value("hb_beats_received_total") > 0

    def test_partitioned_peer_detected_within_miss_window(self):
        cluster, clock, hbs, faulty, _ = build_supervised(
            3, suspect_after=2, dead_after=4
        )
        tick(cluster, clock, 3)
        faulty[2].partition()  # node 2 dies
        detected_at = None
        for elapsed in range(1, 10):
            tick(cluster, clock, 1)
            if cluster[0].peers.state(2) is PeerState.DEAD:
                detected_at = elapsed
                break
        assert detected_at is not None, "death never detected"
        assert detected_at <= 4 + 1  # dead_after intervals (+1 slack)
        assert cluster[0].peers.state(1) is PeerState.ALIVE
        # The suspect phase was traversed on the way down.
        assert cluster[0].peers.suspicions >= 1
        assert hbs[0].peer_deaths == 1

    def test_dead_peer_rejoins_after_backoff(self):
        cluster, clock, hbs, faulty, _ = build_supervised(
            2, suspect_after=2, dead_after=3, rejoin_after=3
        )
        tick(cluster, clock, 2)
        faulty[1].partition()
        tick(cluster, clock, 6)
        assert cluster[0].peers.state(1) is PeerState.DEAD
        faulty[1].heal()
        tick(cluster, clock, 2)
        assert cluster[0].peers.state(1) is PeerState.DEAD  # backoff
        tick(cluster, clock, 3)
        assert cluster[0].peers.state(1) is PeerState.ALIVE
        assert hbs[0].peer_rejoins == 1
        assert cluster[0].metrics.value("peer_rejoins_total") == 1

    def test_stop_disarms_timer(self):
        cluster, clock, hbs, _, _ = build_supervised(2)
        assert len(cluster[0].timers) == 1
        hbs[0].stop()
        assert len(cluster[0].timers) == 0
        tick(cluster, clock, 5)
        # Stopped service accrues no evidence; peers stay as they were.
        assert cluster[0].peers.state(1) is PeerState.ALIVE

    def test_uninstall_cancels_owned_timers(self):
        cluster, clock, hbs, _, _ = build_supervised(2)
        hbs[0].running = True
        assert len(cluster[0].timers) == 1
        cluster[0].uninstall(hbs[0].tid)
        assert len(cluster[0].timers) == 0

    def test_monitor_rejects_self(self):
        cluster, _, hbs, _, _ = build_supervised(2)
        with pytest.raises(I2OError, match="does not monitor itself"):
            hbs[0].monitor(0, hbs[0].tid)


class Worker(Listener):
    device_class = "test_worker"


class _Caller(Listener):
    """Sends a private request and records what comes back."""

    def __init__(self) -> None:
        super().__init__("caller")
        self.failures = 0
        self.replies = 0

    def on_plugin(self) -> None:
        self.bind(0x42, self._on_reply)

    def _on_reply(self, frame: Frame) -> None:
        if not frame.is_reply:
            return
        if frame.is_failure:
            self.failures += 1
        else:
            self.replies += 1


class TestFailoverCascade:
    def test_rebind_to_surviving_replica(self):
        cluster, clock, hbs, faulty, discovery = build_supervised(
            3, discovery_on=0
        )
        primary = Worker(name="w-primary")
        replica = Worker(name="w-replica")
        primary_tid = cluster[2].install(primary)
        replica_tid = cluster[1].install(replica)
        for node in (1, 2):
            discovery.refresh(node)
        proxy = cluster[0].create_proxy(2, primary_tid)
        faulty[2].partition()
        tick(cluster, clock, 8)
        assert cluster[0].peers.state(2) is PeerState.DEAD
        route = cluster[0].route_for(proxy)
        assert (route.node, route.remote_tid) == (1, replica_tid)
        assert not route.parked
        assert cluster[0].rebinds >= 1
        assert discovery.rebinds >= 1
        assert cluster[0].metrics.value("exe_route_rebinds_total") >= 1
        assert 2 in discovery.quarantined

    def test_park_policy_fails_senders_fast(self):
        cluster, clock, hbs, faulty, discovery = build_supervised(
            3, policy="park", discovery_on=0
        )
        target_tid = cluster[2].install(Worker())
        discovery.refresh(2)
        caller = _Caller()
        cluster[0].install(caller)
        proxy = cluster[0].create_proxy(2, target_tid)
        faulty[2].partition()
        tick(cluster, clock, 8)
        assert cluster[0].route_for(proxy).parked
        caller.send(proxy, b"anyone home?", xfunction=0x42)
        tick(cluster, clock, 1)
        # The paper's fault story: the sender gets an I2O failure reply
        # instead of waiting on a dead node forever.
        assert caller.failures == 1
        assert cluster[0].parks >= 1

    def test_no_replica_parks_even_under_rebind(self):
        cluster, clock, hbs, faulty, discovery = build_supervised(
            3, discovery_on=0
        )
        lone_tid = cluster[2].install(Worker())
        discovery.refresh(2)
        proxy = cluster[0].create_proxy(2, lone_tid)
        faulty[2].partition()
        tick(cluster, clock, 8)
        assert cluster[0].route_for(proxy).parked

    def test_rejoin_unparks_routes(self):
        cluster, clock, hbs, faulty, discovery = build_supervised(
            3, policy="park", discovery_on=0, rejoin_after=2
        )
        target_tid = cluster[2].install(Worker())
        discovery.refresh(2)
        proxy = cluster[0].create_proxy(2, target_tid)
        faulty[2].partition()
        tick(cluster, clock, 8)
        assert cluster[0].route_for(proxy).parked
        faulty[2].heal()
        tick(cluster, clock, 6)
        assert cluster[0].peers.state(2) is PeerState.ALIVE
        assert not cluster[0].route_for(proxy).parked
        assert 2 not in discovery.quarantined

    def test_reliable_endpoint_aborts_toward_dead_peer(self):
        cluster, clock, hbs, faulty, _ = build_supervised(
            3, policy="park"
        )
        ep0 = ReliableEndpoint(retransmit_ns=1_000, max_retries=10_000)
        ep2 = ReliableEndpoint()
        cluster[0].install(ep0)
        cluster[2].install(ep2)
        failed = []
        ep0.on_failed = lambda seq, target, payload: failed.append(payload)
        peer = cluster[0].create_proxy(2, ep2.tid)
        faulty[2].partition()
        ep0.send_reliable(peer, b"into the void")
        tick(cluster, clock, 8)
        # Supervision aborted the retransmission loop long before the
        # 10k retries could run out.
        assert ep0.in_flight == 0
        assert ep0.aborted == 1
        assert failed == [b"into the void"]

    def test_failover_policy_none_leaves_routes_alone(self):
        cluster, clock, hbs, faulty, discovery = build_supervised(
            3, policy="none", discovery_on=0
        )
        target_tid = cluster[2].install(Worker())
        discovery.refresh(2)
        proxy = cluster[0].create_proxy(2, target_tid)
        faulty[2].partition()
        tick(cluster, clock, 8)
        assert cluster[0].peers.state(2) is PeerState.DEAD
        route = cluster[0].route_for(proxy)
        assert not route.parked and route.node == 2

    def test_park_without_discovery_still_parks_routes(self):
        """A discovery service is optional: park must degrade to
        parking the executive's own routes, not to doing nothing."""
        cluster, clock, hbs, faulty, _ = build_supervised(2, policy="park")
        target_tid = cluster[1].install(Worker())
        caller = _Caller()
        cluster[0].install(caller)
        proxy = cluster[0].create_proxy(1, target_tid)
        faulty[1].partition()
        tick(cluster, clock, 8)
        assert cluster[0].peers.state(1) is PeerState.DEAD
        assert cluster[0].route_for(proxy).parked
        caller.send(proxy, b"", xfunction=0x42)
        tick(cluster, clock, 1)
        assert caller.failures == 1  # failure reply, not silence
        faulty[1].heal()
        tick(cluster, clock, 10)
        assert cluster[0].peers.state(1) is PeerState.ALIVE
        assert not cluster[0].route_for(proxy).parked  # rejoin unparks

    def test_symmetric_partition_heals(self):
        """Both sides park each other's routes — but the beat route is
        exempt (it carries the rejoin probes), so a healed partition
        must converge back to mutual ALIVE, not deadlock at DEAD."""
        cluster, clock, hbs, faulty, _ = build_supervised(
            2, policy="park", rejoin_after=3
        )
        tick(cluster, clock, 2)
        faulty[1].partition()
        tick(cluster, clock, 8)
        assert cluster[0].peers.state(1) is PeerState.DEAD
        assert cluster[1].peers.state(0) is PeerState.DEAD
        faulty[1].heal()
        tick(cluster, clock, 10)
        assert cluster[0].peers.state(1) is PeerState.ALIVE
        assert cluster[1].peers.state(0) is PeerState.ALIVE

    def test_beat_route_survives_rebind_failover(self):
        """Under rebind the dead node's heartbeat class has replicas on
        every node; the beat route must NOT be rebound to one of them —
        it has to keep probing the dead peer itself."""
        cluster, clock, hbs, faulty, discovery = build_supervised(
            3, discovery_on=0
        )
        for node in (1, 2):
            discovery.refresh(node)
        faulty[2].partition()
        tick(cluster, clock, 8)
        assert cluster[0].peers.state(2) is PeerState.DEAD
        beat_route = cluster[0].route_for(hbs[0]._targets[2])
        assert beat_route.node == 2 and not beat_route.parked
        faulty[2].heal()
        tick(cluster, clock, 10)
        assert cluster[0].peers.state(2) is PeerState.ALIVE

    def test_bad_policy_rejected_at_start(self):
        from repro.config.schema import SchemaError

        cluster, _, hbs, _, _ = build_supervised(2)
        hbs[0].stop()
        hbs[0].parameters.update({"failover_policy": "explode"})
        with pytest.raises(SchemaError, match="explode"):
            hbs[0].start()


class TestBootstrapSupervision:
    def test_spec_wires_full_mesh(self):
        from repro.config.bootstrap import bootstrap

        spec = {
            "transport": "loopback",
            "supervision": {
                "interval_ns": 1_000,
                "suspect_after": 2,
                "dead_after": 4,
                "policy": "park",
            },
            "nodes": {
                0: {"devices": []},
                1: {"devices": []},
                2: {"devices": []},
            },
        }
        cluster = bootstrap(spec)
        clock = _ManualClock()
        for exe in cluster.executives.values():
            exe.clock = clock
        cluster.start_supervision()
        for _ in range(5):
            clock.t += 1_000
            cluster.pump()
        for node, exe in cluster.executives.items():
            assert exe.peers.alive_nodes() == sorted(
                n for n in cluster.executives if n != node
            )
        assert cluster.heartbeats[0].typed_param("failover_policy") == "park"

    def test_unknown_supervision_key_rejected(self):
        from repro.config.bootstrap import BootstrapError, bootstrap

        with pytest.raises(BootstrapError, match="unknown supervision"):
            bootstrap({
                "supervision": {"cadence": 5},
                "nodes": {0: {"devices": []}},
            })
