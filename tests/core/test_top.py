"""The repro.top console: quantile reconstruction and rendering."""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import MetricsRegistry
from repro.top import (
    COLUMNS,
    dispatch_quantile,
    hot_ratio,
    main,
    node_row,
    render,
)


def _metrics_with_hist(**extra):
    """A node snapshot with a dispatch histogram: 10 obs ≤ 1000 ns,
    then 80 more ≤ 10000, then 10 more ≤ 100000 (cumulative export)."""
    base = {
        "exe_dispatch_ns_bucket_le_1000": 10,
        "exe_dispatch_ns_bucket_le_10000": 90,
        "exe_dispatch_ns_bucket_le_100000": 100,
        "exe_dispatch_ns_bucket_le_inf": 100,
        "exe_dispatch_ns_count": 100,
        "exe_dispatch_ns_sum": 500_000,
    }
    base.update(extra)
    return base


class TestDispatchQuantile:
    def test_conservative_upper_bound(self):
        metrics = _metrics_with_hist()
        assert dispatch_quantile(metrics, 0.05) == 1000
        assert dispatch_quantile(metrics, 0.50) == 10000
        assert dispatch_quantile(metrics, 0.99) == 100000

    def test_no_observations_is_none(self):
        assert dispatch_quantile({}, 0.5) is None
        assert dispatch_quantile({"exe_dispatch_ns_count": 0}, 0.5) is None

    def test_everything_in_overflow_hits_inf(self):
        metrics = {
            "exe_dispatch_ns_bucket_le_1000": 0,
            "exe_dispatch_ns_bucket_le_inf": 5,
            "exe_dispatch_ns_count": 5,
        }
        assert dispatch_quantile(metrics, 0.5) == float("inf")

    def test_p_and_m_encoded_bounds_decode(self):
        # Float bounds export as e.g. "0p5"; the console must fold
        # them back to numeric bounds before sorting.
        metrics = {
            "exe_dispatch_ns_bucket_le_0p5": 3,
            "exe_dispatch_ns_bucket_le_2p5": 4,
            "exe_dispatch_ns_bucket_le_inf": 4,
            "exe_dispatch_ns_count": 4,
        }
        assert dispatch_quantile(metrics, 0.5) == 0.5
        assert dispatch_quantile(metrics, 0.99) == 2.5


#: Strictly increasing finite bucket bounds plus random observations.
_bounds = st.lists(
    st.integers(min_value=1, max_value=10**9),
    min_size=1, max_size=8, unique=True,
).map(sorted)
_observations = st.lists(
    st.integers(min_value=0, max_value=2 * 10**9), min_size=1, max_size=60
)


class TestQuantileProperties:
    """Reconstruction from the cumulative export, against the real
    Histogram: monotone in q, and always exactly a bucket bound."""

    @settings(max_examples=60, deadline=None)
    @given(bounds=_bounds, values=_observations, qs=st.tuples(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
    ))
    def test_monotone_and_bound_exact(self, bounds, values, qs):
        registry = MetricsRegistry()
        hist = registry.histogram("exe_dispatch_ns", bounds)
        for value in values:
            hist.observe(value)
        metrics = registry.snapshot()

        lo, hi = sorted(qs)
        q_lo = dispatch_quantile(metrics, lo)
        q_hi = dispatch_quantile(metrics, hi)
        assert q_lo is not None and q_hi is not None
        # Monotone: a higher quantile never reconstructs lower.
        assert q_lo <= q_hi
        # Bucket-bound-exact: the estimate is always one of the
        # declared bounds (or the +Inf overflow), never interpolated.
        legal = {float(b) for b in bounds} | {math.inf}
        assert q_lo in legal and q_hi in legal
        # And it is the *first* bound whose cumulative count covers q.
        for q, got in ((lo, q_lo), (hi, q_hi)):
            expected = math.inf
            for bound in bounds:
                if sum(1 for v in values if v <= bound) >= q * len(values):
                    expected = float(bound)
                    break
            assert got == expected


class TestHotColumn:
    def test_ratio_from_profiler_gauges(self):
        metrics = _metrics_with_hist(
            prof_samples_total=200, prof_busy_samples_total=50
        )
        assert hot_ratio(metrics) == 0.25
        assert node_row(0, metrics)[COLUMNS.index("HOT")] == "25%"

    def test_no_samples_renders_dash(self):
        assert hot_ratio(_metrics_with_hist()) is None
        assert node_row(0, _metrics_with_hist())[COLUMNS.index("HOT")] == "-"


class TestSort:
    def _metrics(self):
        return {
            0: _metrics_with_hist(exe_dispatched_total=10,
                                  prof_samples_total=100,
                                  prof_busy_samples_total=90),
            1: _metrics_with_hist(exe_dispatched_total=30),
            2: _metrics_with_hist(exe_dispatched_total=20,
                                  prof_samples_total=100,
                                  prof_busy_samples_total=10),
        }

    def _order(self, text):
        return [line.split()[0] for line in text.splitlines()[1:-1]]

    def test_sort_disp_descends_by_numeric_value(self):
        assert self._order(render(self._metrics(), sort="disp")) == \
            ["1", "2", "0"]

    def test_sort_hot_puts_unsampled_nodes_last(self):
        assert self._order(render(self._metrics(), sort="hot")) == \
            ["0", "2", "1"]

    def test_sort_node_ascends(self):
        assert self._order(render(self._metrics(), sort="node")) == \
            ["0", "1", "2"]

    def test_unknown_column_raises(self):
        with pytest.raises(ValueError, match="unknown sort column"):
            render(self._metrics(), sort="bogus")


class TestWidthPersistence:
    def test_widths_only_grow_between_frames(self):
        widths: list[int] = []
        render({0: {"exe_dispatched_total": 9_999_999}}, widths=widths)
        wide = list(widths)
        # Counter resets / node churn must not shrink any column.
        render({0: {"exe_dispatched_total": 1}}, widths=widths)
        assert widths == wide
        first = render({0: {"exe_dispatched_total": 9_999_999}})
        again = render({0: {"exe_dispatched_total": 1}}, widths=wide)
        assert len(again.splitlines()[0]) == len(first.splitlines()[0])


class TestNodeRow:
    def test_row_matches_columns(self):
        row = node_row(3, _metrics_with_hist())
        assert len(row) == len(COLUMNS)
        assert row[0] == "3"

    def test_down_is_deaths_minus_rejoins(self):
        metrics = _metrics_with_hist(
            peer_deaths_total=3, peer_rejoins_total=1
        )
        row = node_row(0, metrics)
        assert row[COLUMNS.index("DOWN")] == "2"

    def test_rejoins_never_go_negative(self):
        metrics = _metrics_with_hist(
            peer_deaths_total=1, peer_rejoins_total=4
        )
        assert node_row(0, metrics)[COLUMNS.index("DOWN")] == "0"

    def test_journal_and_copies_summed_across_devices(self):
        metrics = _metrics_with_hist(**{
            "rel_a_journal_depth": 2,
            "rel_b_journal_depth": 3,
            "pt_loop_tx_copies": 4,
            "pt_loop_rx_copies": 5,
        })
        row = node_row(0, metrics)
        assert row[COLUMNS.index("JRNL")] == "5"
        assert row[COLUMNS.index("COPIES")] == "9"

    def test_shed_column_reads_dataflow_counter(self):
        metrics = _metrics_with_hist(dataflow_shed_total=7)
        assert node_row(0, metrics)[COLUMNS.index("SHED")] == "7"

    def test_shed_column_defaults_to_zero(self):
        assert node_row(0, _metrics_with_hist())[COLUMNS.index("SHED")] == "0"

    def test_latency_columns_humanised(self):
        row = node_row(0, _metrics_with_hist())
        assert row[COLUMNS.index("P50")] == "10us"
        assert row[COLUMNS.index("P99")] == "100us"


class TestRender:
    def test_table_has_header_rows_and_summary(self):
        text = render({
            0: _metrics_with_hist(exe_dispatched_total=100),
            1: _metrics_with_hist(exe_dispatched_total=50),
        })
        lines = text.splitlines()
        assert lines[0].split() == list(COLUMNS)
        assert len(lines) == 4  # header + 2 nodes + summary
        assert "2 node(s)" in lines[-1]
        assert "150 dispatched" in lines[-1]

    def test_nodes_sorted(self):
        text = render({5: {}, 1: {}, 3: {}})
        first_cells = [
            line.split()[0] for line in text.splitlines()[1:-1]
        ]
        assert first_cells == ["1", "3", "5"]


class TestCli:
    def test_json_source_renders_a_collector_dump(self, tmp_path, capsys):
        dump = {
            "nodes": {
                "0": _metrics_with_hist(exe_dispatched_total=7),
                "1": {"exe_dispatched_total": 2},
            },
            "totals": {},
        }
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(dump))
        assert main(["--json", str(path)]) == 0
        out = capsys.readouterr().out
        assert "NODE" in out
        assert "9 dispatched cluster-wide" in out

    def test_bare_node_map_also_accepted(self, tmp_path, capsys):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"2": {"exe_dispatched_total": 1}}))
        assert main(["--json", str(path)]) == 0
        assert "1 node(s)" in capsys.readouterr().out

    def test_demo_once_runs_a_real_cluster(self, capsys):
        assert main(["--demo", "--once"]) == 0
        out = capsys.readouterr().out
        assert "NODE" in out
        assert "3 node(s)" in out
        # The demo drives 50 echo dispatches through nodes 1 and 2.
        assert "50 dispatched cluster-wide" in out

    def test_source_required(self, capsys):
        with pytest.raises(SystemExit):
            main([])
