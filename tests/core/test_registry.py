"""Dynamic module download (paper §4)."""

from __future__ import annotations

import pytest

from repro.core.executive import Executive
from repro.core.registry import (
    ModuleDownloadError,
    ModuleRegistry,
    compile_module,
    download_module,
)

GOOD_SOURCE = '''
from repro.core.device import Listener

class Pinger(Listener):
    device_class = "downloaded"

    def on_plugin(self):
        self.hits = 0
        self.bind(0x0001, self.on_ping)

    def on_ping(self, frame):
        if not frame.is_reply:
            self.hits += 1
            self.reply(frame)
'''


class TestCompile:
    def test_compiles_and_exposes_names(self):
        module = compile_module("x = 41 + 1")
        assert module.x == 42

    def test_syntax_error_wrapped(self):
        with pytest.raises(ModuleDownloadError, match="compile"):
            compile_module("def broken(:")

    def test_fresh_namespace_per_download(self):
        a = compile_module("value = []")
        b = compile_module("value = []")
        assert a.value is not b.value


class TestDownload:
    def test_download_installs_into_running_executive(self):
        exe = Executive()
        tid = download_module(exe, GOOD_SOURCE, "Pinger")
        dev = exe.device(tid)
        assert dev.device_class == "downloaded"
        assert dev.tid == tid

    def test_downloaded_device_answers_messages(self):
        from repro.core.device import Listener

        exe = Executive()
        tid = download_module(exe, GOOD_SOURCE, "Pinger")
        sender = Listener("sender")
        exe.install(sender)
        replies = []
        sender.bind(0x0001, lambda f: replies.append(f.is_reply))
        sender.send(tid, b"", xfunction=0x0001)
        exe.run_until_idle()
        assert replies == [True]
        assert exe.device(tid).hits == 1

    def test_parameters_applied_before_plugin_visible(self):
        exe = Executive()
        tid = download_module(
            exe, GOOD_SOURCE, "Pinger", parameters={"rate": "5"}
        )
        assert exe.device(tid).parameters["rate"] == "5"

    def test_missing_class_rejected(self):
        with pytest.raises(ModuleDownloadError, match="no class"):
            download_module(Executive(), "x = 1", "Ghost")

    def test_non_listener_rejected(self):
        with pytest.raises(ModuleDownloadError, match="Listener"):
            download_module(Executive(), "class Ghost: pass", "Ghost")


class TestRegistry:
    def test_record_and_forget(self):
        registry = ModuleRegistry()
        module = compile_module("x = 1")
        registry.record(42, module)
        assert registry.module_for(42) is module
        assert len(registry) == 1
        registry.forget(42)
        assert registry.module_for(42) is None
        registry.forget(42)  # idempotent
