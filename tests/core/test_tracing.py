"""The distributed frame tracer: id tagging, spans, ring bounds."""

from __future__ import annotations

from repro.core.device import FunctionalListener, Listener
from repro.core.executive import Executive
from repro.core.tracing import (
    FrameTracer,
    TRACE_TAG,
    is_trace_context,
    make_trace_id,
    trace_root_node,
)
from repro.i2o.frame import Frame
from repro.i2o.tid import EXECUTIVE_TID, PTA_TID

from tests.conftest import make_loopback_cluster, pump

TARGET_TID = 2
INITIATOR_TID = 1


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


class _Echo(Listener):
    def on_plugin(self) -> None:
        self.bind(0x1, self._on_ping)

    def _on_ping(self, frame: Frame) -> None:
        if not frame.is_reply:
            self.reply(frame, bytes(frame.payload))


def _traced_pair(capacity: int = 64):
    cluster = make_loopback_cluster(2)
    for node, exe in cluster.items():
        exe.tracer = FrameTracer(node=node, capacity=capacity)
    echo = _Echo(name="echo")
    echo_tid = cluster[1].install(echo)
    caller = FunctionalListener(name="caller")
    cluster[0].install(caller)
    proxy = cluster[0].create_proxy(1, echo_tid)
    return cluster, caller, proxy


class TestTraceIds:
    def test_tag_scheme(self):
        tid = make_trace_id(7, 42)
        assert is_trace_context(tid)
        assert trace_root_node(tid) == 7
        assert tid >> 52 == TRACE_TAG

    def test_ordinary_contexts_are_not_traces(self):
        for ctx in (0, 1, 0x5EE9, 2**40, 2**52 - 1):
            assert not is_trace_context(ctx)

    def test_ids_are_unique_per_root(self):
        tracer = FrameTracer(node=1)
        frames = [
            Frame.build(target=TARGET_TID, initiator=INITIATOR_TID)
            for _ in range(3)
        ]
        for f in frames:
            tracer.stamp(f)
        contexts = {f.transaction_context for f in frames}
        assert len(contexts) == 3
        assert all(is_trace_context(c) for c in contexts)

    def test_stamp_never_overwrites(self):
        tracer = FrameTracer(node=1)
        frame = Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                            transaction_context=0x77)
        tracer.stamp(frame)
        assert frame.transaction_context == 0x77


class TestOffMode:
    def test_no_tracer_means_zero_contexts_and_no_spans(self, two_nodes):
        echo = _Echo(name="echo")
        echo_tid = two_nodes[1].install(echo)
        caller = FunctionalListener(name="caller")
        two_nodes[0].install(caller)
        proxy = two_nodes[0].create_proxy(1, echo_tid)
        caller.send(proxy, b"x", xfunction=0x1)
        pump(two_nodes)
        assert all(exe.tracer is None for exe in two_nodes.values())


class TestSpans:
    def test_request_and_reply_share_one_trace(self):
        cluster, caller, proxy = _traced_pair()
        caller.send(proxy, b"ping", xfunction=0x1)
        pump(cluster)
        spans0 = cluster[0].tracer.snapshot_spans()
        spans1 = cluster[1].tracer.snapshot_spans()
        assert spans0 and spans1
        ids = {s.trace_id for s in spans0} | {s.trace_id for s in spans1}
        assert len(ids) == 1
        trace_id = ids.pop()
        assert is_trace_context(trace_id)
        assert trace_root_node(trace_id) == 0

    def test_span_fields(self):
        cluster, caller, proxy = _traced_pair()
        caller.send(proxy, b"ping", xfunction=0x1)
        pump(cluster)
        (span,) = cluster[1].tracer.snapshot_spans()
        assert span.node == 1
        assert span.xfunction == 0x1
        assert span.queue_wait_ns >= 0
        assert span.dispatch_ns >= 0

    def test_ring_is_bounded(self):
        cluster, caller, proxy = _traced_pair(capacity=4)
        tracer = cluster[1].tracer
        for _ in range(10):
            caller.send(proxy, b"p", xfunction=0x1)
        pump(cluster)
        assert len(tracer.spans) == 4
        assert tracer.dropped == 6

    def test_queue_wait_measured_against_the_executive_clock(self):
        clock = _ManualClock()
        exe = Executive(node=0, clock=clock, tracer=FrameTracer(capacity=16))
        sink = FunctionalListener(name="sink", handlers={0x1: lambda f: None})
        tid = exe.install(sink)
        sink.send(tid, b"x", xfunction=0x1)
        exe._route_outbound()  # enqueue at t=0
        clock.t = 5_000
        exe.step()
        (span,) = exe.tracer.snapshot_spans()
        assert span.queue_wait_ns == 5_000
        assert span.start_ns == 5_000

    def test_forget_on_release_leaves_no_stale_entries(self):
        exe = Executive(node=0, tracer=FrameTracer(capacity=16))
        sink = FunctionalListener(name="sink", handlers={0x1: lambda f: None})
        tid = exe.install(sink)
        frames = []
        original_note = exe.tracer.note_enqueue

        def spy(frame, now_ns):
            frames.append(frame)
            original_note(frame, now_ns)

        exe.tracer.note_enqueue = spy  # type: ignore[method-assign]
        for _ in range(3):
            sink.send(tid, b"x", xfunction=0x1)
        exe._route_outbound()
        assert all(f.trace_mark is not None for f in frames)
        exe.uninstall(tid)  # drops the queued frames without dispatch
        assert all(f.trace_mark is None for f in frames)

    def test_recycled_frame_does_not_inherit_stale_queue_wait(self):
        # Regression: the tracer used to key enqueue timestamps by
        # id(frame); a recycled frame at the same address would then
        # inherit the dead frame's (older) timestamp and report a
        # wildly inflated queue wait.  The mark now rides the frame.
        clock = _ManualClock()
        tracer = FrameTracer(node=0, capacity=16)
        frame = Frame.build(
            target=PTA_TID, initiator=EXECUTIVE_TID, xfunction=0x1
        )
        tracer.note_enqueue(frame, clock.t)
        # Released without dispatch, mark forgotten...
        tracer.forget(frame)
        clock.t = 1_000_000
        # ...and a "new" frame (same object standing in for a recycled
        # id()) enqueued much later must measure from *its* enqueue.
        tracer.note_enqueue(frame, clock.t)
        clock.t = 1_000_500
        token = tracer.begin_dispatch(frame, clock.t)
        assert token[0] == 500  # queue_wait, not 1_000_500

    def test_timer_contexts_survive_untraced(self):
        exe = Executive(node=0, tracer=FrameTracer(capacity=16))
        fired = []

        class _Timed(Listener):
            def on_timer(self, context: int, frame: Frame) -> None:
                fired.append(context)

        dev = _Timed(name="timed")
        exe.install(dev)
        dev.start_timer(0, context=0x123)
        exe.run_until_idle()
        assert fired == [0x123]
