"""Listener: standard message sets, lifecycle, helpers."""

from __future__ import annotations

import pytest

from repro.core.device import (
    FunctionalListener,
    Listener,
    decode_params,
    encode_params,
)
from repro.core.executive import Executive
from repro.core.states import DeviceState, StateError
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import (
    EXEC_DDM_ENABLE,
    EXEC_DDM_QUIESCE,
    EXEC_DDM_RESET,
    UTIL_ABORT,
    UTIL_CLAIM,
    UTIL_EVENT_ACKNOWLEDGE,
    UTIL_EVENT_REGISTER,
    UTIL_NOP,
    UTIL_PARAMS_GET,
    UTIL_PARAMS_SET,
)


class Recorder(Listener):
    """Collects every frame that reaches its private handler."""

    def __init__(self, name: str = "rec") -> None:
        super().__init__(name)
        self.frames: list[tuple[int, bytes, bool, bool]] = []

    def on_plugin(self) -> None:
        self.bind(0x0001, self._on_any)

    def _on_any(self, frame: Frame) -> None:
        self.frames.append(
            (frame.initiator, bytes(frame.payload), frame.is_reply,
             frame.is_failure)
        )


@pytest.fixture
def exe():
    return Executive(node=0)


def drive(exe: Executive) -> None:
    exe.run_until_idle()


class TestParamsCodec:
    def test_round_trip(self):
        params = {"a": "1", "b": "two", "empty": ""}
        assert decode_params(encode_params(params)) == params

    def test_empty(self):
        assert decode_params(encode_params({})) == {}

    def test_illegal_key_rejected(self):
        with pytest.raises(I2OError):
            encode_params({"a=b": "x"})
        with pytest.raises(I2OError):
            encode_params({"a": "line\nbreak"})

    def test_malformed_line_rejected(self):
        with pytest.raises(I2OError):
            decode_params(b"no-equals-sign")


class TestLifecycle:
    def test_plugin_assigns_tid_and_executive(self, exe):
        dev = Recorder()
        tid = exe.install(dev)
        assert dev.tid == tid
        assert dev.executive is exe
        assert dev.state is DeviceState.INITIALISED

    def test_double_install_rejected(self, exe):
        dev = Recorder()
        exe.install(dev)
        with pytest.raises(I2OError):
            exe.install(dev)
        with pytest.raises(I2OError):
            Executive(node=1).install(dev)

    def test_unplugged_device_cannot_send(self):
        dev = Recorder()
        with pytest.raises(I2OError):
            dev.send(5, b"x")

    def test_set_state_enforces_machine(self, exe):
        dev = Recorder()
        exe.install(dev)
        dev.set_state(DeviceState.ENABLED)
        with pytest.raises(StateError):
            dev.set_state(DeviceState.CONFIGURED)


class TestStandardHandlers:
    def _send(self, exe, sender, target_tid, function, payload=b""):
        sender.send(target_tid, payload, function=function)
        drive(exe)

    def test_nop_gets_empty_reply(self, exe):
        a, b = Recorder("a"), Recorder("b")
        ta, tb = exe.install(a), exe.install(b)
        replies = []
        a.table.bind(UTIL_NOP, lambda f: replies.append(f.is_reply))
        self._send(exe, a, tb, UTIL_NOP)
        assert replies == [True]

    def test_params_get_returns_all(self, exe):
        a, b = Recorder("a"), Recorder("b")
        exe.install(a)
        tb = exe.install(b)
        b.parameters.update({"rate": "100", "mode": "fast"})
        got = []
        a.table.bind(UTIL_PARAMS_GET,
                     lambda f: got.append(decode_params(f.payload)))
        self._send(exe, a, tb, UTIL_PARAMS_GET)
        assert got == [{"rate": "100", "mode": "fast"}]

    def test_params_get_subset(self, exe):
        a, b = Recorder("a"), Recorder("b")
        exe.install(a)
        tb = exe.install(b)
        b.parameters.update({"rate": "100", "mode": "fast"})
        got = []
        a.table.bind(UTIL_PARAMS_GET,
                     lambda f: got.append(decode_params(f.payload)))
        self._send(exe, a, tb, UTIL_PARAMS_GET, encode_params({"rate": ""}))
        assert got == [{"rate": "100"}]

    def test_params_set_updates_and_replies(self, exe):
        a, b = Recorder("a"), Recorder("b")
        exe.install(a)
        tb = exe.install(b)
        ok = []
        a.table.bind(UTIL_PARAMS_SET, lambda f: ok.append(not f.is_failure))
        self._send(exe, a, tb, UTIL_PARAMS_SET, encode_params({"k": "v"}))
        assert b.parameters["k"] == "v"
        assert ok == [True]

    def test_params_set_refusal_via_on_parameters(self, exe):
        class Picky(Recorder):
            def on_parameters(self, updates):
                if "forbidden" in updates:
                    raise I2OError("nope")

        a, b = Recorder("a"), Picky("b")
        exe.install(a)
        tb = exe.install(b)
        failures = []
        a.table.bind(UTIL_PARAMS_SET, lambda f: failures.append(f.is_failure))
        self._send(exe, a, tb, UTIL_PARAMS_SET,
                   encode_params({"forbidden": "1"}))
        assert failures == [True]
        assert "forbidden" not in b.parameters

    def test_export_counters_published_via_params_get(self, exe):
        class Counting(Recorder):
            def export_counters(self):
                return {"hits": 42}

        a, b = Recorder("a"), Counting("b")
        exe.install(a)
        tb = exe.install(b)
        got = []
        a.table.bind(UTIL_PARAMS_GET,
                     lambda f: got.append(decode_params(f.payload)))
        self._send(exe, a, tb, UTIL_PARAMS_GET)
        assert got[0]["hits"] == "42"

    def test_claim_exclusive(self, exe):
        a, b, c = Recorder("a"), Recorder("b"), Recorder("c")
        exe.install(a)
        exe.install(c)
        tb = exe.install(b)
        results: dict[str, bool] = {}
        a.table.bind(UTIL_CLAIM, lambda f: results.update(a=f.is_failure))
        c.table.bind(UTIL_CLAIM, lambda f: results.update(c=f.is_failure))
        self._send(exe, a, tb, UTIL_CLAIM)
        self._send(exe, c, tb, UTIL_CLAIM)
        assert results == {"a": False, "c": True}  # second claimant refused

    def test_event_register_and_notify(self, exe):
        a, b = Recorder("a"), Recorder("b")
        exe.install(a)
        tb = exe.install(b)
        notifications = []
        a.table.bind(UTIL_EVENT_ACKNOWLEDGE,
                     lambda f: notifications.append(bytes(f.payload)))
        self._send(exe, a, tb, UTIL_EVENT_REGISTER)
        assert b.notify_event(b"something happened") == 1
        drive(exe)
        assert notifications == [b"something happened"]

    def test_ddm_enable_quiesce_reset_drive_hooks(self, exe):
        calls = []

        class Hooked(Recorder):
            def on_enable(self):
                calls.append("enable")

            def on_quiesce(self):
                calls.append("quiesce")

            def on_reset(self):
                calls.append("reset")

        a, b = Recorder("a"), Hooked("b")
        exe.install(a)
        tb = exe.install(b)
        self._send(exe, a, tb, EXEC_DDM_ENABLE)
        assert b.state is DeviceState.ENABLED
        self._send(exe, a, tb, EXEC_DDM_QUIESCE)
        assert b.state is DeviceState.QUIESCED
        self._send(exe, a, tb, EXEC_DDM_RESET)
        assert b.state is DeviceState.INITIALISED
        assert calls == ["enable", "quiesce", "reset"]

    def test_abort_resets(self, exe):
        calls = []

        class Hooked(Recorder):
            def on_reset(self):
                calls.append("reset")

        a, b = Recorder("a"), Hooked("b")
        exe.install(a)
        tb = exe.install(b)
        self._send(exe, a, tb, UTIL_ABORT)
        assert calls == ["reset"]

    def test_unhandled_message_gets_failure_reply(self, exe):
        """The fault-tolerant default of paper §3.2."""
        a, b = Recorder("a"), Recorder("b")
        exe.install(a)
        tb = exe.install(b)
        # xfunction 0x0077 is not bound on b (but a listens for the reply).
        replies = []
        a.bind(0x0077, lambda f: replies.append((f.is_reply, f.is_failure)))
        a.send(tb, b"", xfunction=0x0077)
        drive(exe)
        assert replies == [(True, True)]


class TestHelpers:
    def test_reply_echoes_contexts_and_discriminator(self, exe):
        a, b = Recorder("a"), Recorder("b")
        ta, tb = exe.install(a), exe.install(b)
        echoes = []

        def echo(frame):
            if not frame.is_reply:
                b.reply(frame, b"pong")
            return None

        b.bind(0x42, echo)
        a.bind(0x42, lambda f: echoes.append(
            (f.initiator_context, f.transaction_context, f.xfunction)
        ) if f.is_reply else None)
        a.send(tb, b"ping", xfunction=0x42, initiator_context=7,
               transaction_context=9)
        drive(exe)
        assert echoes == [(7, 9, 0x42)]

    def test_functional_listener(self, exe):
        hits = []
        dev = FunctionalListener("fn", handlers={0x5: hits.append})
        other = Recorder()
        exe.install(other)
        tid = exe.install(dev)
        other.send(tid, b"x", xfunction=0x5)
        drive(exe)
        assert len(hits) == 1

    def test_alloc_frame_is_pool_backed(self, exe):
        dev = Recorder()
        exe.install(dev)
        frame = dev.alloc_frame(100, target=dev.tid)
        assert frame.block is not None
        assert frame.payload_size == 100
        exe.frame_free(frame)
