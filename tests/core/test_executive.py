"""The executive: routing, dispatching, proxies, its own device role."""

from __future__ import annotations

import pytest

from repro.core.device import Listener, RETAIN, decode_params
from repro.core.executive import Executive, Route
from repro.core.states import DeviceState
from repro.i2o.errors import AddressingError, I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import (
    EXEC_LCT_NOTIFY,
    EXEC_STATUS_GET,
    EXEC_SYS_ENABLE,
    EXEC_SYS_QUIESCE,
)
from repro.i2o.tid import EXECUTIVE_TID, TID_BROADCAST

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump

REMOTE_TID = 20


class Seen:
    """Snapshot of a delivered frame: the block is recycled (and, under
    the sanitizer, poisoned) after dispatch, so handlers must copy what
    they want to keep rather than retain the Frame itself."""

    def __init__(self, frame: Frame) -> None:
        self.payload = bytes(frame.payload)
        self.is_failure = frame.is_failure


class Sink(Listener):
    def __init__(self, name: str = "sink") -> None:
        super().__init__(name)
        self.got: list[Seen] = []
        self.replies: list[Seen] = []

    def on_plugin(self) -> None:
        self.bind(0x01, self._on_msg)

    def _on_msg(self, frame: Frame) -> None:
        if frame.is_reply:
            self.replies.append(Seen(frame))
        else:
            self.got.append(Seen(frame))


class TestInstallation:
    def test_executive_occupies_tid_zero(self):
        exe = Executive(node=3)
        assert EXECUTIVE_TID in exe.devices()
        assert exe.device(EXECUTIVE_TID).device_class == "executive"

    def test_install_allocates_dynamic_tids(self):
        exe = Executive()
        t1 = exe.install(Sink("a"))
        t2 = exe.install(Sink("b"))
        assert t1 != t2 and t1 >= 16 and t2 >= 16

    def test_find_device_by_name(self):
        exe = Executive()
        dev = Sink("needle")
        exe.install(dev)
        assert exe.find_device("needle") is dev
        with pytest.raises(AddressingError):
            exe.find_device("missing")

    def test_uninstall_releases_tid_and_drops_frames(self):
        exe = Executive()
        a, b = Sink("a"), Sink("b")
        ta, tb = exe.install(a), exe.install(b)
        a.send(tb, b"queued", xfunction=0x01)
        exe._route_outbound()  # frame now queued for b
        exe.uninstall(tb)
        exe.run_until_idle()
        assert b.got == []
        assert b.executive is None
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0

    def test_device_lookup_unknown_tid(self):
        with pytest.raises(AddressingError):
            Executive().device(999)


class TestLocalRouting:
    def test_local_send_and_reply(self):
        exe = Executive()
        a, b = Sink("a"), Sink("b")
        exe.install(a)
        tb = exe.install(b)
        b.bind(0x01, lambda f: b.reply(f, b"pong") if not f.is_reply else None)
        a.send(tb, b"ping", xfunction=0x01)
        exe.run_until_idle()
        assert [bytes(f.payload) for f in a.replies] == [b"pong"]

    def test_unroutable_target_failure_reply(self):
        exe = Executive()
        a = Sink("a")
        exe.install(a)
        a.send(0x500, b"void", xfunction=0x01)
        exe.run_until_idle()
        assert exe.dropped == 1
        assert len(a.replies) == 1 and a.replies[0].is_failure

    def test_dead_letter_with_exhausted_pool_does_not_leak(self):
        """With a one-block pool, the dead-letter path must release the
        dropped frame *before* allocating the failure reply — the old
        order leaked the original when the reply alloc hit an empty
        pool."""
        from repro.mem.pool import BufferPool, OriginalAllocator

        pool = BufferPool(OriginalAllocator(block_size=512, block_count=1))
        exe = Executive(pool=pool)
        a = Sink("a")
        exe.install(a)
        a.send(0x500, b"void", xfunction=0x01)
        exe.run_until_idle()
        assert exe.dropped == 1
        assert len(a.replies) == 1 and a.replies[0].is_failure
        assert pool.in_flight == 0
        pool.check_conservation()

    def test_broadcast_reaches_all_but_initiator(self):
        exe = Executive()
        devices = [Sink(f"s{i}") for i in range(3)]
        for d in devices:
            exe.install(d)
        devices[0].send(TID_BROADCAST, b"all", xfunction=0x01)
        exe.run_until_idle()
        assert devices[0].got == []
        assert [len(d.got) for d in devices[1:]] == [1, 1]

    def test_handler_exception_does_not_kill_executive(self):
        exe = Executive()
        a, b = Sink("a"), Sink("b")
        exe.install(a)
        tb = exe.install(b)

        def boom(frame):
            if not frame.is_reply:
                raise ValueError("application bug")

        b.bind(0x01, boom)
        a.send(tb, b"x", xfunction=0x01)
        exe.run_until_idle()
        assert exe.handler_errors == 1
        assert len(a.replies) == 1 and a.replies[0].is_failure
        exe.pool.check_conservation()

    def test_retain_transfers_frame_ownership(self):
        exe = Executive()
        a, b = Sink("a"), Sink("b")
        exe.install(a)
        tb = exe.install(b)
        kept = []

        def keeper(frame):
            if frame.is_reply:
                return None
            kept.append(frame)
            return RETAIN

        b.bind(0x01, keeper)
        a.send(tb, b"keep me", xfunction=0x01)
        exe.run_until_idle()
        assert exe.pool.in_flight == 1  # the retained frame
        assert bytes(kept[0].payload) == b"keep me"
        exe.frame_free(kept[0])
        exe.pool.check_conservation()

    def test_run_until_idle_detects_message_loops(self):
        exe = Executive()
        a, b = Sink("a"), Sink("b")
        ta, tb = exe.install(a), exe.install(b)
        a.bind(0x02, lambda f: a.send(tb, b"", xfunction=0x02))
        b.bind(0x02, lambda f: b.send(ta, b"", xfunction=0x02))
        a.send(tb, b"", xfunction=0x02)
        with pytest.raises(I2OError, match="exceeded"):
            exe.run_until_idle(max_steps=200)


class TestProxies:
    def test_create_proxy_idempotent(self):
        exe = Executive(node=0)
        p1 = exe.create_proxy(1, REMOTE_TID)
        p2 = exe.create_proxy(1, REMOTE_TID)
        assert p1 == p2
        assert exe.route_for(p1) == Route(node=1, remote_tid=REMOTE_TID)

    def test_proxy_for_local_is_identity(self):
        exe = Executive(node=0)
        tid = exe.install(Sink())
        assert exe.create_proxy(0, tid) == tid

    def test_distinct_remotes_distinct_proxies(self):
        exe = Executive(node=0)
        assert exe.create_proxy(1, 20) != exe.create_proxy(2, 20)
        assert exe.create_proxy(1, 20) != exe.create_proxy(1, 21)

    def test_proxy_with_no_pta_dead_letters(self):
        exe = Executive(node=0)
        a = Sink()
        exe.install(a)
        proxy = exe.create_proxy(1, 20)
        a.send(proxy, b"x", xfunction=0x01)
        exe.run_until_idle()
        assert exe.dropped == 1


class TestExecutiveDevice:
    """The executive's own message set (it is itself an I2O device)."""

    def _ask(self, cluster, function):
        asker = Sink("asker")
        cluster[0].install(asker)
        answers = []
        # Snapshot the payload inside the handler: the frame's block is
        # recycled (and, under the sanitizer, poisoned) after dispatch.
        asker.table.bind(
            function,
            lambda f: answers.append(bytes(f.payload)) if f.is_reply else None,
        )
        proxy = cluster[0].create_proxy(1, EXECUTIVE_TID)
        asker.send(proxy, function=function)
        pump(cluster)
        return answers

    def test_status_get_over_the_wire(self):
        cluster = make_loopback_cluster(2)
        answers = self._ask(cluster, EXEC_STATUS_GET)
        status = decode_params(answers[0])
        assert status["node"] == "1"
        assert status["state"] == "initialised"
        assert_no_leaks(cluster)

    def test_lct_notify_lists_devices(self):
        cluster = make_loopback_cluster(2)
        tid = cluster[1].install(Sink("remote-sink"))
        answers = self._ask(cluster, EXEC_LCT_NOTIFY)
        table = decode_params(answers[0])
        assert table[str(tid)] == "private"
        assert table["0"] == "executive"

    def test_sys_enable_drives_all_devices(self):
        cluster = make_loopback_cluster(2)
        dev = Sink("target")
        cluster[1].install(dev)
        self._ask(cluster, EXEC_SYS_ENABLE)
        assert dev.state is DeviceState.ENABLED
        assert cluster[1].state is DeviceState.ENABLED

    def test_sys_quiesce_after_enable(self):
        cluster = make_loopback_cluster(2)
        dev = Sink("target")
        cluster[1].install(dev)
        self._ask(cluster, EXEC_SYS_ENABLE)
        self._ask(cluster, EXEC_SYS_QUIESCE)
        assert dev.state is DeviceState.QUIESCED


class TestThreadMode:
    def test_start_stop(self):
        exe = Executive()
        a, b = Sink("a"), Sink("b")
        exe.install(a)
        tb = exe.install(b)
        b.bind(0x01, lambda f: b.reply(f) if not f.is_reply else None)
        exe.start(poll_interval=0.001)
        try:
            a.send(tb, b"threaded", xfunction=0x01)
            import time

            deadline = time.monotonic() + 5
            while not a.replies and time.monotonic() < deadline:
                time.sleep(0.001)
            assert a.replies, "no reply within 5 s in thread mode"
        finally:
            exe.stop()

    def test_double_start_rejected(self):
        exe = Executive()
        exe.start()
        try:
            with pytest.raises(I2OError):
                exe.start()
        finally:
            exe.stop()

    def test_stop_without_start_is_noop(self):
        Executive().stop()
