"""Interrupts delivered as I2O messages."""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame


class IrqUser(Listener):
    def __init__(self, name: str = "irq-user") -> None:
        super().__init__(name)
        self.interrupts: list[tuple[int, bytes]] = []

    def on_interrupt(self, irq: int, frame: Frame) -> None:
        self.interrupts.append((irq, bytes(frame.payload)))


@pytest.fixture
def rig():
    exe = Executive(node=0)
    dev = IrqUser()
    exe.install(dev)
    return exe, dev


class TestSoftwareInterrupts:
    def test_registered_device_receives_irq_frame(self, rig):
        exe, dev = rig
        exe.interrupts.register(7, dev.tid)
        assert exe.interrupts.raise_irq(7, b"ctx") == 1
        exe.run_until_idle()
        assert dev.interrupts == [(7, b"ctx")]

    def test_unregistered_irq_goes_nowhere(self, rig):
        exe, dev = rig
        assert exe.interrupts.raise_irq(5) == 0
        exe.run_until_idle()
        assert dev.interrupts == []

    def test_fan_out_to_multiple_listeners(self, rig):
        exe, dev = rig
        second = IrqUser("second")
        exe.install(second)
        exe.interrupts.register(3, dev.tid)
        exe.interrupts.register(3, second.tid)
        assert exe.interrupts.raise_irq(3) == 2
        exe.run_until_idle()
        assert dev.interrupts == [(3, b"")]
        assert second.interrupts == [(3, b"")]

    def test_unregister(self, rig):
        exe, dev = rig
        exe.interrupts.register(3, dev.tid)
        exe.interrupts.unregister(3, dev.tid)
        assert exe.interrupts.raise_irq(3) == 0

    def test_duplicate_registration_delivered_once(self, rig):
        exe, dev = rig
        exe.interrupts.register(3, dev.tid)
        exe.interrupts.register(3, dev.tid)
        assert exe.interrupts.raise_irq(3) == 1

    def test_interrupts_preempt_ordinary_traffic(self, rig):
        """Priority 0: an interrupt raised after data is queued is
        still dispatched first."""
        exe, dev = rig
        order = []
        dev.bind(0x1, lambda f: order.append("data"))
        dev.on_interrupt = lambda irq, f: order.append("irq")  # type: ignore
        frame = exe.frame_alloc(0, target=dev.tid, initiator=dev.tid,
                                xfunction=0x1)
        exe.post_inbound(frame)
        exe.interrupts.register(1, dev.tid)
        exe.interrupts.raise_irq(1)
        exe.run_until_idle()
        assert order == ["irq", "data"]


class TestOsSignalBridge:
    def test_sigusr1_becomes_a_frame(self, rig):
        exe, dev = rig
        exe.interrupts.register(signal.SIGUSR1, dev.tid)
        exe.interrupts.attach_signal(signal.SIGUSR1)
        try:
            os.kill(os.getpid(), signal.SIGUSR1)
            exe.run_until_idle()
        finally:
            exe.interrupts.detach_signal(signal.SIGUSR1)
        assert dev.interrupts == [(signal.SIGUSR1, b"")]

    def test_custom_irq_mapping(self, rig):
        exe, dev = rig
        exe.interrupts.register(99, dev.tid)
        exe.interrupts.attach_signal(signal.SIGUSR2, irq=99)
        try:
            os.kill(os.getpid(), signal.SIGUSR2)
            exe.run_until_idle()
        finally:
            exe.interrupts.detach_signal(signal.SIGUSR2)
        assert dev.interrupts == [(99, b"")]

    def test_detach_restores_previous_handler(self, rig):
        exe, _ = rig
        before = signal.getsignal(signal.SIGUSR1)
        exe.interrupts.attach_signal(signal.SIGUSR1)
        exe.interrupts.detach_signal(signal.SIGUSR1)
        assert signal.getsignal(signal.SIGUSR1) is before
