"""Watchdog: bounding misbehaving handlers (paper §4)."""

from __future__ import annotations

import time

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.core.states import DeviceState
from repro.core.watchdog import HandlerWatchdog, WatchdogTimeout
from repro.i2o.errors import I2OError


class TestGuardAlone:
    def test_fast_handler_passes(self):
        wd = HandlerWatchdog(limit_ns=50_000_000)
        with wd.guard("ok"):
            pass
        assert wd.overruns == 0

    def test_cooperative_overrun_detected(self):
        wd = HandlerWatchdog(limit_ns=1_000)  # 1 us budget
        with pytest.raises(WatchdogTimeout, match="budget"):
            with wd.guard("slow"):
                time.sleep(0.005)
        assert wd.overruns == 1

    def test_preemptive_interrupts_spinning_handler(self):
        wd = HandlerWatchdog(limit_ns=20_000_000, preemptive=True)  # 20 ms
        t0 = time.monotonic()
        with pytest.raises(WatchdogTimeout):
            with wd.guard("spinner"):
                while True:  # would never return cooperatively
                    sum(range(100))
        # It must have been cut off near the budget, not after seconds.
        assert time.monotonic() - t0 < 5.0
        assert wd.overruns == 1

    def test_bad_limit_rejected(self):
        with pytest.raises(I2OError):
            HandlerWatchdog(limit_ns=0)


class Spinner(Listener):
    def __init__(self, name: str = "spin") -> None:
        super().__init__(name)

    def on_plugin(self) -> None:
        self.bind(0x01, self._slow)

    def _slow(self, frame) -> None:
        if not frame.is_reply:
            time.sleep(0.01)  # 10 ms, way over budget


class TestExecutiveIntegration:
    def test_overrunning_device_is_quarantined(self):
        exe = Executive(node=0, watchdog=HandlerWatchdog(limit_ns=1_000_000))
        offender = Spinner()
        victim_tid = exe.install(offender)
        sender = Listener("sender")
        exe.install(sender)
        sender.send(victim_tid, b"", xfunction=0x01)
        sender.send(victim_tid, b"", xfunction=0x01)  # queued behind
        exe.run_until_idle()
        assert offender.state is DeviceState.FAILED
        assert exe.watchdog.overruns == 1  # queue was dropped after the first
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0

    def test_preemptive_mode_interrupts_spin_through_executive(self):
        """A handler that never returns (hard spin, no cooperative
        check-in) must still be cut off when dispatched by the
        *executive*, the device FAILED, and the frames queued behind
        the offender dropped by the quarantine."""

        class HardSpinner(Listener):
            def __init__(self):
                super().__init__("hardspin")
                self.calls = 0

            def on_plugin(self):
                self.bind(0x01, self._spin)

            def _spin(self, frame):
                if frame.is_reply:
                    return
                self.calls += 1
                while True:  # would never return cooperatively
                    sum(range(100))

        exe = Executive(
            node=0,
            watchdog=HandlerWatchdog(limit_ns=20_000_000, preemptive=True),
        )
        offender = HardSpinner()
        victim_tid = exe.install(offender)
        sender = Listener("sender")
        exe.install(sender)
        sender.send(victim_tid, b"", xfunction=0x01)
        sender.send(victim_tid, b"", xfunction=0x01)  # queued behind
        t0 = time.monotonic()
        exe.run_until_idle()
        # Cut off near the 20 ms budget, not hung forever.
        assert time.monotonic() - t0 < 5.0
        assert offender.state is DeviceState.FAILED
        assert offender.calls == 1  # second frame dropped, not dispatched
        assert exe.watchdog.overruns == 1
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0

    def test_healthy_devices_unaffected(self):
        exe = Executive(node=0, watchdog=HandlerWatchdog(limit_ns=10**9))
        dev = Spinner()
        tid = exe.install(dev)
        sender = Listener("sender")
        exe.install(sender)
        sender.send(tid, b"", xfunction=0x01)
        exe.run_until_idle()
        assert dev.state is not DeviceState.FAILED


class TestSimPlaneWatchdog:
    """Paper §4: the watchdog 'can be implemented making use of the
    I2O core timer facilities' — on the simulation plane the budget is
    checked against the handler's *modelled* cost."""

    def _build(self, limit_ns: int, handler_cost_ns: int):
        from repro.core.probes import CostModel, Probes

        exe = Executive(
            node=0,
            probes=Probes("model", model=CostModel(
                {"application": handler_cost_ns}
            )),
            watchdog=HandlerWatchdog(limit_ns=limit_ns),
        )

        class Dev(Listener):
            def on_plugin(self):
                self.bind(0x01, lambda f: None)

        dev = Dev("modelled")
        tid = exe.install(dev)
        frame = exe.frame_alloc(0, target=tid, initiator=tid, xfunction=0x01)
        exe.post_inbound(frame)
        exe.run_until_idle()
        return exe, dev

    def test_modelled_overrun_quarantines(self):
        exe, dev = self._build(limit_ns=1_000, handler_cost_ns=5_000)
        assert dev.state is DeviceState.FAILED
        assert exe.watchdog.overruns == 1
        exe.pool.check_conservation()

    def test_modelled_within_budget_survives(self):
        exe, dev = self._build(limit_ns=10_000, handler_cost_ns=5_000)
        assert dev.state is not DeviceState.FAILED
        assert exe.watchdog.overruns == 0
