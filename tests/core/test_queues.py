"""The messaging instance."""

from __future__ import annotations

import threading

from repro.core.queues import MessagingInstance
from repro.i2o.frame import Frame

TARGET_TID = 1
INITIATOR_TID = 2


def frame(tag: int = 0) -> Frame:
    return Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                       transaction_context=tag)


def test_starts_idle():
    msgi = MessagingInstance()
    assert msgi.idle
    assert msgi.take_inbound() is None
    assert msgi.take_outbound() is None


def test_inbound_fifo():
    msgi = MessagingInstance()
    for tag in range(3):
        msgi.post_inbound(frame(tag))
    assert msgi.inbound_depth == 3
    tags = [msgi.take_inbound().transaction_context for _ in range(3)]
    assert tags == [0, 1, 2]


def test_outbound_independent_of_inbound():
    msgi = MessagingInstance()
    msgi.post_outbound(frame(9))
    assert msgi.take_inbound() is None
    assert msgi.take_outbound().transaction_context == 9


def test_counters():
    msgi = MessagingInstance()
    msgi.post_inbound(frame())
    msgi.post_outbound(frame())
    msgi.post_outbound(frame())
    assert msgi.posted_inbound == 1
    assert msgi.posted_outbound == 2


def test_on_work_callback_fires_for_both_queues():
    calls = []
    msgi = MessagingInstance(on_work=lambda: calls.append(1))
    msgi.post_inbound(frame())
    msgi.post_outbound(frame())
    assert len(calls) == 2


def test_wait_for_work_returns_immediately_if_pending():
    msgi = MessagingInstance()
    msgi.post_inbound(frame())
    assert msgi.wait_for_work(timeout=0) is True


def test_wait_for_work_times_out():
    assert MessagingInstance().wait_for_work(timeout=0.01) is False


def test_wait_for_work_wakes_on_cross_thread_post():
    msgi = MessagingInstance()
    results = []

    def waiter():
        results.append(msgi.wait_for_work(timeout=5))

    t = threading.Thread(target=waiter)
    t.start()
    msgi.post_inbound(frame())
    t.join(timeout=5)
    assert results == [True]
