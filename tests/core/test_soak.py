"""Property-based soak: reliable delivery over a hostile wire.

Each case derives a random-but-reproducible :class:`FaultPlan` from a
single integer seed (drop + duplicate + corrupt + delay, all active at
once) and pushes a message stream through a pair of
:class:`ReliableEndpoint` devices in ordered mode.  The property is
the endpoint's whole contract at once:

* **exactly once** — no loss (retransmission), no duplicates (dedup);
* **in order** — the holdback queue repairs wire reordering;
* **intact** — the per-message CRC discards corrupted copies rather
  than delivering garbage.

The full run (``-m soak``) is 50+ hypothesis examples of 1 000
messages and shrinks any failure down to a minimal seed; a fixed-seed
smoke version of the same property stays in the default suite.
"""

from __future__ import annotations

import pytest

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.executive import Executive
from repro.core.reliable import ReliableEndpoint
from repro.sim.rng import RngStreams
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def derive_plan(seed: int) -> FaultPlan:
    """A seed-determined combination of every fault at once.

    Rates are capped at 0.4 so delivery stays *possible*: with data
    and ack each surviving a draw, a retransmission round succeeds
    with probability >= 0.36 and the run terminates quickly.
    """
    rng = RngStreams(seed).stream("soak/plan")
    return FaultPlan(
        drop_rate=round(float(rng.random()) * 0.4, 3),
        duplicate_rate=round(float(rng.random()) * 0.4, 3),
        corrupt_rate=round(float(rng.random()) * 0.4, 3),
        delay_rate=round(float(rng.random()) * 0.4, 3),
    )


def run_soak(seed: int, messages: int, tick_budget: int = 3_000):
    plan = derive_plan(seed)
    network = LoopbackNetwork()
    clocks, exes, eps = {}, {}, {}
    for node in range(2):
        clock = _ManualClock()
        exe = Executive(node=node, clock=clock)
        PeerTransportAgent.attach(exe).register(
            FaultyLoopbackTransport(network, plan, seed=seed * 2 + node),
            default=True,
        )
        ep = ReliableEndpoint(
            retransmit_ns=1_000, max_retries=500, ordered=True
        )
        exe.install(ep)
        clocks[node], exes[node], eps[node] = clock, exe, ep

    received: list[bytes] = []
    eps[1].consumer = lambda src, data: received.append(bytes(data))
    sent = [f"m{i:05d}".encode() for i in range(messages)]
    peer = exes[0].create_proxy(1, eps[1].tid)
    for payload in sent:
        eps[0].send_reliable(peer, payload)

    done_at = None
    for tick in range(tick_budget):
        for clock in clocks.values():
            clock.t = tick * 1_000
        # Drain completely between ticks: one tick = one retransmit
        # deadline, and every staged/delayed frame gets processed.
        for _ in range(1_000_000):
            if not any(exe.step() for exe in exes.values()):
                break
        if eps[0].in_flight == 0 and len(received) >= len(sent):
            if done_at is None:
                done_at = tick
            # A few extra rounds drain straggling duplicates/acks.
            if tick - done_at >= 5:
                break
    return sent, received, eps, exes, plan


def check_property(seed: int, messages: int) -> None:
    sent, received, eps, exes, plan = run_soak(seed, messages)
    context = f"seed={seed} plan={plan}"
    assert eps[0].in_flight == 0, f"undelivered messages: {context}"
    assert eps[0].failures == 0, f"gave up retransmitting: {context}"
    assert received == sent, (
        f"exactly-once-in-order violated: {context} "
        f"(got {len(received)}/{len(sent)})"
    )
    assert eps[1].held_back == 0, f"holdback not drained: {context}"
    for exe in exes.values():
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0, f"leaked blocks: {context}"


class TestSoakSmoke:
    """Fixed seeds, small streams: the tier-1 sentinel for the property."""

    @pytest.mark.parametrize("seed", [1, 2, 7, 13, 42])
    def test_exactly_once_in_order(self, seed):
        check_property(seed, messages=150)


@pytest.mark.soak
class TestSoak:
    """The nightly battery: >= 50 randomized seeds, 1 000 messages each.

    Hypothesis shrinks any failure to a minimal seed and prints it;
    re-run with ``check_property(<seed>, 1000)`` to replay exactly.
    """

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_exactly_once_in_order_randomized(self, seed):
        check_property(seed, messages=1_000)
