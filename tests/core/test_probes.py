"""Time probes in all three modes."""

from __future__ import annotations

import pytest

from repro.core.probes import (
    CostModel,
    OPTIMISED_ALLOC_COSTS_NS,
    PAPER_TABLE1_COSTS_NS,
    Probes,
)
from repro.i2o.errors import I2OError


class TestOffMode:
    def test_records_nothing(self):
        probes = Probes("off")
        with probes.measure("stage"):
            pass
        assert probes.stage_names() == []
        with pytest.raises(I2OError):
            probes.median_us("stage")


class TestWallMode:
    def test_durations_positive_and_counted(self):
        probes = Probes("wall")
        for _ in range(5):
            with probes.measure("work"):
                sum(range(1000))
        assert probes.count("work") == 5
        assert probes.median_us("work") > 0
        assert probes.mean_us("work") > 0

    def test_nested_inner_contributes_to_outer(self):
        probes = Probes("wall")
        with probes.measure("outer"):
            with probes.measure("inner"):
                sum(range(20_000))
        assert probes.samples("outer")[0] >= probes.samples("inner")[0]

    def test_stage_filter(self):
        probes = Probes("wall", stages=("kept",))
        with probes.measure("kept"):
            pass
        with probes.measure("dropped"):
            pass
        assert probes.stage_names() == ["kept"]

    def test_reset(self):
        probes = Probes("wall")
        with probes.measure("x"):
            pass
        probes.reset()
        assert probes.count("x") == 0

    def test_reset_clears_counters(self):
        # Regression: reset() used to leave stale event counters behind.
        probes = Probes("wall")
        probes.bump("events", 3)
        probes.reset()
        assert probes.counters == {}
        assert probes.bump("events") == 1


class TestModelMode:
    def test_imposes_exact_costs(self):
        probes = Probes("model", model=CostModel({"a": 100, "b": 50}))
        with probes.measure("a"):
            pass
        with probes.measure("b"):
            pass
        assert probes.samples("a")[0] == 100
        assert probes.samples("b")[0] == 50
        assert probes.drain_accrued_ns() == 150
        assert probes.drain_accrued_ns() == 0

    def test_nested_costs_are_inclusive(self):
        probes = Probes("model", model=CostModel({"outer": 10, "inner": 90}))
        with probes.measure("outer"):
            with probes.measure("inner"):
                pass
        assert probes.samples("inner")[0] == 90
        assert probes.samples("outer")[0] == 100  # inclusive, like rdtsc pairs
        assert probes.accrued_ns == 100

    def test_unknown_stage_costs_default(self):
        probes = Probes("model", model=CostModel({"a": 5}, default_ns=7))
        with probes.measure("other"):
            pass
        assert probes.samples("other")[0] == 7

    def test_charge_records_and_accrues(self):
        probes = Probes("model", model=CostModel({}))
        probes.charge("fifo", 123)
        assert probes.samples("fifo")[0] == 123
        assert probes.accrued_ns == 123

    def test_charge_ignored_outside_model_mode(self):
        probes = Probes("wall")
        probes.charge("fifo", 123)
        assert probes.count("fifo") == 0

    def test_default_model_is_paper_calibration(self):
        probes = Probes("model")
        assert probes.model is not None
        assert probes.model.cost("frame_alloc") == 2180


class TestCalibration:
    """The cost models must match the paper's table 1 by construction."""

    def test_paper_model_inclusive_stage_values(self):
        costs = PAPER_TABLE1_COSTS_NS
        assert costs["pt_processing"] + costs["frame_alloc"] == 2920
        assert costs["postprocess"] + costs["frame_free"] == 2490
        assert costs["application"] + costs["frame_alloc"] == 3600

    def test_paper_model_sum_matches_table(self):
        costs = PAPER_TABLE1_COSTS_NS
        total = (
            costs["pt_processing"] + costs["frame_alloc"]  # PT incl alloc
            + costs["demultiplex"] + costs["upcall"]
            + costs["application"] + costs["frame_alloc"]  # app incl send
            + costs["postprocess"] + costs["frame_free"]
        )
        assert total == 9700  # the paper's rows add to 9.70 us

    def test_optimised_model_cheaper_by_about_4us(self):
        base = sum(PAPER_TABLE1_COSTS_NS.values()) + PAPER_TABLE1_COSTS_NS[
            "frame_alloc"
        ]
        opt = sum(OPTIMISED_ALLOC_COSTS_NS.values()) + OPTIMISED_ALLOC_COSTS_NS[
            "frame_alloc"
        ]
        saving_us = (base - opt) / 1000
        assert 3.5 <= saving_us <= 5.5

    def test_bad_mode_rejected(self):
        with pytest.raises(I2OError):
            Probes("banana")


class TestJitter:
    def test_zero_jitter_is_exact(self):
        probes = Probes("model", model=CostModel({"a": 1000}))
        for _ in range(10):
            with probes.measure("a"):
                pass
        assert set(probes.samples("a")) == {1000}

    def test_jitter_disperses_around_mean(self):
        model = CostModel({"a": 1000}, jitter_frac=0.2, jitter_seed=3)
        probes = Probes("model", model=model)
        for _ in range(500):
            with probes.measure("a"):
                pass
        samples = probes.samples("a")
        assert len(set(samples.tolist())) > 100  # genuinely dispersed
        assert abs(float(samples.mean()) - 1000) < 50
        assert 100 < float(samples.std()) < 350

    def test_jitter_deterministic_per_seed(self):
        def run(seed):
            model = CostModel({"a": 1000}, jitter_frac=0.2, jitter_seed=seed)
            probes = Probes("model", model=model)
            for _ in range(20):
                with probes.measure("a"):
                    pass
            return probes.samples("a").tolist()

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_jitter_never_negative(self):
        model = CostModel({"a": 10}, jitter_frac=5.0)  # wild dispersion
        probes = Probes("model", model=model)
        for _ in range(200):
            with probes.measure("a"):
                pass
        assert int(probes.samples("a").min()) >= 0
