"""Pool invariants across both allocator schemes."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2o.frame import MAX_FRAME_SIZE
from repro.mem.pool import (
    BufferPool,
    OriginalAllocator,
    PoolError,
    PoolExhausted,
    TableAllocator,
)

ALLOCATORS = [
    lambda: OriginalAllocator(block_size=4096, block_count=32),
    lambda: TableAllocator(slab_blocks=8),
]


@pytest.mark.parametrize("make", ALLOCATORS, ids=["original", "table"])
class TestCommonBehaviour:
    def test_alloc_free_cycle(self, make):
        pool = BufferPool(make())
        block = pool.alloc(1000)
        assert block.capacity >= 1000
        pool.free(block)
        pool.check_conservation()
        assert pool.in_flight == 0

    def test_no_block_loaned_twice(self, make):
        pool = BufferPool(make())
        blocks = [pool.alloc(512) for _ in range(20)]
        assert len({id(b) for b in blocks}) == 20
        assert len({b.index for b in blocks}) == 20
        for b in blocks:
            pool.free(b)

    def test_rejects_nonpositive(self, make):
        pool = BufferPool(make())
        with pytest.raises(PoolError):
            pool.alloc(0)
        with pytest.raises(PoolError):
            pool.alloc(-5)

    def test_rejects_above_256k(self, make):
        pool = BufferPool(make())
        with pytest.raises(PoolError, match="SGL"):
            pool.alloc(MAX_FRAME_SIZE + 1)

    def test_stats_track_allocs_and_frees(self, make):
        pool = BufferPool(make())
        blocks = [pool.alloc(100) for _ in range(5)]
        for b in blocks[:3]:
            pool.free(b)
        assert pool.stats.allocs == 5
        assert pool.stats.frees == 3
        assert pool.in_flight == 2
        assert pool.stats.high_watermark == 5
        for b in blocks[3:]:
            pool.free(b)

    def test_writes_to_one_block_do_not_leak_into_another(self, make):
        pool = BufferPool(make())
        a = pool.alloc(64)
        b = pool.alloc(64)
        a.memory[:4] = b"AAAA"
        b.memory[:4] = b"BBBB"
        assert bytes(a.memory[:4]) == b"AAAA"
        pool.free(a)
        pool.free(b)

    def test_concurrent_alloc_free(self, make):
        """The allocator lock must survive a multithreaded hammer."""
        pool = BufferPool(make())
        errors: list[Exception] = []

        def worker() -> None:
            try:
                for _ in range(300):
                    block = pool.alloc(128)
                    block.memory[0] = 1
                    pool.free(block)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        pool.check_conservation()
        assert pool.in_flight == 0

    @given(ops=st.lists(
        st.tuples(st.booleans(), st.integers(1, 4000)), min_size=1, max_size=200
    ))
    @settings(max_examples=50, deadline=None)
    def test_property_conservation(self, make, ops):
        pool = BufferPool(make())
        held = []
        for do_alloc, size in ops:
            if do_alloc:
                try:
                    held.append(pool.alloc(size))
                except PoolExhausted:
                    pass
            elif held:
                pool.free(held.pop())
            pool.check_conservation()
            assert pool.in_flight == len(held)
        for block in held:
            pool.free(block)
        pool.check_conservation()


class TestOriginalAllocator:
    def test_exhaustion_raises_cleanly(self):
        alloc = OriginalAllocator(block_size=256, block_count=3)
        blocks = [alloc.alloc(100) for _ in range(3)]
        with pytest.raises(PoolExhausted):
            alloc.alloc(100)
        assert alloc.stats.failed_allocs == 1
        for b in blocks:
            b.release()
        alloc.alloc(100).release()  # recovered

    def test_request_larger_than_block_size(self):
        alloc = OriginalAllocator(block_size=256, block_count=3)
        with pytest.raises(PoolExhausted):
            alloc.alloc(257)

    def test_free_blocks_counter(self):
        alloc = OriginalAllocator(block_size=128, block_count=4)
        assert alloc.free_blocks == 4
        block = alloc.alloc(10)
        assert alloc.free_blocks == 3
        block.release()
        assert alloc.free_blocks == 4

    def test_first_fit_from_zero(self):
        alloc = OriginalAllocator(block_size=128, block_count=4)
        a = alloc.alloc(10)
        b = alloc.alloc(10)
        slot = a.index
        a.release()
        c = alloc.alloc(10)
        assert c.index == slot  # first free slot is reused
        b.release()
        c.release()

    def test_validation(self):
        with pytest.raises(PoolError):
            OriginalAllocator(block_size=0)
        with pytest.raises(PoolError):
            OriginalAllocator(block_count=0)


class TestTableAllocator:
    def test_grows_on_demand(self):
        alloc = TableAllocator(slab_blocks=2)
        assert alloc.stats.slabs_created == 0
        blocks = [alloc.alloc(100) for _ in range(5)]
        assert alloc.stats.slabs_created == 3  # 2 blocks per slab
        for b in blocks:
            b.release()

    def test_size_class_rounding(self):
        alloc = TableAllocator()
        assert alloc.alloc(1).capacity == 64  # class floor
        assert alloc.alloc(65).capacity == 128
        assert alloc.alloc(128).capacity == 128
        assert alloc.alloc(129).capacity == 256

    def test_classes_do_not_mix(self):
        alloc = TableAllocator(slab_blocks=2)
        small = alloc.alloc(64)
        big = alloc.alloc(8192)
        small.release()
        big.release()
        assert alloc.alloc(8192).capacity == 8192

    def test_budget_exhaustion(self):
        alloc = TableAllocator(slab_blocks=1, max_bytes=128)
        block = alloc.alloc(64)
        with pytest.raises(PoolExhausted, match="budget"):
            alloc.alloc(8192)
        block.release()

    def test_large_class_slabs_are_bounded(self):
        alloc = TableAllocator(slab_blocks=32)
        block = alloc.alloc(256 * 1024)
        # A 256 KB class must not reserve 32 x 256 KB at once.
        assert alloc.bytes_reserved <= 8 * 1024 * 1024
        block.release()

    def test_validation(self):
        with pytest.raises(PoolError):
            TableAllocator(slab_blocks=0)
