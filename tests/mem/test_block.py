"""Pool block refcount semantics."""

from __future__ import annotations

import pytest

from repro.mem.block import BlockStateError
from repro.mem.pool import TableAllocator


@pytest.fixture
def allocator():
    return TableAllocator(slab_blocks=4)


def test_fresh_block_has_one_reference(allocator):
    block = allocator.alloc(100)
    assert block.refcount == 1
    assert block.in_use
    block.release()


def test_release_recycles_at_zero(allocator):
    block = allocator.alloc(100)
    assert block.release() is True
    assert not block.in_use  # post-release state probe  # repro: noqa OWN001
    assert allocator.in_flight == 0


def test_addref_delays_recycle(allocator):
    block = allocator.alloc(100)
    block.addref()
    assert block.release() is False  # one reference remains
    assert block.in_use
    assert block.release() is True


def test_double_free_raises(allocator):
    block = allocator.alloc(100)
    block.release()
    with pytest.raises(BlockStateError, match="double free"):
        block.release()


def test_addref_on_free_block_raises(allocator):
    block = allocator.alloc(100)
    block.release()
    with pytest.raises(BlockStateError):
        block.addref()


def test_capacity_covers_request(allocator):
    block = allocator.alloc(100)
    assert block.capacity >= 100
    assert len(block.memory) == block.capacity
    block.release()


def test_memory_is_writable(allocator):
    block = allocator.alloc(64)
    block.memory[0] = 0xAB
    assert block.memory[0] == 0xAB
    block.release()


def test_recycled_block_identity_reused(allocator):
    block = allocator.alloc(100)
    index = block.index
    block.release()
    again = allocator.alloc(100)
    assert again.index == index  # LIFO free list reuses the hot block
    again.release()
