"""Function-code classification."""

from __future__ import annotations

from repro.i2o.function_codes import (
    EXEC_STATUS_GET,
    EXEC_SYS_ENABLE,
    PRIVATE,
    UTIL_NOP,
    UTIL_PARAMS_GET,
    function_name,
    is_executive,
    is_private,
    is_utility,
)


def test_utility_range():
    assert is_utility(UTIL_NOP)
    assert is_utility(UTIL_PARAMS_GET)
    assert not is_utility(EXEC_STATUS_GET)
    assert not is_utility(PRIVATE)


def test_executive_range():
    assert is_executive(EXEC_STATUS_GET)
    assert is_executive(EXEC_SYS_ENABLE)
    assert not is_executive(UTIL_NOP)
    assert not is_executive(PRIVATE)


def test_private():
    assert is_private(PRIVATE)
    assert not is_private(UTIL_NOP)


def test_function_name_known():
    assert function_name(UTIL_NOP) == "UTIL_NOP"
    assert function_name(PRIVATE) == "PRIVATE"
    assert function_name(EXEC_SYS_ENABLE) == "EXEC_SYS_ENABLE"


def test_function_name_unknown_is_hex():
    assert function_name(0x42) == "0x42"


def test_ranges_disjoint():
    for code in range(0x100):
        assert is_utility(code) + is_executive(code) + is_private(code) <= 1
