"""Frame codec: layout, validation, zero-copy semantics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2o.errors import FrameFormatError
from repro.i2o.frame import (
    FLAG_FAIL,
    FLAG_LAST,
    FLAG_MORE,
    FLAG_REPLY,
    HEADER_SIZE,
    I2O_VERSION,
    MAX_PAYLOAD_SIZE,
    NUM_PRIORITIES,
    Frame,
)
from repro.i2o.function_codes import PRIVATE, UTIL_NOP

TARGET_TID = 5
INITIATOR_TID = 17
WIDE_TARGET_TID = 0xABC
WIDE_INITIATOR_TID = 0x123
OUT_OF_RANGE_TID = 0x1000  # one past the 12-bit TiD space


def build(**overrides):
    kwargs = dict(target=TARGET_TID, initiator=INITIATOR_TID, payload=b"hello")
    kwargs.update(overrides)
    return Frame.build(**kwargs)


class TestBuild:
    def test_header_size_is_32(self):
        assert HEADER_SIZE == 32

    def test_defaults(self):
        frame = build()
        assert frame.version == I2O_VERSION
        assert frame.function == PRIVATE
        assert frame.target == TARGET_TID
        assert frame.initiator == INITIATOR_TID
        assert frame.payload_size == 5
        assert bytes(frame.payload) == b"hello"
        assert frame.priority == 3
        assert frame.flags == 0
        assert frame.total_size == HEADER_SIZE + 5

    def test_all_fields_round_trip(self):
        frame = Frame.build(
            target=WIDE_TARGET_TID,
            initiator=WIDE_INITIATOR_TID,
            function=UTIL_NOP,
            payload=b"x" * 100,
            priority=6,
            flags=FLAG_REPLY | FLAG_FAIL,
            organization=0xCE12,
            xfunction=0x4242,
            initiator_context=2**60,
            transaction_context=2**63 + 5,
        )
        assert frame.target == WIDE_TARGET_TID
        assert frame.initiator == WIDE_INITIATOR_TID
        assert frame.function == UTIL_NOP
        assert frame.priority == 6
        assert frame.is_reply and frame.is_failure
        assert frame.organization == 0xCE12
        assert frame.xfunction == 0x4242
        assert frame.initiator_context == 2**60
        assert frame.transaction_context == 2**63 + 5

    def test_empty_payload(self):
        frame = build(payload=b"")
        assert frame.payload_size == 0
        assert frame.total_size == HEADER_SIZE

    def test_oversized_payload_rejected(self):
        with pytest.raises(FrameFormatError, match="SGL"):
            Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                        payload=b"x" * (MAX_PAYLOAD_SIZE + 1))

    def test_bad_tid_rejected(self):
        with pytest.raises(FrameFormatError):
            build(target=OUT_OF_RANGE_TID)
        with pytest.raises(FrameFormatError):
            build(initiator=-1)

    def test_bad_priority_rejected(self):
        with pytest.raises(FrameFormatError):
            build(priority=NUM_PRIORITIES)

    def test_unknown_flags_rejected(self):
        with pytest.raises(FrameFormatError):
            build(flags=0x80)

    def test_payload_must_fit_supplied_buffer(self):
        with pytest.raises(FrameFormatError):
            Frame.build(
                target=TARGET_TID, initiator=INITIATOR_TID, payload=b"x" * 50,
                buffer=bytearray(HEADER_SIZE + 10),
            )

    def test_buffer_too_small_for_header(self):
        with pytest.raises(FrameFormatError):
            Frame(bytearray(HEADER_SIZE - 1))

    def test_readonly_buffer_rejected(self):
        with pytest.raises(FrameFormatError):
            Frame(memoryview(bytearray(64)).toreadonly())


class TestWireRoundTrip:
    def test_tobytes_parse_identity(self):
        frame = build(payload=b"payload bytes", xfunction=0x77)
        parsed = Frame.parse(frame.tobytes())
        assert parsed.same_message(frame)

    def test_parse_validates(self):
        data = bytearray(build().tobytes())
        data[0] = 0x99  # bad version
        with pytest.raises(FrameFormatError):
            Frame.parse(data)

    def test_parse_rejects_overrun_declared_size(self):
        data = bytearray(build(payload=b"abc").tobytes())
        data[8:12] = (10_000).to_bytes(4, "little")
        with pytest.raises(FrameFormatError):
            Frame.parse(data)

    @given(
        target=st.integers(0, 0xFFF),
        initiator=st.integers(0, 0xFFF),
        function=st.sampled_from([PRIVATE, UTIL_NOP, 0xA0]),
        xfunction=st.integers(0, 0xFFFF),
        priority=st.integers(0, 6),
        flags=st.sampled_from([0, FLAG_REPLY, FLAG_MORE, FLAG_LAST,
                               FLAG_REPLY | FLAG_FAIL]),
        organization=st.integers(0, 0xFFFF),
        ictx=st.integers(0, 2**64 - 1),
        tctx=st.integers(0, 2**64 - 1),
        payload=st.binary(max_size=512),
    )
    @settings(max_examples=120, deadline=None)
    def test_property_codec_round_trip(
        self, target, initiator, function, xfunction, priority, flags,
        organization, ictx, tctx, payload,
    ):
        frame = Frame.build(
            target=target, initiator=initiator, function=function,
            xfunction=xfunction, priority=priority, flags=flags,
            organization=organization, initiator_context=ictx,
            transaction_context=tctx, payload=payload,
        )
        parsed = Frame.parse(frame.tobytes())
        assert parsed.target == target
        assert parsed.initiator == initiator
        assert parsed.function == function
        assert parsed.priority == priority
        assert parsed.flags == flags
        assert parsed.organization == organization
        assert parsed.initiator_context == ictx
        assert parsed.transaction_context == tctx
        assert bytes(parsed.payload) == payload
        if function == PRIVATE:
            assert parsed.xfunction == xfunction


class TestZeroCopy:
    def test_payload_is_view_not_copy(self):
        backing = bytearray(HEADER_SIZE + 4)
        frame = Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                            payload=b"abcd", buffer=backing)
        frame.payload[0] = ord("Z")
        assert backing[HEADER_SIZE] == ord("Z")

    def test_mutating_target_in_place(self):
        frame = build()
        frame.target = 0x200
        assert frame.target == 0x200
        assert Frame.parse(frame.tobytes()).target == 0x200

    def test_setters_validate(self):
        frame = build()
        with pytest.raises(FrameFormatError):
            frame.target = 0x1001
        with pytest.raises(FrameFormatError):
            frame.priority = 7
        with pytest.raises(FrameFormatError):
            frame.flags = 0xF0

    def test_context_setters_mask_to_64_bits(self):
        frame = build()
        frame.initiator_context = 2**64 + 3
        assert frame.initiator_context == 3
