"""Scatter-gather lists, fragmentation and reassembly."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2o.errors import SGLError
from repro.i2o.frame import FLAG_LAST, FLAG_MORE, Frame
from repro.i2o.sgl import Fragmenter, Reassembler, ScatterGatherList

TARGET_TID = 1
INITIATOR_TID = 2
OTHER_INITIATOR_TID = 3


class TestScatterGatherList:
    def test_gather_preserves_order(self):
        sgl = ScatterGatherList([b"ab", b"cd", b"ef"])
        assert sgl.tobytes() == b"abcdef"
        assert len(sgl) == 6
        assert sgl.segment_count == 3

    def test_empty_segments_skipped(self):
        sgl = ScatterGatherList([b"", b"x", b""])
        assert sgl.segment_count == 1
        assert sgl.tobytes() == b"x"

    def test_write_into_destination(self):
        sgl = ScatterGatherList([b"hello ", b"world"])
        dest = bytearray(20)
        assert sgl.write_into(dest) == 11
        assert bytes(dest[:11]) == b"hello world"

    def test_write_into_too_small_raises(self):
        sgl = ScatterGatherList([b"hello"])
        with pytest.raises(SGLError):
            sgl.write_into(bytearray(3))

    def test_chunks_reslice_across_segments(self):
        sgl = ScatterGatherList([b"abc", b"defg", b"h"])
        chunks = [bytes(c) for c in sgl.chunks(3)]
        assert b"".join(chunks) == b"abcdefgh"
        assert all(len(c) <= 3 for c in chunks)

    def test_chunks_zero_copy_views(self):
        backing = bytearray(b"abcdef")
        sgl = ScatterGatherList([backing])
        chunk = next(sgl.chunks(6))
        chunk[0] = ord("Z")
        assert backing[0] == ord("Z")

    def test_bad_chunk_size(self):
        with pytest.raises(SGLError):
            list(ScatterGatherList([b"x"]).chunks(0))

    def test_accepts_numpy_like_buffers(self):
        import numpy as np

        arr = np.arange(4, dtype=np.uint32)
        sgl = ScatterGatherList([arr])
        assert len(sgl) == 16

    @given(st.lists(st.binary(max_size=64), max_size=10),
           st.integers(1, 100))
    @settings(max_examples=80, deadline=None)
    def test_property_chunks_concatenate_to_whole(self, segments, chunk):
        sgl = ScatterGatherList(segments)
        assert b"".join(bytes(c) for c in sgl.chunks(chunk)) == b"".join(segments)


class TestFragmenter:
    def test_small_payload_single_frame_flag_last(self):
        frames = Fragmenter(max_fragment=100).fragment(
            b"small", target=TARGET_TID, initiator=INITIATOR_TID, xfunction=9
        )
        assert len(frames) == 1
        assert frames[0].flags == FLAG_LAST
        assert bytes(frames[0].payload) == b"small"

    def test_large_payload_chains(self):
        payload = bytes(range(256)) * 4  # 1024 B
        frames = Fragmenter(max_fragment=300).fragment(
            payload, target=TARGET_TID, initiator=INITIATOR_TID
        )
        assert len(frames) == 4
        assert all(f.flags == FLAG_MORE for f in frames[:-1])
        assert frames[-1].flags == FLAG_LAST
        assert all(
            f.transaction_context == frames[0].transaction_context for f in frames
        )
        assert [f.initiator_context for f in frames] == [0, 1, 2, 3]

    def test_empty_payload_still_one_frame(self):
        frames = Fragmenter().fragment(b"", target=TARGET_TID, initiator=INITIATOR_TID)
        assert len(frames) == 1
        assert frames[0].flags == FLAG_LAST
        assert frames[0].payload_size == 0

    def test_distinct_transactions(self):
        frag = Fragmenter(max_fragment=10)
        a = frag.fragment(b"x" * 20, target=TARGET_TID, initiator=INITIATOR_TID)
        b = frag.fragment(b"y" * 20, target=TARGET_TID, initiator=INITIATOR_TID)
        assert a[0].transaction_context != b[0].transaction_context

    def test_bad_max_fragment(self):
        with pytest.raises(SGLError):
            Fragmenter(max_fragment=0)


class TestReassembler:
    def _chain(self, payload, max_fragment=64, initiator=INITIATOR_TID):
        return Fragmenter(max_fragment=max_fragment).fragment(
            payload, target=TARGET_TID, initiator=initiator
        )

    def test_round_trip(self):
        payload = bytes(range(256)) * 3
        reasm = Reassembler()
        results = [reasm.add(f) for f in self._chain(payload)]
        assert results[-1] == payload
        assert all(r is None for r in results[:-1])
        assert reasm.pending_chains == 0

    def test_interleaved_chains_by_initiator(self):
        pa, pb = b"A" * 200, b"B" * 150
        chain_a = self._chain(pa, initiator=INITIATOR_TID)
        chain_b = self._chain(pb, initiator=OTHER_INITIATOR_TID)
        reasm = Reassembler()
        done = []
        for fa, fb in zip(chain_a, chain_b):
            for f in (fa, fb):
                out = reasm.add(f)
                if out is not None:
                    done.append(out)
        for f in chain_a[len(chain_b):] + chain_b[len(chain_a):]:
            out = reasm.add(f)
            if out is not None:
                done.append(out)
        assert sorted(done, key=len) == [pb, pa]

    def test_out_of_order_raises(self):
        frames = self._chain(b"z" * 200)
        reasm = Reassembler()
        reasm.add(frames[0])
        with pytest.raises(SGLError, match="out of order"):
            reasm.add(frames[2])

    def test_chain_starting_midway_raises(self):
        frames = self._chain(b"z" * 200)
        with pytest.raises(SGLError, match="began at fragment"):
            Reassembler().add(frames[1])

    def test_pending_limit(self):
        reasm = Reassembler(max_pending=1)
        frag = Fragmenter(max_fragment=4)
        c1 = frag.fragment(b"x" * 10, target=TARGET_TID, initiator=INITIATOR_TID)
        c2 = frag.fragment(b"y" * 10, target=TARGET_TID,
                           initiator=OTHER_INITIATOR_TID)
        reasm.add(c1[0])
        with pytest.raises(SGLError, match="too many pending"):
            reasm.add(c2[0])

    def test_frame_without_more_or_last_rejected(self):
        frame = Frame.build(target=TARGET_TID, initiator=INITIATOR_TID, payload=b"x",
                            transaction_context=5)
        with pytest.raises(SGLError, match="neither MORE nor LAST"):
            Reassembler().add(frame)

    @given(st.binary(min_size=0, max_size=5000), st.integers(1, 512))
    @settings(max_examples=60, deadline=None)
    def test_property_fragment_reassemble_identity(self, payload, max_frag):
        frames = Fragmenter(max_fragment=max_frag).fragment(
            payload, target=TARGET_TID, initiator=INITIATOR_TID
        )
        reasm = Reassembler()
        out = None
        for frame in frames:
            out = reasm.add(frame)
        assert out == payload
