"""SGL chaining with pool-backed frames (the production path)."""

from __future__ import annotations

from repro.core.executive import Executive
from repro.i2o.frame import Frame
from repro.i2o.sgl import Fragmenter, Reassembler

TARGET_TID = 5
INITIATOR_TID = 6


def pool_builder(exe: Executive):
    """A Fragmenter `build` callable backed by the executive's pool."""

    def build(*, target, initiator, payload, priority, organization,
              xfunction, flags, transaction_context, initiator_context) -> Frame:
        frame = exe.frame_alloc(
            len(payload), target=target, initiator=initiator,
            xfunction=xfunction, priority=priority, flags=flags,
            organization=organization,
        )
        frame.payload[:] = payload
        frame.transaction_context = transaction_context
        frame.initiator_context = initiator_context
        return frame

    return build


def test_fragment_chain_uses_pool_blocks():
    exe = Executive(node=0)
    fragmenter = Fragmenter(max_fragment=1000)
    payload = bytes(range(256)) * 20  # 5120 B -> 6 fragments
    frames = fragmenter.fragment(
        payload, target=TARGET_TID, initiator=INITIATOR_TID,
        build=pool_builder(exe)
    )
    assert len(frames) == 6
    assert all(f.block is not None for f in frames)
    assert exe.pool.in_flight == 6
    reassembler = Reassembler()
    out = None
    for frame in frames:
        out = reassembler.add(frame)
        exe.frame_free(frame)
    assert out == payload
    exe.pool.check_conservation()
    assert exe.pool.in_flight == 0


def test_many_chains_conserve_pool():
    exe = Executive(node=0)
    fragmenter = Fragmenter(max_fragment=512)
    reassembler = Reassembler()
    for i in range(20):
        payload = bytes([i]) * (100 + 137 * i)
        frames = fragmenter.fragment(
            payload, target=TARGET_TID, initiator=INITIATOR_TID,
        build=pool_builder(exe)
        )
        out = None
        for frame in frames:
            out = reassembler.add(frame)
            exe.frame_free(frame)
        assert out == payload
    exe.pool.check_conservation()
    assert exe.pool.in_flight == 0
    assert reassembler.pending_chains == 0
