"""Adversarial input: arbitrary bytes must never crash the codecs.

A transport can hand the frame parser anything; the contract is
"return a valid Frame or raise FrameFormatError" — never a different
exception, never a Frame that then misbehaves.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2o.errors import FrameFormatError, I2OError
from repro.i2o.frame import HEADER_SIZE, I2O_VERSION, Frame
from repro.rmi.marshal import MarshalError, unmarshal
from repro.transports.wire import decode_wire

TARGET_TID = 5
INITIATOR_TID = 6


@given(st.binary(max_size=600))
@settings(max_examples=300, deadline=None)
def test_frame_parse_total(data):
    try:
        frame = Frame.parse(data)
    except FrameFormatError:
        return
    # Anything that parses must be internally consistent and re-serialise.
    assert frame.version == I2O_VERSION
    assert frame.total_size <= len(data) or frame.total_size <= len(
        bytearray(data)
    )
    round_tripped = Frame.parse(frame.tobytes())
    assert round_tripped.same_message(frame)


@given(st.binary(max_size=600))
@settings(max_examples=300, deadline=None)
def test_wire_decode_total(data):
    try:
        src, frame_bytes = decode_wire(data)
    except FrameFormatError:
        return
    assert isinstance(src, int)
    assert len(frame_bytes) >= HEADER_SIZE


@given(st.binary(max_size=300))
@settings(max_examples=300, deadline=None)
def test_unmarshal_total(data):
    try:
        unmarshal(data)
    except MarshalError:
        pass


@given(st.binary(min_size=HEADER_SIZE, max_size=200))
@settings(max_examples=200, deadline=None)
def test_mutated_valid_frame_never_escapes_validation(data):
    """Start from a valid frame, splice in arbitrary bytes: parse
    either rejects or yields a structurally sound frame."""
    base = bytearray(
        Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                    payload=b"x" * 64).tobytes()
    )
    splice = min(len(data), len(base))
    base[:splice] = data[:splice]
    try:
        frame = Frame.parse(bytes(base))
    except I2OError:
        return
    assert frame.priority < 7
    assert frame.target <= 0xFFF
    assert frame.payload_size + HEADER_SIZE <= len(base)
