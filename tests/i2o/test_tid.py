"""TiD allocation: uniqueness, recycling, reservations."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2o.errors import AddressingError
from repro.i2o.tid import (
    EXECUTIVE_TID,
    FIRST_DYNAMIC_TID,
    MAX_TID,
    PTA_TID,
    TID_BROADCAST,
    TidAllocator,
    check_tid,
)


class TestCheckTid:
    def test_valid_range(self):
        assert check_tid(0) == 0
        assert check_tid(MAX_TID - 1) == MAX_TID - 1

    def test_out_of_range(self):
        with pytest.raises(AddressingError):
            check_tid(MAX_TID + 1)
        with pytest.raises(AddressingError):
            check_tid(-1)

    def test_broadcast_needs_opt_in(self):
        with pytest.raises(AddressingError):
            check_tid(TID_BROADCAST)
        assert check_tid(TID_BROADCAST, allow_broadcast=True) == TID_BROADCAST

    def test_bool_is_not_a_tid(self):
        with pytest.raises(AddressingError):
            check_tid(True)

    def test_well_known_values(self):
        assert EXECUTIVE_TID == 0
        assert PTA_TID == 1
        assert TID_BROADCAST == MAX_TID == 0xFFF


class TestAllocator:
    def test_first_allocation(self):
        assert TidAllocator().allocate() == FIRST_DYNAMIC_TID

    def test_allocations_unique(self):
        alloc = TidAllocator()
        tids = {alloc.allocate() for _ in range(100)}
        assert len(tids) == 100

    def test_release_recycles(self):
        alloc = TidAllocator()
        tid = alloc.allocate()
        alloc.release(tid)
        assert alloc.allocate() == tid

    def test_release_unknown_raises(self):
        with pytest.raises(AddressingError):
            TidAllocator().release(999)

    def test_double_release_raises(self):
        alloc = TidAllocator()
        tid = alloc.allocate()
        alloc.release(tid)
        with pytest.raises(AddressingError):
            alloc.release(tid)

    def test_reserve_well_known(self):
        alloc = TidAllocator()
        assert alloc.reserve(EXECUTIVE_TID) == 0
        assert alloc.reserve(PTA_TID) == 1
        with pytest.raises(AddressingError):
            alloc.reserve(PTA_TID)  # already live

    def test_reserve_ahead_burns_gap(self):
        alloc = TidAllocator()
        alloc.reserve(100)
        seen = {alloc.allocate() for _ in range(200)}
        assert 100 not in seen

    def test_exhaustion(self):
        alloc = TidAllocator(first=TID_BROADCAST - 2)
        alloc.allocate()
        alloc.allocate()
        with pytest.raises(AddressingError):
            alloc.allocate()

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_never_hand_out_live_tid(self, ops):
        """Random allocate/release interleavings never duplicate a
        live TiD."""
        alloc = TidAllocator()
        live: list[int] = []
        for do_alloc in ops:
            if do_alloc or not live:
                tid = alloc.allocate()
                assert tid not in live
                live.append(tid)
            else:
                alloc.release(live.pop())
        assert alloc.live == frozenset(live)
