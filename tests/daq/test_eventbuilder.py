"""The distributed event builder, over multiple transports."""

from __future__ import annotations

import pytest

from repro.core.executive import Executive
from repro.daq import (
    BuilderUnit,
    EventManager,
    ReadoutUnit,
    TriggerSource,
)
from repro.daq.events import fragment_size
from repro.transports.agent import PeerTransportAgent
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport
from repro.transports.queued import QueuePair, QueueTransport

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump


def wire_daq(cluster, n_ru=2, n_bu=2, mean_fragment=512):
    """Standard topology: node 0 = evm+trigger, then RUs, then BUs."""
    evm, trigger = EventManager(), TriggerSource()
    evm_tid = cluster[0].install(evm)
    cluster[0].install(trigger)
    trigger.connect(evm_tid)
    rus = {i: ReadoutUnit(ru_id=i, mean_fragment=mean_fragment)
           for i in range(n_ru)}
    ru_tids = {i: cluster[1 + i].install(ru) for i, ru in rus.items()}
    bus = {i: BuilderUnit(bu_id=i) for i in range(n_bu)}
    bu_tids = {i: cluster[1 + n_ru + i].install(bu) for i, bu in bus.items()}
    evm.connect(  # repro: noqa DFL001
        {i: cluster[0].create_proxy(1 + i, t) for i, t in ru_tids.items()},
        {i: cluster[0].create_proxy(1 + n_ru + i, t)
         for i, t in bu_tids.items()},
    )
    for i, bu in bus.items():
        node = 1 + n_ru + i
        bu.connect(  # repro: noqa DFL001
            cluster[node].create_proxy(0, evm_tid),
            {j: cluster[node].create_proxy(1 + j, t)
             for j, t in ru_tids.items()},
        )
    return evm, trigger, rus, bus


class TestLoopbackEventBuilding:
    def test_every_trigger_becomes_a_built_event(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        trigger.fire_burst(20)
        pump(five_nodes)
        assert evm.triggers == 20
        assert evm.completed == 20
        assert evm.in_flight == 0

    def test_round_robin_between_builders(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        trigger.fire_burst(10)
        pump(five_nodes)
        assert bus[0].built == 5
        assert bus[1].built == 5

    def test_built_sizes_match_generator(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        trigger.fire_burst(6)
        pump(five_nodes)
        for bu in bus.values():
            for event_id, size in bu.completed:
                expected = sum(
                    fragment_size(event_id, ru_id, mean=512)
                    for ru_id in rus
                )
                assert size == expected

    def test_buffers_cleared_after_completion(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        trigger.fire_burst(15)
        pump(five_nodes)
        for ru in rus.values():
            assert ru.buffered_events == 0
            assert ru.cleared == 15

    def test_no_corrupt_fragments(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)
        trigger.fire_burst(10)
        pump(five_nodes)
        assert all(bu.corrupt == 0 for bu in bus.values())

    def test_request_before_readout_is_parked(self, five_nodes):
        """Builder fragment requests racing ahead of readout commands
        must be parked, not failed."""
        evm, trigger, rus, bus = wire_daq(five_nodes)
        # Bypass the EVM: ask a BU to build an event the RUs have
        # never heard of, then trigger readout afterwards.
        bu = bus[0]
        from repro.daq.protocol import XF_REQUEST_FRAGMENT
        from repro.daq.readout import pack_event_id

        bu._pending[999] = {}
        for ru_tid in bu.ru_tids.values():
            bu.send(ru_tid, pack_event_id(999),
                    xfunction=XF_REQUEST_FRAGMENT)
        pump(five_nodes)
        assert any(ru.parked_requests for ru in rus.values())
        # Now the readout command arrives late.
        from repro.daq.protocol import XF_READOUT

        for i, ru_tid in evm.ru_tids.items():
            evm.send(ru_tid, pack_event_id(999), xfunction=XF_READOUT)
        pump(five_nodes)
        assert bu.built == 1
        assert all(ru.parked_requests == 0 for ru in rus.values())

    def test_single_ru_single_bu_minimal(self):
        cluster = make_loopback_cluster(3)
        evm, trigger, rus, bus = wire_daq(cluster, n_ru=1, n_bu=1)
        trigger.fire()
        pump(cluster)
        assert evm.completed == 1
        assert_no_leaks(cluster)

    def test_larger_cluster_4x3(self):
        cluster = make_loopback_cluster(8)  # 1 + 4 RU + 3 BU
        evm, trigger, rus, bus = wire_daq(cluster, n_ru=4, n_bu=3)
        trigger.fire_burst(30)
        pump(cluster)
        assert evm.completed == 30
        assert sum(bu.built for bu in bus.values()) == 30
        assert_no_leaks(cluster)


class TestTimerDrivenTrigger:
    def test_enable_starts_periodic_triggers(self, five_nodes):
        evm, trigger, rus, bus = wire_daq(five_nodes)

        class ManualClock:
            t = 0

            def now_ns(self):
                return self.t

        clock = ManualClock()
        five_nodes[0].clock = clock
        trigger.parameters["interval_ns"] = "1000"
        trigger.max_events = 3
        trigger.set_state(trigger.state.__class__.ENABLED)
        trigger.on_enable()
        for step in range(1, 6):
            clock.t = step * 1000
            pump(five_nodes)
        assert trigger.fired == 3
        assert evm.completed == 3


class TestOverQueueTransport:
    def test_same_application_over_queue_wires(self):
        """The identical DAQ code on a different transport - paper's
        'exchange the hardware, keep the application'."""
        nodes = range(5)
        pairs = {}
        exes = {n: Executive(node=n) for n in nodes}
        for n in nodes:
            pta = PeerTransportAgent.attach(exes[n])
            for m in nodes:
                if m <= n:
                    continue
                pair = QueuePair(n, m)
                pairs[(n, m)] = pair
                pta.register(QueueTransport(pair, name=f"q{n}-{m}"),
                             nodes=[m])
        for (n, m), pair in pairs.items():
            exes[m].pta.register(QueueTransport(pair, name=f"q{m}-{n}"),
                                 nodes=[n])
        evm, trigger, rus, bus = wire_daq(exes)
        trigger.fire_burst(8)
        pump(exes)
        assert evm.completed == 8
        assert_no_leaks(exes)
