"""Builder-failure recovery: event timeouts and reassignment."""

from __future__ import annotations

import pytest

from repro.daq import BuilderUnit
from repro.i2o.errors import I2OError

from tests.conftest import assert_no_leaks, make_loopback_cluster
from tests.daq.test_eventbuilder import wire_daq


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def build_recoverable(timeout_ns=1000, max_reassignments=3):
    """Standard 5-node DAQ, manual clock on the EVM node so tests can
    force event deadlines to pass."""
    cluster = make_loopback_cluster(5)
    clock = _ManualClock()
    cluster[0].clock = clock
    evm, trigger, rus, bus = wire_daq(cluster)
    evm.event_timeout_ns = timeout_ns
    evm.max_reassignments = max_reassignments
    return cluster, clock, evm, trigger, rus, bus


def run(cluster, clock, ticks=50, step_ns=1000):
    for tick in range(ticks):
        clock.t += step_ns
        for _ in range(10_000):
            if not any(exe.step() for exe in cluster.values()):
                break


class TestHealthyPathUnchanged:
    def test_timeouts_armed_but_never_fire(self):
        cluster, clock, evm, trigger, rus, bus = build_recoverable(
            timeout_ns=10_000_000
        )
        trigger.fire_burst(10)
        run(cluster, clock, ticks=5)
        assert evm.completed == 10
        assert evm.reassignments == 0
        assert evm.lost_events == []
        assert len(cluster[0].timers) == 0  # all deadlines cancelled
        assert_no_leaks(cluster)


class TestBuilderFailure:
    def _break_builder(self, bu: BuilderUnit) -> None:
        """Make a builder swallow allocations silently (crashed)."""
        from repro.daq.protocol import XF_ALLOCATE

        bu.bind(XF_ALLOCATE, lambda f: None)

    def test_events_reassigned_from_dead_builder(self):
        cluster, clock, evm, trigger, rus, bus = build_recoverable()
        self._break_builder(bus[0])  # builder 0 black-holes everything
        trigger.fire_burst(8)
        run(cluster, clock, ticks=30)
        assert evm.completed == 8  # every event recovered
        assert evm.reassignments >= 4  # the ones that hit builder 0
        assert bus[1].built == 8
        assert evm.lost_events == []
        assert_no_leaks(cluster)

    def test_all_builders_dead_events_declared_lost(self):
        cluster, clock, evm, trigger, rus, bus = build_recoverable(
            max_reassignments=2
        )
        for bu in bus.values():
            self._break_builder(bu)
        trigger.fire_burst(3)
        run(cluster, clock, ticks=40)
        assert evm.completed == 0
        assert sorted(evm.lost_events) == sorted(evm.completed_ids + [1, 2, 3])
        # Abandoned events must not leak readout buffers.
        for ru in rus.values():
            assert ru.buffered_events == 0
        assert_no_leaks(cluster)

    def test_recovery_respects_throttle(self):
        cluster, clock, evm, trigger, rus, bus = build_recoverable()
        evm.max_in_flight = 2
        self._break_builder(bus[0])
        max_seen = 0
        trigger.fire_burst(10)
        for tick in range(60):
            clock.t += 1000
            for _ in range(10_000):
                if not any(exe.step() for exe in cluster.values()):
                    break
            max_seen = max(max_seen, evm.in_flight)
        assert evm.completed == 10
        assert max_seen <= 2

    def test_counters_expose_recovery(self):
        cluster, clock, evm, trigger, rus, bus = build_recoverable()
        self._break_builder(bus[0])
        trigger.fire_burst(4)
        run(cluster, clock, ticks=30)
        counters = evm.export_counters()
        assert int(counters["reassignments"]) >= 2
        assert counters["lost"] == 0


class TestValidation:
    def test_negative_timeout_rejected(self):
        from repro.daq import EventManager

        with pytest.raises(I2OError):
            EventManager(event_timeout_ns=-1)
