"""Event-manager trigger throttling (back-pressure)."""

from __future__ import annotations

import pytest

from repro.daq import EventManager
from repro.i2o.errors import I2OError

from tests.conftest import assert_no_leaks, pump
from tests.daq.test_eventbuilder import wire_daq


class StepTracker:
    """Pumps one executive step at a time so we can observe the
    in-flight high-watermark mid-run."""

    def __init__(self, cluster):
        self.cluster = cluster
        self.max_in_flight_seen = 0

    def run(self, evm, rounds=100_000):
        for _ in range(rounds):
            worked = any(exe.step() for exe in self.cluster.values())
            self.max_in_flight_seen = max(
                self.max_in_flight_seen, evm.in_flight
            )
            if not worked:
                return


def test_in_flight_never_exceeds_limit(five_nodes):
    evm, trigger, rus, bus = wire_daq(five_nodes)
    evm.max_in_flight = 3
    tracker = StepTracker(five_nodes)
    trigger.fire_burst(20)
    tracker.run(evm)
    assert evm.completed == 20  # throttled, not lost
    assert tracker.max_in_flight_seen <= 3


def test_unthrottled_burst_floods(five_nodes):
    evm, trigger, rus, bus = wire_daq(five_nodes)
    tracker = StepTracker(five_nodes)
    trigger.fire_burst(20)
    tracker.run(evm)
    assert evm.completed == 20
    assert tracker.max_in_flight_seen > 3  # the contrast with the limit


def test_throttled_counter_visible_via_params(five_nodes):
    evm, trigger, rus, bus = wire_daq(five_nodes)
    evm.max_in_flight = 1
    trigger.fire_burst(5)
    # Before any pumping the EVM hasn't seen the triggers yet; after
    # the run everything must have drained.
    pump(five_nodes)
    assert evm.completed == 5
    assert evm.export_counters()["throttled"] == 0
    assert_no_leaks(five_nodes)


def test_bad_limit_rejected():
    with pytest.raises(I2OError):
        EventManager(max_in_flight=0)


def test_ru_buffers_bounded_by_throttle(five_nodes):
    """The point of back-pressure: readout buffers cannot grow past
    the in-flight window."""
    evm, trigger, rus, bus = wire_daq(five_nodes)
    evm.max_in_flight = 2
    max_buffered = 0

    trigger.fire_burst(30)
    for _ in range(100_000):
        worked = any(exe.step() for exe in five_nodes.values())
        max_buffered = max(
            max_buffered, max(ru.buffered_events for ru in rus.values())
        )
        if not worked:
            break
    assert evm.completed == 30
    assert max_buffered <= 2
