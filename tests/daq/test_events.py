"""Fragment generation and wire format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.daq.events import (
    FRAGMENT_OVERHEAD,
    FragmentError,
    fragment_payload,
    fragment_size,
    make_fragment_payload,
    parse_fragment,
    synthesize_fragment,
)


class TestGenerator:
    def test_size_deterministic(self):
        assert fragment_size(42, 3) == fragment_size(42, 3)

    def test_size_varies_by_event_and_ru(self):
        sizes = {fragment_size(e, r) for e in range(10) for r in range(4)}
        assert len(sizes) > 10  # fluctuating occupancy

    def test_size_bounds_respected(self):
        for event in range(200):
            assert 64 <= fragment_size(event, 0) <= 16384

    def test_payload_deterministic(self):
        assert fragment_payload(7, 1, 100) == fragment_payload(7, 1, 100)

    def test_payload_differs_across_rus(self):
        assert fragment_payload(7, 1, 100) != fragment_payload(7, 2, 100)


class TestWireFormat:
    def test_round_trip(self):
        data = b"detector bytes" * 10
        header, payload = parse_fragment(make_fragment_payload(9, 2, data))
        assert header.event_id == 9
        assert header.ru_id == 2
        assert header.length == len(data)
        assert payload == data

    def test_synthesize_parses(self):
        header, payload = parse_fragment(synthesize_fragment(123, 4))
        assert header.event_id == 123
        assert header.ru_id == 4
        assert len(payload) == header.length

    def test_crc_detects_corruption(self):
        wire = bytearray(make_fragment_payload(1, 1, b"x" * 50))
        wire[FRAGMENT_OVERHEAD] ^= 0xFF  # flip a payload byte
        with pytest.raises(FragmentError, match="CRC"):
            parse_fragment(wire)

    def test_truncation_detected(self):
        wire = make_fragment_payload(1, 1, b"x" * 50)
        with pytest.raises(FragmentError):
            parse_fragment(wire[:-1])

    def test_too_short_detected(self):
        with pytest.raises(FragmentError, match="short"):
            parse_fragment(b"tiny")

    def test_length_mismatch_detected(self):
        wire = bytearray(make_fragment_payload(1, 1, b"x" * 50))
        wire[12:16] = (10).to_bytes(4, "little")  # lie about length
        with pytest.raises(FragmentError):
            parse_fragment(wire)

    @given(st.integers(0, 2**63), st.integers(0, 2**31),
           st.binary(max_size=500))
    @settings(max_examples=80, deadline=None)
    def test_property_round_trip(self, event_id, ru_id, data):
        header, payload = parse_fragment(
            make_fragment_payload(event_id, ru_id, data)
        )
        assert (header.event_id, header.ru_id) == (event_id, ru_id)
        assert payload == data
