"""The event builder on an unreliable wire.

Drops anywhere in the DAQ protocol (readout commands, allocations,
fragment requests or replies, completions, clears) stall individual
events; the event manager's timeout/reassignment machinery must
recover all of them.  This is the whole fault-tolerance story working
together: timers as messages, failure recovery, buffer conservation.
"""

from __future__ import annotations

from repro.core.executive import Executive
from repro.daq import BuilderUnit, EventManager, ReadoutUnit, TriggerSource
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def build_lossy_daq(drop_rate: float, *, seed: int = 7):
    network = LoopbackNetwork()
    plan = FaultPlan(drop_rate=drop_rate)
    cluster, clocks = {}, {}
    for node in range(5):
        clock = _ManualClock()
        exe = Executive(node=node, clock=clock)
        PeerTransportAgent.attach(exe).register(
            FaultyLoopbackTransport(network, plan, seed=seed + node),
            default=True,
        )
        cluster[node], clocks[node] = exe, clock

    evm = EventManager(event_timeout_ns=5_000, max_reassignments=30)
    trigger = TriggerSource()
    evm_tid = cluster[0].install(evm)
    cluster[0].install(trigger)
    trigger.connect(evm_tid)
    rus = {i: ReadoutUnit(ru_id=i, mean_fragment=256) for i in (0, 1)}
    ru_tids = {i: cluster[1 + i].install(ru) for i, ru in rus.items()}
    bus = {i: BuilderUnit(bu_id=i) for i in (0, 1)}
    bu_tids = {i: cluster[3 + i].install(bu) for i, bu in bus.items()}
    evm.connect(  # repro: noqa DFL001
        {i: cluster[0].create_proxy(1 + i, t) for i, t in ru_tids.items()},
        {i: cluster[0].create_proxy(3 + i, t) for i, t in bu_tids.items()},
    )
    for i, bu in bus.items():
        node = 3 + i
        bu.connect(  # repro: noqa DFL001
            cluster[node].create_proxy(0, evm_tid),
            {j: cluster[node].create_proxy(1 + j, t)
             for j, t in ru_tids.items()},
        )
    return cluster, clocks, evm, trigger, rus, bus


def run(cluster, clocks, ticks: int, step_ns: int = 1000) -> None:
    for _ in range(ticks):
        for clock in clocks.values():
            clock.t += step_ns
        for _ in range(10_000):
            if not any(exe.step() for exe in cluster.values()):
                break


def test_all_events_built_despite_drops():
    cluster, clocks, evm, trigger, rus, bus = build_lossy_daq(drop_rate=0.08)
    trigger.fire_burst(15)
    run(cluster, clocks, ticks=600)
    assert evm.completed == 15
    assert evm.lost_events == []
    assert evm.reassignments > 0  # drops actually forced recovery
    for exe in cluster.values():
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0


def test_loss_free_plan_needs_no_recovery():
    cluster, clocks, evm, trigger, rus, bus = build_lossy_daq(drop_rate=0.0)
    trigger.fire_burst(10)
    run(cluster, clocks, ticks=5)
    assert evm.completed == 10
    assert evm.reassignments == 0


def test_deterministic_given_seed():
    def outcome():
        cluster, clocks, evm, trigger, rus, bus = build_lossy_daq(
            drop_rate=0.1, seed=21
        )
        trigger.fire_burst(10)
        run(cluster, clocks, ticks=500)
        return evm.completed, evm.reassignments

    assert outcome() == outcome()
