"""The DAQ monitor: observation through standard utility messages."""

from __future__ import annotations

from repro.daq import DaqMonitor, EventManager, ReadoutUnit, TriggerSource
from repro.daq.builder import BuilderUnit

from tests.conftest import pump
from tests.daq.test_eventbuilder import wire_daq


def test_monitor_collects_counters_without_private_messages(five_nodes):
    evm, trigger, rus, bus = wire_daq(five_nodes)
    # Monitor lives on node 4 (shares with a BU; fine).
    monitor = DaqMonitor()
    five_nodes[4].install(monitor)
    monitor.watch(five_nodes[4].create_proxy(0, evm.tid))
    for i, ru in rus.items():
        monitor.watch(five_nodes[4].create_proxy(1 + i, ru.tid))
    trigger.fire_burst(12)
    pump(five_nodes)
    monitor.sweep()
    pump(five_nodes)
    evm_snapshot = monitor.snapshots[monitor.watched[0]]
    assert evm_snapshot["triggers"] == "12"
    assert evm_snapshot["completed"] == "12"
    ru_snapshot = monitor.snapshots[monitor.watched[1]]
    assert ru_snapshot["served"] == "12"
    assert ru_snapshot["buffered"] == "0"


def test_sweep_counts_watched(five_nodes):
    monitor = DaqMonitor()
    five_nodes[0].install(monitor)
    assert monitor.sweep() == 0
    evm = EventManager()
    tid = five_nodes[1].install(evm)
    monitor.watch(five_nodes[0].create_proxy(1, tid))
    monitor.watch(five_nodes[0].create_proxy(1, tid))  # dedup
    assert monitor.sweep() == 1
    pump(five_nodes)


def test_periodic_sweeps_via_timer_facility():
    """sweep_interval_ns turns the monitor self-clocked: the I2O timer
    facility fires sweeps until quiesce disarms it."""
    from repro.core.executive import Executive

    class _ManualClock:
        def __init__(self):
            self.t = 0

        def now_ns(self):
            return self.t

    clock = _ManualClock()
    exe = Executive(node=0, clock=clock)
    evm = EventManager()
    evm_tid = exe.install(evm)
    monitor = DaqMonitor()
    monitor.parameters["sweep_interval_ns"] = "1000"
    exe.install(monitor)
    monitor.watch(evm_tid)
    monitor.on_enable()
    exe.run_until_idle()
    assert monitor.sweeps == 0  # nothing before the first expiry
    clock.t = 1_000
    exe.run_until_idle()
    assert monitor.sweeps == 1
    assert "triggers" in monitor.snapshot(evm_tid)
    clock.t = 2_500
    exe.run_until_idle()
    assert monitor.sweeps == 2  # periodic re-arm
    monitor.on_quiesce()
    clock.t = 100_000
    exe.run_until_idle()
    assert monitor.sweeps == 2


def test_repeated_sweeps_refresh(five_nodes):
    evm, trigger, rus, bus = wire_daq(five_nodes)
    monitor = DaqMonitor()
    five_nodes[4].install(monitor)
    proxy = five_nodes[4].create_proxy(0, evm.tid)
    monitor.watch(proxy)
    trigger.fire_burst(3)
    pump(five_nodes)
    monitor.sweep()
    pump(five_nodes)
    assert monitor.snapshot(proxy)["completed"] == "3"
    trigger.fire_burst(2)
    pump(five_nodes)
    monitor.sweep()
    pump(five_nodes)
    assert monitor.snapshot(proxy)["completed"] == "5"
    assert monitor.sweeps == 2
