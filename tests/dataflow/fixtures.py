"""Seeded bad-topology device classes for bootstrap rejection tests.

These live in an importable module (not a test file) because the
bootstrap addresses device classes by import path.  The message types
use a ``fix.`` namespace so they never collide with the real protocol
modules.
"""

from __future__ import annotations

from repro.core.device import Listener
from repro.dataflow.registry import message_type

XF_FIX_AB = 0x0F01
XF_FIX_BC = 0x0F02
XF_FIX_CA = 0x0F03
XF_FIX_ORPHAN = 0x0F04
XF_FIX_UNFED = 0x0F05

MT_FIX_AB = message_type("fix.ab", XF_FIX_AB)
MT_FIX_BC = message_type("fix.bc", XF_FIX_BC)
MT_FIX_CA = message_type("fix.ca", XF_FIX_CA)
#: emitted by CycleA below, consumed by nobody — the missing-consumer seed
MT_FIX_ORPHAN = message_type("fix.orphan", XF_FIX_ORPHAN)
#: consumed by Unfed below, emitted by nobody — the missing-provider seed
MT_FIX_UNFED = message_type("fix.unfed", XF_FIX_UNFED)


class CycleA(Listener):
    """a -> b (and closes c -> a): one corner of the seeded cycle."""

    device_class = "fixture"
    consumes = (MT_FIX_CA,)
    emits = (MT_FIX_AB,)


class CycleB(Listener):
    device_class = "fixture"
    consumes = (MT_FIX_AB,)
    emits = (MT_FIX_BC,)


class CycleC(Listener):
    device_class = "fixture"
    consumes = (MT_FIX_BC,)
    emits = (MT_FIX_CA,)


class OrphanSource(Listener):
    """Emits ``fix.orphan``, which nothing in any spec consumes."""

    device_class = "fixture"
    emits = (MT_FIX_ORPHAN,)


class Unfed(Listener):
    """Consumes ``fix.unfed``, which nothing in any spec emits."""

    device_class = "fixture"
    consumes = (MT_FIX_UNFED,)


def cycle_spec() -> dict:
    """Three devices whose forward dataflow is a loop."""
    return {
        "transport": "loopback",
        "nodes": {
            0: {"devices": [
                {"class": "tests.dataflow.fixtures.CycleA", "name": "a"},
                {"class": "tests.dataflow.fixtures.CycleB", "name": "b"},
                {"class": "tests.dataflow.fixtures.CycleC", "name": "c"},
            ]},
        },
        "dataflow": {},
    }


def missing_consumer_spec() -> dict:
    return {
        "transport": "loopback",
        "nodes": {
            0: {"devices": [
                {"class": "tests.dataflow.fixtures.OrphanSource",
                 "name": "orphan-source"},
            ]},
        },
        "dataflow": {},
    }


def missing_provider_spec() -> dict:
    return {
        "transport": "loopback",
        "nodes": {
            0: {"devices": [
                {"class": "tests.dataflow.fixtures.Unfed", "name": "unfed"},
            ]},
        },
        "dataflow": {},
    }
