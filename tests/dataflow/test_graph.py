"""Static DAG analysis: named diagnostics, reports, spec loading."""

from __future__ import annotations

import pytest

from repro.dataflow.graph import (
    DataflowGraph,
    DeviceNode,
    graph_from_spec,
    node_for_device,
)
from repro.i2o.errors import I2OError
from tests.dataflow import fixtures  # registers the fix.* vocabulary


def _codes(graph):
    return sorted(d.code for d in graph.analyze())


class TestDiagnostics:
    def test_clean_event_builder_has_no_diagnostics(self):
        from repro.dataflow.examples import event_builder_spec

        graph = graph_from_spec(event_builder_spec(2, 2))
        assert graph.analyze() == []

    def test_cycle_is_named_with_its_path(self):
        graph = graph_from_spec(fixtures.cycle_spec())
        (diag,) = [d for d in graph.analyze() if d.code == "cycle"]
        # The path closes on itself and walks all three corners.
        assert diag.subjects[0] == diag.subjects[-1]
        assert set(diag.subjects) == {"a", "b", "c"}
        assert "a" in diag.message and "->" in diag.message

    def test_feedback_type_exempts_the_cycle(self):
        # The event builder's trigger->evm->bu->evm loop is legal
        # because EVENT_DONE is declared feedback=True.
        from repro.dataflow.examples import event_builder_spec

        graph = graph_from_spec(event_builder_spec(1, 1))
        assert _codes(graph) == []
        feedback = [e for e in graph.edges() if e.feedback]
        assert [(e.src, e.dst) for e in feedback] == [("bu0", "evm")]

    def test_missing_consumer_names_the_emitter(self):
        graph = graph_from_spec(fixtures.missing_consumer_spec())
        (diag,) = graph.analyze()
        assert diag.code == "missing-consumer"
        assert "orphan-source" in diag.message
        assert "fix.orphan" in diag.message

    def test_missing_provider_names_the_consumer(self):
        graph = graph_from_spec(fixtures.missing_provider_spec())
        (diag,) = graph.analyze()
        assert diag.code == "missing-provider"
        assert "unfed" in diag.message
        assert "fix.unfed" in diag.message

    def test_unicast_fan_in_is_ambiguous(self):
        graph = DataflowGraph([
            DeviceNode("src", 0, "fixture", "src", emits=("fix.ab",)),
            DeviceNode("dst1", 0, "fixture", "dst1", consumes=("fix.ab",)),
            DeviceNode("dst2", 1, "fixture", "dst2", consumes=("fix.ab",)),
        ])
        diags = [d for d in graph.analyze() if d.code == "ambiguous-fan-in"]
        assert len(diags) == 1
        assert set(diags[0].subjects) == {"dst1", "dst2"}

    def test_keyed_consumers_sharing_a_key_are_ambiguous(self):
        from repro.daq.protocol import MT_ALLOCATE

        graph = DataflowGraph([
            DeviceNode("evm", 0, "fixture", "evm",
                       emits=(MT_ALLOCATE.name,)),
            DeviceNode("bu0", 1, "fixture", 0,
                       consumes=(MT_ALLOCATE.name,)),
            DeviceNode("bu0b", 2, "fixture", 0,
                       consumes=(MT_ALLOCATE.name,)),
        ])
        diags = [d for d in graph.analyze() if d.code == "ambiguous-fan-in"]
        assert len(diags) == 1
        assert set(diags[0].subjects) == {"bu0", "bu0b"}

    def test_unknown_type_name_fails_at_construction(self):
        with pytest.raises(I2OError, match="unknown message type"):
            DataflowGraph([
                DeviceNode("x", 0, "fixture", "x", emits=("test.no-such",)),
            ])

    def test_duplicate_device_name_rejected(self):
        node = DeviceNode("x", 0, "fixture", "x", emits=("fix.ab",))
        with pytest.raises(I2OError, match="duplicate device 'x'"):
            DataflowGraph([node, node])


class TestReports:
    @pytest.fixture
    def graph(self):
        from repro.dataflow.examples import event_builder_spec

        return graph_from_spec(event_builder_spec(2, 1))

    def test_fan_in_counts_emitters_per_consumer_type(self, graph):
        # Both BUs gone: each RU hears daq.request-fragment from bu0 only.
        assert graph.fan_in("ru0", "daq.request-fragment") == 1
        assert graph.fan_in("evm", "daq.trigger") == 1

    def test_dot_clusters_by_node_and_dashes_feedback(self, graph):
        dot = graph.to_dot()
        assert "subgraph cluster_node0" in dot
        assert '"trigger" -> "evm"' in dot
        assert "style=dashed" in dot  # the EVENT_DONE feedback edge

    def test_json_report_is_complete_and_serialisable(self, graph):
        import json

        report = graph.to_json()
        assert {d["name"] for d in report["devices"]} == {
            "trigger", "evm", "ru0", "ru1", "bu0",
        }
        assert report["diagnostics"] == []
        assert report["fan"]["types"]["daq.readout"]["mode"] == "fanout"
        json.dumps(report)  # must round-trip

    def test_fan_report_counts_edges(self, graph):
        fan = graph.fan_report()
        assert fan["devices"]["evm"]["fan_out"] == 5  # 2 readout, 2 clear, 1 allocate
        assert fan["devices"]["ru0"]["fan_in"] == 3


class TestNodeForDevice:
    def test_undeclared_device_maps_to_none(self):
        from repro.core.device import Listener

        class Mute(Listener):
            device_class = "mute"

        assert node_for_device("m", 0, Mute("m")) is None

    def test_dataflow_key_defaults_to_name(self):
        from repro.atc.console import AlertConsole

        dn = node_for_device("console", 3, AlertConsole("console"))
        assert dn.key == "console"
        assert dn.node == 3

    def test_keyed_device_exposes_its_key(self):
        from repro.daq.builder import BuilderUnit

        dn = node_for_device("bu7", 1, BuilderUnit(bu_id=7))
        assert dn.key == 7
