"""The typed message registry: naming, idempotence, conflicts."""

from __future__ import annotations

import pytest

from repro.dataflow.registry import (
    MessageType,
    _unregister,
    derived,
    lookup,
    message_type,
    registered,
)
from repro.i2o.errors import I2OError
from repro.i2o.function_codes import PRIVATE


@pytest.fixture
def scratch_name():
    name = "test.scratch-type"
    yield name
    _unregister(name)


class TestRegistration:
    def test_registers_and_looks_up(self, scratch_name):
        mtype = message_type(scratch_name, 0x0E01, mode="fanout", priority=2)
        assert lookup(scratch_name) is mtype
        assert mtype.code == (PRIVATE, 0x0E01, 0)
        assert mtype.mode == "fanout"
        assert mtype.priority == 2

    def test_identical_redeclaration_is_idempotent(self, scratch_name):
        first = message_type(scratch_name, 0x0E01)
        again = message_type(scratch_name, 0x0E01)
        assert again is first

    def test_conflicting_redeclaration_raises(self, scratch_name):
        message_type(scratch_name, 0x0E01)
        with pytest.raises(I2OError, match="different contract"):
            message_type(scratch_name, 0x0E02)

    def test_unknown_lookup_names_the_known_types(self):
        with pytest.raises(I2OError, match="unknown message type"):
            lookup("test.never-registered")

    def test_registered_is_name_ordered(self, scratch_name):
        message_type(scratch_name, 0x0E01)
        names = [m.name for m in registered()]
        assert names == sorted(names)
        assert scratch_name in names


class TestValidation:
    def test_bad_mode_rejected(self):
        with pytest.raises(I2OError, match="mode"):
            MessageType("test.bad-mode", 0x0E10, mode="broadcast")

    def test_bad_saturation_policy_rejected(self):
        with pytest.raises(I2OError, match="on_saturation"):
            MessageType("test.bad-sat", 0x0E11, on_saturation="explode")

    def test_priority_out_of_range_rejected(self):
        with pytest.raises(I2OError, match="priority"):
            MessageType("test.bad-prio", 0x0E12, priority=99)

    def test_empty_name_rejected(self):
        with pytest.raises(I2OError, match="name"):
            MessageType("", 0x0E13)

    def test_derived_builds_variant_without_registering(self, scratch_name):
        base = message_type(scratch_name, 0x0E01)
        variant = derived(base, priority=0)
        assert variant.priority == 0
        assert lookup(scratch_name).priority == base.priority


class TestProtocolDeclarations:
    def test_daq_vocabulary_is_registered(self):
        from repro.daq.protocol import DAQ_ORG

        assert lookup("daq.trigger").organization == DAQ_ORG
        assert lookup("daq.readout").mode == "fanout"
        assert lookup("daq.allocate").mode == "keyed"
        assert lookup("daq.event-done").feedback is True

    def test_atc_vocabulary_priorities(self):
        from repro.atc.protocol import ALERT_PRIORITY, UPDATE_PRIORITY

        assert lookup("atc.conflict-alert").priority == ALERT_PRIORITY
        assert lookup("atc.track-update").priority == UPDATE_PRIORITY
        assert lookup("atc.track-update").on_saturation == "shed"
