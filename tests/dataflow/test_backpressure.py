"""Edge credits: park, shed, resume, conservation, instrumentation."""

from __future__ import annotations

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.dataflow.registry import _unregister, message_type
from repro.dataflow.routing import CreditLedger, DataflowOutbox
from repro.flightrec.records import (
    EV_DATAFLOW_PARK,
    EV_DATAFLOW_RESUME,
    EV_DATAFLOW_SHED,
    RECORD_SIZE,
    RECORD_STRUCT,
)

XF_PARKY = 0x0E30
XF_SHEDDY = 0x0E31


@pytest.fixture
def types():
    parky = message_type("test.parky", XF_PARKY)
    sheddy = message_type("test.sheddy", XF_SHEDDY, on_saturation="shed")
    yield parky, sheddy
    _unregister("test.parky")
    _unregister("test.sheddy")


class Sink(Listener):
    device_class = "test_sink"

    def __init__(self, name: str = "sink") -> None:
        super().__init__(name)
        self.got: list[bytes] = []

    def on_plugin(self) -> None:
        self.bind(XF_PARKY, self._take)
        self.bind(XF_SHEDDY, self._take)

    def _take(self, frame) -> None:
        if not frame.is_reply:
            self.got.append(bytes(frame.payload))


class Source(Listener):
    device_class = "test_source"


def _rig(exe: Executive, park_limit: int = 256):
    """Wire ledger + outbox onto a bare executive (bootstrap's job)."""
    ledger = CreditLedger()
    outbox = DataflowOutbox(exe, ledger, limit=park_limit)
    exe.dataflow = ledger
    exe.dataflow_outbox = outbox
    exe._pollable.append(outbox)
    return ledger, outbox


def _wire(exe, ledger, source, sink, mtype, capacity):
    edge = ledger.register_edge(
        mtype, "sink", source.name, exe.node, sink.name, exe.node,
        sink.tid, capacity,
    )
    source.connect_route(mtype, {"sink": sink.tid}, edges={"sink": edge})
    return edge


class TestParkResume:
    def test_saturated_edge_parks_then_resumes_in_order(self, types):
        parky, _ = types
        exe = Executive(node=0)
        ledger, outbox = _rig(exe)
        source, sink = Source("src"), Sink()
        exe.install(source)
        exe.install(sink)
        edge = _wire(exe, ledger, source, sink, parky, capacity=2)

        for i in range(5):
            source.emit(parky, bytes([i]))
        assert outbox.depth == 3
        assert outbox.parked_total == 3
        assert edge.credits == 0

        exe.run_until_idle()
        assert sink.got == [bytes([i]) for i in range(5)]
        assert outbox.depth == 0
        assert ledger.resumed(0) == 3
        assert ledger.shed(0) == 0
        # Conservation: every dispatched frame returned its credit.
        assert edge.credits == edge.capacity

    def test_emit_returns_only_frames_posted_now(self, types):
        parky, _ = types
        exe = Executive(node=0)
        ledger, _ = _rig(exe)
        source, sink = Source("src"), Sink()
        exe.install(source)
        exe.install(sink)
        _wire(exe, ledger, source, sink, parky, capacity=1)
        assert source.emit(parky, b"a") == 1
        assert source.emit(parky, b"b") == 0  # parked, not posted

    def test_emit_into_materialises_when_parked(self, types):
        parky, _ = types
        exe = Executive(node=0)
        ledger, _ = _rig(exe)
        source, sink = Source("src"), Sink()
        exe.install(source)
        exe.install(sink)
        _wire(exe, ledger, source, sink, parky, capacity=1)

        def writer(buf) -> None:
            buf[:3] = b"abc"

        assert source.emit_into(parky, 3, writer) == 1
        assert source.emit_into(parky, 3, writer) == 0  # parked via scratch
        exe.run_until_idle()
        assert sink.got == [b"abc", b"abc"]


class TestShed:
    def test_shed_policy_drops_and_counts(self, types):
        _, sheddy = types
        exe = Executive(node=0)
        ledger, outbox = _rig(exe)
        source, sink = Source("src"), Sink()
        exe.install(source)
        exe.install(sink)
        _wire(exe, ledger, source, sink, sheddy, capacity=2)

        for i in range(5):
            source.emit(sheddy, bytes([i]))
        assert outbox.depth == 0  # shed, never parked
        exe.run_until_idle()
        assert sink.got == [bytes([0]), bytes([1])]
        assert ledger.shed(0) == 3

    def test_full_outbox_degrades_to_shedding(self, types):
        parky, _ = types
        exe = Executive(node=0)
        ledger, outbox = _rig(exe, park_limit=2)
        source, sink = Source("src"), Sink()
        exe.install(source)
        exe.install(sink)
        _wire(exe, ledger, source, sink, parky, capacity=1)

        for i in range(6):
            source.emit(parky, bytes([i]))
        assert outbox.depth == 2  # bounded
        assert ledger.shed(0) == 3  # 1 posted + 2 parked + 3 shed
        exe.run_until_idle()
        assert sink.got == [bytes([0]), bytes([1]), bytes([2])]

    def test_dropped_route_sheds_parked_payloads(self, types):
        parky, _ = types
        exe = Executive(node=0)
        ledger, outbox = _rig(exe)
        source, sink = Source("src"), Sink()
        exe.install(source)
        exe.install(sink)
        _wire(exe, ledger, source, sink, parky, capacity=1)

        source.emit(parky, b"a")
        source.emit(parky, b"b")
        assert outbox.depth == 1
        source.drop_route_target("sink", types=(parky,))
        exe.run_until_idle()
        assert sink.got == [b"a"]
        assert ledger.shed(0) == 1
        assert outbox.depth == 0


class TestInstrumentation:
    def _kinds(self, recorder):
        body = recorder.ring_bytes()
        return [
            RECORD_STRUCT.unpack_from(body, i * RECORD_SIZE)[-1]
            for i in range(recorder.stored_records)
        ]

    def test_flight_recorder_sees_park_resume_and_shed(self, types):
        from repro.flightrec.recorder import FlightRecorder

        parky, sheddy = types
        exe = Executive(node=0)
        exe.attach_flight_recorder(
            FlightRecorder(node=0, capacity=64, clock=exe.clock)
        )
        ledger, _ = _rig(exe)
        source, sink = Source("src"), Sink()
        exe.install(source)
        exe.install(sink)
        _wire(exe, ledger, source, sink, parky, capacity=1)
        _wire(exe, ledger, source, sink, sheddy, capacity=1)

        source.emit(parky, b"a")
        source.emit(parky, b"b")  # parked
        source.emit(sheddy, b"c")
        source.emit(sheddy, b"d")  # shed
        exe.run_until_idle()

        kinds = self._kinds(exe.flightrec)
        assert kinds.count(EV_DATAFLOW_PARK) == 1
        assert kinds.count(EV_DATAFLOW_SHED) == 1
        assert kinds.count(EV_DATAFLOW_RESUME) == 1

    def test_bootstrap_exports_dataflow_gauges(self):
        from repro.config.bootstrap import bootstrap
        from repro.dataflow.examples import event_builder_spec

        cluster = bootstrap(event_builder_spec(1, 1))
        snapshot = cluster.executives[0].metrics.snapshot()
        for name in ("dataflow_credits_available", "dataflow_parked",
                     "dataflow_parked_total", "dataflow_shed_total",
                     "dataflow_resumed_total"):
            assert name in snapshot
        assert snapshot["dataflow_credits_available"] > 0
