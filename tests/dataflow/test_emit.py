"""Typed emit: route resolution, delivery modes, zero-copy form."""

from __future__ import annotations

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.dataflow.registry import _unregister, message_type
from repro.i2o.errors import I2OError

XF_UNI = 0x0E20
XF_FAN = 0x0E21
XF_KEYED = 0x0E22


@pytest.fixture
def types():
    uni = message_type("test.emit-uni", XF_UNI)
    fan = message_type("test.emit-fan", XF_FAN, mode="fanout")
    keyed = message_type("test.emit-keyed", XF_KEYED, mode="keyed")
    yield uni, fan, keyed
    for name in ("test.emit-uni", "test.emit-fan", "test.emit-keyed"):
        _unregister(name)


class Sink(Listener):
    device_class = "test_sink"

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.got: list[bytes] = []

    def on_plugin(self) -> None:
        for xfunc in (XF_UNI, XF_FAN, XF_KEYED):
            self.bind(xfunc, self._take)

    def _take(self, frame) -> None:
        if not frame.is_reply:
            self.got.append(bytes(frame.payload))


class Source(Listener):
    device_class = "test_source"


@pytest.fixture
def exe():
    return Executive(node=0)


@pytest.fixture
def source(exe):
    src = Source("src")
    exe.install(src)
    return src


class TestEmit:
    def test_unrouted_emit_names_device_and_type(self, exe, types, source):
        uni, _, _ = types
        with pytest.raises(I2OError, match="'src'.*'test.emit-uni'"):
            source.emit(uni, b"x")

    def test_unicast_emit_reaches_the_single_target(self, exe, types, source):
        uni, _, _ = types
        sink = Sink("sink")
        exe.install(sink)
        source.connect_route(uni, {"sink": sink.tid})
        assert source.emit(uni, b"hello") == 1
        exe.run_until_idle()
        assert sink.got == [b"hello"]

    def test_unicast_with_multiple_targets_needs_a_key(
        self, exe, types, source
    ):
        uni, _, _ = types
        a, b = Sink("a"), Sink("b")
        exe.install(a)
        exe.install(b)
        source.connect_route(uni, {"a": a.tid, "b": b.tid})
        with pytest.raises(I2OError, match="2 targets"):
            source.emit(uni, b"x")
        assert source.emit(uni, b"x", key="b") == 1
        exe.run_until_idle()
        assert b.got == [b"x"] and a.got == []

    def test_fanout_emit_copies_to_every_target(self, exe, types, source):
        _, fan, _ = types
        sinks = [Sink(f"s{i}") for i in range(3)]
        for sink in sinks:
            exe.install(sink)
        source.connect_route(fan, {s.name: s.tid for s in sinks})
        assert source.emit(fan, b"all") == 3
        exe.run_until_idle()
        assert all(s.got == [b"all"] for s in sinks)

    def test_keyed_emit_requires_a_known_key(self, exe, types, source):
        _, _, keyed = types
        sink = Sink("sink")
        exe.install(sink)
        source.connect_route(keyed, {7: sink.tid})
        with pytest.raises(I2OError, match="no consumer keyed 9"):
            source.emit(keyed, b"x", key=9)
        source.emit(keyed, b"x", key=7)
        exe.run_until_idle()
        assert sink.got == [b"x"]

    def test_emit_into_builds_payload_in_place(self, exe, types, source):
        uni, _, _ = types
        sink = Sink("sink")
        exe.install(sink)
        source.connect_route(uni, {"sink": sink.tid})

        def writer(buf) -> None:
            buf[:4] = b"zero"

        assert source.emit_into(uni, 4, writer) == 1
        exe.run_until_idle()
        assert sink.got == [b"zero"]

    def test_reconnect_requires_replace(self, exe, types, source):
        uni, _, _ = types
        sink = Sink("sink")
        exe.install(sink)
        source.connect_route(uni, {"sink": sink.tid})
        with pytest.raises(I2OError, match="already"):
            source.connect_route(uni, {"sink": sink.tid})
        source.connect_route(uni, {"sink": sink.tid}, replace=True)

    def test_routes_survive_by_name_or_type(self, exe, types, source):
        uni, _, _ = types
        sink = Sink("sink")
        exe.install(sink)
        source.connect_route(uni, {"sink": sink.tid})
        assert source.routes_for("test.emit-uni").targets == {"sink": sink.tid}
        assert source.dataflow_targets(uni) == {"sink": sink.tid}
        assert source.dataflow_targets("test.emit-fan") == {}

    def test_drop_route_target_scopes_to_types(self, exe, types, source):
        uni, fan, _ = types
        sink = Sink("sink")
        exe.install(sink)
        source.connect_route(uni, {"sink": sink.tid})
        source.connect_route(fan, {"sink": sink.tid})
        assert source.drop_route_target("sink", types=(fan,))
        assert source.dataflow_targets(uni) == {"sink": sink.tid}
        assert source.dataflow_targets(fan) == {}
