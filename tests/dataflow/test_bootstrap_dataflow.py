"""Bootstrap-derived routing: declarations in, route tables out."""

from __future__ import annotations

import pytest

from repro.config.bootstrap import BootstrapError, bootstrap
from repro.dataflow.examples import air_traffic_spec, event_builder_spec
from tests.dataflow import fixtures


class TestDerivedEventBuilder:
    """The acceptance topology: 4 nodes, zero hand-wired routes."""

    @pytest.fixture
    def cluster(self):
        return bootstrap(event_builder_spec(2, 1))

    def test_routes_exist_without_any_connect_call(self, cluster):
        evm = cluster.device("evm")
        assert sorted(evm.ru_tids) == [0, 1]
        assert sorted(evm.bu_tids) == [0]
        bu = cluster.device("bu0")
        assert sorted(bu.ru_tids) == [0, 1]
        assert bu.evm_tid is not None
        assert cluster.device("trigger").evm_tid is not None

    def test_pipeline_builds_events_end_to_end(self, cluster):
        trigger = cluster.device("trigger")
        for _ in range(10):
            trigger.fire()
        cluster.pump()
        assert cluster.device("evm").export_counters()["completed"] == 10
        assert cluster.device("bu0").export_counters()["built"] == 10

    def test_round_robin_rebuilt_from_derived_routes(self):
        cluster = bootstrap(event_builder_spec(1, 2))
        trigger = cluster.device("trigger")
        for _ in range(8):
            trigger.fire()
        cluster.pump()
        built = [cluster.device(f"bu{i}").export_counters()["built"]
                 for i in range(2)]
        assert built == [4, 4]

    def test_graph_and_ledger_are_exposed(self, cluster):
        assert cluster.dataflow_graph.analyze() == []
        assert cluster.dataflow_ledger is not None
        for exe in cluster.executives.values():
            assert exe.dataflow is cluster.dataflow_ledger
            assert exe.dataflow_outbox is not None

    def test_edge_capacity_comes_from_consumer_queue_capacity(self, cluster):
        # ReadoutUnit declares queue_capacity=64; each RU hears
        # daq.readout from exactly one emitter, so the edge gets 64.
        ledger = cluster.dataflow_ledger
        readout_edges = [
            e for e in ledger.edges_from(0) if e.mtype.name == "daq.readout"
        ]
        assert len(readout_edges) == 2
        assert all(e.capacity == 64 for e in readout_edges)

    def test_air_traffic_boots_from_declarations(self):
        cluster = bootstrap(air_traffic_spec(2))
        correlator = cluster.device("correlator")
        assert correlator.console_tid is not None
        for i in range(2):
            assert cluster.device(f"radar{i}").correlator_tid is not None


class TestStrictAnalysis:
    def test_seeded_cycle_is_rejected_by_name(self):
        with pytest.raises(BootstrapError, match="cycle") as excinfo:
            bootstrap(fixtures.cycle_spec())
        assert "a -> " in str(excinfo.value) or "-> a" in str(excinfo.value)

    def test_missing_consumer_is_rejected_by_name(self):
        with pytest.raises(BootstrapError, match="missing-consumer"):
            bootstrap(fixtures.missing_consumer_spec())

    def test_missing_provider_is_rejected_by_name(self):
        with pytest.raises(BootstrapError, match="missing-provider"):
            bootstrap(fixtures.missing_provider_spec())

    def test_non_strict_boots_anyway(self):
        spec = fixtures.missing_consumer_spec()
        spec["dataflow"]["strict"] = False
        cluster = bootstrap(spec)
        assert [d.code for d in cluster.dataflow_graph.analyze()] == [
            "missing-consumer"
        ]

    def test_backpressure_off_wires_uncapped_routes(self):
        spec = event_builder_spec(1, 1)
        spec["dataflow"]["backpressure"] = False
        cluster = bootstrap(spec)
        evm = cluster.device("evm")
        assert evm.routes_for("daq.readout").edges is None
        assert cluster.dataflow_ledger.edges_from(0) == ()
        trigger = cluster.device("trigger")
        for _ in range(5):
            trigger.fire()
        cluster.pump()
        assert cluster.device("bu0").export_counters()["built"] == 5


class TestSpecValidation:
    def test_unknown_top_level_key_is_named(self):
        spec = event_builder_spec(1, 1)
        spec["dataflwo"] = {}
        with pytest.raises(BootstrapError, match="dataflwo"):
            bootstrap(spec)

    def test_bad_dataflow_value_is_named(self):
        spec = event_builder_spec(1, 1)
        spec["dataflow"] = {"edge_credits": 0}
        with pytest.raises(BootstrapError, match="edge_credits"):
            bootstrap(spec)

    def test_unknown_dataflow_key_is_named(self):
        spec = event_builder_spec(1, 1)
        spec["dataflow"] = {"credit_limit": 9}
        with pytest.raises(BootstrapError, match="credit_limit"):
            bootstrap(spec)

    def test_non_mapping_dataflow_section_rejected(self):
        spec = event_builder_spec(1, 1)
        spec["dataflow"] = True
        with pytest.raises(BootstrapError, match="mapping"):
            bootstrap(spec)

    def test_duplicate_device_name_is_named(self):
        spec = {
            "nodes": {
                0: {"devices": [
                    {"class": "repro.daq.trigger.TriggerSource",
                     "name": "twin"},
                ]},
                1: {"devices": [
                    {"class": "repro.daq.trigger.TriggerSource",
                     "name": "twin"},
                ]},
            },
        }
        with pytest.raises(BootstrapError, match="duplicate.*'twin'"):
            bootstrap(spec)

    def test_unknown_device_lookup_lists_available(self):
        from repro.config.bootstrap import UnknownDeviceError

        cluster = bootstrap(event_builder_spec(1, 1))
        with pytest.raises(UnknownDeviceError) as excinfo:
            cluster.device("ru9")
        message = str(excinfo.value)
        assert "no device named 'ru9'" in message
        for name in ("trigger", "evm", "ru0", "bu0"):
            assert name in message
        # It is also a KeyError, for mapping-style callers.
        assert isinstance(excinfo.value, KeyError)
