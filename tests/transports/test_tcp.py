"""TCP transport over real localhost sockets."""

from __future__ import annotations

import time

import pytest

from repro.core.executive import Executive
from repro.transports.agent import PeerTransportAgent
from repro.transports.base import TransportError
from repro.transports.tcp import TcpTransport

from tests.transports.harness import Caller, Echo

REMOTE_TID = 5
INITIATOR_TID = 0

# Round-trip, burst, large-payload and counter semantics are covered
# for every transport by tests/transports/test_conformance.py; this
# module keeps only what is TCP-specific (socket learning, dialing).


@pytest.fixture
def tcp_cluster():
    """Two threaded executives joined by real TCP sockets."""
    exes, pts = {}, {}
    for node in range(2):
        exe = Executive(node=node)
        pt = TcpTransport(name="tcp")
        PeerTransportAgent.attach(exe).register(pt, default=True)
        exes[node], pts[node] = exe, pt
    # Exchange the ephemeral ports.
    pts[0].add_peer(1, "127.0.0.1", pts[1].bound_port)
    pts[1].add_peer(0, "127.0.0.1", pts[0].bound_port)
    for exe in exes.values():
        exe.start(poll_interval=0.001)
    yield exes, pts
    for exe in exes.values():
        exe.stop()
    for pt in pts.values():
        pt.shutdown()
    for exe in exes.values():
        exe.pool.check_conservation()


def wait_for(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestTcp:
    def test_reverse_path_learned_from_accepted_connection(self, tcp_cluster):
        """The reply comes back over the same socket the request used,
        even though node 1 never dialled node 0."""
        exes, pts = tcp_cluster
        pts[1].peers.clear()  # node 1 cannot dial out at all
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        caller.send(exes[0].create_proxy(1, echo_tid), b"learned",
                    xfunction=0x1)
        assert wait_for(lambda: caller.replies == [b"learned"])

    def test_unconfigured_peer_raises(self):
        exe = Executive(node=0)
        pt = TcpTransport(name="tcp")
        PeerTransportAgent.attach(exe).register(pt, default=True)
        try:
            frame = exe.frame_alloc(0, target=REMOTE_TID,
                                    initiator=INITIATOR_TID)
            from repro.core.executive import Route

            with pytest.raises(TransportError, match="no TCP address"):
                pt.transmit(frame, Route(node=42, remote_tid=REMOTE_TID))
            exe.frame_free(frame)
        finally:
            pt.shutdown()
