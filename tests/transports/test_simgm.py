"""The simulated Myrinet/GM peer transport."""

from __future__ import annotations

from repro.bench.pingpong import build_gm_cluster
from repro.core.probes import CostModel


def run_pingpong(payload: int, rounds: int, cost_model=None):
    cluster = build_gm_cluster(cost_model=cost_model)
    cluster.ping.configure(cluster.ping.peer, payload, rounds)
    cluster.sim.at(0, cluster.ping.kick)
    cluster.sim.run()
    return cluster


class TestRoundTrips:
    def test_all_rounds_complete(self):
        cluster = run_pingpong(256, 50)
        assert len(cluster.ping.rtts_ns) == 50
        assert cluster.echo.echoed == 50

    def test_payload_integrity_checked_by_ping_device(self):
        # PingDevice raises if the echo truncates; completing is the assert.
        cluster = run_pingpong(4096, 10)
        assert len(cluster.ping.rtts_ns) == 10

    def test_no_leaked_blocks_after_run(self):
        cluster = run_pingpong(1024, 30)
        cluster.exe_a.pool.check_conservation()
        cluster.exe_b.pool.check_conservation()
        assert cluster.exe_a.pool.in_flight == 0
        assert cluster.exe_b.pool.in_flight == 0

    def test_rtt_grows_with_payload(self):
        small = run_pingpong(64, 20).ping.rtts_ns[-1]
        large = run_pingpong(4096, 20).ping.rtts_ns[-1]
        assert large > small

    def test_framework_overhead_is_cost_model_dependent(self):
        slow = run_pingpong(256, 20).ping.rtts_ns[-1]
        fast = run_pingpong(
            256, 20, cost_model=CostModel.optimised_allocator()
        ).ping.rtts_ns[-1]
        assert fast < slow

    def test_steady_state_rtt_is_deterministic_constant(self):
        cluster = run_pingpong(512, 30)
        steady = cluster.ping.rtts_ns[5:]
        assert len(set(steady)) == 1  # fully deterministic model


class TestGmTransportInternals:
    def test_receive_tokens_replenished(self):
        cluster = run_pingpong(64, 40)
        pt = cluster.exe_b.pta.transport("gm")
        assert pt.port is not None
        assert pt.port.dropped == 0
        # All provided buffers returned: pending backlog empty.
        assert pt.staged == 0
        assert not pt.has_pending

    def test_wire_counter_matches_rounds(self):
        cluster = run_pingpong(64, 25)
        assert cluster.fabric.stats.messages == 50  # 25 each way
        pt_a = cluster.exe_a.pta.transport("gm")
        assert pt_a.frames_sent == 25
        assert pt_a.frames_received == 25
