"""The fault-injecting transport itself."""

from __future__ import annotations

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.daq.events import FragmentError, parse_fragment, synthesize_fragment
from repro.i2o.frame import Frame
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork


class Sink(Listener):
    def __init__(self, name="sink"):
        super().__init__(name)
        self.payloads: list[bytes] = []

    def on_plugin(self):
        self.bind(0x1, lambda f: self.payloads.append(bytes(f.payload))
                  if not f.is_reply else None)


def build(plan: FaultPlan, seed: int = 0):
    network = LoopbackNetwork()
    exes = {}
    for node in range(2):
        exe = Executive(node=node)
        PeerTransportAgent.attach(exe).register(
            FaultyLoopbackTransport(network, plan, seed=seed + node),
            default=True,
        )
        exes[node] = exe
    sink = Sink()
    sink_tid = exes[1].install(sink)
    sender = Listener("sender")
    exes[0].install(sender)
    proxy = exes[0].create_proxy(1, sink_tid)
    return exes, sender, sink, proxy


def pump(exes):
    for _ in range(10_000):
        if not any(e.step() for e in exes.values()):
            return


class TestPlanValidation:
    def test_rates_bounded(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_rate=-0.1)


class TestFaults:
    def test_no_faults_is_transparent(self):
        exes, sender, sink, proxy = build(FaultPlan())
        for i in range(10):
            sender.send(proxy, f"m{i}".encode(), xfunction=0x1)
        pump(exes)
        assert sink.payloads == [f"m{i}".encode() for i in range(10)]

    def test_drop_rate_one_loses_everything(self):
        exes, sender, sink, proxy = build(FaultPlan(drop_rate=1.0))
        for _ in range(5):
            sender.send(proxy, b"x", xfunction=0x1)
        pump(exes)
        assert sink.payloads == []
        pt = exes[0].pta.transport("faulty")
        assert pt.dropped == 5
        exes[0].pool.check_conservation()
        assert exes[0].pool.in_flight == 0  # dropped frames still freed

    def test_duplicates_counted_and_delivered_twice(self):
        exes, sender, sink, proxy = build(FaultPlan(duplicate_rate=1.0))
        sender.send(proxy, b"dup", xfunction=0x1)
        pump(exes)
        assert sink.payloads == [b"dup", b"dup"]
        assert exes[0].pta.transport("faulty").duplicated == 1

    def test_partial_drop_statistics(self):
        exes, sender, sink, proxy = build(FaultPlan(drop_rate=0.3), seed=5)
        for i in range(200):
            sender.send(proxy, bytes([i % 256]), xfunction=0x1)
            pump(exes)
        delivered = len(sink.payloads)
        assert 100 < delivered < 180  # ~140 expected

    def test_determinism_per_seed(self):
        def run(seed):
            exes, sender, sink, proxy = build(FaultPlan(drop_rate=0.5),
                                              seed=seed)
            for i in range(50):
                sender.send(proxy, bytes([i]), xfunction=0x1)
            pump(exes)
            return sink.payloads

        assert run(3) == run(3)
        assert run(3) != run(4)

    def test_corruption_lands_in_payload_and_frame_still_parses(self):
        exes, sender, sink, proxy = build(FaultPlan(corrupt_rate=1.0))
        original = bytes(range(64))
        sender.send(proxy, original, xfunction=0x1)
        pump(exes)
        assert len(sink.payloads) == 1  # delivered, not rejected
        assert sink.payloads[0] != original  # but damaged
        assert len(sink.payloads[0]) == len(original)

    def test_corruption_caught_by_daq_crc(self):
        """End-to-end integrity: the DAQ fragment CRC catches what the
        wire-level validation cannot."""
        exes, sender, sink, proxy = build(FaultPlan(corrupt_rate=1.0))
        fragment = synthesize_fragment(1, 0)
        sender.send(proxy, fragment, xfunction=0x1)
        pump(exes)
        with pytest.raises(FragmentError):
            parse_fragment(sink.payloads[0])

    def test_delay_reorders_across_poll_rounds(self):
        exes, sender, sink, proxy = build(FaultPlan(delay_rate=0.5), seed=9)
        for i in range(30):
            sender.send(proxy, bytes([i]), xfunction=0x1)
        pump(exes)
        assert sorted(sink.payloads) == [bytes([i]) for i in range(30)]
        assert sink.payloads != [bytes([i]) for i in range(30)]  # reordered
        assert exes[0].pta.transport("faulty").delayed > 0


class TestDelayedDrain:
    def test_last_message_delayed_is_not_stranded(self):
        """Regression: a delayed message with no later traffic behind
        it used to sit in the delay queue forever because promotion
        only happened when fresh arrivals were staged.  An idle wire
        must still drain within the normal pump loop."""
        exes, sender, sink, proxy = build(FaultPlan(delay_rate=1.0))
        sender.send(proxy, b"last", xfunction=0x1)
        pump(exes)
        assert sink.payloads == [b"last"]
        pt = exes[1].pta.transport("faulty")
        assert not pt.has_pending
        assert exes[0].pool.in_flight == 0

    def test_every_message_delayed_still_all_delivered(self):
        exes, sender, sink, proxy = build(FaultPlan(delay_rate=1.0))
        for i in range(10):
            sender.send(proxy, bytes([i]), xfunction=0x1)
        pump(exes)
        assert sorted(sink.payloads) == [bytes([i]) for i in range(10)]

    def test_flush_delivers_delayed_traffic_immediately(self):
        exes, sender, sink, proxy = build(FaultPlan(delay_rate=1.0))
        sender.send(proxy, b"held", xfunction=0x1)
        exes[0].step()  # transmit: lands in node 1's delay queue
        pt = exes[1].pta.transport("faulty")
        assert pt.has_pending
        assert pt.flush() is True
        pump(exes)
        assert sink.payloads == [b"held"]

    def test_flush_on_idle_wire_is_a_noop(self):
        exes, *_ = build(FaultPlan())
        assert exes[1].pta.transport("faulty").flush() is False


class TestPartition:
    def test_self_partition_cuts_both_directions(self):
        exes, sender, sink, proxy = build(FaultPlan())
        pt1 = exes[1].pta.transport("faulty")
        pt1.partition()  # node 1 falls off the network entirely
        for _ in range(3):
            sender.send(proxy, b"void", xfunction=0x1)
        pump(exes)
        assert sink.payloads == []
        assert pt1.partition_dropped == 3  # ingress dropped at poll
        assert pt1.is_cut(0)
        exes[0].pool.check_conservation()
        assert exes[0].pool.in_flight == 0

    def test_egress_partition_drops_at_transmit(self):
        exes, sender, sink, proxy = build(FaultPlan())
        pt0 = exes[0].pta.transport("faulty")
        pt0.partition(1)
        sender.send(proxy, b"x", xfunction=0x1)
        pump(exes)
        assert sink.payloads == []
        assert pt0.partition_dropped == 1
        assert exes[0].pool.in_flight == 0

    def test_heal_restores_delivery(self):
        exes, sender, sink, proxy = build(FaultPlan())
        pt1 = exes[1].pta.transport("faulty")
        pt1.partition()
        sender.send(proxy, b"lost", xfunction=0x1)
        pump(exes)
        pt1.heal()
        sender.send(proxy, b"found", xfunction=0x1)
        pump(exes)
        assert sink.payloads == [b"found"]
        assert not pt1.is_cut(0)

    def test_partial_partition_only_cuts_named_nodes(self):
        network = LoopbackNetwork()
        exes = {}
        for node in range(3):
            exe = Executive(node=node)
            PeerTransportAgent.attach(exe).register(
                FaultyLoopbackTransport(network, FaultPlan(), seed=node),
                default=True,
            )
            exes[node] = exe
        sinks = {n: Sink(f"sink{n}") for n in (1, 2)}
        tids = {n: exes[n].install(sinks[n]) for n in (1, 2)}
        sender = Listener("sender")
        exes[0].install(sender)
        exes[0].pta.transport("faulty").partition(2)
        for n in (1, 2):
            sender.send(exes[0].create_proxy(n, tids[n]), b"hi",
                        xfunction=0x1)
        pump(exes)
        assert sinks[1].payloads == [b"hi"]
        assert sinks[2].payloads == []
