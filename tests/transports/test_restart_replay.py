"""Restart-replay conformance: journal recovery over every transport.

The durable stream must be transport-agnostic, like everything else in
the framework (§6 portability): a journaled endpoint that restarts
replays its unacknowledged tail over whatever wire the PTA routes to,
with exactly-once delivery preserved end to end — and the replayed
traffic stays inside the zero-copy budgets PR 3 established for each
transport.  The endpoint restart is a *device* restart here (uninstall,
reopen the journal, reinstall at the same TiD); whole-node death is
exercised on the loopback plane in ``tests/durable`` and
``tests/integration/test_kill_rejoin.py``.
"""

from __future__ import annotations

import pytest

from repro.core.reliable import ReliableEndpoint
from repro.durable.segments import SegmentStore

from tests.transports import test_conformance
from tests.transports.harness import FACTORIES

# The same per-transport budgets the conformance suite enforces (the
# module — not the class — is imported so pytest doesn't re-collect
# the whole conformance suite here).
COPY_BUDGETS = test_conformance.TestTransportContract.COPY_BUDGETS

#: Far beyond any test's virtual or wall time: replay must not depend
#: on retransmission timers, and spurious retransmits would break the
#: copy accounting below.
NEVER_NS = 10**15


@pytest.fixture(params=sorted(FACTORIES))
def harness(request):
    h = FACTORIES[request.param]()
    yield h
    h.finish()


def _wire(harness, journal):
    rx = ReliableEndpoint(name="rx", retransmit_ns=NEVER_NS)
    received = []
    rx.consumer = lambda src, data: received.append(bytes(data))
    harness.exes[1].install(rx)
    tx = ReliableEndpoint(name="tx", retransmit_ns=NEVER_NS, journal=journal)
    harness.exes[0].install(tx)
    return tx, rx, received


def _pause_threads(harness):
    """Threaded harnesses (TCP) must not race the endpoint swap."""
    for exe in harness.exes.values():
        if getattr(exe, "_thread", None) is not None:
            exe.stop()


def _resume_threads(harness):
    if harness.name == "tcp":
        for exe in harness.exes.values():
            exe.start(poll_interval=0.001)


def test_restart_replay_exactly_once_within_copy_budget(harness, tmp_path):
    path = tmp_path / "tx.journal"
    tx, rx, received = _wire(harness, SegmentStore(path))
    tx_tid = int(tx.tid)
    peer = harness.exes[0].create_proxy(1, rx.tid)

    # Pause any executive threads so the swap below cannot race the
    # delivery of batch1: every harness then journals the whole batch
    # with nothing acknowledged yet, and the replay count is exact.
    _pause_threads(harness)
    batch1 = [f"pre-crash-{i}".encode() for i in range(6)]
    for payload in batch1:
        tx.send_reliable(peer, payload)

    # Restart the endpoint: clean uninstall (timers cancelled, journal
    # flushed), journal reopened, replacement installed at the same
    # TiD.  Recovery owes the receiver each batch1 message exactly
    # once — whatever overlap the pre-restart queues still deliver is
    # the receiver's dedup problem, not the consumer's.
    harness.exes[0].uninstall(tx.tid)
    tx.journal.close()
    store2 = SegmentStore(path)
    tx2 = ReliableEndpoint(
        name="tx", retransmit_ns=NEVER_NS, journal=store2
    )
    harness.exes[0].install(tx2, tid=tx_tid)
    assert tx2.replayed == len(batch1)
    assert tx2.recoveries == 1
    _resume_threads(harness)

    peer2 = harness.exes[0].create_proxy(1, rx.tid)
    batch2 = [f"post-crash-{i}".encode() for i in range(6)]
    for payload in batch2:
        tx2.send_reliable(peer2, payload)

    everything = sorted(batch1 + batch2)
    assert harness.run_until(
        lambda: sorted(received) == everything
    ), f"{harness.name}: {len(received)}/{len(everything)} delivered"
    assert harness.run_until(lambda: tx2.in_flight == 0)
    assert sorted(received) == everything  # exactly once, no extras
    assert rx.delivered == len(everything)
    assert store2.depth == 0  # every replayed send was retired

    # The replayed path is the ordinary send path: per-transport copy
    # budgets hold exactly as in the conformance suite.
    tx_rate, rx_rate = COPY_BUDGETS[harness.name]
    for pt in harness.pts.values():
        assert pt.tx_copies == tx_rate * pt.frames_sent, (
            f"{harness.name}: {pt.tx_copies} tx copies for "
            f"{pt.frames_sent} sent frames"
        )
        assert pt.rx_copies == rx_rate * pt.frames_received, (
            f"{harness.name}: {pt.rx_copies} rx copies for "
            f"{pt.frames_received} received frames"
        )

    # Teardown hygiene: disarm the far-future retransmit timers so the
    # harness's idle-drain finish() isn't held hostage by them.
    _pause_threads(harness)
    harness.exes[0].uninstall(tx2.tid)
    harness.exes[1].uninstall(rx.tid)
    store2.close()
    _resume_threads(harness)
