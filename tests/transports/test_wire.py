"""Wire encapsulation."""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2o.errors import FrameFormatError
from repro.i2o.frame import HEADER_SIZE, Frame
from repro.transports.wire import (
    WIRE_HEADER_SIZE,
    decode_wire,
    encode_wire,
    encode_wire_into,
    encode_wire_parts,
    read_wire_header,
    recv_into_exact,
)


TARGET_TID = 3
INITIATOR_TID = 4


def frame(payload=b"data"):
    return Frame.build(target=TARGET_TID, initiator=INITIATOR_TID,
                       payload=payload, xfunction=0x10)


def test_round_trip():
    f = frame()
    src, body = decode_wire(encode_wire(7, f))
    assert src == 7
    assert Frame.parse(body).same_message(f)


def test_header_size():
    assert WIRE_HEADER_SIZE == 12
    assert len(encode_wire(0, frame(b""))) == 12 + 32


def test_bad_magic_rejected():
    data = bytearray(encode_wire(1, frame()))
    data[0] ^= 0xFF
    with pytest.raises(FrameFormatError, match="magic"):
        decode_wire(data)


def test_truncated_rejected():
    data = encode_wire(1, frame())
    with pytest.raises(FrameFormatError):
        decode_wire(data[:-1])


def test_trailing_garbage_rejected():
    data = encode_wire(1, frame()) + b"extra"
    with pytest.raises(FrameFormatError, match="disagrees"):
        decode_wire(data)


def test_too_short_rejected():
    with pytest.raises(FrameFormatError, match="short"):
        decode_wire(b"xy")


@given(src=st.integers(0, 2**32 - 1), payload=st.binary(max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_round_trip(src, payload):
    f = frame(payload)
    got_src, body = decode_wire(encode_wire(src, f))
    assert got_src == src
    assert Frame.parse(body).same_message(f)


# -- scatter-gather forms ---------------------------------------------------


def test_parts_equal_flat_encoding():
    f = frame(b"iovec me")
    header, body = encode_wire_parts(9, f)
    assert isinstance(body, memoryview)
    assert header + bytes(body) == encode_wire(9, f)


def test_parts_body_aliases_frame_buffer():
    f = frame(b"alias")
    _, body = encode_wire_parts(1, f)
    f.payload[0] = ord(b"A")
    assert bytes(body[-5:]) == b"Alias"


def test_encode_into_matches_flat_encoding():
    f = frame(b"staged")
    out = bytearray(WIRE_HEADER_SIZE + f.total_size + 8)
    n = encode_wire_into(3, f, out)
    assert n == WIRE_HEADER_SIZE + f.total_size
    assert bytes(out[:n]) == encode_wire(3, f)


def test_encode_into_rejects_small_buffer():
    f = frame(b"too big")
    with pytest.raises(FrameFormatError, match="too small"):
        encode_wire_into(3, f, bytearray(8))


def test_decode_returns_zero_copy_view():
    data = bytearray(encode_wire(2, frame(b"view")))
    _, body = decode_wire(data)
    assert isinstance(body, memoryview)
    data[WIRE_HEADER_SIZE + HEADER_SIZE] ^= 0xFF  # mutates through
    assert body[HEADER_SIZE] == data[WIRE_HEADER_SIZE + HEADER_SIZE]


# -- streaming re-framer ----------------------------------------------------


def _chunked_reader(data: bytes, chunk: int):
    """A recv_into-shaped reader that returns at most ``chunk`` bytes
    per call — simulates TCP delivering a message in pieces."""
    stream = io.BytesIO(data)

    def recv_into(view: memoryview) -> int:
        return stream.readinto(view[: min(len(view), chunk)])

    return recv_into


@pytest.mark.parametrize("chunk", [1, 5, 1024])
def test_reframe_stream(chunk):
    f = frame(b"stream me")
    reader = _chunked_reader(encode_wire(6, f), chunk)
    src, length = read_wire_header(reader)
    assert src == 6
    assert length == f.total_size
    sink = bytearray(length)
    assert recv_into_exact(reader, memoryview(sink))
    assert Frame.parse(sink).same_message(f)


def test_reframe_clean_eof_returns_none():
    assert read_wire_header(_chunked_reader(b"", 64)) is None


def test_reframe_eof_mid_header_raises():
    data = encode_wire(1, frame())[:6]
    with pytest.raises(FrameFormatError, match="mid wire header"):
        read_wire_header(_chunked_reader(data, 4))


def test_reframe_bad_magic_raises():
    data = bytearray(encode_wire(1, frame()))
    data[1] ^= 0xFF
    with pytest.raises(FrameFormatError, match="magic"):
        read_wire_header(_chunked_reader(bytes(data), 64))


def test_reframe_implausible_length_raises():
    import struct

    data = struct.pack("<III", 0x58444151, 0, 5)  # < HEADER_SIZE
    with pytest.raises(FrameFormatError, match="implausible"):
        read_wire_header(_chunked_reader(data, 64))


def test_recv_into_exact_eof_mid_frame():
    f = frame(b"cut short")
    data = encode_wire(1, f)[: WIRE_HEADER_SIZE + 10]
    reader = _chunked_reader(data, 64)
    src, length = read_wire_header(reader)
    sink = bytearray(length)
    assert not recv_into_exact(reader, memoryview(sink))
