"""Wire encapsulation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.i2o.errors import FrameFormatError
from repro.i2o.frame import Frame
from repro.transports.wire import WIRE_HEADER_SIZE, decode_wire, encode_wire


def frame(payload=b"data"):
    return Frame.build(target=3, initiator=4, payload=payload, xfunction=0x10)


def test_round_trip():
    f = frame()
    src, body = decode_wire(encode_wire(7, f))
    assert src == 7
    assert Frame.parse(body).same_message(f)


def test_header_size():
    assert WIRE_HEADER_SIZE == 12
    assert len(encode_wire(0, frame(b""))) == 12 + 32


def test_bad_magic_rejected():
    data = bytearray(encode_wire(1, frame()))
    data[0] ^= 0xFF
    with pytest.raises(FrameFormatError, match="magic"):
        decode_wire(data)


def test_truncated_rejected():
    data = encode_wire(1, frame())
    with pytest.raises(FrameFormatError):
        decode_wire(data[:-1])


def test_trailing_garbage_rejected():
    data = encode_wire(1, frame()) + b"extra"
    with pytest.raises(FrameFormatError, match="disagrees"):
        decode_wire(data)


def test_too_short_rejected():
    with pytest.raises(FrameFormatError, match="short"):
        decode_wire(b"xy")


@given(src=st.integers(0, 2**32 - 1), payload=st.binary(max_size=300))
@settings(max_examples=60, deadline=None)
def test_property_round_trip(src, payload):
    f = frame(payload)
    got_src, body = decode_wire(encode_wire(src, f))
    assert got_src == src
    assert Frame.parse(body).same_message(f)
