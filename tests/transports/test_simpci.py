"""The PCI host<->IOP transport and the hardware-FIFO experiment arm."""

from __future__ import annotations

import pytest

from repro.bench.devices import EchoDevice, PingDevice
from repro.core.executive import Executive
from repro.core.probes import CostModel
from repro.core.simnode import SimNode
from repro.hw.pci import IopBoard, PciBus
from repro.sim.kernel import Simulator
from repro.transports.agent import PeerTransportAgent
from repro.transports.base import TransportError
from repro.transports.simpci import SimPciTransport

REMOTE_TID = 5
INITIATOR_TID = 0


def build(hardware: bool):
    sim = Simulator()
    board = IopBoard(sim, PciBus(sim), hardware_fifos=hardware)
    host_exe, iop_exe = Executive(node=0), Executive(node=1)
    host_node = SimNode(sim, host_exe, cost_model=CostModel.paper_table1())
    iop_node = SimNode(sim, iop_exe, cost_model=CostModel.paper_table1())
    host_pt, iop_pt = SimPciTransport.pair(sim, board, host_node=0, iop_node=1)
    PeerTransportAgent.attach(host_exe).register(host_pt, default=True)
    PeerTransportAgent.attach(iop_exe).register(iop_pt, default=True)
    host_node.attach_transport_hooks()
    iop_node.attach_transport_hooks()
    return sim, board, host_exe, iop_exe


def run_pingpong(hardware: bool, payload=256, rounds=20):
    sim, board, host_exe, iop_exe = build(hardware)
    echo_tid = iop_exe.install(EchoDevice())
    ping = PingDevice()
    host_exe.install(ping)
    ping.configure(host_exe.create_proxy(1, echo_tid), payload, rounds)
    sim.at(0, ping.kick)
    sim.run()
    return ping, board


class TestTransport:
    def test_round_trip_completes(self):
        ping, board = run_pingpong(hardware=True)
        assert len(ping.rtts_ns) == 20
        assert board.inbound.posts == 20
        assert board.outbound.posts == 20

    def test_side_validation(self):
        sim = Simulator()
        board = IopBoard(sim, PciBus(sim))
        with pytest.raises(TransportError):
            SimPciTransport(sim, board, side="sideways", peer_node=1)

    def test_wrong_destination_rejected(self):
        sim, board, host_exe, _ = build(hardware=True)
        pt = host_exe.pta.transport("pci-host")
        frame = host_exe.frame_alloc(0, target=REMOTE_TID,
                                     initiator=INITIATOR_TID)
        from repro.core.executive import Route

        with pytest.raises(TransportError, match="reaches only"):
            pt.transmit(frame, Route(node=9, remote_tid=REMOTE_TID))
        host_exe.frame_free(frame)


class TestHardwareFifoClaim:
    def test_hardware_fifos_are_faster(self):
        """The §7 experiment: hardware queue support must beat
        software queue management."""
        hw, _ = run_pingpong(hardware=True)
        sw, _ = run_pingpong(hardware=False)
        assert hw.rtts_ns[-1] < sw.rtts_ns[-1]

    def test_saving_scales_with_queue_cost_difference(self):
        hw, board_hw = run_pingpong(hardware=True)
        sw, board_sw = run_pingpong(hardware=False)
        params = board_hw.bus.params
        per_hop_saving = (
            params.sw_queue_post_ns + params.sw_queue_fetch_ns
            - 2 * params.hw_fifo_post_ns
        )
        measured = (sw.rtts_ns[-1] - hw.rtts_ns[-1]) / 2  # per one-way
        # one post + one fetch saved per direction
        assert measured == pytest.approx(per_hop_saving, rel=0.25)
