"""The Peer Transport Agent: registration and route resolution."""

from __future__ import annotations

import pytest

from repro.core.executive import Executive, Route
from repro.i2o.tid import PTA_TID
from repro.transports.agent import PeerTransportAgent
from repro.transports.base import PeerTransport, TransportError
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport

REMOTE_TID = 1
WIRE_TARGET_TID = 0x55
LOCAL_TARGET_TID = 99
INITIATOR_TID = 0


class FakePt(PeerTransport):
    def __init__(self, name: str) -> None:
        super().__init__(name=name, mode="polling")
        self.sent: list[tuple[int, int]] = []  # (node, wire_target)

    def transmit(self, frame, route) -> None:
        self.sent.append((route.node, frame.target))
        self._require_live().frame_free(frame)


@pytest.fixture
def exe_with_pta():
    exe = Executive(node=0)
    pta = PeerTransportAgent.attach(exe)
    return exe, pta


class TestRegistration:
    def test_attach_occupies_tid_one(self, exe_with_pta):
        exe, pta = exe_with_pta
        assert exe.device(PTA_TID) is pta
        assert exe.pta is pta

    def test_register_installs_transport_as_device(self, exe_with_pta):
        exe, pta = exe_with_pta
        pt = FakePt("x")
        pta.register(pt)
        assert pt.tid is not None
        assert exe.device(pt.tid) is pt

    def test_duplicate_name_rejected(self, exe_with_pta):
        _, pta = exe_with_pta
        pta.register(FakePt("dup"))
        with pytest.raises(TransportError):
            pta.register(FakePt("dup"))

    def test_foreign_transport_rejected(self, exe_with_pta):
        _, pta = exe_with_pta
        other = Executive(node=9)
        pt = FakePt("foreign")
        other.install(pt)
        with pytest.raises(TransportError, match="another executive"):
            pta.register(pt)

    def test_polling_pt_registered_with_executive(self, exe_with_pta):
        exe, pta = exe_with_pta
        pt = pta.register(FakePt("p"))
        assert pt in exe._pollable

    def test_transport_lookup(self, exe_with_pta):
        _, pta = exe_with_pta
        pt = pta.register(FakePt("named"))
        assert pta.transport("named") is pt
        with pytest.raises(TransportError):
            pta.transport("ghost")


class TestResolution:
    def test_default_transport(self, exe_with_pta):
        _, pta = exe_with_pta
        pt = pta.register(FakePt("only"), default=True)
        assert pta.resolve(Route(node=5, remote_tid=REMOTE_TID)) is pt

    def test_per_node_pin_beats_default(self, exe_with_pta):
        _, pta = exe_with_pta
        default = pta.register(FakePt("default"), default=True)
        pinned = pta.register(FakePt("pinned"), nodes=[7])
        assert pta.resolve(Route(node=7, remote_tid=REMOTE_TID)) is pinned
        assert pta.resolve(Route(node=8, remote_tid=REMOTE_TID)) is default

    def test_route_pin_beats_everything(self, exe_with_pta):
        _, pta = exe_with_pta
        pta.register(FakePt("default"), default=True)
        special = pta.register(FakePt("special"))
        route = Route(node=7, remote_tid=REMOTE_TID, transport="special")
        assert pta.resolve(route) is special

    def test_unknown_route_transport(self, exe_with_pta):
        _, pta = exe_with_pta
        pta.register(FakePt("a"), default=True)
        with pytest.raises(TransportError, match="unknown transport"):
            pta.resolve(Route(node=1, remote_tid=REMOTE_TID, transport="nope"))

    def test_no_transport_at_all(self, exe_with_pta):
        _, pta = exe_with_pta
        with pytest.raises(TransportError):
            pta.resolve(Route(node=1, remote_tid=REMOTE_TID))


class TestForwarding:
    def test_forward_rewrites_wire_target(self, exe_with_pta):
        exe, pta = exe_with_pta
        pt = pta.register(FakePt("x"), default=True)
        frame = exe.frame_alloc(0, target=LOCAL_TARGET_TID, initiator=INITIATOR_TID)
        pta.forward(frame, Route(node=3, remote_tid=WIRE_TARGET_TID))
        assert pt.sent == [(3, WIRE_TARGET_TID)]
        assert pta.forwarded == 1

    def test_failed_transmit_restores_target(self, exe_with_pta):
        """A transmit that raises before taking ownership must leave the
        frame exactly as the caller handed it over: original target,
        forwarded counter untouched — the executive retries or
        dead-letters with the caller's addressing intact."""
        exe, pta = exe_with_pta

        class RefusingPt(FakePt):
            def transmit(self, frame, route) -> None:
                raise TransportError("link down")

        pta.register(RefusingPt("bad"), default=True)
        frame = exe.frame_alloc(0, target=LOCAL_TARGET_TID, initiator=INITIATOR_TID)
        with pytest.raises(TransportError, match="link down"):
            pta.forward(frame, Route(node=3, remote_tid=WIRE_TARGET_TID))
        assert frame.target == LOCAL_TARGET_TID
        assert pta.forwarded == 0
        exe.frame_free(frame)
        exe.pool.check_conservation()

    def test_forward_to_suspended_raises(self, exe_with_pta):
        exe, pta = exe_with_pta
        pt = pta.register(FakePt("x"), default=True)
        pt.suspend()
        frame = exe.frame_alloc(0, target=LOCAL_TARGET_TID, initiator=INITIATOR_TID)
        with pytest.raises(TransportError, match="suspended"):
            pta.forward(frame, Route(node=3, remote_tid=WIRE_TARGET_TID))
        exe.frame_free(frame)
        pt.resume()
        frame2 = exe.frame_alloc(0, target=LOCAL_TARGET_TID, initiator=INITIATOR_TID)
        pta.forward(frame2, Route(node=3, remote_tid=WIRE_TARGET_TID))
        assert len(pt.sent) == 1

    def test_suspended_route_dead_letters_not_crashes(self):
        """End to end: executive turns the transport failure into a
        failure reply for the initiator."""
        net = LoopbackNetwork()
        exe = Executive(node=0)
        pta = PeerTransportAgent.attach(exe)
        pt = pta.register(LoopbackTransport(net), default=True)
        pt.suspend()
        from repro.core.device import Listener

        sender = Listener("s")
        exe.install(sender)
        failures = []
        sender.bind(0x1, lambda f: failures.append(f.is_failure))
        proxy = exe.create_proxy(1, 0x20)
        sender.send(proxy, b"x", xfunction=0x1)
        exe.run_until_idle()
        assert failures == [True]
        exe.pool.check_conservation()
        assert exe.pool.in_flight == 0
