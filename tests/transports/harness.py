"""Shared cross-transport test rig.

Every peer transport honours the same contract (deliver addressed
frames between executives, exactly once, with balanced counters and no
pool leaks) but needs a different way of *driving* the cluster: the
in-process transports are stepped, TCP runs threaded executives and
waits on wall time, the simulation-plane transports run under the
discrete-event kernel.  A :class:`TransportHarness` hides that
difference behind ``run_until`` so one conformance module
(``test_conformance.py``) can exercise them all, and the per-transport
modules import :class:`Echo` / :class:`Caller` from here instead of
re-declaring them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.core.probes import CostModel
from repro.core.simnode import SimNode
from repro.hw.infiniband import IbFabric
from repro.hw.myrinet import Fabric
from repro.hw.pci import IopBoard, PciBus
from repro.sim.kernel import Simulator
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport
from repro.transports.queued import QueuePair, QueueTransport
from repro.transports.simgm import SimGmTransport
from repro.transports.simib import SimIbTransport
from repro.transports.simpci import SimPciTransport
from repro.transports.tcp import TcpTransport


class Echo(Listener):
    """Replies to xfunction 0x1 with the request payload."""

    def on_plugin(self):
        self.bind(0x1, self._h)

    def _h(self, frame):
        if not frame.is_reply:
            self.reply(frame, frame.payload)


class Caller(Listener):
    """Records echo replies (0x1) and failure verdicts (0x2), plus the
    ``transaction_context`` each reply carried (trace propagation)."""

    def __init__(self, name="caller"):
        super().__init__(name)
        self.replies: list[bytes] = []
        self.failures: list[bool] = []
        self.reply_contexts: list[int] = []

    def on_plugin(self):
        self.bind(0x1, self._on_echo_reply)
        self.bind(0x2, lambda f: self.failures.append(f.is_failure)
                  if f.is_reply else None)

    def _on_echo_reply(self, frame):
        if frame.is_reply:
            self.replies.append(bytes(frame.payload))
            self.reply_contexts.append(frame.transaction_context)


@dataclass
class TransportHarness:
    """A two-node cluster plus the knowledge of how to drive it."""

    name: str
    exes: dict[int, Executive]
    pts: dict[int, object]
    _run_until: Callable[[Callable[[], bool]], bool]
    _cleanup: Callable[[], None] = field(default=lambda: None)
    #: does the transport preserve send order end to end?
    ordered: bool = True
    #: burst size for the exactly-once test (kept under the smallest
    #: queue/token depth of the modelled hardware)
    burst: int = 24
    #: large-payload size that must still cross intact
    big_size: int = 16 * 1024

    def run_until(self, predicate: Callable[[], bool]) -> bool:
        return self._run_until(predicate)

    def enable_tracing(self, capacity: int = 256) -> dict[int, "FrameTracer"]:
        """Install a FrameTracer on every executive; returns them by
        node so tests can inspect the recorded spans."""
        from repro.core.tracing import FrameTracer

        tracers = {}
        for node, exe in self.exes.items():
            tracers[node] = exe.tracer = FrameTracer(
                node=node, capacity=capacity
            )
        return tracers

    def finish(self) -> None:
        from repro.analysis.sanitize import assert_clean

        # Drain whatever is still staged or queued so the leak check
        # below judges a settled cluster, not in-transit frames.
        self.run_until(lambda: all(exe.idle for exe in self.exes.values()))
        self._cleanup()
        for exe in self.exes.values():
            exe.pool.check_conservation()
            assert exe.pool.in_flight == 0, (
                f"{self.name}: {exe.pool.in_flight} blocks leaked"
            )
            # Canary scan + leak tracebacks; no-op unless REPRO_SANITIZE=1.
            assert_clean(exe.pool)


def _stepped(exes: dict[int, Executive], budget: int = 50_000):
    def run_until(predicate):
        for _ in range(budget):
            if predicate():
                return True
            if not any(exe.step() for exe in exes.values()):
                return predicate()
        return predicate()

    return run_until


def _two_executives() -> dict[int, Executive]:
    return {node: Executive(node=node) for node in range(2)}


def make_loopback() -> TransportHarness:
    network = LoopbackNetwork()
    exes = _two_executives()
    pts = {}
    for node, exe in exes.items():
        pts[node] = LoopbackTransport(network)
        PeerTransportAgent.attach(exe).register(pts[node], default=True)
    return TransportHarness("loopback", exes, pts, _stepped(exes))


def make_faulty_clean() -> TransportHarness:
    """The fault-injection transport with an all-zero plan must behave
    exactly like a clean loopback."""
    network = LoopbackNetwork()
    exes = _two_executives()
    pts = {}
    for node, exe in exes.items():
        pts[node] = FaultyLoopbackTransport(network, FaultPlan(), seed=node)
        PeerTransportAgent.attach(exe).register(pts[node], default=True)
    return TransportHarness("faulty", exes, pts, _stepped(exes))


def make_queued() -> TransportHarness:
    pair = QueuePair(0, 1)
    exes = _two_executives()
    pts = {}
    for node, exe in exes.items():
        pts[node] = QueueTransport(pair, name="q", mode="polling")
        PeerTransportAgent.attach(exe).register(pts[node], default=True)
    return TransportHarness("queued", exes, pts, _stepped(exes))


def make_tcp() -> TransportHarness:
    exes = _two_executives()
    pts = {}
    for node, exe in exes.items():
        pts[node] = TcpTransport(name="tcp")
        PeerTransportAgent.attach(exe).register(pts[node], default=True)
    pts[0].add_peer(1, "127.0.0.1", pts[1].bound_port)
    pts[1].add_peer(0, "127.0.0.1", pts[0].bound_port)
    for exe in exes.values():
        exe.start(poll_interval=0.001)

    def run_until(predicate, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if predicate():
                return True
            time.sleep(0.002)
        return predicate()

    def cleanup():
        for exe in exes.values():
            exe.stop()
        for pt in pts.values():
            pt.shutdown()

    # Two threaded executives: replies can interleave, so only the
    # exactly-once half of the ordering contract applies.
    return TransportHarness("tcp", exes, pts, run_until, cleanup,
                            ordered=False)


def _sim_harness(name, exes, pts, sim) -> TransportHarness:
    def run_until(predicate):
        sim.run()
        return predicate()

    return TransportHarness(name, exes, pts, run_until)


def make_simgm() -> TransportHarness:
    sim = Simulator()
    fabric = Fabric(sim)
    exes = _two_executives()
    pts = {}
    nodes = {}
    for node, exe in exes.items():
        nodes[node] = SimNode(sim, exe, cost_model=CostModel.paper_table1())
        pts[node] = SimGmTransport(fabric)
        PeerTransportAgent.attach(exe).register(pts[node], default=True)
        nodes[node].attach_transport_hooks()
    return _sim_harness("simgm", exes, pts, sim)


def make_simib() -> TransportHarness:
    sim = Simulator()
    fabric = IbFabric(sim)
    exes = _two_executives()
    pts = {}
    nodes = {}
    for node, exe in exes.items():
        nodes[node] = SimNode(sim, exe, cost_model=CostModel.paper_table1())
        pts[node] = SimIbTransport(fabric)
        PeerTransportAgent.attach(exe).register(pts[node], default=True)
        nodes[node].attach_transport_hooks()
    return _sim_harness("simib", exes, pts, sim)


def make_simpci() -> TransportHarness:
    sim = Simulator()
    board = IopBoard(sim, PciBus(sim), hardware_fifos=True)
    exes = _two_executives()
    host_pt, iop_pt = SimPciTransport.pair(sim, board, host_node=0, iop_node=1)
    pts = {0: host_pt, 1: iop_pt}
    for node, exe in exes.items():
        sim_node = SimNode(sim, exe, cost_model=CostModel.paper_table1())
        PeerTransportAgent.attach(exe).register(pts[node], default=True)
        sim_node.attach_transport_hooks()
    return _sim_harness("simpci", exes, pts, sim)


FACTORIES: dict[str, Callable[[], TransportHarness]] = {
    "loopback": make_loopback,
    "faulty": make_faulty_clean,
    "queued": make_queued,
    "tcp": make_tcp,
    "simgm": make_simgm,
    "simib": make_simib,
    "simpci": make_simpci,
}
