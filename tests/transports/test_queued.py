"""Queue-pair transport: polling and task modes."""

from __future__ import annotations

import time

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.transports.agent import PeerTransportAgent
from repro.transports.base import TransportError
from repro.transports.queued import QueuePair, QueueTransport


class Echo(Listener):
    def on_plugin(self):
        self.bind(0x1, self._h)

    def _h(self, frame):
        if not frame.is_reply:
            self.reply(frame, frame.payload)


class Caller(Listener):
    def __init__(self, name="caller"):
        super().__init__(name)
        self.replies = []

    def on_plugin(self):
        self.bind(0x1, lambda f: self.replies.append(bytes(f.payload))
                  if f.is_reply else None)


def build_pair(mode: str):
    pair = QueuePair(0, 1)
    exes = {}
    for node in range(2):
        exe = Executive(node=node)
        PeerTransportAgent.attach(exe).register(
            QueueTransport(pair, name="q", mode=mode), default=True
        )
        exes[node] = exe
    return exes


class TestQueuePair:
    def test_same_endpoints_rejected(self):
        with pytest.raises(TransportError):
            QueuePair(1, 1)

    def test_unknown_node_rejected(self):
        pair = QueuePair(0, 1)
        with pytest.raises(TransportError):
            pair.send_to(5, b"x")
        with pytest.raises(TransportError):
            pair.receive_queue(5)

    def test_wrong_executive_node_rejected(self):
        pair = QueuePair(0, 1)
        exe = Executive(node=9)
        pta = PeerTransportAgent.attach(exe)
        with pytest.raises(TransportError, match="endpoint"):
            pta.register(QueueTransport(pair), default=True)


class TestPollingMode:
    def test_round_trip(self):
        exes = build_pair("polling")
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        caller.send(exes[0].create_proxy(1, echo_tid), b"hi", xfunction=0x1)
        for _ in range(50):
            exes[0].step()
            exes[1].step()
            if caller.replies:
                break
        assert caller.replies == [b"hi"]
        for exe in exes.values():
            exe.pool.check_conservation()
            assert exe.pool.in_flight == 0

    def test_many_messages_in_order(self):
        exes = build_pair("polling")
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        proxy = exes[0].create_proxy(1, echo_tid)
        for i in range(20):
            caller.send(proxy, f"m{i}".encode(), xfunction=0x1)
        for _ in range(500):
            exes[0].step()
            exes[1].step()
            if len(caller.replies) == 20:
                break
        assert caller.replies == [f"m{i}".encode() for i in range(20)]


class TestTaskMode:
    def test_round_trip_with_threaded_executives(self):
        exes = build_pair("task")
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        for exe in exes.values():
            exe.start(poll_interval=0.001)
        try:
            caller.send(exes[0].create_proxy(1, echo_tid), b"task",
                        xfunction=0x1)
            deadline = time.monotonic() + 5
            while not caller.replies and time.monotonic() < deadline:
                time.sleep(0.001)
            assert caller.replies == [b"task"]
        finally:
            for exe in exes.values():
                exe.stop()
            for exe in exes.values():
                exe.pta.transport("q").shutdown()

    def test_task_mode_has_no_pending_concept(self):
        exes = build_pair("task")
        pt = exes[0].pta.transport("q")
        assert pt.has_pending is False
        pt.shutdown()
        exes[1].pta.transport("q").shutdown()
