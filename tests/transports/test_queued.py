"""Queue-pair transport: polling and task modes."""

from __future__ import annotations

import time

import pytest

from repro.core.executive import Executive
from repro.transports.agent import PeerTransportAgent
from repro.transports.base import TransportError
from repro.transports.queued import QueuePair, QueueTransport

from tests.transports.harness import Caller, Echo

# Polling-mode round-trip and in-order burst semantics are covered by
# tests/transports/test_conformance.py; this module keeps queue-pair
# validation and the threaded task mode.


def build_pair(mode: str):
    pair = QueuePair(0, 1)
    exes = {}
    for node in range(2):
        exe = Executive(node=node)
        PeerTransportAgent.attach(exe).register(
            QueueTransport(pair, name="q", mode=mode), default=True
        )
        exes[node] = exe
    return exes


class TestQueuePair:
    def test_same_endpoints_rejected(self):
        with pytest.raises(TransportError):
            QueuePair(1, 1)

    def test_unknown_node_rejected(self):
        pair = QueuePair(0, 1)
        with pytest.raises(TransportError):
            pair.send_to(5, b"x")
        with pytest.raises(TransportError):
            pair.receive_queue(5)

    def test_wrong_executive_node_rejected(self):
        pair = QueuePair(0, 1)
        exe = Executive(node=9)
        pta = PeerTransportAgent.attach(exe)
        with pytest.raises(TransportError, match="endpoint"):
            pta.register(QueueTransport(pair), default=True)


class TestTaskMode:
    def test_round_trip_with_threaded_executives(self):
        exes = build_pair("task")
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        for exe in exes.values():
            exe.start(poll_interval=0.001)
        try:
            caller.send(exes[0].create_proxy(1, echo_tid), b"task",
                        xfunction=0x1)
            deadline = time.monotonic() + 5
            while not caller.replies and time.monotonic() < deadline:
                time.sleep(0.001)
            assert caller.replies == [b"task"]
        finally:
            for exe in exes.values():
                exe.stop()
            for exe in exes.values():
                exe.pta.transport("q").shutdown()

    def test_task_mode_has_no_pending_concept(self):
        exes = build_pair("task")
        pt = exes[0].pta.transport("q")
        assert pt.has_pending is False
        pt.shutdown()
        exes[1].pta.transport("q").shutdown()
