"""Loopback transport semantics."""

from __future__ import annotations

import pytest

from repro.core.executive import Executive
from repro.transports.agent import PeerTransportAgent
from repro.transports.base import TransportError
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport

from tests.conftest import assert_no_leaks, pump
from tests.transports.harness import Caller, Echo

# Round-trip, burst, large-payload, counter and oversize semantics are
# covered for every transport by tests/transports/test_conformance.py;
# this module keeps only what is loopback-specific.


def test_duplicate_node_rejected():
    net = LoopbackNetwork()
    exe = Executive(node=0)
    pta = PeerTransportAgent.attach(exe)
    pta.register(LoopbackTransport(net), default=True)
    exe2 = Executive(node=0)  # same node id!
    pta2 = PeerTransportAgent.attach(exe2)
    with pytest.raises(TransportError, match="already"):
        pta2.register(LoopbackTransport(net), default=True)


def test_unknown_destination_becomes_failure_reply(two_nodes):
    caller = Caller()
    two_nodes[0].install(caller)
    proxy = two_nodes[0].create_proxy(99, 0x20)  # node 99 doesn't exist
    caller.send(proxy, b"x", xfunction=0x2)
    pump(two_nodes)
    assert caller.failures == [True]


def test_immediate_mode_delivers_synchronously():
    net = LoopbackNetwork()
    exes = {}
    for node in range(2):
        exe = Executive(node=node)
        PeerTransportAgent.attach(exe).register(
            LoopbackTransport(net, immediate=True), default=True
        )
        exes[node] = exe
    echo_tid = exes[1].install(Echo())
    caller = Caller()
    exes[0].install(caller)
    caller.send(exes[0].create_proxy(1, echo_tid), b"now", xfunction=0x1)
    pump(exes)
    assert caller.replies == [b"now"]
    assert_no_leaks(exes)


def test_has_pending_reflects_staged_data(two_nodes):
    echo_tid = two_nodes[1].install(Echo())
    caller = Caller()
    two_nodes[0].install(caller)
    caller.send(two_nodes[0].create_proxy(1, echo_tid), b"x", xfunction=0x1)
    two_nodes[0].step()  # routes + transmits, staging at node 1
    pt = two_nodes[1].pta.transport("loopback")
    assert pt.has_pending
    assert not two_nodes[1].idle
    pump(two_nodes)
    assert not pt.has_pending


def test_wide_cluster_any_to_any(five_nodes):
    echoes = {n: five_nodes[n].install(Echo()) for n in range(1, 5)}
    caller = Caller()
    five_nodes[0].install(caller)
    for node, tid in echoes.items():
        caller.send(five_nodes[0].create_proxy(node, tid),
                    str(node).encode(), xfunction=0x1)
    pump(five_nodes)
    assert sorted(caller.replies) == [b"1", b"2", b"3", b"4"]
