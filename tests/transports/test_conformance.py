"""One contract, every peer transport.

The paper's §6 portability claim: applications address each other by
TiD and never see which peer transport carries the frames.  That only
holds if every transport honours the same delivery contract, so this
module runs one parametrized suite against all of them — the
in-process loopbacks, the fault-injection wrapper (clean plan), the
queue-pair mesh, real TCP sockets, and the three simulation-plane
hardware models (Myrinet/GM, InfiniBand verbs, PCI host↔IOP).
"""

from __future__ import annotations

import pytest

from repro.core.tracing import is_trace_context, trace_root_node
from repro.i2o.frame import MAX_PAYLOAD_SIZE
from repro.mem.pool import PoolError

from tests.transports.harness import FACTORIES, Caller, Echo


@pytest.fixture(params=sorted(FACTORIES))
def harness(request):
    h = FACTORIES[request.param]()
    yield h
    h.finish()


def _wire(harness):
    echo_tid = harness.exes[1].install(Echo())
    caller = Caller()
    harness.exes[0].install(caller)
    proxy = harness.exes[0].create_proxy(1, echo_tid)
    return caller, proxy


class TestTransportContract:
    def test_round_trip(self, harness):
        caller, proxy = _wire(harness)
        caller.send(proxy, b"payload", xfunction=0x1)
        assert harness.run_until(lambda: caller.replies == [b"payload"])

    def test_burst_delivered_exactly_once(self, harness):
        caller, proxy = _wire(harness)
        payloads = [f"msg-{i:03d}".encode() for i in range(harness.burst)]
        for p in payloads:
            caller.send(proxy, p, xfunction=0x1)
        assert harness.run_until(
            lambda: len(caller.replies) >= len(payloads)
        ), f"{harness.name}: {len(caller.replies)}/{len(payloads)} delivered"
        if harness.ordered:
            assert caller.replies == payloads
        else:
            assert sorted(caller.replies) == payloads

    def test_large_payload_intact(self, harness):
        caller, proxy = _wire(harness)
        big = bytes(range(256)) * (harness.big_size // 256)
        caller.send(proxy, big, xfunction=0x1)
        assert harness.run_until(lambda: bool(caller.replies))
        assert caller.replies == [big]

    def test_oversize_rejected_before_wire(self, harness):
        caller, proxy = _wire(harness)
        with pytest.raises(PoolError):
            caller.send(proxy, b"\0" * (MAX_PAYLOAD_SIZE + 1), xfunction=0x1)
        assert harness.pts[0].frames_sent == 0

    def test_unknown_tid_yields_failure_reply(self, harness):
        caller, _ = _wire(harness)
        stray = harness.exes[0].create_proxy(1, 0x3F)  # nothing lives there
        caller.send(stray, b"anyone?", xfunction=0x2)
        assert harness.run_until(lambda: caller.failures == [True])

    def test_transaction_context_round_trips_the_wire(self, harness):
        # The 64-bit context fields must cross every transport intact
        # and come back in the reply — the carrier the tracer rides on.
        caller, proxy = _wire(harness)
        context = 0x0123_4567_89AB_CDEF
        caller.send(proxy, b"ctx", xfunction=0x1, transaction_context=context)
        assert harness.run_until(lambda: caller.replies == [b"ctx"])
        assert caller.reply_contexts == [context]

    def test_trace_context_propagates_across_transport(self, harness):
        tracers = harness.enable_tracing()
        caller, proxy = _wire(harness)
        caller.send(proxy, b"trace-me", xfunction=0x1)
        assert harness.run_until(lambda: caller.replies == [b"trace-me"])
        # The send was auto-rooted at node 0; the reply carries its id.
        (trace_id,) = caller.reply_contexts
        assert is_trace_context(trace_id)
        assert trace_root_node(trace_id) == 0
        # Both sides recorded hops of the same trace: the echo dispatch
        # on node 1 and the reply dispatch back on node 0.
        def spans_of(node):
            return [
                s for s in tracers[node].snapshot_spans()
                if s.trace_id == trace_id
            ]
        assert harness.run_until(lambda: spans_of(0) and spans_of(1))
        assert {s.xfunction for s in spans_of(1)} == {0x1}
        for node in (0, 1):
            for span in spans_of(node):
                assert span.node == node
                assert span.queue_wait_ns >= 0
                assert span.dispatch_ns >= 0

    def test_counters_balance(self, harness):
        caller, proxy = _wire(harness)
        for _ in range(3):
            caller.send(proxy, b"abc", xfunction=0x1)
        assert harness.run_until(lambda: len(caller.replies) == 3)
        pt0, pt1 = harness.pts[0], harness.pts[1]
        assert pt0.frames_sent == 3 and pt1.frames_sent == 3
        assert harness.run_until(
            lambda: pt1.frames_received == 3 and pt0.frames_received == 3
        )
        assert pt0.bytes_sent == pt1.bytes_received
        assert pt1.bytes_sent == pt0.bytes_received

    # Payload copies each transport may perform per frame, (tx, rx):
    # intra-process delivery hands the pool block over (0, 0); TCP pays
    # exactly the receive-side copy off the wire; the simulation-plane
    # models serialise onto the modelled wire and copy off it (1, 1).
    COPY_BUDGETS = {
        "loopback": (0, 0),
        "faulty": (0, 0),  # clean plan: behaves like plain loopback
        "queued": (0, 0),
        "tcp": (0, 1),
        "simgm": (1, 1),
        "simib": (1, 1),
        "simpci": (1, 1),
    }

    def test_copy_budget(self, harness):
        caller, proxy = _wire(harness)
        n = 8
        for _ in range(n):
            caller.send(proxy, b"copy-counted", xfunction=0x1)
        assert harness.run_until(lambda: len(caller.replies) == n)
        tx_rate, rx_rate = self.COPY_BUDGETS[harness.name]
        for pt in harness.pts.values():
            assert pt.tx_copies == tx_rate * pt.frames_sent, (
                f"{harness.name}: {pt.tx_copies} tx copies for "
                f"{pt.frames_sent} sent frames"
            )
            assert pt.rx_copies == rx_rate * pt.frames_received, (
                f"{harness.name}: {pt.rx_copies} rx copies for "
                f"{pt.frames_received} received frames"
            )
