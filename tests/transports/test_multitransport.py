"""Multiple peer transports in parallel (paper §4's multi-rail claim)
and transport-swapping transparency (the flexibility requirement)."""

from __future__ import annotations

import pytest

from repro.core.device import Listener
from repro.core.executive import Executive
from repro.transports.agent import PeerTransportAgent
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport
from repro.transports.queued import QueuePair, QueueTransport


class Echo(Listener):
    def on_plugin(self):
        self.bind(0x1, self._h)

    def _h(self, frame):
        if not frame.is_reply:
            self.reply(frame, frame.payload)


class Caller(Listener):
    def __init__(self, name="caller"):
        super().__init__(name)
        self.replies = []

    def on_plugin(self):
        self.bind(0x1, lambda f: self.replies.append(bytes(f.payload))
                  if f.is_reply else None)


def drive(exes, want, caller, rounds=2000):
    for _ in range(rounds):
        for exe in exes:
            exe.step()
        if len(caller.replies) >= want:
            return
    raise AssertionError(f"only {len(caller.replies)}/{want} replies")


class TestTwoRails:
    def build(self):
        """Node pair connected by BOTH a loopback and a queue rail."""
        net = LoopbackNetwork()
        pair = QueuePair(0, 1)
        exes = []
        for node in range(2):
            exe = Executive(node=node)
            pta = PeerTransportAgent.attach(exe)
            pta.register(LoopbackTransport(net, name="rail0"), default=True)
            pta.register(QueueTransport(pair, name="rail1"))
            exes.append(exe)
        return exes

    def test_routes_pin_traffic_to_rails(self):
        exes = self.build()
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        via0 = exes[0].create_proxy(1, echo_tid, transport="rail0")
        via1 = exes[0].create_proxy(1, echo_tid, transport="rail1")
        assert via0 != via1  # distinct proxies for distinct routes
        caller.send(via0, b"on rail0", xfunction=0x1)
        caller.send(via1, b"on rail1", xfunction=0x1)
        drive(exes, 2, caller)
        assert sorted(caller.replies) == [b"on rail0", b"on rail1"]
        pt0 = exes[0].pta.transport("rail0")
        pt1 = exes[0].pta.transport("rail1")
        assert pt0.frames_sent == 1
        assert pt1.frames_sent == 1

    def test_both_rails_carry_load_concurrently(self):
        exes = self.build()
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        via0 = exes[0].create_proxy(1, echo_tid, transport="rail0")
        via1 = exes[0].create_proxy(1, echo_tid, transport="rail1")
        for i in range(10):
            caller.send(via0 if i % 2 else via1, str(i).encode(),
                        xfunction=0x1)
        drive(exes, 10, caller)
        assert len(caller.replies) == 10
        assert exes[0].pta.transport("rail0").frames_sent == 5
        assert exes[0].pta.transport("rail1").frames_sent == 5


class TestTransportTransparency:
    """Paper §2: 'It should not be necessary to modify an application
    in case some hardware component is exchanged.'  The same devices
    run over different wires with zero changes."""

    @pytest.mark.parametrize("wire", ["loopback", "queue"])
    def test_same_application_over_different_wires(self, wire):
        if wire == "loopback":
            net = LoopbackNetwork()
            make_pt = lambda node: LoopbackTransport(net)
        else:
            pair = QueuePair(0, 1)
            make_pt = lambda node: QueueTransport(pair)
        exes = []
        for node in range(2):
            exe = Executive(node=node)
            PeerTransportAgent.attach(exe).register(make_pt(node),
                                                    default=True)
            exes.append(exe)
        echo_tid = exes[1].install(Echo())
        caller = Caller()
        exes[0].install(caller)
        caller.send(exes[0].create_proxy(1, echo_tid), b"same code",
                    xfunction=0x1)
        drive(exes, 1, caller)
        assert caller.replies == [b"same code"]
