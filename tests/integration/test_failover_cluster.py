"""Acceptance: a 4-node event builder survives a node partition.

Topology — node 0 runs the control plane (trigger, event manager, one
builder, discovery, heartbeat); nodes 1-3 each run one primary readout
unit plus a *replica* of a readout slice hosted elsewhere:

    node 1: ru0 (primary),  ru2b (replica of slice 2)
    node 2: ru1 (primary),  ru0b (replica of slice 0)
    node 3: ru2 (primary),  ru1b (replica of slice 1)

Node 3 is partitioned mid-run.  Supervision must notice within the
miss window, discovery must re-bind the ru2 proxy to the replica on
node 1, and the event manager's timeout machinery must re-launch the
stranded events through the re-bound route — finishing the run with
zero lost events.  Fragments are synthesised deterministically from
``(event_id, ru_id)`` so a replica with the same ``ru_id`` produces
byte-identical data.
"""

from __future__ import annotations

from repro.core.discovery import DiscoveryService
from repro.core.executive import Executive
from repro.core.liveness import HeartbeatService
from repro.core.states import PeerState
from repro.daq.builder import BuilderUnit
from repro.daq.manager import EventManager
from repro.daq.readout import ReadoutUnit
from repro.daq.trigger import TriggerSource
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork

INTERVAL_NS = 1_000
SUSPECT_AFTER = 2
DEAD_AFTER = 4
EVENT_TIMEOUT_NS = 20 * INTERVAL_NS


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def _tick(cluster, clock, n=1):
    for _ in range(n):
        clock.t += INTERVAL_NS
        for _ in range(10_000):
            if not any(exe.step() for exe in cluster.values()):
                break


def _run_scenario():
    network = LoopbackNetwork()
    clock = _ManualClock()
    cluster: dict[int, Executive] = {}
    faulty: dict[int, FaultyLoopbackTransport] = {}
    for node in range(4):
        exe = Executive(node=node, clock=clock)
        pt = FaultyLoopbackTransport(network, FaultPlan(), seed=node)
        PeerTransportAgent.attach(exe).register(pt, default=True)
        cluster[node] = exe
        faulty[node] = pt

    def pump_once():
        for exe in cluster.values():
            exe.step()

    # DAQ devices: primaries on 1..3, replicas shifted one node over.
    rus = {
        "ru0": (1, ReadoutUnit("ru0", ru_id=0)),
        "ru2b": (1, ReadoutUnit("ru2b", ru_id=2)),
        "ru1": (2, ReadoutUnit("ru1", ru_id=1)),
        "ru0b": (2, ReadoutUnit("ru0b", ru_id=0)),
        "ru2": (3, ReadoutUnit("ru2", ru_id=2)),
        "ru1b": (3, ReadoutUnit("ru1b", ru_id=1)),
    }
    ru_tids = {}
    ru_id_of = {}  # (node, tid) -> ru_id, for replacement selection
    for name, (node, device) in rus.items():
        tid = cluster[node].install(device)
        ru_tids[name] = (node, tid)
        ru_id_of[(node, tid)] = device.ru_id

    trigger = TriggerSource()
    evm = EventManager(
        event_timeout_ns=EVENT_TIMEOUT_NS, max_reassignments=5
    )
    builder = BuilderUnit(bu_id=0)
    discovery = DiscoveryService(nodes=[0, 1, 2, 3], pump=pump_once)
    cluster[0].install(trigger)
    evm_tid = cluster[0].install(evm)
    bu_tid = cluster[0].install(builder)
    cluster[0].install(discovery)

    def pick_replica(dead_node, dead_tid, device_class, candidates):
        if device_class != "daq_readout":
            return None  # park anything we cannot substitute
        want = ru_id_of.get((dead_node, dead_tid))
        for node, tid in candidates:
            if ru_id_of.get((node, tid)) == want:
                return (node, tid)
        return None

    discovery.select_replacement = pick_replica
    for node in (1, 2, 3):
        discovery.refresh(node)

    # Control plane wiring: one proxy per primary slice.
    proxies = {
        ru_id: cluster[0].create_proxy(*ru_tids[name])
        for ru_id, name in ((0, "ru0"), (1, "ru1"), (2, "ru2"))
    }
    trigger.connect(evm_tid)
    evm.connect(ru_tids=proxies, bu_tids={0: bu_tid})
    builder.connect(evm_tid, dict(proxies))

    # Full supervision mesh; only node 0 reacts (rebind policy).
    hbs: dict[int, HeartbeatService] = {}
    for node, exe in cluster.items():
        hb = HeartbeatService(
            name=f"hb{node}",
            discovery=discovery if node == 0 else None,
        )
        hb.parameters.update({
            "interval_ns": str(INTERVAL_NS),
            "suspect_after": str(SUSPECT_AFTER),
            "dead_after": str(DEAD_AFTER),
            "failover_policy": "rebind" if node == 0 else "none",
        })
        exe.install(hb)
        hbs[node] = hb
    for node, hb in hbs.items():
        for peer in cluster:
            if peer != node:
                hb.monitor(peer, cluster[node].create_proxy(peer, hbs[peer].tid))
    for hb in hbs.values():
        hb.start()

    _tick(cluster, clock, 3)

    # Healthy baseline: four events flow through the primaries.
    trigger.fire_burst(4)
    _tick(cluster, clock, 4)
    assert evm.completed == 4

    # Partition node 3 and keep the beam on.
    faulty[3].partition()
    trigger.fire_burst(6)
    detected_after = None
    for elapsed in range(1, 61):
        _tick(cluster, clock, 1)
        if (
            detected_after is None
            and cluster[0].peers.state(3) is PeerState.DEAD
        ):
            detected_after = elapsed
        if detected_after is not None and evm.completed == 10:
            break

    survivors = {name: dev for name, (_, dev) in rus.items()}
    return {
        "cluster": cluster,
        "evm": evm,
        "discovery": discovery,
        "proxies": proxies,
        "ru_tids": ru_tids,
        "rus": survivors,
        "detected_after": detected_after,
        "fingerprint": (
            evm.completed,
            tuple(evm.completed_ids),
            tuple(evm.lost_events),
            evm.reassignments,
            cluster[0].rebinds,
            cluster[0].parks,
            detected_after,
            survivors["ru2b"].served,
        ),
    }


class TestFailoverCluster:
    def test_partition_survived_with_zero_lost_events(self):
        result = _run_scenario()
        cluster = result["cluster"]
        evm = result["evm"]

        # Detection inside the configured miss window.
        assert result["detected_after"] is not None
        assert result["detected_after"] <= DEAD_AFTER + 1

        # The ru2 proxy was re-bound to the surviving replica on node 1.
        route = cluster[0].route_for(result["proxies"][2])
        assert (route.node, route.remote_tid) == result["ru_tids"]["ru2b"]
        assert not route.parked
        assert 3 in result["discovery"].quarantined

        # Every event completed; the stranded ones were re-launched
        # through the re-bound route by the timeout machinery.
        assert evm.completed == 10
        assert evm.lost_events == []
        assert sorted(evm.completed_ids) == list(range(1, 11))
        assert evm.reassignments >= 1
        assert result["rus"]["ru2b"].served > 0

        # Buffer hygiene on the survivors (node 3 is unreachable but
        # its pool must balance too — partition drops are accounted).
        for exe in cluster.values():
            exe.pool.check_conservation()
            assert exe.pool.in_flight == 0

    def test_scenario_is_deterministic(self):
        first = _run_scenario()["fingerprint"]
        second = _run_scenario()["fingerprint"]
        assert first == second
