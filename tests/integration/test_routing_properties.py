"""System-wide routing invariants, property-tested.

Random clusters, random device placements, random message plans —
every request must end in exactly one of: delivery to the right
device, or a failure reply to its initiator.  Pool conservation must
hold afterwards on every node.  These are the paper's transparency
and fault-tolerance claims as executable properties.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.device import Listener
from repro.i2o.frame import Frame

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump


class Probe(Listener):
    """Counts deliveries; records reply outcomes per context."""

    def __init__(self, name: str = "") -> None:
        super().__init__(name)
        self.delivered: list[int] = []  # transaction contexts received
        self.outcomes: dict[int, bool] = {}  # context -> is_failure

    def on_plugin(self) -> None:
        self.bind(0x0001, self._on_msg)

    def _on_msg(self, frame: Frame) -> None:
        if frame.is_reply:
            self.outcomes[frame.initiator_context] = frame.is_failure
        else:
            self.delivered.append(frame.transaction_context)
            self.reply(frame)


@st.composite
def cluster_plan(draw):
    n_nodes = draw(st.integers(2, 5))
    devices_per_node = [draw(st.integers(1, 3)) for _ in range(n_nodes)]
    n_messages = draw(st.integers(1, 25))
    messages = []
    total_devices = sum(devices_per_node)
    for i in range(n_messages):
        src = draw(st.integers(0, total_devices - 1))
        # Target is either a real device (by global index) or a bogus
        # remote TiD that must produce a failure reply.
        bogus = draw(st.booleans()) and draw(st.integers(0, 9)) == 0
        dst = draw(st.integers(0, total_devices - 1))
        messages.append((src, dst, bogus))
    return n_nodes, devices_per_node, messages


@given(cluster_plan())
@settings(max_examples=40, deadline=None)
def test_property_every_request_delivered_or_failure_replied(plan):
    n_nodes, devices_per_node, messages = plan
    cluster = make_loopback_cluster(n_nodes)
    probes: list[tuple[int, Probe, int]] = []  # (node, device, tid)
    for node, count in enumerate(devices_per_node):
        for k in range(count):
            probe = Probe(name=f"p{node}.{k}")
            tid = cluster[node].install(probe)
            probes.append((node, probe, tid))

    expected_delivered: dict[int, list[int]] = {i: [] for i in
                                                range(len(probes))}
    expected_failures: set[int] = set()
    for context, (src_idx, dst_idx, bogus) in enumerate(messages):
        src_node, src_dev, _ = probes[src_idx]
        if bogus:
            # A remote TiD that exists on no node.
            target = cluster[src_node].create_proxy(
                (src_node + 1) % n_nodes, 0xE00 + context
            )
            expected_failures.add(context)
        else:
            dst_node, _, dst_tid = probes[dst_idx]
            target = cluster[src_node].create_proxy(dst_node, dst_tid)
            if target == src_dev.tid:
                # Self-send: delivered to self.
                expected_delivered[src_idx].append(context)
            else:
                expected_delivered[dst_idx].append(context)
        src_dev.send(target, b"", xfunction=0x0001,
                     transaction_context=context,
                     initiator_context=context)

    pump(cluster)

    for idx, (_, probe, _) in enumerate(probes):
        assert sorted(probe.delivered) == sorted(expected_delivered[idx])
    # Every bogus message produced exactly one failure reply at its sender.
    seen_failures = {
        ctx
        for _, probe, _ in probes
        for ctx, failed in probe.outcomes.items()
        if failed
    }
    assert seen_failures == expected_failures
    assert_no_leaks(cluster)
