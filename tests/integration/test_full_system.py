"""Whole-system integration: every subsystem working together."""

from __future__ import annotations

import time

import pytest

from repro.config.control import HostController
from repro.config.tclish import TclInterp
from repro.core.executive import Executive
from repro.core.states import DeviceState
from repro.daq import BuilderUnit, EventManager, ReadoutUnit, TriggerSource
from repro.i2o.sgl import Fragmenter, Reassembler
from repro.rmi import RemoteObject, Stub, StubDevice, remote
from repro.transports.agent import PeerTransportAgent
from repro.transports.tcp import TcpTransport

from tests.conftest import assert_no_leaks, make_loopback_cluster, pump
from tests.daq.test_eventbuilder import wire_daq


class TestTclDrivenDaq:
    """The paper's full operational story: a Tcl script on the primary
    host configures, enables and monitors a DAQ cluster."""

    def test_script_configures_and_runs_the_daq(self):
        cluster = make_loopback_cluster(5)
        evm, trigger, rus, bus = wire_daq(cluster)

        def pump_once():
            for exe in cluster.values():
                exe.step()

        controller = HostController(pump=pump_once)
        cluster[0].install(controller)
        interp = TclInterp()
        controller.bind_tcl(interp, cluster)
        interp.run("""
            foreach node {0 1 2 3 4} { enable $node }
        """)
        assert all(exe.state is DeviceState.ENABLED
                   for exe in cluster.values())
        trigger.fire_burst(10)
        pump(cluster)
        assert evm.completed == 10
        # Observe through the script too.
        interp.run(f"puts [param get 0 {evm.tid} completed]")
        assert interp.output[-1] == "10"
        assert_no_leaks(cluster)


class TestDaqOverTcpThreads:
    """The native plane at full stretch: threaded executives, real
    sockets, the complete event builder."""

    @pytest.fixture
    def tcp_cluster(self):
        exes, pts = {}, {}
        for node in range(5):
            exe = Executive(node=node)
            pt = TcpTransport(name="tcp")
            PeerTransportAgent.attach(exe).register(pt, default=True)
            exes[node], pts[node] = exe, pt
        for a in exes:
            for b in exes:
                if a != b:
                    pts[a].add_peer(b, "127.0.0.1", pts[b].bound_port)
        yield exes
        for exe in exes.values():
            exe.stop()
        for pt in pts.values():
            pt.shutdown()

    def test_event_building_over_sockets(self, tcp_cluster):
        evm, trigger, rus, bus = wire_daq(tcp_cluster, mean_fragment=256)
        for exe in tcp_cluster.values():
            exe.start(poll_interval=0.001)
        trigger_events = 12
        # fire from within the cluster's own thread context via timer-free
        # direct calls; sends are thread-safe (queues + locks).
        trigger.fire_burst(trigger_events)
        deadline = time.monotonic() + 20
        while evm.completed < trigger_events and time.monotonic() < deadline:
            time.sleep(0.01)
        assert evm.completed == trigger_events
        assert all(bu.corrupt == 0 for bu in bus.values())


class TestSglAcrossTheWire:
    """Arbitrary-length information via chained frames (paper §4)."""

    def test_bulk_transfer_via_fragmenter(self, two_nodes):
        from repro.core.device import Listener

        class BulkReceiver(Listener):
            def __init__(self):
                super().__init__("bulk-rx")
                self.reassembler = Reassembler()
                self.received = []

            def on_plugin(self):
                self.bind(0x60, self._on_chunk)

            def _on_chunk(self, frame):
                if frame.is_reply:
                    return
                done = self.reassembler.add(frame)
                if done is not None:
                    self.received.append(done)

        class BulkSender(Listener):
            def __init__(self):
                super().__init__("bulk-tx")
                self.fragmenter = Fragmenter(max_fragment=1500)

            def send_bulk(self, target, payload):
                exe = self._require_live()
                frames = self.fragmenter.fragment(
                    payload, target=target, initiator=self.tid,
                    xfunction=0x60,
                )
                for f in frames:
                    exe.frame_send(f)

        rx = BulkReceiver()
        rx_tid = two_nodes[1].install(rx)
        tx = BulkSender()
        two_nodes[0].install(tx)
        payload = bytes(range(256)) * 300  # 76 800 B, 52 fragments
        tx.send_bulk(two_nodes[0].create_proxy(1, rx_tid), payload)
        pump(two_nodes)
        assert rx.received == [payload]
        assert rx.reassembler.pending_chains == 0


class TestRmiAndRawFramesCoexist:
    def test_mixed_traffic_on_one_executive_pair(self, two_nodes):
        class Calc(RemoteObject):
            @remote
            def square(self, x):
                return x * x

        from repro.bench.devices import EchoDevice, PingDevice

        calc_tid = two_nodes[1].install(Calc())
        echo_tid = two_nodes[1].install(EchoDevice())

        def pump_once():
            for exe in two_nodes.values():
                exe.step()

        stub_dev = StubDevice(pump=pump_once)
        two_nodes[0].install(stub_dev)
        calc = Stub(stub_dev, two_nodes[0].create_proxy(1, calc_tid))

        ping = PingDevice()
        two_nodes[0].install(ping)
        ping.configure(two_nodes[0].create_proxy(1, echo_tid), 64, 5)
        ping.kick()
        results = [calc.square(i) for i in range(5)]
        pump(two_nodes)
        assert results == [0, 1, 4, 9, 16]
        assert len(ping.rtts_ns) == 5


class TestDynamicUpgradeMidRun:
    """Download a new device class while traffic is flowing and route
    new traffic to it (paper §4's runtime extensibility)."""

    def test_hot_added_device_serves_immediately(self, two_nodes):
        from repro.core.registry import download_module
        from repro.core.device import Listener

        source = (
            "from repro.core.device import Listener\n"
            "class Doubler(Listener):\n"
            "    def on_plugin(self):\n"
            "        self.bind(0x70, self.on_req)\n"
            "    def on_req(self, frame):\n"
            "        if not frame.is_reply:\n"
            "            self.reply(frame, bytes(frame.payload) * 2)\n"
        )
        caller = Listener("caller")
        two_nodes[0].install(caller)
        got = []
        caller.bind(0x70, lambda f: got.append(bytes(f.payload))
                    if f.is_reply else None)
        tid = download_module(two_nodes[1], source, "Doubler")
        caller.send(two_nodes[0].create_proxy(1, tid), b"ab",
                    xfunction=0x70)
        pump(two_nodes)
        assert got == [b"abab"]
