"""PR 2 acceptance: a 4-node event-builder cluster with telemetry.

Runs trigger → readout → build with tracing and metrics enabled on
every node, then reconstructs the complete cross-node trace of one
event from the collector's stitched spans — per-hop queue-wait and
dispatch durations included — and exercises the Prometheus/JSON dumps.

When ``TELEMETRY_PROM_OUT`` is set the Prometheus text dump is also
written there (the CI workflow publishes it as an artifact).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config.bootstrap import bootstrap
from repro.core.tracing import is_trace_context, trace_root_node
from repro.daq.protocol import (
    XF_ALLOCATE,
    XF_CLEAR,
    XF_EVENT_DONE,
    XF_READOUT,
    XF_REQUEST_FRAGMENT,
    XF_TRIGGER,
)


def _build_cluster():
    spec = {
        "transport": "loopback",
        "telemetry": {
            "tracing": True,
            "trace_capacity": 512,
            "metrics_timing": True,
            "collector_node": 0,
        },
        "nodes": {
            0: {"devices": [
                {"class": "repro.daq.trigger.TriggerSource", "name": "trigger"},
                {"class": "repro.daq.manager.EventManager", "name": "evm"},
            ]},
            1: {"devices": [
                {"class": "repro.daq.readout.ReadoutUnit", "name": "ru0",
                 "kwargs": {"ru_id": 0}},
            ]},
            2: {"devices": [
                {"class": "repro.daq.readout.ReadoutUnit", "name": "ru1",
                 "kwargs": {"ru_id": 1}},
            ]},
            3: {"devices": [
                {"class": "repro.daq.builder.BuilderUnit", "name": "bu0"},
            ]},
        },
    }
    cluster = bootstrap(spec)
    cluster.device("trigger").connect(cluster.tid("evm"))
    cluster.device("evm").connect(  # repro: noqa DFL001
        {0: cluster.proxy(0, "ru0"), 1: cluster.proxy(0, "ru1")},
        {0: cluster.proxy(0, "bu0")},
    )
    cluster.device("bu0").connect(  # repro: noqa DFL001
        cluster.proxy(3, "evm"),
        {0: cluster.proxy(3, "ru0"), 1: cluster.proxy(3, "ru1")},
    )
    return cluster


@pytest.fixture
def telemetry_cluster():
    cluster = _build_cluster()
    yield cluster
    cluster.pump()
    for exe in cluster.executives.values():
        exe.pool.check_conservation()


def _trigger_traces(collector):
    """Trace ids that contain the EVM's XF_TRIGGER dispatch."""
    return [
        trace_id
        for trace_id in collector.trace_ids()
        if any(s.xfunction == XF_TRIGGER for s in collector.trace(trace_id))
    ]


class TestCrossNodeTrace:
    def test_one_event_reconstructs_end_to_end(self, telemetry_cluster):
        cluster = telemetry_cluster
        cluster.device("trigger").fire()
        cluster.pump()
        assert cluster.device("evm").completed == 1
        collector = cluster.collector
        collector.sweep()
        cluster.pump()

        (trace_id,) = _trigger_traces(collector)
        assert is_trace_context(trace_id)
        assert trace_root_node(trace_id) == 0  # rooted at the trigger

        spans = collector.trace(trace_id)
        hops = {(s.node, s.xfunction) for s in spans}
        # trigger → EVM on node 0 ...
        assert (0, XF_TRIGGER) in hops
        # ... readout commands reach both RUs ...
        assert (1, XF_READOUT) in hops and (2, XF_READOUT) in hops
        # ... the BU gets the allocate and pulls both fragments ...
        assert (3, XF_ALLOCATE) in hops
        assert (1, XF_REQUEST_FRAGMENT) in hops
        assert (2, XF_REQUEST_FRAGMENT) in hops
        assert (3, XF_REQUEST_FRAGMENT) in hops  # the fragment replies
        # ... and completion flows back to the EVM, which clears the RUs.
        assert (0, XF_EVENT_DONE) in hops
        assert (1, XF_CLEAR) in hops and (2, XF_CLEAR) in hops

    def test_per_hop_durations_present_and_ordered(self, telemetry_cluster):
        cluster = telemetry_cluster
        cluster.device("trigger").fire()
        cluster.pump()
        collector = cluster.collector
        collector.sweep()
        cluster.pump()
        (trace_id,) = _trigger_traces(collector)
        timeline = collector.timeline(trace_id)
        assert len(timeline) >= 8  # the full event walk above
        starts = [hop["start_ns"] for hop in timeline]
        assert starts == sorted(starts)
        assert timeline[0]["xfunction"] == XF_TRIGGER
        for hop in timeline:
            assert hop["queue_wait_ns"] >= 0
            # Wall-clock plane: a Python handler body cannot take 0 ns.
            assert hop["dispatch_ns"] > 0

    def test_burst_keeps_traces_separate(self, telemetry_cluster):
        cluster = telemetry_cluster
        cluster.device("trigger").fire_burst(5)
        cluster.pump()
        assert cluster.device("evm").completed == 5
        collector = cluster.collector
        collector.sweep()
        cluster.pump()
        trigger_traces = _trigger_traces(collector)
        assert len(trigger_traces) == 5  # one trace per logical event


class TestClusterSnapshots:
    def test_metrics_from_all_nodes_and_dumps(self, telemetry_cluster):
        cluster = telemetry_cluster
        cluster.device("trigger").fire_burst(3)
        cluster.pump()
        collector = cluster.collector
        collector.sweep()
        cluster.pump()
        assert sorted(collector.node_metrics) == [0, 1, 2, 3]
        for metrics in collector.node_metrics.values():
            assert metrics["exe_dispatched_total"] > 0
            assert metrics["pool_blocks_in_flight"] >= 0
            assert metrics["exe_dispatch_ns_count"] > 0  # metrics_timing

        text = collector.render_prometheus()
        for node in range(4):
            assert f'repro_exe_dispatched_total{{node="{node}"}}' in text
        assert 'repro_exe_dispatch_ns_bucket{node="0",le="+Inf"}' in text

        doc = json.loads(collector.render_json())
        assert set(doc["nodes"]) == {"0", "1", "2", "3"}
        assert doc["totals"]["exe_dispatched_total"] > 0
        assert doc["traces"]

        out = os.environ.get("TELEMETRY_PROM_OUT")
        if out:
            with open(out, "w", encoding="utf-8") as fh:
                fh.write(text)
