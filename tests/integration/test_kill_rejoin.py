"""The durability acceptance drill: kill-and-rejoin under a faulty wire.

A six-node cluster on the fault-injecting transport runs a triggered
event-builder workload whose trigger stream arrives over a *journaled*
reliable endpoint:

* node 0 — EventManager (snapshot store) + receiving endpoint whose
  consumer feeds triggers into the EVM synchronously;
* nodes 1-2 — readout units; nodes 3-4 — builder units;
* node 5 — the trigger feed: a journaled ReliableEndpoint.

Two nodes are killed abruptly (``hard_stop`` — the kill -9 analogue)
at different points mid-burst and rebuilt from their durable state:
first the EVM node (snapshot restore + relaunch), then the feed node
(journal replay).  The run must finish with ZERO events lost, every
event built exactly once, and every pool clean — the executives run on
explicitly sanitizing pools, so canary scans and leak tracebacks are
active regardless of REPRO_SANITIZE.
"""

from __future__ import annotations

import struct

from repro.analysis.sanitize import SanitizingTableAllocator, assert_clean
from repro.core.executive import Executive
from repro.core.reliable import ReliableEndpoint
from repro.core.tracing import FrameTracer
from repro.flightrec import (
    FlightRecorder,
    in_flight_sends,
    load_dump,
    merge_dumps,
)
from repro.flightrec.records import EV_REL_ACK, EV_REL_DELIVER, EV_REL_SEND
from repro.daq import BuilderUnit, EventManager, ReadoutUnit
from repro.durable.segments import SegmentStore, SnapshotStore
from repro.mem.pool import BufferPool
from repro.transports.agent import PeerTransportAgent
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport

_EVENT_ID = struct.Struct("<Q")

EVM_NODE = 0
FEED_NODE = 5
DROPPY = FaultPlan(drop_rate=0.05, duplicate_rate=0.02)


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


class _Cluster:
    def __init__(self, tmp_path, *, seed=11):
        self.tmp_path = tmp_path
        self.seed = seed
        self.network = None
        self.exes: dict[int, Executive] = {}
        self.clocks: dict[int, _ManualClock] = {}
        self.dead: list[Executive] = []
        self.tick = 0
        # Every node carries a black box + tracer; a killed node's ring
        # spills at hard_stop under a per-incarnation name so the dead
        # incarnation's evidence is never overwritten by its successor.
        self.crash_dir = tmp_path / "crash"
        self.crash_dir.mkdir(parents=True, exist_ok=True)
        self.incarnations: dict[int, int] = {}

        from repro.transports.loopback import LoopbackNetwork

        self.network = LoopbackNetwork()
        for node in range(6):
            self._boot_node(node)

        # -- node 0: EVM + receiving endpoint --------------------------
        self.evm = EventManager(event_timeout_ns=5_000, max_reassignments=30)
        self.evm_tid = int(self.exes[EVM_NODE].install(self.evm))
        self.rx = self._install_rx(self.exes[EVM_NODE], self.evm)
        self.rx_tid = int(self.rx.tid)

        # -- nodes 1-4: RUs and BUs ------------------------------------
        self.rus = {i: ReadoutUnit(ru_id=i, mean_fragment=256)
                    for i in (0, 1)}
        ru_tids = {i: self.exes[1 + i].install(ru)
                   for i, ru in self.rus.items()}
        self.bus = {i: BuilderUnit(bu_id=i) for i in (0, 1)}
        bu_tids = {i: self.exes[3 + i].install(bu)
                   for i, bu in self.bus.items()}
        self.ru_tids, self.bu_tids = ru_tids, bu_tids
        self._connect_evm(self.evm)
        for i, bu in self.bus.items():
            node = 3 + i
            bu.connect(  # repro: noqa DFL001
                self.exes[node].create_proxy(EVM_NODE, self.evm_tid),
                {j: self.exes[node].create_proxy(1 + j, t)
                 for j, t in ru_tids.items()},
            )

        # -- node 5: the journaled trigger feed ------------------------
        self.feed_store = SegmentStore(tmp_path / "feed.journal")
        self.feed = ReliableEndpoint(
            name="feed", retransmit_ns=1000, max_retries=400,
            journal=self.feed_store,
        )
        self.feed_tid = int(self.exes[FEED_NODE].install(self.feed))

        self.evm.snapshot_store = SnapshotStore(tmp_path / "evm.snapshot")

    # -- construction helpers -------------------------------------------
    def _boot_node(self, node):
        clock = _ManualClock()
        clock.t = self.tick * 1000
        exe = Executive(
            node=node, clock=clock,
            pool=BufferPool(SanitizingTableAllocator()),
            tracer=FrameTracer(capacity=4096),
        )
        inc = self.incarnations.get(node, 0) + 1
        self.incarnations[node] = inc
        exe.attach_flight_recorder(FlightRecorder(
            capacity=4096, dump_dir=self.crash_dir,
            name=f"node{node}-inc{inc}",
        ))
        PeerTransportAgent.attach(exe).register(
            FaultyLoopbackTransport(
                self.network, DROPPY, seed=self.seed + node
            ),
            default=True,
        )
        self.exes[node], self.clocks[node] = exe, clock
        return exe

    def _install_rx(self, exe, evm, tid=None):
        rx = ReliableEndpoint(name="rx", retransmit_ns=1000)
        # The durable-stream receiver feeds the EVM *synchronously in
        # its own dispatch*: delivery, intake and snapshot autosave
        # commit (or die) together.
        rx.consumer = lambda src, data: evm.intake_trigger(
            _EVENT_ID.unpack(bytes(data))[0]
        )
        exe.install(rx, tid=tid)
        return rx

    def _connect_evm(self, evm):
        exe = self.exes[EVM_NODE]
        evm.connect(  # repro: noqa DFL001
            {i: exe.create_proxy(1 + i, t) for i, t in self.ru_tids.items()},
            {i: exe.create_proxy(3 + i, t) for i, t in self.bu_tids.items()},
        )

    # -- workload -------------------------------------------------------
    def fire(self, first, last):
        peer = self.exes[FEED_NODE].create_proxy(EVM_NODE, self.rx_tid)
        for event_id in range(first, last + 1):
            self.feed.send_reliable(peer, _EVENT_ID.pack(event_id))

    def run(self, ticks, step_ns=1000):
        # Pump to idle at the current virtual time *before* advancing
        # it (the test_reliable idiom): in-flight exchanges complete
        # "instantly", so timers only fire for genuinely lost traffic.
        for _ in range(ticks):
            self._pump()
            self.tick += 1
            for clock in self.clocks.values():
                clock.t = self.tick * step_ns
        self._pump()

    def _pump(self):
        for _ in range(10_000):
            if not any(exe.step() for exe in self.exes.values()):
                return

    # -- the two kills --------------------------------------------------
    def kill_and_rejoin_evm_node(self):
        """kill -9 the EVM node mid-burst; boot a replacement that
        restores from the snapshot store and resumes building."""
        self.exes[EVM_NODE].hard_stop()
        self.dead.append(self.exes[EVM_NODE])
        exe = self._boot_node(EVM_NODE)
        evm2 = EventManager(event_timeout_ns=5_000, max_reassignments=30)
        # Same TiDs as before the crash: the surviving BUs still
        # address DONE to the EVM's slot, and the feed's
        # retransmissions must land on the endpoint's.  (Reserve both
        # before creating proxies, which draw from the same space.)
        exe.install(evm2, tid=self.evm_tid)
        # The fresh endpoint's dedup window is empty — EVM-level dedup
        # (restored from the snapshot) absorbs re-deliveries instead.
        self.rx = self._install_rx(exe, evm2, tid=self.rx_tid)
        self._connect_evm(evm2)
        evm2.snapshot_store = SnapshotStore(self.tmp_path / "evm.snapshot")
        assert evm2.recover() is True
        self.evm = evm2

    def kill_and_rejoin_feed_node(self):
        """kill -9 the feed mid-burst; the replacement replays every
        unacknowledged trigger from the journal and resumes the
        sequence space."""
        self.feed_store.crash()
        self.exes[FEED_NODE].hard_stop()
        self.dead.append(self.exes[FEED_NODE])
        exe = self._boot_node(FEED_NODE)
        self.feed_store = SegmentStore(self.tmp_path / "feed.journal")
        self.feed = ReliableEndpoint(
            name="feed", retransmit_ns=1000, max_retries=400,
            journal=self.feed_store,
        )
        exe.install(self.feed, tid=self.feed_tid)

    # -- verdicts -------------------------------------------------------
    def assert_all_pools_clean(self):
        for exe in (*self.exes.values(), *self.dead):
            exe.pool.check_conservation()
            assert exe.pool.in_flight == 0, (
                f"node {exe.node} leaked {exe.pool.in_flight} blocks"
            )
            assert_clean(exe.pool)


def test_kill_and_rejoin_zero_events_lost(tmp_path):
    cluster = _Cluster(tmp_path)

    # Phase 1: first burst; let it run just long enough that some
    # events complete, some are mid-build and some triggers are still
    # in flight on the lossy wire — then kill the EVM node.
    cluster.fire(1, 12)
    cluster.run(ticks=4)
    assert 0 < cluster.evm.completed < 12, (
        "kill must land mid-burst to mean anything"
    )
    cluster.kill_and_rejoin_evm_node()
    cluster.run(ticks=120)

    # Phase 2: second burst; kill the feed mid-burst this time — the
    # sends are journaled and committed but none acknowledged yet, so
    # every one of them must come back from the replay.
    cluster.fire(13, 24)
    assert cluster.feed.in_flight == 12, (
        "kill must land with sends still unacknowledged"
    )
    cluster.kill_and_rejoin_feed_node()
    assert cluster.feed.replayed > 0  # the journal really drove replay
    cluster.run(ticks=400)

    evm, feed = cluster.evm, cluster.feed
    # ZERO events lost: every trigger ever fired was built, once.
    assert evm.completed == 24
    assert sorted(evm.completed_ids) == list(range(1, 25))
    assert evm.lost_events == []
    assert evm.in_flight == 0
    # The stream settled: nothing pending, the journal fully retired.
    assert feed.in_flight == 0
    assert feed.journal_depth == 0
    # Re-delivered triggers were absorbed, not rebuilt.
    assert evm.restores == 1
    # Readout buffers all cleared — no abandoned event residue.
    for ru in cluster.rus.values():
        assert ru.buffered_events == 0
    # Pool hygiene across the whole story, dead executives included,
    # under the runtime sanitizer's canary scan.
    cluster.assert_all_pools_clean()


def test_black_box_merge_reconstructs_the_killed_events(tmp_path):
    """The post-mortem acceptance drill: after killing the feed with a
    full burst committed-but-unacked, the dead incarnation's dump alone
    identifies the in-flight frames, and merging every node's dump
    reconstructs one killed event's full cross-node story."""
    cluster = _Cluster(tmp_path)
    cluster.fire(1, 12)
    cluster.run(ticks=120)
    assert cluster.evm.completed == 12

    # Kill the feed with seqs 13-24 journaled but none acknowledged.
    cluster.fire(13, 24)
    assert cluster.feed.in_flight == 12
    cluster.kill_and_rejoin_feed_node()
    cluster.run(ticks=400)
    assert cluster.evm.completed == 24

    # The dead incarnation spilled at hard_stop; its black box alone
    # names the frames in flight at the crash window — no journal read.
    dead_dump = load_dump(cluster.crash_dir / "node5-inc1.flightrec")
    assert dead_dump.node == FEED_NODE
    assert dead_dump.reason == "hard_stop"
    assert [r.a for r in in_flight_sends(dead_dump)] == list(range(13, 25))

    # Spill every survivor and merge the whole incident.
    dumps = [dead_dump]
    for exe in cluster.exes.values():
        dumps.append(load_dump(exe.flightrec.spill("post-mortem")))
    timeline = merge_dumps(dumps)
    assert timeline.nodes == [0, 1, 2, 3, 4, 5]

    # One killed event end to end: seq 13 committed by the dead feed,
    # replayed by its successor (same node id), delivered on the EVM
    # node, acked back home — one causal, cross-node order.
    hops = timeline.stream(sender=FEED_NODE, seq=13)
    kinds = [event.record.kind for event in hops]
    assert kinds.count(EV_REL_SEND) >= 2  # original + journal replay
    assert EV_REL_ACK in kinds
    delivers = [e for e in hops if e.record.kind == EV_REL_DELIVER]
    assert [e.node for e in delivers] == [EVM_NODE]
    assert timeline.delivered(FEED_NODE, EVM_NODE, 13)
    # The replay arrived after the original left: causal order held.
    first_send = next(e for e in hops if e.record.kind == EV_REL_SEND)
    assert delivers[0].record.t_ns >= first_send.record.t_ns

    cluster.assert_all_pools_clean()


def test_clean_wire_no_faults_needed(tmp_path):
    """Control run: with a perfect wire and no kills the same rig
    completes without a single retransmission or reassignment."""
    cluster = _Cluster(tmp_path)
    for pt_holder in cluster.exes.values():
        pt_holder.pta.transport("faulty").plan = FaultPlan()
    cluster.fire(1, 10)
    cluster.run(ticks=30)
    assert cluster.evm.completed == 10
    assert cluster.feed.retransmissions == 0
    assert cluster.evm.reassignments == 0
    assert cluster.feed.journal_depth == 0
    cluster.assert_all_pools_clean()
