"""The xdaq-bench CLI."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_experiment_registry_covers_design_index():
    """Every experiment id from DESIGN.md's table has a runner."""
    for exp_id in ("fig6", "tab1", "alloc", "orb", "ptmodes", "dispatch",
                   "pcififo", "multirail", "native", "daqscale",
                   "telemetry"):
        assert exp_id in EXPERIMENTS


def test_cli_runs_one_experiment(capsys):
    assert main(["tab1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "frameAlloc" in out
    assert "done in" in out


def test_telemetry_overhead_gate(capsys):
    """The X6 benchmark runs standalone and enforces its ratio gate."""
    from repro.bench.telemetry import main as telemetry_main

    code = telemetry_main(["--messages", "400", "--repeats", "1",
                           "--max-ratio", "1000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "off/floor ratio" in out
    for column in ("floor", "off", "traced", "timed"):
        assert column in out


def test_telemetry_gate_trips_when_exceeded(capsys):
    from repro.bench.telemetry import main as telemetry_main

    # An impossible threshold: any measured ratio exceeds 0.
    code = telemetry_main(["--messages", "200", "--repeats", "1",
                           "--max-ratio", "0"])
    assert code == 1


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_report_formatting():
    from repro.bench.report import format_table, paper_vs_measured

    table = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert lines[1].split() == ["a", "bb"]
    # Right-aligned columns line up.
    assert lines[4].index("333") < lines[4].index("4")

    compare = paper_vs_measured([("x", 1, 2)], title="C")
    assert "paper" in compare and "measured" in compare


def test_format_table_empty_rows():
    from repro.bench.report import format_table

    table = format_table(["col"], [])
    assert "col" in table
