"""The xdaq-bench CLI."""

from __future__ import annotations

import pytest

from repro.bench.__main__ import EXPERIMENTS, main


def test_experiment_registry_covers_design_index():
    """Every experiment id from DESIGN.md's table has a runner."""
    for exp_id in ("fig6", "tab1", "alloc", "orb", "ptmodes", "dispatch",
                   "pcififo", "multirail", "native", "daqscale"):
        assert exp_id in EXPERIMENTS


def test_cli_runs_one_experiment(capsys):
    assert main(["tab1"]) == 0
    out = capsys.readouterr().out
    assert "Table 1" in out
    assert "frameAlloc" in out
    assert "done in" in out


def test_cli_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_report_formatting():
    from repro.bench.report import format_table, paper_vs_measured

    table = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert lines[1].split() == ["a", "bb"]
    # Right-aligned columns line up.
    assert lines[4].index("333") < lines[4].index("4")

    compare = paper_vs_measured([("x", 1, 2)], title="C")
    assert "paper" in compare and "measured" in compare


def test_format_table_empty_rows():
    from repro.bench.report import format_table

    table = format_table(["col"], [])
    assert "col" in table
