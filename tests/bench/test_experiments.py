"""Every experiment's *shape* claim, asserted.

These are small-scale runs of the same harnesses the benchmarks use:
who wins, by roughly what factor, what is constant and what is linear.
The absolute paper numbers live in EXPERIMENTS.md; here we pin the
relationships so a regression that flips a conclusion fails CI.
"""

from __future__ import annotations

import pytest

from repro.bench.fig6 import run_fig6
from repro.bench.tab1 import PAPER_TABLE1_US, SUM_STAGES, run_tab1
from repro.core.probes import CostModel


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(payloads=(1, 512, 1024, 2048, 4096), rounds=40)

    def test_all_series_linear(self, result):
        assert result.xdaq_fit.r_squared > 0.999
        assert result.gm_fit.r_squared > 0.999

    def test_overhead_constant_across_payloads(self, result):
        """The paper's key finding: framework overhead is payload-
        independent (their fit slope: -7e-05 us/B ~ 0)."""
        assert abs(result.overhead_fit.slope) < 1e-3
        spread = max(result.overhead_us) - min(result.overhead_us)
        assert spread < 0.5  # half a microsecond across 1..4096 B

    def test_overhead_magnitude_near_paper(self, result):
        """Paper: 8.9 us (sigma 0.6). Ours is the whitebox sum plus the
        extra 44 header bytes on the wire - same single-digit regime."""
        assert 7.0 <= result.mean_overhead_us <= 13.0

    def test_xdaq_always_above_gm(self, result):
        assert all(x > g for x, g in zip(result.xdaq_us, result.gm_us))

    def test_slopes_equal_wire_dominates(self, result):
        """XDAQ and GM series have the same slope: the framework adds
        latency, not per-byte cost."""
        assert result.xdaq_fit.slope == pytest.approx(
            result.gm_fit.slope, rel=0.02
        )

    def test_report_renders(self, result):
        text = result.report()
        assert "Figure 6" in text and "overhead" in text


class TestTab1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tab1(payload=64, rounds=200)

    def test_stage_medians_match_paper_exactly(self, result):
        for stage, paper_us in PAPER_TABLE1_US.items():
            assert result.stage_medians_us[stage] == pytest.approx(
                paper_us, abs=0.01
            ), stage

    def test_stage_sum_cross_checks_blackbox(self, result):
        """Paper: whitebox sum 9.53 vs blackbox 8.9 - same order, the
        sum slightly above.  Ours: 9.70 vs blackbox ~10.6 (the extra
        header wire bytes land in the blackbox view)."""
        assert result.stage_sum_us == pytest.approx(9.70, abs=0.05)
        assert result.blackbox_overhead_us == pytest.approx(
            result.stage_sum_us, abs=1.5
        )

    def test_pt_processing_dominated_by_frame_alloc(self, result):
        """Paper: 'most of the PT processing time is spent in the
        frame allocation'."""
        assert result.stage_medians_us["frame_alloc"] > (
            result.stage_medians_us["pt_processing"] / 2
        )

    def test_report_lists_all_rows(self, result):
        text = result.report()
        for label in ("PT GM processing", "frameAlloc", "frameFree",
                      "Cross check"):
            assert label in text


class TestAllocAblation:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.bench.alloc import run_alloc

        return run_alloc(payload=512, rounds=40)

    def test_sim_optimised_saves_about_4us(self, result):
        saving = result.sim_original_us - result.sim_optimised_us
        assert 3.0 <= saving <= 6.0  # paper: ~4 us

    def test_sim_optimised_near_paper_value(self, result):
        assert result.sim_optimised_us == pytest.approx(5.9, abs=1.5)

    def test_native_table_beats_scan(self, result):
        """The structural claim holds for the real Python allocators."""
        assert result.native_table_ns < result.native_original_ns

    def test_report_renders(self, result):
        assert "allocator" in result.report()


class TestOrbComparison:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.bench.orb import run_orb

        return run_orb(vector_len=1000, calls=80, warmup=10)

    def test_marshalling_workload_orb_much_slower(self, result):
        """The paper's ~10x: the ORB's generic marshalling engine vs
        XDAQ's buffer loaning, on typed DAQ-shaped data."""
        assert result.vector_ratio > 4.0

    def test_orb_vector_call_dominated_by_marshalling(self, result):
        """The ORB's vector call costs far more than its raw echo —
        the marshalling engine is where the time goes."""
        assert result.vector_orb_us > 5 * result.echo_orb_us

    def test_xdaq_vector_near_its_echo_cost(self, result):
        """Buffer loaning: carrying 8 KB of doubles costs XDAQ little
        more than a small echo (no per-element work)."""
        assert result.vector_xdaq_us < 4 * result.echo_xdaq_us

    def test_echo_row_reported(self, result):
        """The small-payload row exists (Python inverts the ordering
        there; EXPERIMENTS.md discusses why)."""
        assert result.echo_orb_us > 0 and result.echo_xdaq_us > 0
        assert "raw 256 B echo" in result.report()


class TestPtModes:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.bench.ptmodes import run_ptmodes

        return run_ptmodes(rounds=25, slow_delay_s=0.0005)

    def test_slow_polling_pt_inflates_latency(self, result):
        assert result.with_slow_polling_us > 3 * result.fast_only_us

    def test_suspension_restores_latency(self, result):
        assert result.with_slow_suspended_us < result.with_slow_polling_us / 3

    def test_task_mode_restores_latency(self, result):
        assert result.with_slow_task_us < result.with_slow_polling_us / 3


class TestDispatchScaling:
    def test_near_flat_in_device_count(self):
        from repro.bench.dispatch import run_dispatch

        result = run_dispatch(device_counts=(1, 10, 100), messages=4000)
        assert result.worst_ratio < 3.0


class TestPciFifo:
    def test_hardware_fifos_win(self):
        from repro.bench.pcififo import run_pcififo

        result = run_pcififo(payload=256, rounds=30)
        assert result.hw_one_way_us < result.sw_one_way_us
        assert result.saving_us > 1.0  # us-scale saving, visibly so


class TestMultirail:
    def test_two_rails_beat_one(self):
        from repro.bench.multirail import run_multirail

        result = run_multirail(messages=120, payload=4096)
        assert result.speedup > 1.5  # approaching 2x

    def test_one_rail_bandwidth_sane(self):
        from repro.bench.multirail import run_multirail

        result = run_multirail(messages=120, payload=4096)
        # The modelled PCI DMA bottleneck is ~49 MB/s per rail.
        assert 10 <= result.one_rail_mb_s <= 60


class TestCostModels:
    def test_fig6_with_optimised_model_drops_overhead(self):
        base = run_fig6(payloads=(512, 2048), rounds=30)
        opt = run_fig6(payloads=(512, 2048), rounds=30,
                       cost_model=CostModel.optimised_allocator())
        assert opt.mean_overhead_us < base.mean_overhead_us - 3.0
