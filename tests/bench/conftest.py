"""Benchmark-shape tests assert wall-clock *ratios*; the pool
sanitizer's poison fills and stack captures distort exactly those
ratios, so the whole directory skips under ``REPRO_SANITIZE=1``."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.sanitize import sanitizing_enabled


_HERE = Path(__file__).parent


def pytest_collection_modifyitems(items):
    if not sanitizing_enabled():
        return
    skip = pytest.mark.skip(
        reason="timing-shape assertions are invalid under the pool sanitizer"
    )
    for item in items:
        if _HERE in Path(str(item.fspath)).parents:
            item.add_marker(skip)
