"""The ``python -m repro.analysis.lint`` entry point end to end."""

from __future__ import annotations

import json

import pytest

from repro.analysis.lint.__main__ import main

CLEAN = "def f(pool):\n    block = pool.alloc(4)\n    block.release()\n"
LEAKY = "def f(pool):\n    block = pool.alloc(4)\n"
WARNY = "def f(exe):\n    exe.frame_alloc(0, target=42)\n"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path):
        assert main([write(tmp_path, "ok.py", CLEAN), "--no-baseline"]) == 0

    def test_findings_exit_one(self, tmp_path, capsys):
        assert main([write(tmp_path, "bad.py", LEAKY), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "OWN002" in out and "1 new" in out

    def test_parse_error_exits_two(self, tmp_path):
        assert main([write(tmp_path, "bad.py", "def f(:\n"),
                     "--no-baseline"]) == 2


class TestBaselineFlow:
    def test_write_then_pass(self, tmp_path):
        target = write(tmp_path, "warn.py", WARNY)
        bl = str(tmp_path / "baseline.json")
        assert main([target, "--baseline", bl, "--write-baseline"]) == 0
        assert main([target, "--baseline", bl]) == 0

    def test_new_finding_on_top_of_baseline_fails(self, tmp_path):
        target = write(tmp_path, "warn.py", WARNY)
        bl = str(tmp_path / "baseline.json")
        assert main([target, "--baseline", bl, "--write-baseline"]) == 0
        write(tmp_path, "warn.py", WARNY + WARNY.replace("def f", "def g"))
        assert main([target, "--baseline", bl]) == 1

    def test_ownership_findings_never_satisfied_by_write(self, tmp_path):
        target = write(tmp_path, "leak.py", LEAKY)
        bl = str(tmp_path / "baseline.json")
        # --write-baseline refuses to pin OWN002 and says so via exit 1
        assert main([target, "--baseline", bl, "--write-baseline"]) == 1
        assert main([target, "--baseline", bl]) == 1


class TestOutput:
    def test_json_format(self, tmp_path, capsys):
        main([write(tmp_path, "bad.py", LEAKY), "--no-baseline",
              "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["new"] == 1
        assert doc["violations"][0]["rule"] == "OWN002"

    def test_out_file_artifact(self, tmp_path):
        out = tmp_path / "report.json"
        main([write(tmp_path, "bad.py", LEAKY), "--no-baseline",
              "--out", str(out)])
        doc = json.loads(out.read_text())
        assert doc["summary"]["findings"] == 1

    def test_rules_listing(self, capsys):
        assert main(["--rules", "unused"]) == 0
        out = capsys.readouterr().out
        for rule in ("OWN001", "OWN002", "OWN003", "DSP001", "TID001",
                     "EXC001"):
            assert rule in out


class TestExpectGate:
    def test_expect_satisfied(self, tmp_path):
        assert main([write(tmp_path, "bad.py", LEAKY), "--no-baseline",
                     "--expect", "OWN002"]) == 0

    def test_expect_missing_fails(self, tmp_path):
        assert main([write(tmp_path, "ok.py", CLEAN), "--no-baseline",
                     "--expect", "OWN001"]) == 1


class TestSeededFixtures:
    def test_fixtures_detected(self):
        """The CI gate: the seeded bugs must keep tripping the checker."""
        assert main([
            "tests/analysis/fixtures", "--no-default-excludes",
            "--no-baseline",
            "--expect", "OWN001", "--expect", "OWN002", "--expect", "OWN003",
            "--expect", "RACE001", "--expect", "RACE002",
            "--expect", "DFL002", "--expect", "DFL003",
        ]) == 0

    def test_interprocedural_fixtures_detected(self):
        """Helper-mediated bugs: only the summaries can see these."""
        assert main([
            "tests/analysis/fixtures/seeded_interproc.py",
            "--no-default-excludes", "--no-baseline",
            "--expect", "OWN001", "--expect", "OWN002", "--expect", "OWN003",
        ]) == 0

    def test_fixtures_excluded_by_default(self, capsys):
        assert main(["tests/analysis/fixtures", "--no-baseline"]) == 0
        assert "0 files" in capsys.readouterr().out

    def test_checked_in_tree_is_clean(self):
        """`src` must stay free of findings — no baseline needed."""
        assert main(["src", "--no-baseline"]) == 0

    def test_checked_in_baseline_covers_tests(self):
        assert main(["src", "tests", "examples",
                     "--baseline", "analysis/baseline.json"]) == 0


class TestParallelJobs:
    def seed_tree(self, tmp_path):
        # Enough files to cross the pool threshold, plus an
        # interprocedural bug a summary-blind per-file pass would miss.
        write(tmp_path, "ok1.py", CLEAN)
        write(tmp_path, "ok2.py", CLEAN.replace("def f", "def g"))
        write(tmp_path, "ok3.py", CLEAN.replace("def f", "def h"))
        write(tmp_path, "ok4.py", CLEAN.replace("def f", "def i"))
        return write(
            tmp_path, "bad.py",
            "def drop(frame):\n"
            "    frame.release()\n"
            "def f(pool):\n"
            "    frame = pool.alloc(4)\n"
            "    drop(frame)\n"
            "    frame.release()\n",
        )

    def test_jobs_match_serial(self, tmp_path, capsys):
        self.seed_tree(tmp_path)

        def findings(jobs):
            code = main([str(tmp_path), "--no-baseline",
                         "--format", "json", "--jobs", jobs])
            doc = json.loads(capsys.readouterr().out)
            rendered = sorted(
                (v["path"].rsplit("/", 1)[-1], v["line"], v["rule"])
                for v in doc["violations"]
            )
            return code, rendered

        serial = findings("1")
        parallel = findings("4")
        assert serial == parallel
        assert serial[0] == 1
        assert ("bad.py", 6, "OWN003") in serial[1]

    def test_jobs_zero_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main([write(tmp_path, "ok.py", CLEAN), "--jobs", "0"])


class TestRaceReport:
    RACY = (
        "class Dev(Listener):\n"
        "    def on_plugin(self):\n"
        "        threading.Thread(target=self._rx).start()\n"
        "    def _rx(self):\n"
        "        self.last = object()\n"
    )

    def test_artifact_has_only_concurrency_findings(self, tmp_path):
        write(tmp_path, "racy.py", self.RACY)
        write(tmp_path, "leaky.py", LEAKY)
        out = tmp_path / "race-report.json"
        main([str(tmp_path), "--no-baseline", "--race-report", str(out)])
        doc = json.loads(out.read_text())
        assert doc["findings"] == 1
        assert {v["rule"] for v in doc["violations"]} == {"RACE001"}
