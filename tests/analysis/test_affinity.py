"""The runtime thread-affinity guard (REPRO_AFFINITY).

The static RACE001 rule flags cross-thread device mutation in the AST;
this guard catches the same bug live: once the guard is installed and
an executive's loop of control has run, assigning a device attribute
from any thread that is neither the loop's owner nor the main thread
raises :class:`AffinityViolationError`.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.sanitize import (
    AffinityViolationError,
    affinity_enabled,
    install_affinity_guard,
    uninstall_affinity_guard,
)
from repro.core.device import Listener
from repro.core.executive import Executive
from repro.transports.base import PeerTransport


@pytest.fixture
def guard():
    install_affinity_guard()
    try:
        yield
    finally:
        uninstall_affinity_guard()


def plugged_device(name: str = "dev") -> tuple[Executive, Listener]:
    exe = Executive(node=0)
    dev = Listener(name)
    exe.install(dev)
    exe.run_until_idle()  # records the owner thread via step()
    return exe, dev


def run_in_thread(fn) -> Exception | None:
    caught: list[Exception] = []

    def runner() -> None:
        try:
            fn()
        except Exception as exc:  # noqa - relayed to the test thread
            caught.append(exc)

    thread = threading.Thread(target=runner, name="stray-mutator")
    thread.start()
    thread.join(timeout=5)
    assert not thread.is_alive()
    return caught[0] if caught else None


class TestEnableSwitch:
    def test_env_parsing(self, monkeypatch):
        for value, expected in [("1", True), ("true", True), ("ON", True),
                                ("0", False), ("", False)]:
            monkeypatch.setenv("REPRO_AFFINITY", value)
            assert affinity_enabled() is expected
        monkeypatch.delenv("REPRO_AFFINITY")
        assert not affinity_enabled()


class TestViolations:
    def test_cross_thread_mutation_raises(self, guard):
        _exe, dev = plugged_device()

        def mutate() -> None:
            dev.last_frame = object()

        exc = run_in_thread(mutate)
        assert isinstance(exc, AffinityViolationError)
        assert "last_frame" in str(exc)

    def test_owner_thread_mutation_is_fine(self, guard):
        exe = Executive(node=0)
        dev = Listener("dev")
        exe.install(dev)

        def own_and_mutate() -> None:
            exe.step()  # this thread becomes the owner
            dev.last_frame = object()

        assert run_in_thread(own_and_mutate) is None

    def test_main_thread_mutation_is_fine(self, guard):
        _exe, dev = plugged_device()
        dev.last_frame = object()  # registration-time setup idiom

    def test_unplugged_device_is_unguarded(self, guard):
        dev = Listener("loose")
        assert run_in_thread(lambda: setattr(dev, "x", 1)) is None

    def test_lifecycle_attrs_are_exempt(self, guard):
        exe, dev = plugged_device()

        def replug() -> None:
            dev.unplug()  # assigns executive/tid from a foreign thread

        assert run_in_thread(replug) is None

    def test_peer_transport_is_exempt(self, guard):
        exe = Executive(node=0)
        pt = PeerTransport("pt")
        exe.install(pt)
        exe.run_until_idle()

        def account() -> None:
            pt.frames_received += 1  # rx-thread accounting idiom

        assert run_in_thread(account) is None


class TestInstallation:
    def test_install_is_idempotent_and_reversible(self):
        plain_step = Executive.step
        plain_setattr = Listener.__setattr__
        install_affinity_guard()
        install_affinity_guard()
        assert Executive.step is not plain_step
        uninstall_affinity_guard()
        uninstall_affinity_guard()
        assert Executive.step is plain_step
        assert Listener.__setattr__ is plain_setattr

    def test_uninstalled_guard_is_silent(self):
        _exe, dev = plugged_device()
        assert run_in_thread(
            lambda: setattr(dev, "last_frame", object())
        ) is None
