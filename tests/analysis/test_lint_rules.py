"""Every lint rule: fires on the bug, stays silent on the idiom,
yields to a ``# repro: noqa``."""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_source


def run(source: str):
    report = lint_source(textwrap.dedent(source), "t.py")
    assert report.parse_error is None
    return report.violations


def rules(source: str) -> list[str]:
    return [v.rule for v in run(source) if not v.suppressed]


class TestOwn001UseAfterTransfer:
    def test_read_after_transmit(self):
        assert rules("""
            def f(transport, pool):
                frame = pool.alloc(10)
                transport.transmit(frame)
                return frame.payload
        """) == ["OWN001"]

    def test_read_after_release(self):
        assert rules("""
            def f(pool):
                block = pool.alloc(10)
                block.release()
                return block.capacity
        """) == ["OWN001"]

    def test_release_after_transmit(self):
        assert rules("""
            def f(transport, pool):
                frame = pool.alloc(10)
                transport.transmit(frame)
                frame.release()
        """) == ["OWN001"]

    def test_retransmit_after_transmit(self):
        assert rules("""
            def f(transport, pool):
                frame = pool.alloc(10)
                transport.transmit(frame)
                transport.transmit(frame)
        """) == ["OWN001"]

    def test_bare_return_is_not_a_use(self):
        # The Device.send idiom: hand the alias to the caller.
        assert rules("""
            def send(self, pool):
                frame = pool.alloc(10)
                self.frame_send(frame)
                return frame
        """) == []

    def test_use_before_transmit_is_fine(self):
        assert rules("""
            def f(transport, pool):
                frame = pool.alloc(10)
                frame.payload[:] = b"x" * 10
                transport.transmit(frame)
        """) == []

    def test_failed_transmit_leaves_ownership_with_caller(self):
        # The PR-3 contract: a transmit that raises did not commit, so
        # the except handler both releasing and re-reading is legal.
        assert rules("""
            def f(transport, pool):
                frame = pool.alloc(10)
                try:
                    transport.transmit(frame)
                except OSError:
                    frame.release()
                    raise
        """) == []


class TestOwn002MissingRelease:
    def test_leak_at_end_of_function(self):
        assert rules("""
            def f(pool):
                frame = pool.alloc(10)
                frame.payload[:] = b"0123456789"
        """) == ["OWN002"]

    def test_leak_on_early_return(self):
        assert rules("""
            def f(pool, flag):
                frame = pool.alloc(10)
                if flag:
                    return None
                frame.release()
        """) == ["OWN002"]

    def test_leak_on_raise(self):
        assert rules("""
            def f(pool, flag):
                frame = pool.alloc(10)
                if flag:
                    raise ValueError("nope")
                frame.release()
        """) == ["OWN002"]

    def test_rebind_while_owned(self):
        assert rules("""
            def f(pool):
                frame = pool.alloc(10)
                frame = pool.alloc(20)
                frame.release()
        """) == ["OWN002"]

    def test_escape_via_call_relieves_obligation(self):
        assert rules("""
            def f(pool, stash):
                frame = pool.alloc(10)
                stash.append(frame)
        """) == []

    def test_escape_via_constructor_relieves_obligation(self):
        # The ingest idiom: Frame(view, block=block) takes the block.
        assert rules("""
            def f(pool, view):
                block = pool.alloc(10)
                return Frame(view, block=block)
        """) == []

    def test_raise_inside_try_is_not_a_leak(self):
        assert rules("""
            def f(pool):
                frame = pool.alloc(10)
                try:
                    if frame.capacity < 10:
                        raise ValueError("small")
                finally:
                    frame.release()
        """) == []


class TestOwn003DoubleRelease:
    def test_double_release(self):
        assert rules("""
            def f(pool):
                block = pool.alloc(10)
                block.release()
                block.release()
        """) == ["OWN003"]

    def test_release_on_both_branches_then_again(self):
        assert rules("""
            def f(pool, flag):
                block = pool.alloc(10)
                if flag:
                    block.release()
                else:
                    block.release()
                block.release()
        """) == ["OWN003"]

    def test_addref_licenses_an_extra_release(self):
        assert rules("""
            def f(pool):
                block = pool.alloc(10)
                block.addref()
                block.release()
                block.release()
        """) == []

    def test_addref_does_not_license_two_extra(self):
        assert rules("""
            def f(pool):
                block = pool.alloc(10)
                block.addref()
                block.release()
                block.release()
                block.release()
        """) == ["OWN003"]

    def test_release_on_one_branch_only_is_maybe(self):
        # Divergent states merge to MAYBE: conservative, no report.
        assert rules("""
            def f(pool, flag):
                block = pool.alloc(10)
                if flag:
                    block.release()
                block.release()
        """) == []

    def test_non_frameish_names_are_not_tracked(self):
        # Semaphore semantics collide with the method name; unknown-
        # origin variables are only tracked when they look like blocks.
        assert rules("""
            def f(sem):
                sem.release()
                sem.release()
        """) == []

    def test_frameish_unknown_origin_is_tracked(self):
        assert rules("""
            def f(frame):
                frame.release()
                frame.release()
        """) == ["OWN003"]


class TestPytestRaisesMuting:
    def test_consumption_inside_raises_does_not_commit(self):
        assert rules("""
            def test_bad(pool, pytest):
                block = pool.alloc(10)
                block.release()
                with pytest.raises(BlockStateError):
                    block.release()
        """) == []

    def test_use_after_asserted_failure_is_fine(self):
        assert rules("""
            def test_failed_send(transport, pool, pytest):
                frame = pool.alloc(10)
                with pytest.raises(OSError):
                    transport.transmit(frame)
                frame.release()
        """) == []


class TestDsp001DispatchBindings:
    def test_unknown_uppercase_name(self):
        assert rules("""
            def f(self):
                self.table.bind(EXEC_MADE_UP, handler)
        """) == ["DSP001"]

    def test_unknown_int_literal(self):
        assert rules("""
            def f(self):
                self.table.bind(0x77, handler)
        """) == ["DSP001"]

    def test_known_code_clean(self):
        assert rules("""
            from repro.i2o.function_codes import EXEC_STATUS_GET

            def f(self):
                self.table.bind(EXEC_STATUS_GET, handler)
        """) == []

    def test_lowercase_variable_is_dynamic(self):
        assert rules("""
            def f(self, func):
                self.table.bind(func, handler)
        """) == []

    def test_non_table_bind_out_of_scope(self):
        # Listener.bind takes per-application xfunctions, not codes.
        assert rules("""
            def f(self):
                self.bind(0x77, handler)
        """) == []


class TestTid001RawTids:
    def test_int_literal_target(self):
        assert rules("""
            def f(exe):
                exe.frame_alloc(0, target=42)
        """) == ["TID001"]

    def test_named_constant_clean(self):
        assert rules("""
            def f(exe):
                exe.frame_alloc(0, target=EXECUTIVE_TID)
        """) == []

    def test_bool_is_not_an_int_literal(self):
        # bool is an int subtype; reply=True must not trip the rule.
        assert rules("""
            def f(exe):
                exe.configure(target=EXECUTIVE_TID, strict=True)
        """) == []


class TestDfl001HandWiredRoutes:
    def test_connect_fed_inline_proxy(self):
        assert rules("""
            def wire(evm, cluster):
                evm.connect(cluster[0].create_proxy(1, 7))
        """) == ["DFL001"]

    def test_proxy_nested_in_dict_comprehension(self):
        assert rules("""
            def wire(evm, exes, tids):
                evm.connect(
                    {i: exes[0].create_proxy(1 + i, t)
                     for i, t in tids.items()},
                )
        """) == ["DFL001"]

    def test_proxy_in_keyword_argument(self):
        assert rules("""
            def wire(bu, cluster):
                bu.connect(evm=cluster.proxy(3, "evm"))
        """) == ["DFL001"]

    def test_reported_once_per_call(self):
        assert rules("""
            def wire(bu, exe, a, b):
                bu.connect(exe.create_proxy(1, a), exe.create_proxy(2, b))
        """) == ["DFL001"]

    def test_connect_with_plain_tid_clean(self):
        # Same-node wiring with an allocated TiD carries no proxies.
        assert rules("""
            def wire(trigger, evm_tid):
                trigger.connect(evm_tid)
        """) == []

    def test_unrelated_connect_clean(self):
        assert rules("""
            def dial(sock, address):
                sock.connect(address)
        """) == []

    def test_proxy_outside_connect_clean(self):
        # Proxies themselves are fine; only threading them through
        # connect() bypasses the dataflow DAG.
        assert rules("""
            def watch(monitor, cluster):
                monitor.watch(cluster.proxy(6, "evm"))
        """) == []

    def test_noqa_suppresses(self):
        violations = run("""
            def wire(evm, exe, t):
                evm.connect(exe.create_proxy(1, t))  # repro: noqa DFL001
        """)
        assert [v.rule for v in violations if not v.suppressed] == []
        assert [v.rule for v in violations if v.suppressed] == ["DFL001"]


class TestExc001BroadExcepts:
    def test_bare_except(self):
        assert rules("""
            def f():
                try:
                    work()
                except:
                    pass
        """) == ["EXC001"]

    def test_swallowed_broad_exception(self):
        assert rules("""
            def f():
                try:
                    work()
                except Exception:
                    pass
        """) == ["EXC001"]

    def test_handled_broad_exception_is_fine(self):
        assert rules("""
            def f(self):
                try:
                    work()
                except Exception as exc:
                    self.log.warning("dispatch failed: %s", exc)
        """) == []

    def test_specific_exception_is_fine(self):
        assert rules("""
            def f():
                try:
                    work()
                except ValueError:
                    pass
        """) == []


class TestNoqaSuppression:
    SOURCE = """
        def f(pool):
            block = pool.alloc(10)
            block.release()
            return block.capacity{noqa}
    """

    def test_unsuppressed(self):
        assert rules(self.SOURCE.format(noqa="")) == ["OWN001"]

    def test_rule_specific_noqa(self):
        violations = run(self.SOURCE.format(noqa="  # repro: noqa OWN001"))
        assert [v.rule for v in violations] == ["OWN001"]
        assert violations[0].suppressed

    def test_bare_noqa_suppresses_everything(self):
        assert rules(self.SOURCE.format(noqa="  # repro: noqa")) == []

    def test_wrong_rule_does_not_suppress(self):
        assert rules(self.SOURCE.format(noqa="  # repro: noqa TID001")) == [
            "OWN001"
        ]


class TestMultilineNoqa:
    def test_noqa_anywhere_in_a_parenthesized_statement(self):
        # The violation anchors inside the call; the noqa sits on the
        # statement's first line.  Same statement, same suppression.
        assert rules("""
            def f(exe):
                exe.frame_alloc(  # repro: noqa TID001
                    0,
                    target=42,
                )
        """) == []

    def test_noqa_on_closing_line(self):
        assert rules("""
            def f(exe):
                exe.frame_alloc(
                    0,
                    target=42,
                )  # repro: noqa TID001
        """) == []

    def test_noqa_covers_a_decorator_stack(self):
        # Compound statements suppress over their *header* — decorators
        # through the def line — but never the body.
        assert rules("""
            @register(
                exe.frame_alloc(0, target=42),
            )  # repro: noqa TID001
            def f(exe):
                exe.frame_alloc(0, target=7)
        """) == ["TID001"]

    def test_noqa_does_not_leak_to_the_next_statement(self):
        assert rules("""
            def f(pool):
                a = pool.alloc(10)
                a.release()  # repro: noqa OWN003
                a.release()
        """) == ["OWN003"]


class TestModuleLevelCode:
    def test_module_body_is_checked(self):
        violations = run("""
            block = pool.alloc(10)
            block.release()
            block.release()
        """)
        assert [v.rule for v in violations] == ["OWN003"]
        assert violations[0].context == "<module>"

    def test_parse_error_reported_not_raised(self):
        report = lint_source("def broken(:\n", "t.py")
        assert report.parse_error is not None
        assert report.violations == []
