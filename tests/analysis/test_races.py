"""RACE001/RACE002: thread-affinity race detection."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import baseline
from repro.analysis.lint import lint_source
from repro.analysis.violations import Violation

RX_DEVICE = """
    class Dev(Listener):
        def on_plugin(self):
            threading.Thread(target=self._rx_loop).start()

        def _rx_loop(self):
            {body}
"""

SAMPLER_DEVICE = """
    class Samp(Listener):
        def on_plugin(self):
            threading.Thread(target=self._sample_loop).start()

        def _sample_loop(self):
            frames = sys._current_frames()
            {body}
"""


def violations(source: str):
    report = lint_source(textwrap.dedent(source), "t.py")
    assert report.parse_error is None
    return [v for v in report.violations if not v.suppressed]


def rules(source: str) -> list[str]:
    return [v.rule for v in violations(source)]


def rx_rules(body: str) -> list[str]:
    return rules(RX_DEVICE.format(body=body))


def sampler_rules(body: str) -> list[str]:
    return rules(SAMPLER_DEVICE.format(body=body))


class TestRace001:
    def test_device_attribute_store_from_rx(self):
        assert rx_rules("self.last_frame = object()") == ["RACE001"]

    def test_executive_mutation_from_rx(self):
        assert rx_rules("self.executive.stats['rx'] = 1") == ["RACE001"]

    def test_mutator_call_from_rx(self):
        assert rx_rules("self.pending.append(1)") == ["RACE001"]

    def test_same_store_from_dispatch_is_fine(self):
        assert rules("""
            class Dev(Listener):
                def on_plugin(self):
                    self.last_frame = None
        """) == []

    def test_lock_region_is_exempt(self):
        assert rx_rules(
            "with self._lock:\n                self.last_frame = object()"
        ) == []

    def test_counter_augassign_is_exempt(self):
        # PT accounting idiom: rx threads bump their own counters.
        assert rx_rules("self.frames_received += 1") == []

    def test_executive_counter_is_not_exempt(self):
        assert rx_rules("self.executive.drops += 1") == ["RACE001"]

    def test_local_state_is_fine(self):
        assert rx_rules("buf = []\n            buf.append(1)") == []

    def test_noqa_suppresses(self):
        assert rx_rules(
            "self.last_frame = object()  # repro: noqa RACE001"
        ) == []


class TestRace002:
    def test_module_state_from_rx(self):
        assert rules("""
            _SEEN: dict = {}

            class Dev(Listener):
                def on_plugin(self):
                    threading.Thread(target=self._rx_loop).start()

                def _rx_loop(self):
                    _SEEN['x'] = 1
        """) == ["RACE002"]

    def test_class_attribute_from_rx(self):
        assert rx_rules("Dev.instances = []") == ["RACE002"]

    def test_shadowing_local_is_fine(self):
        assert rules("""
            _SEEN: dict = {}

            class Dev(Listener):
                def on_plugin(self):
                    threading.Thread(target=self._rx_loop).start()

                def _rx_loop(self):
                    _SEEN = {}
                    _SEEN['x'] = 1
        """) == []

    def test_module_state_from_dispatch_is_fine(self):
        assert rules("""
            _SEEN: dict = {}

            class Dev(Listener):
                def on_plugin(self):
                    _SEEN['x'] = 1
        """) == []


class TestSamplerContext:
    """The frame-walking observation thread is its own context:
    never mislabelled rx-thread, read-only walk clean, mutations of
    observed state flagged with *no* stat-counter pass."""

    def test_classified_sampler_not_rx_thread(self):
        (v,) = violations(
            SAMPLER_DEVICE.format(body="self.executive.hot = frames")
        )
        assert v.rule == "RACE001"
        assert "[sampler]" in v.message
        assert "rx-thread" not in v.message

    def test_read_only_walk_on_plain_object_is_clean(self):
        # The SamplingProfiler shape: a plain (non-device) object whose
        # thread walks frames and tallies on its own state.
        assert rules("""
            class Samp:
                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    frames = sys._current_frames()
                    self.counts[len(frames)] = 1
        """) == []

    def test_one_self_hop_to_the_walk_still_classifies(self):
        # The _run -> sample_once idiom: the target itself never names
        # sys._current_frames.
        (v,) = violations("""
            class Samp:
                def start(self):
                    threading.Thread(target=self._run).start()

                def _run(self):
                    self.sample_once()

                def sample_once(self):
                    frames = sys._current_frames()
                    self.executive.hot = frames
        """)
        assert v.rule == "RACE001"
        assert "[sampler]" in v.message

    def test_device_state_store_is_flagged(self):
        assert sampler_rules("self.last_walk = frames") == ["RACE001"]

    def test_counter_augassign_is_not_exempt_for_samplers(self):
        # Contrast with TestRace001.test_counter_augassign_is_exempt:
        # the sampler is read-only by contract, observers don't get
        # the transports' stat-counter pass.
        assert sampler_rules("self.samples_taken += 1") == ["RACE001"]

    def test_module_state_is_flagged(self):
        assert rules("""
            _SEEN: dict = {}

            class Samp(Listener):
                def on_plugin(self):
                    threading.Thread(target=self._sample_loop).start()

                def _sample_loop(self):
                    _SEEN['x'] = sys._current_frames()
        """) == ["RACE002"]

    def test_lock_region_is_exempt(self):
        assert sampler_rules(
            "with self._lock:\n                self.last_walk = frames"
        ) == []


class TestNeverBaselined:
    @pytest.mark.parametrize("rule", ["RACE001", "RACE002"])
    def test_save_refuses_race_rules(self, tmp_path, rule):
        v = Violation(rule=rule, path="t.py", line=1, col=1,
                      message="m", context="c", detail="d")
        path = tmp_path / "baseline.json"
        assert baseline.save(path, [v]) == 0  # nothing written

    @pytest.mark.parametrize("rule", ["RACE001", "RACE002"])
    def test_load_refuses_pinned_race_rules(self, tmp_path, rule):
        path = tmp_path / "baseline.json"
        path.write_text(
            '{"version": 1, "entries": [{"path": "t.py", '
            f'"rule": "{rule}", "count": 1}}]}}'
        )
        with pytest.raises(baseline.BaselineError):
            baseline.load(path)
