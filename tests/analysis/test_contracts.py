"""DFL002/DFL003: static dataflow-contract conformance."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import baseline
from repro.analysis.lint import lint_source

HEADER = textwrap.dedent("""
    XF_A = 0x0101
    XF_B = 0x0102
    MT_A = message_type("a", XF_A)
    MT_B = message_type("b", XF_B)
""")


def rules(source: str) -> list[str]:
    report = lint_source(HEADER + textwrap.dedent(source), "t.py")
    assert report.parse_error is None
    return [v.rule for v in report.violations if not v.suppressed]


class TestDfl002:
    def test_undeclared_emit(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_A,)
                emits = ()

                def _on_a(self, frame):
                    self.emit(MT_B, payload=b"")
        """) == ["DFL002"]

    def test_declared_emit_is_fine(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_A,)
                emits = (MT_B,)

                def _on_a(self, frame):
                    self.emit(MT_B, payload=b"")
        """) == []

    def test_emits_inherited_from_base(self):
        assert rules("""
            class Base(Listener):
                emits = (MT_B,)

            class Dev(Base):
                consumes = (MT_A,)

                def _on_a(self, frame):
                    self.emit(MT_B, payload=b"")
        """) == []

    def test_unregistered_constant_is_not_judged(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_A,)

                def _on_a(self, frame):
                    self.emit(SOMETHING_DYNAMIC, payload=b"")
        """) == []

    def test_empty_contract_class_is_skipped(self):
        # No contract at all: the device is outside the dataflow layer.
        assert rules("""
            class Dev(Listener):
                def _on_a(self, frame):
                    self.emit(MT_B, payload=b"")
        """) == []

    def test_noqa_suppresses(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_A,)

                def _on_a(self, frame):
                    self.emit(MT_B, payload=b"")  # repro: noqa DFL002
        """) == []


class TestDfl003:
    def test_stray_bind(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_B,)
                emits = ()

                def on_plugin(self):
                    self.bind(XF_A, self._on_a)

                def _on_a(self, frame):
                    frame.release()
        """) == ["DFL003"]

    def test_consumed_bind_is_fine(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_A,)

                def on_plugin(self):
                    self.bind(XF_A, self._on_a)

                def _on_a(self, frame):
                    frame.release()
        """) == []

    def test_emitted_bind_is_fine(self):
        # The builder idiom: bind the emitted xfunction for replies.
        assert rules("""
            class Dev(Listener):
                emits = (MT_A,)

                def on_plugin(self):
                    self.bind(XF_A, self._on_reply)

                def _on_reply(self, frame):
                    frame.release()
        """) == []

    def test_int_literal_bind(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_B,)

                def on_plugin(self):
                    self.bind(0x0101, self._on_a)

                def _on_a(self, frame):
                    frame.release()
        """) == ["DFL003"]

    def test_xf_with_no_message_type_is_not_judged(self):
        assert rules("""
            XF_HEARTBEAT = 0x0901

            class Dev(Listener):
                consumes = (MT_A,)

                def on_plugin(self):
                    self.bind(XF_HEARTBEAT, self._on_hb)

                def _on_hb(self, frame):
                    frame.release()
        """) == []

    def test_noqa_suppresses(self):
        assert rules("""
            class Dev(Listener):
                consumes = (MT_B,)

                def on_plugin(self):
                    self.bind(XF_A, self._on_a)  # repro: noqa DFL003

                def _on_a(self, frame):
                    frame.release()
        """) == []


class TestNeverBaselined:
    @pytest.mark.parametrize("rule", ["DFL002", "DFL003"])
    def test_policy_refuses(self, rule):
        assert baseline.never_baselined(rule)

    def test_dfl001_stays_baselinable(self):
        assert not baseline.never_baselined("DFL001")
