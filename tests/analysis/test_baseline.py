"""Baseline semantics: count budgets, fingerprint stability, policy."""

from __future__ import annotations

import pytest

from repro.analysis import baseline
from repro.analysis.violations import Violation


def v(rule="TID001", path="a.py", line=1, context="f", detail="target"):
    return Violation(
        rule=rule, path=path, line=line, col=1,
        message="m", context=context, detail=detail,
    )


class TestApply:
    def test_budget_consumed_per_fingerprint(self):
        from collections import Counter

        violations = [v(line=1), v(line=9)]
        new = baseline.apply(
            violations, Counter({violations[0].fingerprint: 1})
        )
        assert new == [violations[1]]
        assert violations[0].baselined and not violations[1].baselined

    def test_fingerprint_ignores_line_numbers(self):
        from collections import Counter

        pinned = v(line=10)
        moved = v(line=99)  # same code, shifted by an unrelated edit
        new = baseline.apply([moved], Counter({pinned.fingerprint: 1}))
        assert new == []

    def test_suppressed_does_not_consume_budget(self):
        from collections import Counter

        supp, real = v(), v(line=2)
        supp.suppressed = True
        new = baseline.apply([supp, real], Counter({real.fingerprint: 1}))
        assert new == []


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = baseline.save(path, [v(), v(line=5), v(context="g")])
        assert count == 2  # two distinct fingerprints
        budget = baseline.load(path)
        assert budget[v().fingerprint] == 2
        assert budget[v(context="g").fingerprint] == 1

    def test_save_excludes_ownership_rules(self, tmp_path):
        path = tmp_path / "baseline.json"
        count = baseline.save(path, [v(rule="OWN001"), v(rule="DSP001")])
        assert count == 0
        assert baseline.load(path) == {}

    def test_save_excludes_suppressed(self, tmp_path):
        supp = v()
        supp.suppressed = True
        assert baseline.save(tmp_path / "b.json", [supp]) == 0

    def test_load_rejects_pinned_ownership_rules(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"version": 1, "entries": [{"path": "a.py", "rule": "OWN001",'
            ' "context": "f", "detail": "frame", "count": 1}]}'
        )
        with pytest.raises(baseline.BaselineError, match="must be fixed"):
            baseline.load(path)

    def test_load_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99, "entries": []}')
        with pytest.raises(baseline.BaselineError):
            baseline.load(path)
