"""Ownership summaries, call resolution and the interprocedural OWN rules."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.lint import lint_source
from repro.analysis.lint.callgraph import (
    BORROWS,
    ESCAPES,
    RELEASES,
    TRANSMITS,
    build_index,
)


def index_of(**modules: str):
    units = [
        (f"{name}.py", ast.parse(textwrap.dedent(source)))
        for name, source in modules.items()
    ]
    return build_index(units)


def summary(index, key: str):
    return index.summaries[key]


def rules(source: str) -> list[str]:
    report = lint_source(textwrap.dedent(source), "t.py")
    assert report.parse_error is None
    return [v.rule for v in report.violations if not v.suppressed]


class TestSummaries:
    def test_release_transmit_borrow(self):
        index = index_of(m="""
            def drop(frame):
                frame.release()

            def ship(transport, frame):
                transport.transmit(frame)

            def peek(frame, log):
                log.append(frame.total_size)
        """)
        assert summary(index, "m.py::drop").effect_of("frame") == RELEASES
        ship = summary(index, "m.py::ship")
        assert ship.effect_of("frame") == TRANSMITS
        assert ship.effect_of("transport") == BORROWS
        assert summary(index, "m.py::peek").effect_of("frame") == BORROWS

    def test_path_dependent_release_escapes(self):
        index = index_of(m="""
            def maybe(frame, flag):
                if flag:
                    frame.release()
        """)
        assert summary(index, "m.py::maybe").effect_of("frame") == ESCAPES

    def test_stored_param_escapes(self):
        index = index_of(m="""
            def stash(self, frame):
                self.pending = frame
        """)
        assert summary(index, "m.py::stash").effect_of("frame") == ESCAPES

    def test_raise_exits_are_ignored(self):
        # PR-3 contract: a transfer that raises leaves ownership with
        # the caller, so the raising path must not dilute the join.
        index = index_of(m="""
            def ship(transport, frame):
                if transport is None:
                    raise ValueError("no transport")
                transport.transmit(frame)
        """)
        assert summary(index, "m.py::ship").effect_of("frame") == TRANSMITS

    def test_chained_helpers_reach_fixpoint(self):
        index = index_of(m="""
            def inner(frame):
                frame.release()

            def middle(frame):
                inner(frame)

            def outer(frame):
                middle(frame)
        """)
        assert summary(index, "m.py::outer").effect_of("frame") == RELEASES

    def test_returns_fresh(self):
        index = index_of(m="""
            def make(pool):
                frame = pool.alloc(64)
                return frame

            def wrap(pool):
                return make(pool)

            def ident(frame):
                return frame
        """)
        assert summary(index, "m.py::make").returns_fresh
        assert summary(index, "m.py::wrap").returns_fresh
        # Handing a parameter back is not production.
        assert not summary(index, "m.py::ident").returns_fresh


class TestResolution:
    def test_self_method_through_base_class(self):
        index = index_of(
            base="""
                class Base:
                    def finish(self, frame):
                        frame.release()
            """,
            sub="""
                class Sub(Base):
                    def run(self, pool):
                        frame = pool.alloc(8)
                        self.finish(frame)
            """,
        )
        call = ast.parse("self.finish(frame)", mode="eval").body
        resolved = index.resolve_call("sub.py", "Sub", "Sub.run", call)
        assert resolved is not None
        summary_, confident = resolved
        assert confident
        assert summary_.effect_of("frame") == RELEASES

    def test_ambiguous_bare_name_does_not_resolve(self):
        index = index_of(m="""
            class A:
                pass

            def helper(frame):
                frame.release()
        """, n="""
            def helper(frame):
                frame.release()

            def caller(frame):
                helper(frame)
        """)
        # Same-file bare names resolve; cross-file ones never do.
        call = ast.parse("helper(frame)", mode="eval").body
        assert index.resolve_call("n.py", None, "caller", call) is not None
        assert index.resolve_call("other.py", None, None, call) is None

    def test_unknown_receiver_needs_unanimity(self):
        index = index_of(m="""
            class A:
                def close(self, frame):
                    frame.release()

            class B:
                def close(self, frame):
                    self.log = frame
        """)
        call = ast.parse("obj.close(frame)", mode="eval").body
        # Two disagreeing summaries under the same name: no verdict.
        assert index.resolve_call("m.py", None, None, call) is None


class TestContexts:
    def test_thread_target_is_rx(self):
        index = index_of(m="""
            class Dev(Listener):
                def on_plugin(self):
                    threading.Thread(target=self._rx_loop).start()

                def _rx_loop(self):
                    pass
        """)
        assert "rx-thread" in index.contexts["m.py::Dev._rx_loop"]
        assert "dispatch" in index.contexts["m.py::Dev.on_plugin"]

    def test_step_driving_thread_is_dispatch(self):
        index = index_of(m="""
            class Dev(Listener):
                def start(self, exe):
                    threading.Thread(target=self._loop).start()

                def _loop(self):
                    while True:
                        self.executive.step()
        """)
        contexts = index.contexts["m.py::Dev._loop"]
        assert "dispatch" in contexts and "rx-thread" not in contexts

    def test_contexts_propagate_through_calls(self):
        index = index_of(m="""
            class Dev(Listener):
                def on_plugin(self):
                    threading.Thread(target=self._rx_loop).start()

                def _rx_loop(self):
                    self._ingest()

                def _ingest(self):
                    pass
        """)
        assert "rx-thread" in index.contexts["m.py::Dev._ingest"]


class TestInterproceduralRules:
    def test_own001_use_after_helper_transmit(self):
        assert rules("""
            def ship(transport, frame):
                transport.transmit(frame)

            def f(transport, pool):
                frame = pool.alloc(10)
                ship(transport, frame)
                return frame.payload
        """) == ["OWN001"]

    def test_own003_double_release_via_helper(self):
        assert rules("""
            def drop(frame):
                frame.release()

            def f(pool):
                frame = pool.alloc(10)
                drop(frame)
                frame.release()
        """) == ["OWN003"]

    def test_own002_borrow_helper_keeps_obligation(self):
        assert rules("""
            def peek(frame, log):
                log.append(frame.total_size)

            def f(pool, log):
                frame = pool.alloc(10)
                peek(frame, log)
        """) == ["OWN002"]

    def test_helper_release_discharges_obligation(self):
        assert rules("""
            def drop(frame):
                frame.release()

            def f(pool):
                frame = pool.alloc(10)
                drop(frame)
        """) == []

    def test_unresolved_call_still_escapes(self):
        # No summary for `mystery` anywhere: today's escape semantics.
        assert rules("""
            def f(pool, mystery):
                frame = pool.alloc(10)
                mystery(frame)
        """) == []
