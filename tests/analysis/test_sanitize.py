"""The runtime pool sanitizer: poison, canaries, leak reports."""

from __future__ import annotations

import pytest

from repro.analysis.sanitize import (
    POISON,
    DoubleFreeError,
    LeakError,
    SanitizingOriginalAllocator,
    SanitizingTableAllocator,
    UseAfterFreeError,
    assert_clean,
    audit_pool,
    leak_report,
    sanitizing_enabled,
)
from repro.mem.block import BlockStateError
from repro.mem.pool import BufferPool, TableAllocator


@pytest.fixture
def pool():
    return BufferPool(SanitizingTableAllocator(slab_blocks=4))


class TestEnablement:
    def test_env_switch(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitizing_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitizing_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "off")
        assert not sanitizing_enabled()

    def test_default_pool_is_sanitized_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert isinstance(BufferPool().allocator, SanitizingTableAllocator)
        monkeypatch.delenv("REPRO_SANITIZE")
        assert type(BufferPool().allocator) is TableAllocator

    def test_helpers_are_noops_on_plain_pools(self):
        plain = BufferPool(TableAllocator())
        block = plain.alloc(16)
        assert audit_pool(plain) == [] and leak_report(plain) == []
        assert_clean(plain)  # never raises without instrumentation
        block.release()


class TestDoubleFree:
    def test_raises_with_first_free_site(self, pool):
        block = pool.alloc(64)
        block.release()
        with pytest.raises(DoubleFreeError, match="first freed") as exc:
            block.release()
        # the report names this test as the releasing code
        assert "test_sanitize" in str(exc.value)

    def test_is_a_block_state_error(self, pool):
        # Existing guards on the unsanitized error must keep working.
        block = pool.alloc(64)
        block.release()
        with pytest.raises(BlockStateError, match="double free"):
            block.release()


class TestUseAfterFree:
    def test_freed_memory_is_poisoned(self, pool):
        block = pool.alloc(64)
        view = block.memory
        block.release()
        assert all(byte == POISON for byte in view)

    def test_write_after_free_caught_at_reuse(self, pool):
        block = pool.alloc(64)
        stale = block.memory
        block.release()
        stale[0] = 0x42  # the UAF write
        with pytest.raises(UseAfterFreeError, match="canary"):
            pool.alloc(64)

    def test_audit_scans_free_lists(self, pool):
        block = pool.alloc(64)
        stale = block.memory
        block.release()
        assert audit_pool(pool) == []
        stale[7] = 0x00
        reports = audit_pool(pool)
        assert len(reports) == 1 and "use-after-free" in reports[0]

    def test_clean_reuse_is_silent(self, pool):
        for _ in range(3):
            block = pool.alloc(64)
            block.memory[:8] = b"payload!"
            block.release()
        assert audit_pool(pool) == []
        assert_clean(pool)


class TestLeakReports:
    def test_leak_carries_allocation_site(self, pool):
        block = pool.alloc(128)
        reports = leak_report(pool)
        assert len(reports) == 1
        assert "refcount=1" in reports[0]
        assert "test_sanitize" in reports[0]  # the allocating test
        with pytest.raises(LeakError, match="still loaned"):
            assert_clean(pool)
        block.release()
        assert leak_report(pool) == []
        assert_clean(pool)

    def test_addref_raises_reported_refcount(self, pool):
        block = pool.alloc(64)
        block.addref()
        assert "refcount=2" in leak_report(pool)[0]
        block.release()
        block.release()

    def test_executive_stop_warns_on_leaks(self):
        from repro.core.executive import Executive
        from repro.i2o.tid import EXECUTIVE_TID

        exe = Executive(pool=BufferPool(SanitizingTableAllocator()))
        leaked = exe.frame_alloc(32, target=EXECUTIVE_TID)
        exe.start()
        with pytest.warns(ResourceWarning, match="leaked pool block"):
            exe.stop()
        exe.frame_free(leaked)


class TestOriginalAllocatorVariant:
    def test_both_schemes_are_instrumented(self):
        pool = BufferPool(
            SanitizingOriginalAllocator(block_size=256, block_count=4)
        )
        block = pool.alloc(100)
        block.release()
        with pytest.raises(DoubleFreeError):
            block.release()

    def test_conservation_still_holds(self):
        pool = BufferPool(
            SanitizingOriginalAllocator(block_size=256, block_count=4)
        )
        blocks = [pool.alloc(10) for _ in range(4)]
        for block in blocks:
            block.release()
        pool.check_conservation()
        assert pool.in_flight == 0
        assert_clean(pool)
