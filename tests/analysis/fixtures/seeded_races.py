"""Deliberately racy device code, seeded for the lint gate.

The receive thread spawned in ``on_plugin`` mutates device, executive
and module-level state without marshalling through
``Executive.post_inbound`` — exactly the bugs RACE001/RACE002 exist
for.  CI lints this file with ``--no-default-excludes --expect RACE001
--expect RACE002`` to prove the context classifier still tags the
thread target as rx-reachable.  Never import this module; never "fix"
it.
"""

from __future__ import annotations

#: shared module-level state (RACE002 target)
_INFLIGHT: dict = {}


class SeededRxDevice(Listener):  # noqa: F821 - lint-only, never imported
    """A task-mode device whose reader thread bypasses the mailbox."""

    def on_plugin(self):
        self._reader = threading.Thread(  # noqa: F821 - lint-only
            target=self._rx_loop, name="pt-seeded-rx", daemon=True
        )
        self._reader.start()

    def _rx_loop(self):
        frame = self._recv_one()
        self.last_frame = frame  # RACE001: device state from the rx thread
        self.executive.stats["rx"] = 1  # RACE001: executive state, no lock
        _INFLIGHT[id(frame)] = frame  # RACE002: module state from rx thread

    def _recv_one(self):
        return object()
