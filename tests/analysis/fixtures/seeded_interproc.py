"""Deliberately broken *interprocedural* ownership code, seeded.

Every bug here is invisible to a single-function checker: the release
or transfer happens inside a same-module helper, so only the
project-wide ownership summaries (:mod:`repro.analysis.lint.callgraph`)
can see it.  CI lints this file with ``--no-default-excludes
--expect OWN001 --expect OWN002 --expect OWN003`` to prove the
summaries still propagate.  Never import this module; never "fix" it.
"""

from __future__ import annotations


def _ship(transport, frame):
    """Summary: transmits ``frame`` (ownership moves to the PT)."""
    transport.transmit(frame)


def _drop(frame):
    """Summary: releases ``frame``."""
    frame.release()


def _inspect(frame, log):
    """Summary: borrows ``frame`` — the caller still owns it."""
    log.append(frame.total_size)


def use_after_ship_helper(transport, pool):  # OWN001 (via _ship summary)
    frame = pool.alloc(128)
    _ship(transport, frame)
    return frame.payload  # the helper already handed it to the PT


def double_release_via_helper(pool):  # OWN003 (via _drop summary)
    frame = pool.alloc(64)
    _drop(frame)
    frame.release()  # the helper already released it


def leak_after_borrow_helper(pool, log):  # OWN002 (borrow is not release)
    frame = pool.alloc(64)
    _inspect(frame, log)
    return None  # nobody ever releases `frame`
