"""Deliberately contract-violating dataflow code, seeded.

The devices declare ``consumes``/``emits`` contracts that disagree
with what their bodies do: one emits a registered message type it
never declared (DFL002), the other binds a handler for a type its
contract cannot see (DFL003).  CI lints this file with
``--no-default-excludes --expect DFL002 --expect DFL003``.  Never
import this module; never "fix" it.
"""

from __future__ import annotations

XF_SEEDED_SAMPLE = 0x7F01
XF_SEEDED_RESULT = 0x7F02

MT_SEEDED_SAMPLE = message_type(  # noqa: F821 - lint-only, never imported
    "seeded_sample", XF_SEEDED_SAMPLE
)
MT_SEEDED_RESULT = message_type(  # noqa: F821 - lint-only
    "seeded_result", XF_SEEDED_RESULT
)


class UndeclaredEmitter(Listener):  # noqa: F821 - lint-only
    """Declares only the input side, then emits an undeclared type."""

    consumes = (MT_SEEDED_SAMPLE,)
    emits = ()

    def _on_seeded_sample(self, frame):
        self.emit(MT_SEEDED_RESULT, payload=b"")  # DFL002: not in emits


class MisboundSink(Listener):  # noqa: F821 - lint-only
    """Binds a handler for a type its contract never mentions."""

    consumes = (MT_SEEDED_RESULT,)
    emits = ()

    def on_plugin(self):
        self.bind(XF_SEEDED_SAMPLE, self._on_stray)  # DFL003

    def _on_stray(self, frame):
        frame.release()
