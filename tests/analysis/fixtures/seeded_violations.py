"""Deliberately broken ownership code, seeded for the lint gate.

CI lints this file with ``--no-default-excludes --expect OWN001
--expect OWN002`` to prove the checker still detects the canonical
frame-ownership bugs.  Never import this module; never "fix" it.
"""

from __future__ import annotations


def use_after_transmit(transport, pool):  # OWN001
    frame = pool.alloc(128)
    transport.transmit(frame)
    return frame.payload  # read through a frame the transport now owns


def missing_release_on_early_return(pool, flag):  # OWN002
    frame = pool.alloc(64)
    if flag:
        return None  # leaks: this path never releases `frame`
    frame.release()
    return None


def missing_release_on_raise(pool, writer):  # OWN002
    frame = pool.alloc(64)
    if writer is None:
        raise ValueError("no writer")  # leaks `frame`
    writer(frame)
    frame.release()


def double_release(pool):  # OWN003
    block = pool.alloc(32)
    block.release()
    block.release()
