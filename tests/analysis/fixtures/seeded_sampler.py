"""Sampler-context classification, seeded for the lint gate.

Both thread targets here walk ``sys._current_frames()``, so the
context classifier must tag them ``sampler`` — not ``rx-thread``.
``ProbeSampler`` is the blessed shape: a read-only frame walk with
tallies on the sampler's own plain object, which must lint clean.
``SeededHotSampler`` does the forbidden thing: its observation thread
mutates the device, executive and module-level state it exists to
observe — the sampler is read-only by contract, so even the ``+=``
stat-counter idiom transport rx threads are allowed is a violation
here.  CI lints this file with ``--no-default-excludes --expect
RACE001 --expect RACE002`` to prove the stricter sampler rules still
fire.  Never import this module; never "fix" it.
"""

from __future__ import annotations

import sys
import threading

#: shared module-level state (RACE002 target)
_EXEMPLARS: dict = {}


class ProbeSampler:
    """Read-only frame walk, local accumulation: zero findings."""

    def start(self):
        self._thread = threading.Thread(
            target=self._run, name="probe-sampler", daemon=True
        )
        self._thread.start()

    def _run(self):
        while not self._stop.wait(0.01):
            self.sample_once()

    def sample_once(self):
        frames = sys._current_frames()
        for ident in frames:
            # Plain-object tallies: the sampler owns them outright.
            self.counts[ident] = self.counts.get(ident, 0) + 1


class SeededHotSampler(Listener):  # noqa: F821 - lint-only, never imported
    """An observation thread that mutates the state it observes."""

    def on_plugin(self):
        threading.Thread(
            target=self._sample_loop, name="seeded-sampler", daemon=True
        ).start()

    def _sample_loop(self):
        frames = sys._current_frames()
        frame = frames.get(self.watched_ident)
        self.samples_taken += 1  # RACE001: no counter pass for samplers
        self.executive.hot_frame = frame  # RACE001: executive state
        _EXEMPLARS[id(frame)] = frame  # RACE002: module state
