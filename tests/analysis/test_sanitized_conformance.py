"""The full transport conformance suite under the pool sanitizer.

Runs pytest in a subprocess with ``REPRO_SANITIZE=1`` so every
executive in every harness gets a poisoning, canary-checking pool and
the harness ``finish()`` leak check includes allocation-site audits.
Slow (it re-runs a whole test module per transport), so opt-in:
``pytest -m slow tests/analysis/test_sanitized_conformance.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

pytestmark = pytest.mark.slow


def test_conformance_suite_clean_under_sanitizer():
    env = dict(os.environ, REPRO_SANITIZE="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "tests/transports", "-q",
         "--override-ini", "addopts="],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"sanitized conformance run failed:\n{proc.stdout}\n{proc.stderr}"
    )
