"""Multi-switch fabric: routing, latency composition, contention."""

from __future__ import annotations

import pytest

from repro.hw.gm import GmPort
from repro.hw.myrinet import Fabric, FabricError
from repro.hw.topology import MultiSwitchFabric
from repro.sim.kernel import Simulator


class _StubNic:
    def __init__(self, fabric, node, switch=None):
        self.delivered = []
        fabric.attach(node, self, switch=switch)

    def deliver(self, packet):  # pragma: no cover - unused
        pass


def line_fabric(n_switches=3):
    """sw0 - sw1 - ... - sw(n-1), host 0 on first, host 1 on last."""
    sim = Simulator()
    fabric = MultiSwitchFabric(sim)
    for i in range(n_switches):
        fabric.add_switch(f"sw{i}")
    for i in range(n_switches - 1):
        fabric.link_switches(f"sw{i}", f"sw{i + 1}")
    _StubNic(fabric, 0, switch="sw0")
    _StubNic(fabric, 1, switch=f"sw{n_switches - 1}")
    return sim, fabric


class TestTopologyConstruction:
    def test_duplicate_switch_rejected(self):
        fabric = MultiSwitchFabric(Simulator())
        fabric.add_switch("a")
        with pytest.raises(FabricError):
            fabric.add_switch("a")

    def test_self_trunk_rejected(self):
        fabric = MultiSwitchFabric(Simulator())
        fabric.add_switch("a")
        with pytest.raises(FabricError):
            fabric.link_switches("a", "a")

    def test_duplicate_trunk_rejected(self):
        fabric = MultiSwitchFabric(Simulator())
        fabric.add_switch("a")
        fabric.add_switch("b")
        fabric.link_switches("a", "b")
        with pytest.raises(FabricError):
            fabric.link_switches("a", "b")

    def test_attach_default_switch_created(self):
        fabric = MultiSwitchFabric(Simulator())
        _StubNic(fabric, 0)
        assert fabric.nodes() == [0]

    def test_unknown_switch_rejected(self):
        fabric = MultiSwitchFabric(Simulator())
        with pytest.raises(FabricError):
            _StubNic(fabric, 0, switch="ghost")


class TestRouting:
    def test_bfs_shortest_path(self):
        fabric = MultiSwitchFabric(Simulator())
        for name in "abcd":
            fabric.add_switch(name)
        fabric.link_switches("a", "b")
        fabric.link_switches("b", "c")
        fabric.link_switches("c", "d")
        fabric.link_switches("a", "d")  # ring: a-d is one hop
        assert fabric.switch_path("a", "d") == ["a", "d"]
        assert fabric.switch_path("a", "c") in (["a", "b", "c"],
                                                ["a", "d", "c"])

    def test_unreachable_raises(self):
        fabric = MultiSwitchFabric(Simulator())
        fabric.add_switch("island1")
        fabric.add_switch("island2")
        _StubNic(fabric, 0, switch="island1")
        _StubNic(fabric, 1, switch="island2")
        with pytest.raises(FabricError, match="no route"):
            fabric.transmit(0, 1, 100, lambda t: None)

    def test_hop_count_grows_with_distance(self):
        _, near = line_fabric(n_switches=1)
        _, far = line_fabric(n_switches=4)
        assert far.hop_count(0, 1) > near.hop_count(0, 1)


class TestLatency:
    def test_single_switch_matches_flat_fabric(self):
        """One switch: the generalised model must agree with Fabric."""
        sim1, multi = line_fabric(n_switches=1)
        sim2 = Simulator()
        flat = Fabric(sim2)

        class Nic:
            def deliver(self, p):  # pragma: no cover
                pass

        flat.attach(0, Nic())
        flat.attach(1, Nic())
        for size in (1, 512, 4096):
            assert multi.expected_one_way_ns(size) == (
                flat.expected_one_way_ns(size)
            )

    def test_extra_switches_add_fixed_latency_only(self):
        """Cut-through: more switches add route latency per hop but do
        not multiply the per-byte cost."""
        _, short = line_fabric(n_switches=1)
        _, long = line_fabric(n_switches=4)
        small_delta = (long.expected_one_way_ns(1)
                       - short.expected_one_way_ns(1))
        large_delta = (long.expected_one_way_ns(4096)
                       - short.expected_one_way_ns(4096))
        assert small_delta > 0
        # The per-byte slope is unchanged: deltas equal up to flit terms.
        assert abs(large_delta - small_delta) < 5_000  # < 5 us

    def test_transmit_matches_expected(self):
        sim, fabric = line_fabric(n_switches=3)
        arrivals = []
        fabric.transmit(0, 1, 1024, arrivals.append)
        sim.run()
        assert arrivals == [fabric.expected_one_way_ns(1024)]


class TestContention:
    def test_trunk_is_shared(self):
        """Two hosts on sw0 sending to two hosts on sw1 share the one
        trunk: the second flow queues."""
        sim = Simulator()
        fabric = MultiSwitchFabric(sim)
        fabric.add_switch("sw0")
        fabric.add_switch("sw1")
        fabric.link_switches("sw0", "sw1")
        for node, sw in ((0, "sw0"), (1, "sw0"), (2, "sw1"), (3, "sw1")):
            _StubNic(fabric, node, switch=sw)
        arrivals = {}
        fabric.transmit(0, 2, 4096, lambda t: arrivals.setdefault("a", t))
        fabric.transmit(1, 3, 4096, lambda t: arrivals.setdefault("b", t))
        sim.run()
        solo = fabric.expected_one_way_ns(4096, src=1, dst=3)
        assert arrivals["b"] > solo  # queued behind flow a on the trunk


class TestGmOverMultiSwitch:
    def test_gm_ping_pong_across_three_switches(self):
        sim = Simulator()
        fabric = MultiSwitchFabric(sim)
        for i in range(3):
            fabric.add_switch(f"sw{i}")
        fabric.link_switches("sw0", "sw1")
        fabric.link_switches("sw1", "sw2")
        a = GmPort(fabric, 0, switch="sw0")
        b = GmPort(fabric, 1, switch="sw2")
        b.set_receive_handler(
            lambda p: b.send_with_callback(p.data, p.src_node)
        )
        done = []
        a.set_receive_handler(lambda p: done.append(p.data))
        a.send_with_callback(b"over the fabric", 1)
        sim.run()
        assert done == [b"over the fabric"]
        # 2 DMA + 2 host links + 3 switch output ports + 2 trunks = 9.
        assert fabric.hop_count(0, 1) == 9
