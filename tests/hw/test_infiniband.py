"""The IB fabric/verbs model and the §8 transparency claim."""

from __future__ import annotations

import pytest

from repro.core.executive import Executive
from repro.core.probes import CostModel
from repro.core.simnode import SimNode
from repro.bench.devices import EchoDevice, PingDevice
from repro.hw.infiniband import IbError, IbFabric, QueuePairEndpoint
from repro.hw.myrinet import Fabric
from repro.sim.kernel import Simulator
from repro.transports.agent import PeerTransportAgent
from repro.transports.simgm import SimGmTransport
from repro.transports.simib import SimIbTransport


class TestVerbs:
    def make(self):
        sim = Simulator()
        fabric = IbFabric(sim)
        a = QueuePairEndpoint(fabric, 0)
        b = QueuePairEndpoint(fabric, 1)
        return sim, fabric, a, b

    def test_send_recv_completions(self):
        sim, fabric, a, b = self.make()
        a.post_send(b"verbs payload", 1)
        sim.run()
        recv = b.poll_cq()
        assert len(recv) == 1
        assert recv[0].kind == "recv"
        assert recv[0].data == b"verbs payload"
        assert recv[0].src_lid == 0
        sends = [c for c in a.poll_cq() if c.kind == "send"]
        assert len(sends) == 1

    def test_rnr_drop_without_recv_wqe(self):
        sim, fabric, a, b = self.make()
        bare = QueuePairEndpoint(fabric, 2, recv_depth=0)
        a.post_send(b"y", 2)
        sim.run()
        assert bare.rnr_drops == 1
        bare.post_recv()
        a.post_send(b"z", 2)
        sim.run()
        assert bare.cq_depth == 1  # replenished WQE accepted the next one

    def test_send_queue_depth_enforced(self):
        sim, fabric, a, b = self.make()
        small = QueuePairEndpoint(fabric, 3, send_depth=1)
        small.post_send(b"1", 1)
        with pytest.raises(IbError, match="send queue full"):
            small.post_send(b"2", 1)

    def test_unknown_lid(self):
        sim, fabric, a, b = self.make()
        with pytest.raises(IbError, match="no HCA"):
            a.post_send(b"x", 99)

    def test_comp_handler_event_mode(self):
        sim, fabric, a, b = self.make()
        events = []
        b.comp_handler = lambda: events.append(b.cq_depth)
        a.post_send(b"x", 1)
        sim.run()
        assert events  # handler fired on arrival

    def test_latency_faster_than_myrinet(self):
        """IB 1x (250 MB/s, short pipeline) must beat the modelled
        Myrinet+GM at both small and large messages."""
        sim = Simulator()
        ib = IbFabric(sim)
        sim2 = Simulator()
        gm = Fabric(sim2)

        class Nic:
            def deliver(self, p):  # pragma: no cover
                pass

        gm.attach(0, Nic())
        gm.attach(1, Nic())
        for size in (1, 1024, 4096):
            assert ib.expected_one_way_ns(size) < gm.expected_one_way_ns(size)


def build_ib_cluster():
    sim = Simulator()
    fabric = IbFabric(sim)
    exe_a, exe_b = Executive(node=0), Executive(node=1)
    node_a = SimNode(sim, exe_a, cost_model=CostModel.paper_table1())
    node_b = SimNode(sim, exe_b, cost_model=CostModel.paper_table1())
    PeerTransportAgent.attach(exe_a).register(SimIbTransport(fabric),
                                              default=True)
    PeerTransportAgent.attach(exe_b).register(SimIbTransport(fabric),
                                              default=True)
    node_a.attach_transport_hooks()
    node_b.attach_transport_hooks()
    return sim, fabric, exe_a, exe_b


class TestIbTransport:
    def run_pingpong(self, payload=256, rounds=20):
        sim, fabric, exe_a, exe_b = build_ib_cluster()
        echo = EchoDevice()
        echo_tid = exe_b.install(echo)
        ping = PingDevice()
        exe_a.install(ping)
        ping.configure(exe_a.create_proxy(1, echo_tid), payload, rounds)
        sim.at(0, ping.kick)
        sim.run()
        return ping, exe_a, exe_b

    def test_round_trips_complete(self):
        ping, exe_a, exe_b = self.run_pingpong()
        assert len(ping.rtts_ns) == 20
        exe_a.pool.check_conservation()
        exe_b.pool.check_conservation()
        assert exe_a.pool.in_flight == 0

    def test_framework_overhead_identical_over_ib(self):
        """§8's transparency claim at the numbers level: the framework
        overhead (whitebox sum) does not depend on the wire."""
        ping, _, exe_b = self.run_pingpong(rounds=30)
        stages = ("pt_processing", "demultiplex", "upcall", "application",
                  "postprocess")
        total = sum(exe_b.probes.median_us(s) for s in stages)
        assert total == pytest.approx(9.70, abs=0.05)

    def test_ib_pingpong_faster_than_gm(self):
        from repro.bench.pingpong import run_xdaq_gm_pingpong

        ib_ping, _, _ = self.run_pingpong(payload=1024, rounds=20)
        gm = run_xdaq_gm_pingpong(1024, rounds=20)
        ib_rtt = ib_ping.rtts_ns[-1]
        gm_rtt = gm.rtts_ns[-1]
        assert ib_rtt < gm_rtt
