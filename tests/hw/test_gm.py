"""The GM message-passing layer: tokens, handlers, backlog."""

from __future__ import annotations

import pytest

from repro.hw.gm import GmError, GmPort
from repro.hw.myrinet import Fabric
from repro.sim.kernel import Simulator


def make_ports(recv_tokens=16, send_tokens=16, nic_backlog=64):
    sim = Simulator()
    fabric = Fabric(sim)
    a = GmPort(fabric, 0, send_tokens=send_tokens, recv_tokens=recv_tokens,
               nic_backlog=nic_backlog)
    b = GmPort(fabric, 1, send_tokens=send_tokens, recv_tokens=recv_tokens,
               nic_backlog=nic_backlog)
    return sim, a, b


class TestSendReceive:
    def test_handler_receives_payload_and_source(self):
        sim, a, b = make_ports()
        got = []
        b.set_receive_handler(lambda p: got.append((p.src_node, p.data)))
        a.send_with_callback(b"payload", 1)
        sim.run()
        assert got == [(0, b"payload")]

    def test_handlerless_port_stages_for_poll(self):
        sim, a, b = make_ports()
        a.send_with_callback(b"x", 1)
        sim.run()
        assert b.pending == 1
        packet = b.poll()
        assert packet.data == b"x"
        assert b.poll() is None

    def test_unknown_destination_raises_and_returns_token(self):
        sim, a, b = make_ports()
        with pytest.raises(GmError, match="no GM port"):
            a.send_with_callback(b"x", 7)
        assert a.send_tokens == a.max_send_tokens

    def test_counters(self):
        sim, a, b = make_ports()
        b.set_receive_handler(lambda p: None)
        for _ in range(4):
            a.send_with_callback(b"zz", 1)
        sim.run()
        assert a.sent == 4
        assert b.received == 4


class TestSendTokens:
    def test_exhaustion_raises(self):
        sim, a, b = make_ports(send_tokens=2)
        a.send_with_callback(b"1", 1)
        a.send_with_callback(b"2", 1)
        with pytest.raises(GmError, match="send tokens"):
            a.send_with_callback(b"3", 1)

    def test_token_returns_via_callback(self):
        sim, a, b = make_ports(send_tokens=1)
        returned = []
        a.send_with_callback(b"1", 1, on_sent=lambda: returned.append(sim.now))
        sim.run()
        assert a.send_tokens == 1
        assert returned and returned[0] > 0
        a.send_with_callback(b"2", 1)  # token available again


class TestReceiveTokens:
    def test_no_buffer_stages_in_nic(self):
        sim, a, b = make_ports(recv_tokens=1)
        got = []
        b.set_receive_handler(lambda p: got.append(p.data))
        a.send_with_callback(b"1", 1)
        a.send_with_callback(b"2", 1)
        sim.run()
        assert got == [b"1"]  # second is parked in NIC SRAM
        b.provide_receive_buffer()
        assert got == [b"1", b"2"]
        assert b.dropped == 0

    def test_nic_backlog_overflow_drops(self):
        sim, a, b = make_ports(recv_tokens=0, nic_backlog=2, send_tokens=8)
        b.set_receive_handler(lambda p: None)
        for i in range(4):
            a.send_with_callback(bytes([i]), 1)
        sim.run()
        assert b.dropped == 2
        assert b.fabric.stats.drops == 2

    def test_provide_count_validation(self):
        sim, a, b = make_ports()
        with pytest.raises(GmError):
            b.provide_receive_buffer(0)
