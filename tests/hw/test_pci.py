"""PCI bus, hardware FIFOs, IOP board."""

from __future__ import annotations

import pytest

from repro.hw.pci import HardwareFifo, IopBoard, PciBus, PciError, PciParams
from repro.sim.kernel import Simulator


class TestPciBus:
    def test_ns_per_byte_from_clock_and_width(self):
        params = PciParams()
        # 33 MHz x 4 B = 132 MB/s peak -> ~7.58 ns/B
        assert params.ns_per_byte == pytest.approx(7.575, rel=0.01)

    def test_transfer_time_includes_burst_arbitration(self):
        bus = PciBus(Simulator())
        p = bus.params
        one_burst = bus.transfer_time_ns(p.burst_size)
        two_bursts = bus.transfer_time_ns(p.burst_size + 1)
        assert two_bursts - one_burst >= p.arbitration_ns

    def test_transfers_serialise(self):
        sim = Simulator()
        bus = PciBus(sim)
        done = []
        bus.transfer(4096, done.append)
        bus.transfer(4096, done.append)
        sim.run()
        assert done[1] - done[0] == done[0]  # equal back-to-back spans
        assert bus.transfers == 2
        assert bus.bytes_moved == 8192

    def test_negative_size_rejected(self):
        with pytest.raises(PciError):
            PciBus(Simulator()).transfer(-1, lambda t: None)


class TestHardwareFifo:
    def test_post_fetch_fifo_order(self):
        fifo = HardwareFifo(PciParams(), hardware=True, depth=4)
        for i in range(3):
            assert fifo.post(i)
        assert [fifo.fetch() for _ in range(3)] == [0, 1, 2]
        assert fifo.fetch() is None

    def test_full_fifo_backpressures(self):
        fifo = HardwareFifo(PciParams(), hardware=True, depth=2)
        assert fifo.post("a") and fifo.post("b")
        assert not fifo.post("c")
        assert fifo.full_rejects == 1
        fifo.fetch()
        assert fifo.post("c")

    def test_hardware_costs_less_than_software(self):
        params = PciParams()
        hw = HardwareFifo(params, hardware=True)
        sw = HardwareFifo(params, hardware=False)
        assert hw.post_cost_ns() < sw.post_cost_ns()
        assert hw.fetch_cost_ns() < sw.fetch_cost_ns()

    def test_depth_validation(self):
        with pytest.raises(PciError):
            HardwareFifo(PciParams(), hardware=True, depth=0)


class TestIopBoard:
    def test_board_has_inbound_outbound_pair(self):
        sim = Simulator()
        board = IopBoard(sim, PciBus(sim), hardware_fifos=True)
        assert board.inbound.hardware and board.outbound.hardware
        assert board.inbound is not board.outbound

    def test_post_time_combines_fifo_and_bus(self):
        sim = Simulator()
        bus = PciBus(sim)
        board = IopBoard(sim, bus, hardware_fifos=False)
        t = board.post_time_ns(1024)
        assert t == board.inbound.post_cost_ns() + bus.transfer_time_ns(1024)
