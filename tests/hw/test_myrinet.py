"""The Myrinet fabric model: latency law, contention, accounting."""

from __future__ import annotations

import pytest

from repro.hw.gm import GmNic
from repro.hw.myrinet import Fabric, FabricError, Hop, MyrinetParams, _cut_through_delivery
from repro.sim.kernel import Simulator


class _StubNic:
    """Just enough of a NIC to attach and collect deliveries."""

    def __init__(self, fabric: Fabric, node: int) -> None:
        self.delivered: list[int] = []
        fabric.attach(node, self)  # type: ignore[arg-type]

    def deliver(self, packet) -> None:  # pragma: no cover - unused here
        pass


def make_fabric(**params):
    sim = Simulator()
    fabric = Fabric(sim, MyrinetParams(**params) if params else None)
    a, b = _StubNic(fabric, 0), _StubNic(fabric, 1)
    return sim, fabric


class TestTopology:
    def test_duplicate_attach_rejected(self):
        sim = Simulator()
        fabric = Fabric(sim)
        _StubNic(fabric, 0)
        with pytest.raises(FabricError, match="already"):
            _StubNic(fabric, 0)

    def test_port_limit(self):
        fabric = Fabric(Simulator(), ports=2)
        _StubNic(fabric, 0)
        _StubNic(fabric, 1)
        with pytest.raises(FabricError, match="ports"):
            _StubNic(fabric, 2)

    def test_unknown_nodes_rejected(self):
        sim, fabric = make_fabric()
        with pytest.raises(FabricError):
            fabric.transmit(0, 9, 100, lambda t: None)
        with pytest.raises(FabricError):
            fabric.transmit(9, 0, 100, lambda t: None)

    def test_self_transmit_rejected(self):
        sim, fabric = make_fabric()
        with pytest.raises(FabricError, match="loopback"):
            fabric.transmit(0, 0, 100, lambda t: None)


class TestLatencyLaw:
    def test_delivery_at_expected_time(self):
        sim, fabric = make_fabric()
        arrivals = []
        fabric.transmit(0, 1, 1024, arrivals.append)
        sim.run()
        assert arrivals == [fabric.expected_one_way_ns(1024)]

    def test_latency_linear_in_size(self):
        """One-way latency must be alpha + beta*size: the property the
        whole figure 6 reproduction rests on."""
        sim, fabric = make_fabric()
        sizes = [256, 1024, 2048, 4096]
        lats = [fabric.expected_one_way_ns(s) for s in sizes]
        slopes = [
            (lats[i + 1] - lats[i]) / (sizes[i + 1] - sizes[i])
            for i in range(len(sizes) - 1)
        ]
        assert max(slopes) - min(slopes) < 1e-9  # identical increments

    def test_per_byte_cost_counted_once_not_per_hop(self):
        """Cut-through: the slope equals the bottleneck rate, not the
        sum of all five hop rates."""
        params = MyrinetParams()
        sim, fabric = make_fabric()
        slope = (
            fabric.expected_one_way_ns(4096) - fabric.expected_one_way_ns(2048)
        ) / 2048
        assert slope == pytest.approx(params.pci_dma_ns_per_byte, rel=0.01)
        total = 2 * params.pci_dma_ns_per_byte + 3 * params.link_ns_per_byte
        assert slope < total / 2  # decisively below store-and-forward

    def test_small_message_latency_near_gm_numbers(self):
        """GM 1.1.3 one-way small-message latency on the paper's host
        class was ~13-18 us (NIC+host path, before any framework)."""
        sim, fabric = make_fabric()
        lat_us = fabric.expected_one_way_ns(1) / 1000
        assert 12 <= lat_us <= 20


class TestContention:
    def test_sequential_messages_queue_on_the_path(self):
        sim, fabric = make_fabric()
        arrivals = []
        fabric.transmit(0, 1, 4096, arrivals.append)
        fabric.transmit(0, 1, 4096, arrivals.append)
        sim.run()
        uncontended = fabric.expected_one_way_ns(4096)
        assert arrivals[0] == uncontended
        assert arrivals[1] > uncontended  # had to wait for the pipe

    def test_distinct_destinations_share_source_dma(self):
        sim3 = Simulator()
        fabric = Fabric(sim3)
        _StubNic(fabric, 0)
        _StubNic(fabric, 1)
        _StubNic(fabric, 2)
        arrivals = {}
        fabric.transmit(0, 1, 4096, lambda t: arrivals.setdefault(1, t))
        fabric.transmit(0, 2, 4096, lambda t: arrivals.setdefault(2, t))
        sim3.run()
        # Second message serialises on node 0's tx DMA engine.
        assert arrivals[2] > arrivals[1]

    def test_stats_accumulate(self):
        sim, fabric = make_fabric()
        for _ in range(3):
            fabric.transmit(0, 1, 100, lambda t: None)
        sim.run()
        assert fabric.stats.messages == 3
        assert fabric.stats.bytes == 300
        assert fabric.stats.per_pair[(0, 1)] == 3


class TestCutThroughRecurrence:
    def test_single_hop_is_fixed_plus_serialisation(self):
        hop = Hop("h", fixed_ns=100, ns_per_byte=2.0)
        arrival = _cut_through_delivery([hop], 0, 50, flit_bytes=16)
        assert arrival == 100 + 100  # fixed + 50*2

    def test_bottleneck_dominates_chain(self):
        hops = [
            Hop("fast1", 0, 1.0),
            Hop("slow", 0, 10.0),
            Hop("fast2", 0, 1.0),
        ]
        arrival = _cut_through_delivery(hops, 0, 1000, flit_bytes=1)
        # ~1000*10 from the bottleneck, plus one flit on the others.
        assert 10_000 <= arrival <= 10_100

    def test_busy_hop_delays_next_message(self):
        hop = Hop("h", fixed_ns=0, ns_per_byte=1.0)
        first = _cut_through_delivery([hop], 0, 100, flit_bytes=16)
        second = _cut_through_delivery([hop], 0, 100, flit_bytes=16)
        assert first == 100
        assert second == 200
        assert hop.messages == 2
