"""Clock implementations."""

from __future__ import annotations

import time

from repro.hw.clock import Clock, SimClock, WallClock
from repro.sim.kernel import Simulator


def test_wall_clock_is_monotonic():
    clock = WallClock()
    a = clock.now_ns()
    time.sleep(0.001)
    b = clock.now_ns()
    assert b > a


def test_sim_clock_tracks_kernel():
    sim = Simulator()
    clock = SimClock(sim)
    assert clock.now_ns() == 0
    sim.at(500, lambda: None)
    sim.run()
    assert clock.now_ns() == 500


def test_both_satisfy_protocol():
    assert isinstance(WallClock(), Clock)
    assert isinstance(SimClock(Simulator()), Clock)
