"""The RMI marshaller: round trips and malformed-input rejection."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rmi.marshal import MarshalError, marshal, unmarshal

SIMPLE_CASES = [
    None,
    True,
    False,
    0,
    -1,
    2**62,
    -(2**62),
    2**100,            # beyond int64
    -(2**100),
    3.14159,
    float("inf"),
    "",
    "unicode: åøπ",
    b"",
    b"\x00\xff" * 10,
    [],
    [1, 2, 3],
    (1, "two", 3.0),
    {},
    {"key": [1, {"nested": b"bytes"}]},
]


@pytest.mark.parametrize("value", SIMPLE_CASES,
                         ids=[repr(v)[:30] for v in SIMPLE_CASES])
def test_round_trip(value):
    assert unmarshal(marshal(value)) == value


def test_tuple_and_list_distinguished():
    assert unmarshal(marshal((1, 2))) == (1, 2)
    assert isinstance(unmarshal(marshal((1, 2))), tuple)
    assert isinstance(unmarshal(marshal([1, 2])), list)


def test_bool_and_int_distinguished():
    assert unmarshal(marshal(True)) is True
    assert unmarshal(marshal(1)) == 1
    assert unmarshal(marshal(1)) is not True


def test_unsupported_type_rejected():
    with pytest.raises(MarshalError, match="cannot marshal"):
        marshal(object())


def test_deep_nesting_rejected():
    value: list = []
    for _ in range(50):
        value = [value]
    with pytest.raises(MarshalError, match="nesting"):
        marshal(value)


def test_trailing_garbage_rejected():
    with pytest.raises(MarshalError, match="trailing"):
        unmarshal(marshal(1) + b"\x00")


def test_truncated_rejected():
    data = marshal("hello world")
    with pytest.raises(MarshalError):
        unmarshal(data[:-3])


def test_unknown_tag_rejected():
    with pytest.raises(MarshalError, match="unknown tag"):
        unmarshal(b"\xfe")


def test_empty_input_rejected():
    with pytest.raises(MarshalError):
        unmarshal(b"")


json_like = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20)
    | st.binary(max_size=20)
    | st.floats(allow_nan=False, allow_infinity=False),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=25,
)


@given(json_like)
@settings(max_examples=150, deadline=None)
def test_property_round_trip(value):
    assert unmarshal(marshal(value)) == value
