"""End-to-end RMI: stubs, skeletons, errors, futures."""

from __future__ import annotations

import pytest

from repro.rmi.marshal import MarshalError
from repro.rmi.skeleton import RemoteObject, method_code, remote
from repro.rmi.stub import RemoteCallError, Stub, StubDevice

from tests.conftest import make_loopback_cluster, pump


class Service(RemoteObject):
    device_class = "test_service"

    def __init__(self, name: str = "svc") -> None:
        super().__init__(name)
        self.calls = 0

    @remote
    def add(self, a, b):
        self.calls += 1
        return a + b

    @remote
    def concat(self, *parts, sep=""):
        return sep.join(parts)

    @remote
    def explode(self):
        raise RuntimeError("boom")

    def hidden(self):  # not @remote
        return "secret"


@pytest.fixture
def rig():
    cluster = make_loopback_cluster(2)
    service = Service()
    svc_tid = cluster[1].install(service)

    def pump_all():
        for exe in cluster.values():
            exe.step()

    stub_dev = StubDevice(pump=pump_all)
    cluster[0].install(stub_dev)
    proxy = cluster[0].create_proxy(1, svc_tid)
    return cluster, service, stub_dev, proxy


class TestCalls:
    def test_simple_call(self, rig):
        _, service, stub_dev, proxy = rig
        assert stub_dev.call(proxy, "add", 2, 3) == 5
        assert service.calls == 1

    def test_kwargs_cross_the_wire(self, rig):
        _, _, stub_dev, proxy = rig
        assert stub_dev.call(proxy, "concat", "a", "b", sep="-") == "a-b"

    def test_attribute_syntax_stub(self, rig):
        _, _, stub_dev, proxy = rig
        svc = Stub(stub_dev, proxy)
        assert svc.add(10, 20) == 30
        assert svc.concat("x", "y") == "xy"

    def test_remote_exception_raises_locally(self, rig):
        _, _, stub_dev, proxy = rig
        with pytest.raises(RemoteCallError, match="RuntimeError: boom"):
            stub_dev.call(proxy, "explode")

    def test_unexposed_method_fails(self, rig):
        _, _, stub_dev, proxy = rig
        with pytest.raises(RemoteCallError):
            stub_dev.call(proxy, "hidden")

    def test_unknown_method_fails(self, rig):
        _, _, stub_dev, proxy = rig
        with pytest.raises(RemoteCallError):
            stub_dev.call(proxy, "no_such_method")

    def test_no_outstanding_after_completion(self, rig):
        _, _, stub_dev, proxy = rig
        stub_dev.call(proxy, "add", 1, 1)
        assert stub_dev.outstanding == 0


class TestFutures:
    def test_pipelined_invocations(self, rig):
        cluster, _, stub_dev, proxy = rig
        futures = [stub_dev.invoke(proxy, "add", i, i) for i in range(5)]
        assert stub_dev.outstanding == 5
        pump(cluster)
        assert [f.result() for f in futures] == [0, 2, 4, 6, 8]

    def test_callback_on_completion(self, rig):
        cluster, _, stub_dev, proxy = rig
        done = []
        future = stub_dev.invoke(proxy, "add", 1, 2)
        future.callbacks.append(lambda f: done.append(f.result()))
        pump(cluster)
        assert done == [3]

    def test_result_before_completion_raises(self, rig):
        _, _, stub_dev, proxy = rig
        future = stub_dev.invoke(proxy, "add", 1, 2)
        with pytest.raises(RemoteCallError, match="not completed"):
            future.result()
        stub_dev.wait(future)


class TestMethodCodes:
    def test_deterministic(self):
        assert method_code("add") == method_code("add")

    def test_distinct_for_these_names(self):
        names = ["add", "mul", "concat", "explode", "get", "set", "run"]
        codes = {method_code(n) for n in names}
        assert len(codes) == len(names)

    def test_within_private_space(self):
        assert 0 <= method_code("anything") < 0xF000

    def test_exposed_methods_listed_in_parameters(self, rig):
        _, service, _, _ = rig
        assert "add" in service.parameters["methods"]
        assert "hidden" not in service.parameters["methods"]

    def test_collision_detection(self):
        # Force a collision by monkeypatching method_code? Simpler:
        # subclass with two methods and assert the guard path exists by
        # checking normal classes bind fine.
        class Ok(RemoteObject):
            @remote
            def ping(self):
                return 1

        from repro.core.executive import Executive

        Executive().install(Ok())  # must not raise
