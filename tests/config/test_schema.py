"""Typed parameter schemas."""

from __future__ import annotations

import pytest

from repro.config.schema import (
    ParamSchema,
    ParamSpec,
    SchemaError,
    SchemaListenerMixin,
)
from repro.core.device import Listener, encode_params
from repro.core.executive import Executive
from repro.i2o.function_codes import UTIL_PARAMS_SET


class TestParamSpec:
    def test_int_parse_and_bounds(self):
        spec = ParamSpec("rate", int, default=10, minimum=1, maximum=100)
        assert spec.parse("50") == 50
        with pytest.raises(SchemaError, match="below"):
            spec.parse("0")
        with pytest.raises(SchemaError, match="above"):
            spec.parse("101")
        with pytest.raises(SchemaError, match="parse"):
            spec.parse("fast")

    def test_bool_forms(self):
        spec = ParamSpec("flag", bool, default=False)
        for text in ("1", "true", "YES", "on"):
            assert spec.parse(text) is True
        for text in ("0", "false", "No", "off"):
            assert spec.parse(text) is False
        with pytest.raises(SchemaError):
            spec.parse("maybe")
        assert spec.format(True) == "true"

    def test_float(self):
        spec = ParamSpec("gain", float, default=1.0, minimum=0.0)
        assert spec.parse("2.5") == 2.5

    def test_choices(self):
        spec = ParamSpec("mode", str, default="run", choices=("run", "test"))
        assert spec.parse("test") == "test"
        with pytest.raises(SchemaError, match="not one of"):
            spec.parse("other")

    def test_choices_require_str(self):
        with pytest.raises(SchemaError):
            ParamSpec("n", int, default=1, choices=("1",))

    def test_default_must_validate(self):
        with pytest.raises(SchemaError):
            ParamSpec("rate", int, default=0, minimum=1)

    def test_illegal_names(self):
        with pytest.raises(SchemaError):
            ParamSpec("a=b", str)
        with pytest.raises(SchemaError):
            ParamSpec("", str)

    def test_unsupported_type(self):
        with pytest.raises(SchemaError):
            ParamSpec("x", list)  # type: ignore[arg-type]


class TestParamSchema:
    def test_duplicates_rejected(self):
        schema = ParamSchema([ParamSpec("a", int, default=1)])
        with pytest.raises(SchemaError, match="duplicate"):
            schema.add(ParamSpec("a", str))

    def test_defaults(self):
        schema = ParamSchema([
            ParamSpec("rate", int, default=100),
            ParamSpec("on", bool, default=True),
        ])
        assert schema.defaults() == {"rate": "100", "on": "true"}

    def test_validate_update_atomic(self):
        schema = ParamSchema([
            ParamSpec("a", int, default=1, minimum=0),
            ParamSpec("b", int, default=2),
        ])
        assert schema.validate_update({"a": "5", "b": "7"}) == {"a": 5, "b": 7}
        with pytest.raises(SchemaError):
            schema.validate_update({"a": "5", "b": "oops"})
        with pytest.raises(SchemaError, match="unknown"):
            schema.validate_update({"ghost": "1"})

    def test_read_only_refused(self):
        schema = ParamSchema([ParamSpec("serial", str, default="X",
                                        read_only=True)])
        with pytest.raises(SchemaError, match="read-only"):
            schema.validate_update({"serial": "Y"})

    def test_describe_is_self_documenting(self):
        schema = ParamSchema([
            ParamSpec("rate", int, default=100, minimum=1, maximum=1000),
            ParamSpec("mode", str, default="run", choices=("run", "test")),
        ])
        desc = schema.describe()
        assert "min:1" in desc["rate"] and "max:1000" in desc["rate"]
        assert "choices:run|test" in desc["mode"]


class Device(SchemaListenerMixin, Listener):
    schema = ParamSchema([
        ParamSpec("rate_hz", int, default=100, minimum=1, maximum=10_000),
        ParamSpec("mode", str, default="run", choices=("run", "test")),
    ])


class TestListenerIntegration:
    def test_defaults_seeded(self):
        dev = Device()
        assert dev.parameters["rate_hz"] == "100"
        assert dev.typed_param("rate_hz") == 100

    def test_params_set_validated_over_the_wire(self):
        exe = Executive()
        dev = Device()
        tid = exe.install(dev)
        sender = Listener("s")
        exe.install(sender)
        outcomes = []
        sender.table.bind(UTIL_PARAMS_SET,
                          lambda f: outcomes.append(f.is_failure))
        # Valid update accepted.
        sender.send(tid, encode_params({"rate_hz": "500"}),
                    function=UTIL_PARAMS_SET)
        exe.run_until_idle()
        assert outcomes == [False]
        assert dev.typed_param("rate_hz") == 500
        # Out-of-range update refused atomically.
        sender.send(tid, encode_params({"rate_hz": "0", "mode": "test"}),
                    function=UTIL_PARAMS_SET)
        exe.run_until_idle()
        assert outcomes == [False, True]
        assert dev.typed_param("rate_hz") == 500
        assert dev.parameters["mode"] == "run"
