"""Declarative cluster bootstrap."""

from __future__ import annotations

import pytest

from repro.config.bootstrap import BootstrapError, Cluster, bootstrap

from tests.conftest import assert_no_leaks

ECHO = "repro.bench.devices.EchoDevice"
PING = "repro.bench.devices.PingDevice"


def two_node_spec(transport="loopback"):
    return {
        "transport": transport,
        "nodes": {
            0: {"devices": [{"class": PING, "name": "ping"}]},
            1: {"devices": [{"class": ECHO, "name": "echo"}]},
        },
    }


class TestBuild:
    def test_builds_executives_and_devices(self):
        cluster = bootstrap(two_node_spec())
        assert sorted(cluster.executives) == [0, 1]
        assert cluster.device("echo").device_class == "bench_echo"
        assert cluster.node_of("echo") == 1
        assert cluster.tid("ping") >= 16

    def test_kwargs_passed_to_constructor(self):
        spec = {
            "nodes": {
                0: {"devices": [{
                    "class": "repro.daq.readout.ReadoutUnit",
                    "name": "ru7",
                    "kwargs": {"ru_id": 7},
                }]},
            },
        }
        cluster = bootstrap(spec)
        assert cluster.device("ru7").ru_id == 7

    def test_params_applied(self):
        spec = two_node_spec()
        spec["nodes"][1]["devices"][0]["params"] = {"colour": "blue"}
        cluster = bootstrap(spec)
        assert cluster.device("echo").parameters["colour"] == "blue"

    def test_duplicate_names_rejected(self):
        spec = two_node_spec()
        spec["nodes"][0]["devices"].append({"class": ECHO, "name": "echo"})
        with pytest.raises(BootstrapError, match="duplicate"):
            bootstrap(spec)

    def test_bad_class_paths(self):
        for path in ("NotAPath", "repro.no.such.Module",
                     "repro.bench.devices.Missing",
                     "repro.i2o.frame.Frame"):
            spec = {"nodes": {0: {"devices": [{"class": path}]}}}
            with pytest.raises(BootstrapError):
                bootstrap(spec)

    def test_empty_spec_rejected(self):
        with pytest.raises(BootstrapError):
            bootstrap({})
        with pytest.raises(BootstrapError):
            bootstrap({"nodes": {}})

    def test_unknown_transport(self):
        with pytest.raises(BootstrapError, match="unknown transport"):
            bootstrap(two_node_spec(transport="carrier-pigeon"))


class TestOperation:
    @pytest.mark.parametrize("transport", ["loopback", "queue-mesh"])
    def test_ping_pong_over_built_cluster(self, transport):
        cluster = bootstrap(two_node_spec(transport))
        ping = cluster.device("ping")
        ping.configure(cluster.proxy(0, "echo"), 128, 5)
        ping.kick()
        cluster.pump()
        assert len(ping.rtts_ns) == 5
        assert_no_leaks(cluster.executives)

    def test_proxy_unknown_name(self):
        cluster = bootstrap(two_node_spec())
        with pytest.raises(BootstrapError, match="no device named"):
            cluster.proxy(0, "ghost")

    def test_full_daq_from_spec(self):
        spec = {
            "nodes": {
                0: {"devices": [
                    {"class": "repro.daq.manager.EventManager",
                     "name": "evm"},
                    {"class": "repro.daq.trigger.TriggerSource",
                     "name": "trigger"},
                ]},
                1: {"devices": [
                    {"class": "repro.daq.readout.ReadoutUnit", "name": "ru0",
                     "kwargs": {"ru_id": 0}},
                ]},
                2: {"devices": [
                    {"class": "repro.daq.builder.BuilderUnit", "name": "bu0",
                     "kwargs": {"bu_id": 0}},
                ]},
            },
        }
        cluster = bootstrap(spec)
        evm = cluster.device("evm")
        trigger = cluster.device("trigger")
        bu = cluster.device("bu0")
        trigger.connect(cluster.tid("evm"))
        evm.connect({0: cluster.proxy(0, "ru0")},  # repro: noqa DFL001
                    {0: cluster.proxy(0, "bu0")})
        bu.connect(cluster.proxy(2, "evm"), {0: cluster.proxy(2, "ru0")})  # repro: noqa DFL001
        trigger.fire_burst(4)
        cluster.pump()
        assert evm.completed == 4
        assert_no_leaks(cluster.executives)
