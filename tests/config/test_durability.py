"""Bootstrap wiring for the durability spec section."""

from __future__ import annotations

import pytest

from repro.config.bootstrap import BootstrapError, bootstrap

RELIABLE = "repro.core.reliable.ReliableEndpoint"
EVM = "repro.daq.manager.EventManager"
ECHO = "repro.bench.devices.EchoDevice"


def durable_spec(tmp_path, **durability):
    durability.setdefault("dir", str(tmp_path / "state"))
    return {
        "nodes": {
            0: {"devices": [
                {"class": EVM, "name": "evm"},
                {"class": RELIABLE, "name": "rx"},
            ]},
            1: {"devices": [
                {"class": RELIABLE, "name": "feed"},
                {"class": ECHO, "name": "echo"},
            ]},
        },
        "durability": durability,
    }


class TestWiring:
    def test_journals_and_snapshots_attached(self, tmp_path):
        cluster = bootstrap(durable_spec(tmp_path))
        assert sorted(cluster.journals) == ["feed", "rx"]
        assert sorted(cluster.snapshots) == ["evm"]
        for name in ("feed", "rx"):
            store = cluster.journals[name]
            assert store.path.exists()
            assert cluster.device(name).journal is store
        assert cluster.device("evm").snapshot_store is cluster.snapshots["evm"]
        # Non-durable devices are untouched.
        assert "echo" not in cluster.journals

    def test_store_options_forwarded(self, tmp_path):
        cluster = bootstrap(durable_spec(
            tmp_path, flush_every=4, fsync=False, compact_min_records=8,
            compact_live_ratio=0.25,
        ))
        store = cluster.journals["feed"]
        assert store.flush_every == 4
        assert store.compact_min_records == 8
        assert store.compact_live_ratio == 0.25

    def test_string_values_coerced_through_schema(self, tmp_path):
        """Spec files carry strings; the schema formats them."""
        cluster = bootstrap(durable_spec(tmp_path, flush_every="3",
                                         journals="true"))
        assert cluster.journals["feed"].flush_every == 3

    def test_journals_off_skips_endpoints(self, tmp_path):
        cluster = bootstrap(durable_spec(tmp_path, journals=False))
        assert cluster.journals == {}
        assert cluster.device("feed").journal is None
        assert sorted(cluster.snapshots) == ["evm"]

    def test_snapshots_off_skips_evm(self, tmp_path):
        cluster = bootstrap(durable_spec(tmp_path, snapshots=False))
        assert cluster.snapshots == {}
        assert cluster.device("evm").snapshot_store is None
        assert sorted(cluster.journals) == ["feed", "rx"]

    def test_existing_journal_recovers_at_bootstrap(self, tmp_path):
        """A journal left by a previous incarnation replays during
        bootstrap itself: the endpoint comes up owing its peers the
        unacknowledged tail."""
        spec = durable_spec(tmp_path)
        cluster = bootstrap(spec)
        feed = cluster.device("feed")
        peer = cluster.proxy(1, "rx")
        feed.send_reliable(peer, b"unacked")
        # Simulate process death: nothing pumped, nothing acked.
        for store in cluster.journals.values():
            store.close()
        reborn = bootstrap(durable_spec(tmp_path))
        assert reborn.device("feed").replayed == 1
        assert reborn.device("feed").recoveries == 1
        assert reborn.device("rx").replayed == 0


class TestRejection:
    def test_missing_dir_rejected(self, tmp_path):
        spec = durable_spec(tmp_path)
        del spec["durability"]["dir"]
        with pytest.raises(BootstrapError, match="dir"):
            bootstrap(spec)

    def test_unknown_key_rejected(self, tmp_path):
        with pytest.raises(BootstrapError, match="durability"):
            bootstrap(durable_spec(tmp_path, wal_mode="paranoid"))

    def test_out_of_range_value_rejected(self, tmp_path):
        with pytest.raises(BootstrapError, match="durability"):
            bootstrap(durable_spec(tmp_path, flush_every=0))
