"""Host control: executive messages, control rights, Tcl verbs."""

from __future__ import annotations

import pytest

from repro.config.control import ControlError, HostController
from repro.config.tclish import TclInterp
from repro.core.device import Listener
from repro.core.states import DeviceState

from tests.conftest import make_loopback_cluster


@pytest.fixture
def controlled_cluster():
    cluster = make_loopback_cluster(3)

    def pump():
        for exe in cluster.values():
            exe.step()

    controller = HostController(pump=pump, max_pumps=10_000)
    cluster[0].install(controller)
    return cluster, controller


class TestVerbs:
    def test_status(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        status = ctl.status(1)
        assert status["node"] == "1"
        assert status["state"] == "initialised"

    def test_enable_quiesce_halt_lifecycle(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        dev = Listener("payload-device")
        cluster[2].install(dev)
        ctl.enable(2)
        assert dev.state is DeviceState.ENABLED
        ctl.quiesce(2)
        assert dev.state is DeviceState.QUIESCED
        ctl.halt(2)
        assert cluster[2]._halt_requested

    def test_lct_lists_remote_devices(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        tid = cluster[1].install(Listener("thing"))
        table = ctl.lct(1)
        assert table[str(tid)] == "private"

    def test_params_get_set_remote(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        dev = Listener("cfg")
        dev.parameters["speed"] = "slow"
        tid = cluster[1].install(dev)
        assert ctl.get_params(1, tid, "speed") == {"speed": "slow"}
        ctl.set_params(1, tid, {"speed": "fast", "extra": "1"})
        assert dev.parameters["speed"] == "fast"
        assert dev.parameters["extra"] == "1"

    def test_rpc_timeout_on_dead_node(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        ctl.max_pumps = 50
        proxy = cluster[0].create_proxy(77, 0)  # nonexistent node
        with pytest.raises(ControlError):
            ctl.rpc(proxy, 0xA0)


class TestControlRights:
    def test_primary_holds_rights_by_default(self, controlled_cluster):
        _, ctl = controlled_cluster
        assert ctl.control_holder == ctl.name
        ctl.status(1)  # allowed

    def test_unregistered_secondary_cannot_apply(self, controlled_cluster):
        _, ctl = controlled_cluster
        with pytest.raises(ControlError, match="never registered"):
            ctl.apply_for_control("rogue")

    def test_secondary_denied_while_primary_holds(self, controlled_cluster):
        _, ctl = controlled_cluster
        ctl.register_secondary("backup")
        assert ctl.apply_for_control("backup") is False

    def test_secondary_granted_after_release(self, controlled_cluster):
        _, ctl = controlled_cluster
        ctl.register_secondary("backup")
        ctl.release_control()
        assert ctl.apply_for_control("backup") is True
        assert ctl.control_holder == "backup"
        with pytest.raises(ControlError, match="control rights"):
            ctl.status(1)


class TestTclIntegration:
    def test_script_drives_cluster(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        interp = TclInterp()
        ctl.bind_tcl(interp, cluster)
        interp.run("""
            foreach node {1 2} { enable $node }
            puts [status 1]
        """)
        assert cluster[1].state is DeviceState.ENABLED
        assert cluster[2].state is DeviceState.ENABLED
        assert "state=enabled" in interp.output[0]

    def test_script_module_download_and_param(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        interp = TclInterp()
        ctl.bind_tcl(interp, cluster)
        interp.set_var("src", (
            "from repro.core.device import Listener\n"
            "class Probe(Listener):\n"
            "    device_class = 'probe'\n"
        ))
        interp.run("""
            set tid [module 1 Probe $src]
            param set 1 $tid colour green
            puts [param get 1 $tid colour]
        """)
        assert interp.output == ["green"]
        dev = cluster[1].find_device("Probe")
        assert dev.parameters["colour"] == "green"

    def test_module_unknown_node_errors(self, controlled_cluster):
        cluster, ctl = controlled_cluster
        interp = TclInterp()
        ctl.bind_tcl(interp, cluster)
        assert interp.run("catch {module 9 X {class X: pass}} err") == "1"
