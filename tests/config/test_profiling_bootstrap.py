"""Bootstrap wiring for the continuous-profiling kit."""

from __future__ import annotations

import pytest

from repro.config.bootstrap import BootstrapError, bootstrap
from repro.core.executive import DISPATCH_LATENCY_BUCKETS_NS

ECHO = "repro.bench.devices.EchoDevice"
PING = "repro.bench.devices.PingDevice"


def spec_with_profiling(**section):
    return {
        "transport": "loopback",
        "profiling": section,
        "nodes": {
            0: {"devices": [{"class": PING, "name": "ping"}]},
            1: {"devices": [{"class": ECHO, "name": "echo"}]},
        },
    }


def dispatch_hist(cluster, node):
    return cluster.executives[node].metrics.histogram(
        "exe_dispatch_ns", DISPATCH_LATENCY_BUCKETS_NS
    )


class TestWiring:
    def test_defaults_arm_sampler_and_exemplars(self):
        cluster = bootstrap(spec_with_profiling())
        assert cluster.profiler is not None
        assert cluster.profiler.hz == 97.0  # the schema default
        for exe in cluster.executives.values():
            assert exe.profile is not None  # slot installed per node
        for node in (0, 1):
            assert dispatch_hist(cluster, node).exemplars is not None
        # The default budget is 0: no watches armed.
        assert cluster.slow_watches == {}
        assert all(
            exe.slow_watch is None for exe in cluster.executives.values()
        )

    def test_sampling_off_leaves_the_hot_path_alone(self):
        cluster = bootstrap(spec_with_profiling(sampling=False))
        assert cluster.profiler is None
        assert all(
            exe.profile is None for exe in cluster.executives.values()
        )

    def test_exemplars_off(self):
        cluster = bootstrap(spec_with_profiling(exemplars=False))
        assert dispatch_hist(cluster, 0).exemplars is None

    def test_rate_and_depth_forwarded(self):
        cluster = bootstrap(spec_with_profiling(hz=251.0, max_depth=12))
        assert cluster.profiler.hz == 251.0
        assert cluster.profiler.max_depth == 12

    def test_string_values_coerced(self):
        cluster = bootstrap(spec_with_profiling(hz="251"))
        assert cluster.profiler.hz == 251.0

    def test_budget_arms_a_watch_per_node(self):
        cluster = bootstrap(spec_with_profiling(
            dispatch_budget_ns=50_000, trace_budget_ns=400_000,
            max_spills=2,
        ))
        assert sorted(cluster.slow_watches) == [0, 1]
        for node, watch in cluster.slow_watches.items():
            assert cluster.executives[node].slow_watch is watch
            assert watch.budget_ns == 50_000
            assert watch.trace_budget_ns == 400_000
            assert watch.max_spills == 2

    def test_no_section_means_fully_off(self):
        spec = spec_with_profiling()
        del spec["profiling"]
        cluster = bootstrap(spec)
        assert cluster.profiler is None
        assert cluster.slow_watches == {}
        for exe in cluster.executives.values():
            assert exe.profile is None and exe.slow_watch is None


class TestValidation:
    @pytest.mark.parametrize("section", [
        {"hz": 0.0},
        {"hz": 100_000.0},
        {"max_depth": 0},
        {"dispatch_budget_ns": -1},
        {"bogus_key": 1},
    ])
    def test_bad_section_rejected(self, section):
        with pytest.raises(BootstrapError, match="bad profiling section"):
            bootstrap(spec_with_profiling(**section))


class TestLifecycle:
    def test_start_all_runs_the_sampler_and_stop_all_joins_it(self):
        cluster = bootstrap(spec_with_profiling(hz=499.0))
        assert not cluster.profiler.running
        cluster.start_all()
        try:
            assert cluster.profiler.running
        finally:
            cluster.stop_all()
        assert not cluster.profiler.running
