"""The Tcl-subset interpreter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.tclish import TclError, TclInterp, format_list, parse_list


@pytest.fixture
def tcl():
    return TclInterp()


class TestVariables:
    def test_set_and_read(self, tcl):
        assert tcl.run("set x 42") == "42"
        assert tcl.run("set x") == "42"

    def test_dollar_substitution(self, tcl):
        tcl.run("set name world")
        tcl.run('puts "hello $name"')
        assert tcl.output == ["hello world"]

    def test_braced_varname(self, tcl):
        tcl.run("set long_name ok")
        assert tcl.run("set y ${long_name}!") == "ok!"

    def test_unset(self, tcl):
        tcl.run("set x 1")
        tcl.run("unset x")
        with pytest.raises(TclError, match="no such variable"):
            tcl.run("set y $x")

    def test_undefined_read_raises(self, tcl):
        with pytest.raises(TclError):
            tcl.run("puts $nope")


class TestQuotingAndSubstitution:
    def test_braces_suppress_substitution(self, tcl):
        tcl.run("set x 5")
        tcl.run("puts {$x literal}")
        assert tcl.output == ["$x literal"]

    def test_quotes_allow_substitution(self, tcl):
        tcl.run("set x 5")
        tcl.run('puts "$x interpolated"')
        assert tcl.output == ["5 interpolated"]

    def test_command_substitution(self, tcl):
        assert tcl.run("set y [expr 2 + 3]") == "5"

    def test_nested_command_substitution(self, tcl):
        assert tcl.run("set y [expr [expr 1 + 1] * 3]") == "6"

    def test_nested_braces(self, tcl):
        tcl.run("puts {a {b c} d}")
        assert tcl.output == ["a {b c} d"]

    def test_escapes(self, tcl):
        tcl.run(r'puts "tab\there"')
        assert tcl.output == ["tab\there"]

    def test_missing_close_brace(self, tcl):
        with pytest.raises(TclError, match="close-brace"):
            tcl.run("puts {unclosed")

    def test_missing_close_bracket(self, tcl):
        with pytest.raises(TclError, match="close-bracket"):
            tcl.run('set x "[expr 1"')

    def test_comments_and_semicolons(self, tcl):
        tcl.run("# full line comment\nset a 1; set b 2")
        assert tcl.run("set a") == "1"
        assert tcl.run("set b") == "2"


class TestExpr:
    @pytest.mark.parametrize("expression,expected", [
        ("1 + 2", "3"),
        ("10 - 2 * 3", "4"),
        ("(10 - 2) * 3", "24"),
        ("7 / 2", "3"),           # integer division like Tcl
        ("7.0 / 2", "3.5"),
        ("7 % 3", "1"),
        ("2 ** 10", "1024"),
        ("-5 + 3", "-2"),
        ("1 < 2", "1"),
        ("2 <= 1", "0"),
        ("3 == 3", "1"),
        ("3 != 3", "0"),
        ("1 && 0", "0"),
        ("1 || 0", "1"),
        ("!0", "1"),
        ("1 + 2 * 3 == 7 && 4 > 3", "1"),
    ])
    def test_arithmetic(self, tcl, expression, expected):
        assert tcl.run(f"expr {expression}") == expected

    def test_variables_inside_expr(self, tcl):
        tcl.run("set n 6")
        assert tcl.run("expr $n * 7") == "42"

    def test_string_comparison(self, tcl):
        assert tcl.run('expr "abc" == "abc"') == "1"
        assert tcl.run('expr "abc" == "abd"') == "0"

    def test_divide_by_zero(self, tcl):
        with pytest.raises(TclError, match="divide by zero"):
            tcl.run("expr 1 / 0")

    @given(st.integers(-1000, 1000), st.integers(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_property_addition_agrees_with_python(self, a, b):
        assert TclInterp().run(f"expr {a} + {b}") == str(a + b)


class TestControlFlow:
    def test_if_else(self, tcl):
        tcl.run("if {1 > 0} {puts yes} else {puts no}")
        assert tcl.output == ["yes"]

    def test_if_elseif_chain(self, tcl):
        tcl.run("set x 2")
        tcl.run("if {$x == 1} {puts one} elseif {$x == 2} {puts two} "
                "else {puts many}")
        assert tcl.output == ["two"]

    def test_while_with_incr(self, tcl):
        tcl.run("set i 0\nwhile {$i < 4} {puts $i; incr i}")
        assert tcl.output == ["0", "1", "2", "3"]

    def test_for_loop(self, tcl):
        tcl.run("for {set i 0} {$i < 3} {incr i} {puts iter$i}")
        assert tcl.output == ["iter0", "iter1", "iter2"]

    def test_foreach(self, tcl):
        tcl.run("foreach fruit {apple pear plum} {puts $fruit}")
        assert tcl.output == ["apple", "pear", "plum"]

    def test_break_and_continue(self, tcl):
        tcl.run("foreach x {1 2 3 4 5} {"
                "if {$x == 2} {continue}; if {$x == 4} {break}; puts $x}")
        assert tcl.output == ["1", "3"]

    def test_infinite_loop_bounded(self, tcl):
        with pytest.raises(TclError, match="iteration limit"):
            tcl.run("while {1} {set x 1}")


class TestProcs:
    def test_define_and_call(self, tcl):
        tcl.run("proc double {x} {return [expr $x * 2]}")
        assert tcl.run("double 21") == "42"

    def test_local_scope(self, tcl):
        tcl.run("set x global")
        tcl.run("proc touch {} {set x local; return $x}")
        assert tcl.run("touch") == "local"
        assert tcl.run("set x") == "global"

    def test_global_readable_from_proc(self, tcl):
        tcl.run("set shared 7")
        tcl.run("proc peek {} {return $shared}")
        assert tcl.run("peek") == "7"

    def test_arity_checked(self, tcl):
        tcl.run("proc two {a b} {return $a$b}")
        with pytest.raises(TclError, match="wrong # args"):
            tcl.run("two onlyone")

    def test_varargs(self, tcl):
        tcl.run("proc count {first args} {return [llength $args]}")
        assert tcl.run("count a b c d") == "3"

    def test_recursion(self, tcl):
        tcl.run("proc fact {n} {if {$n <= 1} {return 1};"
                " return [expr $n * [fact [expr $n - 1]]]}")
        assert tcl.run("fact 6") == "720"


class TestListsAndStrings:
    def test_list_round_trip(self):
        items = ["plain", "with space", "", "{braced}"]
        assert parse_list(format_list(items)) == items

    def test_lindex_llength(self, tcl):
        tcl.run("set l [list a b c]")
        assert tcl.run("llength $l") == "3"
        assert tcl.run("lindex $l 1") == "b"
        assert tcl.run("lindex $l 99") == ""

    def test_lappend(self, tcl):
        tcl.run("lappend acc x")
        tcl.run("lappend acc y z")
        assert tcl.run("llength $acc") == "3"

    def test_string_ops(self, tcl):
        assert tcl.run("string length hello") == "5"
        assert tcl.run("string toupper abc") == "ABC"
        assert tcl.run("string equal a a") == "1"
        assert tcl.run("string range abcdef 1 3") == "bcd"

    @given(st.lists(st.text(
        alphabet=st.characters(blacklist_characters="{}\\",
                               blacklist_categories=("Cs",)), max_size=10)))
    @settings(max_examples=60, deadline=None)
    def test_property_list_round_trip(self, items):
        assert parse_list(format_list(items)) == items


class TestErrorsAndCatch:
    def test_unknown_command(self, tcl):
        with pytest.raises(TclError, match="invalid command"):
            tcl.run("frobnicate")

    def test_error_command(self, tcl):
        with pytest.raises(TclError, match="custom failure"):
            tcl.run("error {custom failure}")

    def test_catch_success(self, tcl):
        assert tcl.run("catch {expr 1 + 1} result") == "0"
        assert tcl.run("set result") == "2"

    def test_catch_failure(self, tcl):
        assert tcl.run("catch {error oops} msg") == "1"
        assert tcl.run("set msg") == "oops"

    def test_eval(self, tcl):
        tcl.run("set cmd {puts hi}")
        tcl.run("eval $cmd")
        assert tcl.output == ["hi"]

    def test_custom_command_registration(self, tcl):
        tcl.register("greet", lambda interp, args: f"hello {args[0]}")
        assert tcl.run("greet cluster") == "hello cluster"
