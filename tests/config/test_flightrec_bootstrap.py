"""Bootstrap wiring for the per-node flight recorders."""

from __future__ import annotations

import pytest

from repro.config.bootstrap import BootstrapError, bootstrap
from repro.flightrec import EV_HARD_STOP, load_dump

ECHO = "repro.bench.devices.EchoDevice"
PING = "repro.bench.devices.PingDevice"


def spec_with_recorder(tmp_path, **extra):
    return {
        "transport": "loopback",
        "flight_recorder": {"dir": str(tmp_path / "crash"), **extra},
        "nodes": {
            0: {"devices": [{"class": PING, "name": "ping"}]},
            1: {"devices": [{"class": ECHO, "name": "echo"}]},
        },
    }


class TestWiring:
    def test_every_node_gets_a_recorder(self, tmp_path):
        cluster = bootstrap(spec_with_recorder(tmp_path))
        assert sorted(cluster.flight_recorders) == [0, 1]
        for node, exe in cluster.executives.items():
            recorder = cluster.flight_recorders[node]
            assert exe.flightrec is recorder
            assert recorder.node == node
            assert recorder.clock is exe.clock
            assert recorder.capacity == 4096  # the schema default

    def test_capacity_forwarded(self, tmp_path):
        cluster = bootstrap(spec_with_recorder(tmp_path, capacity=64))
        assert cluster.flight_recorders[0].capacity == 64

    def test_string_capacity_coerced(self, tmp_path):
        cluster = bootstrap(spec_with_recorder(tmp_path, capacity="128"))
        assert cluster.flight_recorders[1].capacity == 128

    def test_hard_stop_spills_into_the_configured_dir(self, tmp_path):
        cluster = bootstrap(spec_with_recorder(tmp_path))
        cluster.executives[1].hard_stop()
        dump = load_dump(tmp_path / "crash" / "node001.flightrec")
        assert dump.node == 1
        assert dump.of_kind(EV_HARD_STOP)

    def test_no_section_means_no_recorders(self, tmp_path):
        spec = spec_with_recorder(tmp_path)
        del spec["flight_recorder"]
        cluster = bootstrap(spec)
        assert cluster.flight_recorders == {}
        assert all(
            exe.flightrec is None for exe in cluster.executives.values()
        )


class TestRejection:
    def test_missing_dir_rejected(self, tmp_path):
        spec = spec_with_recorder(tmp_path)
        del spec["flight_recorder"]["dir"]
        with pytest.raises(BootstrapError, match="'dir'"):
            bootstrap(spec)

    def test_unknown_key_rejected(self, tmp_path):
        with pytest.raises(BootstrapError, match="bad flight_recorder"):
            bootstrap(spec_with_recorder(tmp_path, verbosity=3))

    def test_out_of_range_capacity_rejected(self, tmp_path):
        with pytest.raises(BootstrapError, match="bad flight_recorder"):
            bootstrap(spec_with_recorder(tmp_path, capacity=1))
