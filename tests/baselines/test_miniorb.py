"""The mini-ORB baseline is itself a working little ORB."""

from __future__ import annotations

import pytest

from repro.baselines.miniorb import (
    CdrDecoder,
    CdrEncoder,
    MiniOrb,
    OrbChannel,
    OrbError,
)


class Servant:
    def echo(self, data):
        return data

    def add(self, a, b):
        return a + b

    def fail(self):
        raise ValueError("servant exploded")


@pytest.fixture
def orbs():
    channel = OrbChannel()
    client, server = MiniOrb(channel, 0), MiniOrb(channel, 1)
    client.peer = server
    server.peer = client
    server.register("Svc/1", Servant())
    return client, server


class TestCdr:
    def test_primitives_round_trip(self):
        enc = CdrEncoder()
        enc.write_u32(7)
        enc.write_i64(-5)
        enc.write_f64(2.5)
        enc.write_string("hi")
        dec = CdrDecoder(enc.getvalue())
        assert dec.read_u32() == 7
        assert dec.read_i64() == -5
        assert dec.read_f64() == 2.5
        assert dec.read_string() == "hi"

    def test_alignment_padding(self):
        enc = CdrEncoder()
        enc.buffer.extend(b"x")  # misalign
        enc.write_u32(1)
        assert len(enc.buffer) == 8  # 3 pad bytes inserted

    def test_any_round_trip(self):
        value = {"k": [1, 2.5, "s", b"b", None, True]}
        enc = CdrEncoder()
        enc.write_any(value)
        assert CdrDecoder(enc.getvalue()).read_any() == value

    def test_unsupported_type(self):
        with pytest.raises(OrbError):
            CdrEncoder().write_any(object())


class TestInvocation:
    def test_call_round_trip(self, orbs):
        client, _ = orbs
        ref = client.resolve("Svc/1")
        assert ref.add(2, 3) == 5
        assert ref.echo(b"bytes") == b"bytes"

    def test_attribute_syntax(self, orbs):
        client, _ = orbs
        assert client.resolve("Svc/1").add(10, 1) == 11

    def test_unknown_object(self, orbs):
        client, _ = orbs
        with pytest.raises(OrbError, match="OBJECT_NOT_EXIST"):
            client.resolve("Ghost/9").echo(b"")

    def test_unknown_operation(self, orbs):
        client, _ = orbs
        with pytest.raises(OrbError, match="BAD_OPERATION"):
            client.resolve("Svc/1").frobnicate()

    def test_servant_exception_propagates(self, orbs):
        client, _ = orbs
        with pytest.raises(OrbError, match="ValueError: servant exploded"):
            client.resolve("Svc/1").fail()

    def test_requests_served_counter(self, orbs):
        client, server = orbs
        ref = client.resolve("Svc/1")
        for _ in range(3):
            ref.add(1, 1)
        assert server.requests_served == 3
