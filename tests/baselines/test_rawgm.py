"""The raw GM ping-pong baseline."""

from __future__ import annotations

import pytest

from repro.baselines.rawgm import GmPingPong, run_gm_pingpong
from repro.hw.myrinet import Fabric, MyrinetParams
from repro.sim.kernel import Simulator


def test_completes_all_rounds():
    sim = Simulator()
    bench = GmPingPong(sim, Fabric(sim), payload_size=64, rounds=25)
    bench.start()
    sim.run()
    assert len(bench.rtts_ns) == 25


def test_one_way_is_half_rtt():
    sim = Simulator()
    bench = GmPingPong(sim, Fabric(sim), payload_size=64, rounds=10)
    bench.start()
    sim.run()
    import numpy as np

    assert bench.one_way_us() == pytest.approx(
        float(np.mean(bench.rtts_ns)) / 2000.0
    )


def test_latency_matches_fabric_law():
    """One way = the fabric's analytic latency (GM adds no queueing in
    lockstep ping-pong)."""
    sim = Simulator()
    fabric = Fabric(sim)
    bench = GmPingPong(sim, fabric, payload_size=512, rounds=10)
    bench.start()
    sim.run()
    assert bench.rtts_ns[-1] == 2 * fabric.expected_one_way_ns(512)


def test_convenience_runner_monotone_in_payload():
    small = run_gm_pingpong(16, rounds=10)
    large = run_gm_pingpong(4096, rounds=10)
    assert large > small


def test_unrun_one_way_raises():
    sim = Simulator()
    bench = GmPingPong(sim, Fabric(sim), payload_size=1, rounds=1)
    with pytest.raises(RuntimeError):
        bench.one_way_us()


def test_custom_params_change_latency():
    fast = MyrinetParams(pci_dma_ns_per_byte=5.0)
    default = run_gm_pingpong(4096, rounds=5)
    quicker = run_gm_pingpong(4096, rounds=5, params=fast)
    assert quicker < default
