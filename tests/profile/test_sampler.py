"""The sampling profiler: slots, attribution, lifecycle, off-mode."""

from __future__ import annotations

import threading

import pytest

from repro.core.device import FunctionalListener, Listener
from repro.core.executive import Executive
from repro.dataflow.registry import _unregister, message_type
from repro.i2o.errors import I2OError
from repro.i2o.function_codes import function_name
from repro.profile.sampler import (
    DispatchSlot,
    SamplingProfiler,
    context_label,
)


def run_echo_dispatch(exe: Executive) -> None:
    tid = exe.install(
        FunctionalListener(name="echo", handlers={0x1: lambda f: None})
    )
    sender = Listener("sender")
    exe.install(sender)
    sender.send(tid, b"ping", xfunction=0x1)
    exe.run_until_idle()


class TestDispatchSlot:
    def test_starts_idle(self):
        assert DispatchSlot().current is None

    def test_dispatch_publishes_and_clears_the_slot(self):
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=50.0)
        slot = profiler.register(exe)
        seen = []

        def handler(frame):
            seen.append(slot.current)

        tid = exe.install(
            FunctionalListener(name="spy", handlers={0x1: handler})
        )
        sender = Listener("sender")
        exe.install(sender)
        sender.send(tid, b"", xfunction=0x1)
        exe.run_until_idle()
        # Mid-dispatch the slot held this dispatch's context triple...
        assert (int(tid), seen[0][1], 0x1) == seen[0]
        # ...and between dispatches it is back to idle.
        assert slot.current is None


class TestContextLabel:
    def test_idle(self):
        assert context_label(None) == "idle"

    def test_registered_message_type_name_wins(self):
        mtype = message_type("test.profile-label", 0x3F7)
        try:
            label = context_label((5, mtype.function, mtype.xfunction))
            assert label == "tid5:test.profile-label"
        finally:
            _unregister("test.profile-label")

    def test_unregistered_falls_back_to_function_name(self):
        label = context_label((2, 0xFF, 0xABC))
        assert label == f"tid2:{function_name(0xFF)}/xfn0x0abc"


class TestRegistration:
    def test_register_installs_slot_and_gauges(self):
        exe = Executive(node=3)
        profiler = SamplingProfiler(hz=50.0)
        slot = profiler.register(exe)
        assert exe.profile is slot
        snap = exe.metrics.snapshot()
        assert snap["prof_samples_total"] == 0
        assert snap["prof_busy_samples_total"] == 0

    def test_register_is_idempotent(self):
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=50.0)
        assert profiler.register(exe) is profiler.register(exe)

    def test_unregister_restores_off_mode(self):
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=50.0)
        profiler.register(exe)
        profiler.unregister(exe)
        assert exe.profile is None

    def test_bad_rate_rejected(self):
        with pytest.raises(I2OError, match="sampling rate"):
            SamplingProfiler(hz=0)


class TestSampling:
    def _watched(self, hz=50.0, **kwargs):
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=hz, **kwargs)
        slot = profiler.register(exe)
        profiler.watch_thread(0)  # defaults to this, the pumping thread
        return exe, profiler, slot

    def test_idle_sample_attributed_to_idle(self):
        _exe, profiler, _slot = self._watched()
        assert profiler.sample_once() == 1
        assert profiler.node_samples[0] == 1
        assert profiler.node_busy[0] == 0
        assert profiler.busy_ratio(0) == 0.0
        assert any(
            line.startswith("node0;idle;") for line in profiler.collapsed()
        )

    def test_busy_sample_attributed_to_the_published_context(self):
        _exe, profiler, slot = self._watched()
        slot.current = (7, 0xFF, 0x42)
        profiler.sample_once()
        assert profiler.node_busy[0] == 1
        assert profiler.busy_ratio(0) == 1.0
        ((node, ctx, count),) = profiler.hot_contexts()
        assert (node, ctx, count) == (0, (7, 0xFF, 0x42), 1)
        label = context_label((7, 0xFF, 0x42))
        assert any(
            line.startswith(f"node0;{label};")
            for line in profiler.collapsed()
        )

    def test_collapsed_lines_end_with_the_sample_count(self):
        _exe, profiler, _slot = self._watched()
        profiler.sample_once()
        profiler.sample_once()
        total = sum(int(line.rsplit(" ", 1)[1])
                    for line in profiler.collapsed())
        assert total == 2

    def test_max_depth_caps_the_walk(self):
        _exe, profiler, _slot = self._watched(max_depth=3)
        profiler.sample_once()
        ((_, _, stack),) = list(profiler.counts)
        assert 0 < len(stack) <= 3

    def test_clear_keeps_the_watched_set(self):
        _exe, profiler, _slot = self._watched()
        profiler.sample_once()
        profiler.clear()
        assert profiler.node_samples[0] == 0
        assert profiler.ticks == 0
        assert profiler.sample_once() == 1  # still watching

    def test_unwatched_node_yields_no_samples(self):
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=50.0)
        profiler.register(exe)
        # No pinned ident and no loop thread running: nothing to walk.
        assert profiler.sample_once() == 0


class TestLifecycle:
    def test_start_stop_are_idempotent(self):
        profiler = SamplingProfiler(hz=487.0)
        profiler.start()
        thread = profiler._thread
        profiler.start()  # no-op
        assert profiler._thread is thread
        profiler.stop()
        profiler.stop()  # no-op
        assert not profiler.running

    def test_restart_spawns_a_fresh_thread(self):
        profiler = SamplingProfiler(hz=487.0)
        profiler.start()
        first = profiler._thread
        profiler.stop()
        profiler.start()
        assert profiler.running and profiler._thread is not first
        profiler.stop()

    def test_executive_restart_is_picked_up_live(self):
        # The sampled ident is resolved from Executive._thread at every
        # tick: stop/start of the node needs no profiler re-wiring.
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=50.0)
        profiler.register(exe)
        exe.start()
        try:
            assert profiler.sample_once() == 1
        finally:
            exe.stop()
        assert profiler.sample_once() == 0  # loop thread gone
        exe.start()
        try:
            assert profiler.sample_once() == 1  # new incarnation sampled
        finally:
            exe.stop()

    def test_sampler_thread_accumulates_while_running(self):
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=997.0)
        profiler.register(exe)
        profiler.watch_thread(0, ident=threading.get_ident())
        profiler.start()
        try:
            deadline = threading.Event()
            for _ in range(200):
                if profiler.node_samples[0] > 0:
                    break
                deadline.wait(0.01)
        finally:
            profiler.stop()
        assert profiler.node_samples[0] > 0
        assert profiler.ticks > 0


class TestOffMode:
    def test_no_profiler_means_no_slot_and_no_prof_metrics(self):
        exe = Executive(node=0)
        assert exe.profile is None
        run_echo_dispatch(exe)  # hot path: one is-None test, nothing else
        assert exe.profile is None
        assert not any(
            key.startswith("prof_") for key in exe.metrics.snapshot()
        )

    def test_dispatch_works_after_unregister(self):
        exe = Executive(node=0)
        profiler = SamplingProfiler(hz=50.0)
        profiler.register(exe)
        profiler.unregister(exe)
        run_echo_dispatch(exe)
        assert exe.dispatched >= 1
