"""Acceptance: a deliberately slowed dispatch lights up the whole kit.

One two-node loopback cluster with the full profiling kit armed: the
tracer mints a trace id on the sender, the slow handler blows the
dispatch budget on the receiver, and afterwards (a) the receiver's
OpenMetrics exposition carries that trace id as a histogram exemplar
on a slow bucket, (b) the slow-frame watch has tripped and spilled a
flight-recorder dump holding the matching ``EV_SLOW_FRAME``, and (c)
the sampling profiler can attribute a mid-dispatch sample to the slow
device's context.
"""

from __future__ import annotations

import re
import time

from repro.core.device import FunctionalListener, Listener
from repro.core.executive import DISPATCH_LATENCY_BUCKETS_NS
from repro.core.tracing import FrameTracer, is_trace_context
from repro.flightrec import FlightRecorder, load_dump
from repro.flightrec.records import EV_SLOW_FRAME
from repro.profile.sampler import SamplingProfiler
from repro.profile.watch import SlowFrameWatch

from tests.conftest import make_loopback_cluster, pump

BUDGET_NS = 1_000_000  # 1 ms: the slow handler sleeps 5x that


def test_slowed_dispatch_produces_exemplar_spill_and_samples(tmp_path):
    cluster = make_loopback_cluster(2)
    for node, exe in cluster.items():
        exe.tracer = FrameTracer(node=node, capacity=256)
    receiver = cluster[1]
    receiver.metrics.timing = True
    receiver.metrics.histogram(
        "exe_dispatch_ns", DISPATCH_LATENCY_BUCKETS_NS
    ).enable_exemplars()
    receiver.attach_flight_recorder(
        FlightRecorder(capacity=256, dump_dir=tmp_path)
    )
    watch = SlowFrameWatch(BUDGET_NS).attach(receiver)
    profiler = SamplingProfiler(hz=997.0)
    slot = profiler.register(receiver)
    sampled_ctx = []

    def slow(frame):
        if not frame.is_reply:
            time.sleep(5 * BUDGET_NS / 1e9)
            # Mid-dispatch the sampler would see this exact context.
            sampled_ctx.append(slot.current)

    slow_tid = receiver.install(
        FunctionalListener(name="slowdev", handlers={0x1: slow})
    )
    sender = Listener("sender")
    cluster[0].install(sender)
    proxy = cluster[0].create_proxy(1, slow_tid)
    sender.send(proxy, b"work", xfunction=0x1)
    pump(cluster)

    # (a) the receiver's exposition pins a trace id to a slow bucket.
    text = receiver.metrics.render_openmetrics()
    exemplars = re.findall(r'# \{trace_id="([0-9a-f]+)"\}', text)
    assert exemplars, f"no exemplar in exposition:\n{text}"
    assert text.rstrip().endswith("# EOF")
    trace_id = int(exemplars[-1], 16)
    assert is_trace_context(trace_id)

    # (b) the watch tripped and the spill holds the same trace context.
    assert watch.trips >= 1 and watch.spills >= 1
    dump = load_dump(receiver.flightrec.dump_path())
    assert dump.reason == "slow-frame"
    slow_records = dump.of_kind(EV_SLOW_FRAME)
    assert slow_records
    assert any(r.a == trace_id for r in slow_records)
    assert all(r.c >= BUDGET_NS for r in slow_records)

    # (c) the dispatch slot held the slow device's context mid-flight
    # (what any sampler tick landing in the handler would attribute).
    assert sampled_ctx == [(int(slow_tid), sampled_ctx[0][1], 0x1)]
    assert slot.current is None  # and it is clear again afterwards
