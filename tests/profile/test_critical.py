"""Critical-path decomposition: segments, refinement, aggregation."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.flightrec.records import (
    EV_FRAME_INGEST,
    EV_FRAME_TRANSMIT,
    EV_JOURNAL_COMMIT,
    EV_REL_ACK,
    EV_REL_SEND,
    FlightRecord,
)
from repro.flightrec.timeline import MergedTimeline
from repro.i2o.errors import I2OError
from repro.profile.critical import (
    ADDITIVE_SEGMENTS,
    CriticalPathAnalyzer,
    TracePath,
)

TRACE = 0x123


def hop(node, start_ns, queue_wait_ns, dispatch_ns, tid=17, xfn=0x2):
    return {
        "node": node, "tid": tid, "function": 0xFF, "xfunction": xfn,
        "start_ns": start_ns, "queue_wait_ns": queue_wait_ns,
        "dispatch_ns": dispatch_ns,
    }


#: Two hops: enqueue at 800, node-0 dispatch ends at 1300, node-1
#: enqueue at 2000 (transit 700), everything done at 2700.
TWO_HOPS = [hop(0, 1000, 200, 300), hop(1, 2300, 300, 400)]


def two_hop_path(merged=None):
    return CriticalPathAnalyzer().path(
        TRACE, timeline=TWO_HOPS, merged=merged
    )


class TestDecomposition:
    def test_segments_and_total(self):
        path = two_hop_path()
        assert path.total_ns == 1900
        first, second = path.hops
        assert first.segments == {"queue-wait": 200, "dispatch": 300}
        assert second.segments == {
            "queue-wait": 300, "dispatch": 400, "transit": 700,
        }

    def test_additive_segments_sum_to_the_lifetime(self):
        path = two_hop_path()
        assert sum(
            h.segments.get(s, 0)
            for h in path.hops for s in ADDITIVE_SEGMENTS
        ) == path.total_ns

    def test_dominant_hop_and_segment(self):
        path = two_hop_path()
        index, dominant = path.dominant_hop
        assert index == 1 and dominant.node == 1
        assert dominant.dominant == ("transit", 700)

    def test_empty_timeline_yields_an_empty_path(self):
        path = CriticalPathAnalyzer().path(TRACE, timeline=[])
        assert path.total_ns == 0 and path.hops == []
        with pytest.raises(I2OError, match="has no hops"):
            path.dominant_hop

    def test_no_collector_and_no_timeline_raises(self):
        with pytest.raises(I2OError, match="no collector"):
            CriticalPathAnalyzer().path(TRACE)
        with pytest.raises(I2OError, match="no collector"):
            CriticalPathAnalyzer().paths()


def record(kind, t_ns, a, b=0, c=0, seq=0):
    return FlightRecord(seq=seq, t_ns=t_ns, a=a, b=b, c=c, kind=kind)


def merged_for_refinement():
    """A flight-recorder merge for TWO_HOPS: transmit at 1500 on node
    0, ingest at 1900 on node 1, with the reliable send (seq 9)
    journalled at 1550 and acked at 1800."""
    node0 = SimpleNamespace(node=0, records=[
        record(EV_REL_SEND, 1400, a=9, b=1),
        record(EV_FRAME_TRANSMIT, 1500, a=TRACE),
        record(EV_JOURNAL_COMMIT, 1550, a=9),
        record(EV_REL_ACK, 1800, a=9),
    ])
    node1 = SimpleNamespace(node=1, records=[
        record(EV_FRAME_INGEST, 1900, a=TRACE),
    ])
    return MergedTimeline([node0, node1])


class TestRefinement:
    def test_transit_splits_into_encode_wire_residual(self):
        path = two_hop_path(merged=merged_for_refinement())
        segments = path.hops[1].segments
        assert segments["encode"] == 200  # 1300 -> transmit@1500
        assert segments["wire"] == 400    # transmit -> ingest@1900
        assert segments["transit"] == 100  # the unattributed residual
        # The split is a refinement: the additive total is unchanged.
        assert sum(
            h.segments.get(s, 0)
            for h in path.hops for s in ADDITIVE_SEGMENTS
        ) == path.total_ns == 1900

    def test_journal_and_ack_attributed_without_double_counting(self):
        path = two_hop_path(merged=merged_for_refinement())
        segments = path.hops[1].segments
        assert segments["journal"] == 150  # send@1400 -> commit@1550
        assert segments["ack"] == 400      # send@1400 -> ack@1800
        assert path.hops[1].total_ns == 1400  # overlap segments excluded

    def test_missing_wire_records_leave_transit_whole(self):
        merged = MergedTimeline([SimpleNamespace(node=0, records=[])])
        path = two_hop_path(merged=merged)
        assert path.hops[1].segments["transit"] == 700
        assert "encode" not in path.hops[1].segments


class TestAggregation:
    def test_segment_quantiles_are_exact(self):
        paths = [
            CriticalPathAnalyzer().path(
                i, timeline=[hop(0, 1000, 100 * (i + 1), 500)]
            )
            for i in range(4)  # queue waits 100, 200, 300, 400
        ]
        stats = CriticalPathAnalyzer.segment_quantiles(paths)
        assert stats["queue-wait"] == {
            "count": 4, "p50": 200, "p99": 400, "max": 400,
        }
        assert stats["dispatch"]["p50"] == 500

    def test_slowest_orders_by_total(self):
        fast = CriticalPathAnalyzer().path(1, timeline=[hop(0, 10, 5, 5)])
        slow = CriticalPathAnalyzer().path(
            2, timeline=[hop(0, 10, 5, 5000)]
        )
        assert CriticalPathAnalyzer.slowest([fast, slow], top=1) == [slow]


class TestRendering:
    def test_report_names_the_dominant_hop(self):
        text = CriticalPathAnalyzer().report(paths=[two_hop_path()])
        assert "=== critical path: 1 trace(s) ===" in text
        assert "queue-wait" in text and "dispatch" in text
        assert "dominant hop: #1 node1" in text
        assert "transit" in text

    def test_to_json_round_trips(self):
        blob = json.loads(
            CriticalPathAnalyzer().to_json(paths=[two_hop_path()])
        )
        (trace,) = blob["traces"]
        assert trace["trace_id"] == format(TRACE, "x")
        assert trace["total_ns"] == 1900
        assert [h["node"] for h in trace["hops"]] == [0, 1]
        assert trace["hops"][1]["dominant"] == "transit"
        assert blob["segments"]["queue-wait"]["count"] == 2

    def test_report_on_no_traces(self):
        assert "0 trace(s)" in CriticalPathAnalyzer().report(paths=[])


class TestTracePathInvariants:
    def test_dominant_hop_of_empty_path_raises(self):
        with pytest.raises(I2OError):
            TracePath(trace_id=1, total_ns=0, hops=[]).dominant_hop
