"""Slow-frame auto-capture: budgets, trips, spills."""

from __future__ import annotations

import pytest

from repro.core.device import FunctionalListener, Listener
from repro.core.executive import Executive
from repro.flightrec import FlightRecorder, load_dump
from repro.flightrec.records import EV_SLOW_FRAME
from repro.i2o.errors import I2OError
from repro.profile.watch import SlowFrameWatch


class _ManualClock:
    def __init__(self) -> None:
        self.t = 0

    def now_ns(self) -> int:
        return self.t


def slow_dispatch_exe(budget_ns=10_000, cost_ns=50_000, **watch_kwargs):
    """An executive whose echo handler 'takes' ``cost_ns`` on a manual
    clock, with a slow-frame watch armed at ``budget_ns``."""
    clock = _ManualClock()
    exe = Executive(node=0, clock=clock)
    watch = SlowFrameWatch(budget_ns, **watch_kwargs).attach(exe)

    def slow(frame):
        if not frame.is_reply:
            clock.t += cost_ns

    tid = exe.install(FunctionalListener(name="slow", handlers={0x1: slow}))
    sender = Listener("sender")
    exe.install(sender)

    def fire():
        sender.send(tid, b"", xfunction=0x1)
        exe.run_until_idle()

    return exe, watch, fire


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(I2OError, match="budget must be positive"):
            SlowFrameWatch(0)

    def test_attach_twice_raises(self):
        exe = Executive(node=0)
        SlowFrameWatch(1000).attach(exe)
        with pytest.raises(I2OError, match="already has a slow-frame"):
            SlowFrameWatch(1000).attach(exe)

    def test_detach_restores_off_mode(self):
        exe = Executive(node=0)
        watch = SlowFrameWatch(1000).attach(exe)
        watch.detach()
        assert exe.slow_watch is None


class TestTrips:
    def test_budget_overrun_trips(self):
        _exe, watch, fire = slow_dispatch_exe()
        fire()
        assert watch.trips == 1

    def test_within_budget_does_not_trip(self):
        _exe, watch, fire = slow_dispatch_exe(
            budget_ns=10_000, cost_ns=5_000
        )
        fire()
        assert watch.trips == 0

    def test_trip_counters_exported_as_gauges(self):
        _exe, watch, fire = slow_dispatch_exe()
        fire()
        snap = _exe.metrics.snapshot()
        assert snap["prof_slow_frames_total"] == 1
        assert snap["prof_slow_spills_total"] == 0  # no recorder attached

    def test_trace_budget_trips_separately(self):
        exe = Executive(node=0)
        watch = SlowFrameWatch(1000, trace_budget_ns=5000).attach(exe)
        watch.note_trace(0xABC, total_ns=9000)
        assert watch.trace_trips == 1
        assert watch.trips == 0


class TestCapture:
    def _recorded(self, tmp_path, **watch_kwargs):
        clock = _ManualClock()
        exe = Executive(
            node=0, clock=clock,
            flightrec=FlightRecorder(capacity=128, dump_dir=tmp_path),
        )
        watch = SlowFrameWatch(10_000, **watch_kwargs).attach(exe)

        def slow(frame):
            if not frame.is_reply:
                clock.t += 50_000

        tid = exe.install(
            FunctionalListener(name="slow", handlers={0x1: slow})
        )
        sender = Listener("sender")
        exe.install(sender)

        def fire():
            sender.send(tid, b"", xfunction=0x1)
            exe.run_until_idle()

        return exe, watch, fire

    def test_overrun_records_ev_slow_frame_and_spills(self, tmp_path):
        exe, watch, fire = self._recorded(tmp_path)
        fire()
        assert watch.spills == 1
        dump = load_dump(exe.flightrec.dump_path())
        assert dump.reason == "slow-frame"
        (record,) = dump.of_kind(EV_SLOW_FRAME)
        assert record.c >= 50_000  # measured duration rides the record

    def test_spills_are_capped_but_trips_keep_counting(self, tmp_path):
        _exe, watch, fire = self._recorded(tmp_path, max_spills=1)
        fire()
        fire()
        fire()
        assert watch.trips == 3
        assert watch.spills == 1

    def test_spill_on_trip_false_records_without_spilling(self, tmp_path):
        exe, watch, fire = self._recorded(tmp_path, spill_on_trip=False)
        fire()
        assert watch.trips == 1
        assert watch.spills == 0
        # The event is still in the live ring for a later spill.
        assert not exe.flightrec.dump_path().exists()

    def test_no_flightrec_still_counts(self):
        _exe, watch, fire = slow_dispatch_exe()
        fire()
        fire()
        assert watch.trips == 2
        assert watch.spills == 0
