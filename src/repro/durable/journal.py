r"""The journal record codec: durable frames for the reliable stream.

A journal is a flat append-only byte string of self-delimiting
records.  Three kinds exist:

* ``REC_SEND`` — a message committed for reliable delivery: sequence
  number, stable destination address ``(node, remote_tid)`` and the
  payload bytes.  Written *before* the first transmission (write-ahead
  discipline), so a crash after the send can always replay it.
* ``REC_ACK`` — the sequence number was acknowledged (or permanently
  retired through ``on_failed``): the matching SEND is dead and a
  compaction may drop both records.
* ``REC_META`` — the endpoint's identity ``(node, tid)`` and the
  sequence-space high-water mark (``seq`` = next unused sequence
  number).  Written when a journal is first bound to an endpoint and
  as the head of every compacted segment, so a restarted endpoint
  resumes its sequence space even when every send has been acked away.

Record layout (little-endian)::

    u8  kind        REC_SEND | REC_ACK | REC_META
    u64 seq
    u32 node        \  SEND: stable destination; META: endpoint identity
    u32 tid         /  (zero for ACK)
    u32 payload_len
    u32 payload_crc seeded CRC32 (the wire discipline, see seeded_crc)
    u32 header_crc  CRC32 over the 25 bytes above
    payload_len bytes of payload

The two CRCs split the failure modes a reader must distinguish:

* **torn tail** — the process died mid-append (or mid-flush): the file
  ends with fewer bytes than the next record declares.  The header CRC
  still verifies (or there aren't even 29 bytes to check), so the
  reader *truncates* to the last whole record and replays that
  record-aligned prefix.  This is the expected crash artefact and is
  not an error.
* **corruption** — all declared bytes are present but a CRC fails:
  bit rot, a concurrent writer, a bad disk.  The reader raises
  :class:`JournalCorruption` with the byte offset; replaying past a
  lying length field would desynchronise every later record, so
  nothing after the damage is trusted.

A corrupted ``payload_len`` cannot masquerade as a torn tail: the
length field is covered by the header CRC, which fails first.

The payload CRC reuses the seeded-CRC discipline of
``repro.core.reliable`` (CRC over the sequence number *and* the
bytes), so a record landing at the wrong position in the file cannot
replay intact bytes under the wrong sequence number — the same
argument the wire format makes, applied to the disk.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.i2o.errors import I2OError

REC_SEND = 0x01
REC_ACK = 0x02
REC_META = 0x03

_KINDS = frozenset((REC_SEND, REC_ACK, REC_META))

#: kind u8, seq u64, node u32, tid u32, payload_len u32, payload_crc u32
_FIXED = struct.Struct("<BQIII")
_CRC = struct.Struct("<I")
#: total header size: fixed fields + payload_crc + header_crc
HEADER_SIZE = _FIXED.size + 2 * _CRC.size

#: Journal payloads are whole reliable-stream payloads; anything this
#: large is a caller bug, and bounding it keeps a corrupted length
#: field from asking the reader for gigabytes (defence in depth — the
#: header CRC already rejects it).
MAX_RECORD_PAYLOAD = 16 * 1024 * 1024

_SEED = struct.Struct("<QI")


def seeded_crc(seq: int, payload: bytes) -> int:
    """CRC32 over the sequence number *and* the payload.

    Identical to the reliable endpoint's wire CRC (it imports this
    function), so the integrity argument is the same end to end: RAM,
    wire and disk all refuse to present ``payload`` under any sequence
    number other than ``seq``.
    """
    return zlib.crc32(payload, zlib.crc32(_SEED.pack(seq, 0)))


class JournalError(I2OError):
    """Malformed use of the journal API (not a damaged file)."""


class JournalCorruption(JournalError):
    """A record failed its CRC: the journal is damaged at ``offset``.

    Deliberately *not* raised for a torn tail — dying mid-write is the
    normal crash artefact and recovery truncates it silently.  This
    exception means bytes that claim to be complete do not check out,
    and nothing at or after ``offset`` can be trusted.
    """

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(f"journal corrupt at byte {offset}: {reason}")
        self.offset = offset
        self.reason = reason
        #: records verified before the damage (diagnostics only)
        self.partial: list[Record] = []


@dataclass(frozen=True)
class Record:
    """One decoded journal record."""

    kind: int
    seq: int
    node: int = 0
    tid: int = 0
    payload: bytes = b""


@dataclass
class DecodeResult:
    """Outcome of decoding a journal byte string.

    ``consumed`` is the length of the record-aligned prefix that was
    replayed; ``torn_bytes`` counts trailing bytes discarded as a torn
    tail (zero for a clean journal).
    """

    records: list[Record]
    consumed: int
    torn_bytes: int

    @property
    def truncated(self) -> bool:
        return self.torn_bytes > 0


def encode_record(record: Record) -> bytes:
    """Serialise one record; the inverse of one :func:`decode_journal`
    step."""
    if record.kind not in _KINDS:
        raise JournalError(f"unknown record kind 0x{record.kind:02x}")
    if record.seq < 0 or record.seq > 0xFFFF_FFFF_FFFF_FFFF:
        raise JournalError(f"seq {record.seq} out of u64 range")
    if len(record.payload) > MAX_RECORD_PAYLOAD:
        raise JournalError(
            f"record payload of {len(record.payload)} bytes exceeds "
            f"{MAX_RECORD_PAYLOAD}"
        )
    fixed = _FIXED.pack(
        record.kind, record.seq, record.node, record.tid, len(record.payload)
    ) + _CRC.pack(seeded_crc(record.seq, record.payload))
    return fixed + _CRC.pack(zlib.crc32(fixed)) + record.payload


def decode_journal(data: bytes | bytearray | memoryview) -> DecodeResult:
    """Decode a journal byte string into records.

    Returns every whole, verified record; a torn tail is reported via
    ``torn_bytes`` and never produces a record.  Damaged bytes raise
    :class:`JournalCorruption` (records decoded *before* the damage
    are attached to the exception as ``partial`` for diagnostics, but
    recovery must not act on them without operator intervention).
    """
    view = memoryview(data)
    records: list[Record] = []
    offset = 0
    total = len(view)
    while offset < total:
        remaining = total - offset
        if remaining < HEADER_SIZE:
            break  # torn tail: not even a whole header
        fixed_end = offset + _FIXED.size + _CRC.size
        fixed = bytes(view[offset:fixed_end])
        (header_crc,) = _CRC.unpack_from(view, fixed_end)
        if zlib.crc32(fixed) != header_crc:
            raise _corrupt(offset, "record header CRC mismatch", records)
        kind, seq, node, tid, payload_len = _FIXED.unpack(fixed[:_FIXED.size])
        (payload_crc,) = _CRC.unpack_from(fixed, _FIXED.size)
        if kind not in _KINDS:
            raise _corrupt(
                offset, f"unknown record kind 0x{kind:02x}", records
            )
        if payload_len > MAX_RECORD_PAYLOAD:
            raise _corrupt(
                offset, f"payload length {payload_len} exceeds bound", records
            )
        if remaining < HEADER_SIZE + payload_len:
            break  # torn tail: the payload never finished writing
        payload = bytes(
            view[offset + HEADER_SIZE:offset + HEADER_SIZE + payload_len]
        )
        if seeded_crc(seq, payload) != payload_crc:
            raise _corrupt(offset, "record payload CRC mismatch", records)
        records.append(
            Record(kind=kind, seq=seq, node=node, tid=tid, payload=payload)
        )
        offset += HEADER_SIZE + payload_len
    return DecodeResult(
        records=records, consumed=offset, torn_bytes=total - offset
    )


def _corrupt(
    offset: int, reason: str, partial: list[Record]
) -> JournalCorruption:
    exc = JournalCorruption(offset, reason)
    exc.partial = partial
    return exc
