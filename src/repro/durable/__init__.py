"""Durable streams: journal, replay and snapshot for crash recovery.

PR 1 made node death survivable for *routing*; this package makes it
survivable for *data*.  A :class:`~repro.core.reliable.ReliableEndpoint`
given a :class:`SegmentStore` journals every send before it hits the
wire and replays the unacknowledged tail after a restart, resuming its
sequence space; an :class:`~repro.daq.manager.EventManager` given a
:class:`SnapshotStore` persists its in-flight event table and rejoins
the event builder without re-triggering.  The shape follows the
fault-tolerant transport frameworks cited in PAPERS.md: recovery is a
*local* replay from a *local* log — no global reset, no distributed
consensus — kept honest by CRC discipline shared with the wire format.
"""

from repro.durable.journal import (
    HEADER_SIZE,
    MAX_RECORD_PAYLOAD,
    REC_ACK,
    REC_META,
    REC_SEND,
    DecodeResult,
    JournalCorruption,
    JournalError,
    Record,
    decode_journal,
    encode_record,
    seeded_crc,
)
from repro.durable.replay import PendingSend, ReplayState, replay_records
from repro.durable.segments import SegmentStore, SnapshotStore

__all__ = [
    "HEADER_SIZE",
    "MAX_RECORD_PAYLOAD",
    "REC_ACK",
    "REC_META",
    "REC_SEND",
    "DecodeResult",
    "JournalCorruption",
    "JournalError",
    "PendingSend",
    "Record",
    "ReplayState",
    "SegmentStore",
    "SnapshotStore",
    "decode_journal",
    "encode_record",
    "replay_records",
    "seeded_crc",
]
