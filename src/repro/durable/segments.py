"""On-disk stores: the journal segment file and the CRC'd snapshot.

:class:`SegmentStore` owns one append-only journal file.  Appends are
batched: records accumulate in memory and hit the file (with an
optional ``fsync``) every ``flush_every`` records — the classic
group-commit trade between durability window and write amplification.
``flush_every=1`` with ``fsync=True`` is the strongest setting: a
record is on stable storage before ``append_*`` returns, so the
write-ahead ordering in the reliable endpoint (journal, *then*
transmit) holds against real process death.  Larger batches shrink the
cost but widen the window in which a committed send can die with the
process; the recovery protocol stays correct either way — the message
is then *lost with an explicit failure at the sender*, never silently
half-delivered (see DESIGN.md §10 for the guarantee table).

Compaction keeps the file proportional to the *live* (unacked) set:
when enough records have accumulated and most are dead, the store
rewrites ``META + live SENDs`` to a temporary file and atomically
replaces the segment (``os.replace``), so a crash during compaction
leaves either the old or the new file, both valid.

:class:`SnapshotStore` is the event manager's durable state cell: one
JSON document, length- and CRC-framed, written to a temporary file and
atomically renamed, so a torn snapshot write can never shadow the last
good snapshot.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, BinaryIO

from repro.durable.journal import (
    REC_ACK,
    REC_META,
    REC_SEND,
    JournalCorruption,
    JournalError,
    Record,
    decode_journal,
    encode_record,
)
from repro.durable.replay import PendingSend, ReplayState, replay_records


class SegmentStore:
    """One endpoint's append-only journal segment.

    Opening the store *is* recovery: existing bytes are decoded, a
    torn tail is truncated off the file (appends must land on a
    record-aligned boundary or the next reader would reject them as
    corruption), and the fold of the surviving records is exposed as
    :attr:`recovered` for the endpoint to resume from.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        flush_every: int = 1,
        fsync: bool = False,
        compact_min_records: int = 64,
        compact_live_ratio: float = 0.5,
    ) -> None:
        if flush_every < 1:
            raise JournalError(f"flush_every must be >= 1, got {flush_every}")
        if not 0.0 <= compact_live_ratio <= 1.0:
            raise JournalError(
                f"compact_live_ratio must be in [0, 1], got {compact_live_ratio}"
            )
        self.path = Path(path)
        self.flush_every = flush_every
        self.fsync = fsync
        self.compact_min_records = compact_min_records
        self.compact_live_ratio = compact_live_ratio

        self.records_appended = 0
        self.acks_recorded = 0
        self.compactions = 0
        self.fsyncs = 0
        self.torn_bytes_recovered = 0

        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.recovered = self._recover_file()
        self._live: dict[int, PendingSend] = dict(self.recovered.pending)
        self._hwm = self.recovered.next_seq
        self._identity = self.recovered.identity
        self._records_total = self.recovered.records
        self._buffer: list[bytes] = []
        self._unflushed = 0
        self._file: BinaryIO | None = open(self.path, "ab")

    def _recover_file(self) -> ReplayState:
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return ReplayState()
        result = decode_journal(data)  # raises JournalCorruption on damage
        if result.truncated:
            # Cut the torn tail off on disk so new appends are
            # record-aligned; losing a half-written record is the
            # normal crash artefact, not data loss (it was never
            # acknowledged as durable).
            self.torn_bytes_recovered = result.torn_bytes
            with open(self.path, "r+b") as fh:
                fh.truncate(result.consumed)
        return replay_records(result.records)

    # -- identity -----------------------------------------------------------
    def ensure_identity(self, node: int, tid: int) -> None:
        """Stamp (or verify) the owning endpoint's identity.

        The receiver's duplicate suppression is keyed by the sender's
        ``(node, tid)``; replaying this journal from any other identity
        would re-deliver every unacked message as *new* traffic.  A
        mismatch is therefore a refusal, not a warning.
        """
        if self._identity is None:
            self._identity = (node, tid)
            self._append(
                Record(kind=REC_META, seq=self._hwm, node=node, tid=tid)
            )
        elif self._identity != (node, tid):
            jnode, jtid = self._identity
            raise JournalError(
                f"journal {self.path.name} belongs to endpoint TiD {jtid} on "
                f"node {jnode}; reinstall the endpoint at its recorded "
                f"identity (got TiD {tid} on node {node})"
            )

    @property
    def identity(self) -> tuple[int, int] | None:
        return self._identity

    # -- appends ------------------------------------------------------------
    def append_send(
        self, seq: int, node: int, tid: int, payload: bytes
    ) -> None:
        """Write-ahead record for a message about to be transmitted."""
        self._append(
            Record(kind=REC_SEND, seq=seq, node=node, tid=tid, payload=payload)
        )
        self._live[seq] = PendingSend(
            seq=seq, node=node, tid=tid, payload=payload
        )
        if seq >= self._hwm:
            self._hwm = seq + 1

    def append_ack(self, seq: int) -> None:
        """Retire ``seq`` — acknowledged or permanently failed; either
        way it must not resurrect on replay."""
        self._append(Record(kind=REC_ACK, seq=seq))
        self.acks_recorded += 1
        if self._live.pop(seq, None) is not None:
            self._maybe_compact()

    def _append(self, record: Record) -> None:
        if self._file is None:
            raise JournalError(f"journal {self.path.name} is closed")
        self._buffer.append(encode_record(record))
        self.records_appended += 1
        self._records_total += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered records to the file (group commit point)."""
        if self._file is None or not self._buffer:
            return
        self._file.write(b"".join(self._buffer))
        self._buffer.clear()
        self._unflushed = 0
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())
            self.fsyncs += 1

    # -- compaction ---------------------------------------------------------
    def _maybe_compact(self) -> None:
        if self._records_total < self.compact_min_records:
            return
        if len(self._live) <= self.compact_live_ratio * self._records_total:
            self.compact()

    def compact(self) -> None:
        """Rewrite the segment as ``META + live SENDs``, atomically.

        ``os.replace`` makes the swap a single metadata operation: a
        crash mid-compaction leaves either the old segment (compaction
        simply never happened) or the complete new one.
        """
        if self._file is None:
            raise JournalError(f"journal {self.path.name} is closed")
        self.flush()
        node, tid = self._identity if self._identity is not None else (0, 0)
        tmp = self.path.with_name(self.path.name + ".compact")
        with open(tmp, "wb") as fh:
            fh.write(
                encode_record(
                    Record(kind=REC_META, seq=self._hwm, node=node, tid=tid)
                )
            )
            for seq in sorted(self._live):
                fh.write(encode_record(self._live[seq].as_record()))
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())
                self.fsyncs += 1
        self._file.close()
        os.replace(tmp, self.path)
        self._file = open(self.path, "ab")
        self._records_total = 1 + len(self._live)
        self.compactions += 1

    # -- lifecycle ----------------------------------------------------------
    @property
    def depth(self) -> int:
        """Live (unacknowledged) records — what a restart would replay."""
        return len(self._live)

    @property
    def closed(self) -> bool:
        return self._file is None

    def pending(self) -> dict[int, PendingSend]:
        """The live set, keyed by seq (a copy; callers may mutate)."""
        return dict(self._live)

    def close(self) -> None:
        """Flush and close (clean shutdown)."""
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    def crash(self) -> None:
        """Simulate process death: buffered-but-unflushed records are
        *discarded*, exactly as the OS discards a dead process's user
        buffers.  Tests use this to exercise the batched-flush
        durability window honestly."""
        if self._file is not None:
            self._buffer.clear()
            self._unflushed = 0
            self._file.close()
            self._file = None


#: snapshot framing: magic u32, payload length u32, payload CRC32 u32
_SNAP_MAGIC = 0x534E4150  # "SNAP"
_SNAP_HEADER = struct.Struct("<III")


class SnapshotStore:
    """Atomic, CRC-framed JSON snapshot cell (one document).

    ``save`` never updates in place: it writes a sibling temp file and
    ``os.replace``s it over the target, so the store always holds
    either the previous snapshot or the new one — never a torn mix.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.saves = 0

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, state: dict[str, Any]) -> None:
        payload = json.dumps(state, sort_keys=True).encode("utf-8")
        header = _SNAP_HEADER.pack(
            _SNAP_MAGIC, len(payload), zlib.crc32(payload)
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(header + payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.saves += 1

    def load(self) -> dict[str, Any] | None:
        """The last saved snapshot, or ``None`` if none exists.

        Raises :class:`JournalCorruption` when the file is present but
        damaged — restoring from a half-trusted snapshot could
        silently drop in-flight events, which is exactly the failure
        this layer exists to rule out.
        """
        try:
            data = self.path.read_bytes()
        except FileNotFoundError:
            return None
        if len(data) < _SNAP_HEADER.size:
            raise JournalCorruption(0, "snapshot shorter than its header")
        magic, length, crc = _SNAP_HEADER.unpack_from(data, 0)
        if magic != _SNAP_MAGIC:
            raise JournalCorruption(0, f"bad snapshot magic 0x{magic:08x}")
        payload = data[_SNAP_HEADER.size:]
        if len(payload) != length:
            raise JournalCorruption(
                _SNAP_HEADER.size,
                f"snapshot payload is {len(payload)} bytes, header "
                f"declares {length}",
            )
        if zlib.crc32(payload) != crc:
            raise JournalCorruption(_SNAP_HEADER.size, "snapshot CRC mismatch")
        loaded = json.loads(payload.decode("utf-8"))
        if not isinstance(loaded, dict):
            raise JournalCorruption(
                _SNAP_HEADER.size, "snapshot is not a JSON object"
            )
        return loaded

    def clear(self) -> None:
        self.path.unlink(missing_ok=True)
