"""Replay: fold a journal's records back into endpoint state.

Pure functions — no I/O, no executive.  The segment store reads the
bytes and handles torn tails; this module answers the only question
recovery asks: *given everything the journal remembers, what was
unacknowledged, and where does the sequence space resume?*

The fold is order-sensitive in exactly one way: an ACK retires the
SEND it follows.  An ACK with no live SEND is legal — compaction drops
dead pairs, and the crash window between transmitting and recording an
ack means replay may re-deliver and re-retire a message the peer
already consumed (the receiver's dedup window absorbs it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.durable.journal import (
    REC_ACK,
    REC_META,
    REC_SEND,
    Record,
)


@dataclass(frozen=True)
class PendingSend:
    """One unacknowledged message reconstructed from the journal."""

    seq: int
    node: int
    tid: int
    payload: bytes

    def as_record(self) -> Record:
        return Record(
            kind=REC_SEND,
            seq=self.seq,
            node=self.node,
            tid=self.tid,
            payload=self.payload,
        )


@dataclass
class ReplayState:
    """Everything a restarted endpoint needs to resume.

    ``next_seq`` is past every sequence number the journal has ever
    seen (META high-water mark included), so a restarted endpoint can
    never re-issue a sequence number — the receiver's dedup would
    silently swallow the new message as a duplicate of the old one.
    """

    next_seq: int = 1
    pending: dict[int, PendingSend] = field(default_factory=dict)
    #: endpoint identity stamped by the first META record, if any
    node: int | None = None
    tid: int | None = None
    records: int = 0
    acked: int = 0

    @property
    def identity(self) -> tuple[int, int] | None:
        if self.node is None or self.tid is None:
            return None
        return (self.node, self.tid)


def replay_records(records: list[Record]) -> ReplayState:
    """Fold decoded records into a :class:`ReplayState`."""
    state = ReplayState()
    for record in records:
        state.records += 1
        if record.kind == REC_SEND:
            state.pending[record.seq] = PendingSend(
                seq=record.seq,
                node=record.node,
                tid=record.tid,
                payload=record.payload,
            )
            if record.seq >= state.next_seq:
                state.next_seq = record.seq + 1
        elif record.kind == REC_ACK:
            if state.pending.pop(record.seq, None) is not None:
                state.acked += 1
        elif record.kind == REC_META:
            if record.seq > state.next_seq:
                state.next_seq = record.seq
            if state.node is None:
                state.node = record.node
                state.tid = record.tid
    return state
