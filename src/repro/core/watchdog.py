"""Bounding misbehaving message handlers.

Paper §4: *"We cannot prevent monopolization of the CPU or stalling of
the system caused by a misbehaving message handler with this scheme.
To do so, it is necessary to asynchronously terminate the handler after
a configured time interval has elapsed.  Such a mechanism can be
implemented making use of the I2O core timer facilities."*

The reproduction implements both halves of that sentence:

* **cooperative** (always available): the guard measures the handler's
  wall-clock duration; on overrun the executive quarantines the device
  (state → FAILED, queued frames dropped) so one bad handler cannot
  keep monopolising dispatch.
* **preemptive** (opt-in, CPython only): a monitor timer injects
  :class:`WatchdogTimeout` into the dispatch thread via
  ``PyThreadState_SetAsyncExc``, actually interrupting a spinning
  handler.  Injection is asynchronous and lands at the next bytecode
  boundary — best effort, exactly like asynchronous termination on a
  real executive, and disabled by default.
"""

from __future__ import annotations

import ctypes
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.i2o.errors import I2OError


class WatchdogTimeout(I2OError):
    """Raised (cooperatively or by injection) when a handler overruns."""


class HandlerWatchdog:
    """Guards each handler upcall with a time budget."""

    def __init__(self, limit_ns: int, *, preemptive: bool = False) -> None:
        if limit_ns <= 0:
            raise I2OError(f"watchdog limit must be positive, got {limit_ns}")
        self.limit_ns = limit_ns
        self.preemptive = preemptive
        self.overruns = 0

    @contextmanager
    def guard(self, label: str = "") -> Iterator[None]:
        """Run one handler under the budget.

        Raises :class:`WatchdogTimeout` — after the fact in cooperative
        mode, mid-handler (best effort) in preemptive mode.  The caller
        (the executive) is responsible for quarantining the device.
        """
        timer: threading.Timer | None = None
        fired = threading.Event()
        if self.preemptive:
            victim = threading.get_ident()

            def inject() -> None:
                fired.set()
                # One pending async exception per thread; returns the
                # number of threads affected (0 if the id vanished).
                ctypes.pythonapi.PyThreadState_SetAsyncExc(
                    ctypes.c_ulong(victim), ctypes.py_object(WatchdogTimeout)
                )

            timer = threading.Timer(self.limit_ns / 1e9, inject)
            timer.daemon = True
            timer.start()
        start = time.perf_counter_ns()
        try:
            yield
        except WatchdogTimeout:
            self.overruns += 1
            raise WatchdogTimeout(
                f"handler {label or '?'} terminated after exceeding "
                f"{self.limit_ns} ns"
            ) from None
        finally:
            if timer is not None:
                timer.cancel()
                if fired.is_set():
                    # The injection raced handler completion; clear any
                    # still-pending async exception by overwriting with NULL.
                    ctypes.pythonapi.PyThreadState_SetAsyncExc(
                        ctypes.c_ulong(victim), None
                    )
        elapsed = time.perf_counter_ns() - start
        if elapsed > self.limit_ns:
            self.overruns += 1
            raise WatchdogTimeout(
                f"handler {label or '?'} ran {elapsed} ns, "
                f"budget {self.limit_ns} ns"
            )
