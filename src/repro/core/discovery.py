"""Peer discovery: from device-class names to proxy TiDs.

Paper §4, on what a freshly plugged-in class does: *"It will also
request the availability of other device class instances on remote
IOPs and triggers the creation of proxy TiDs."*

:class:`DiscoveryService` implements that request with nothing but
standard messages: it sends ``EXEC_LCT_NOTIFY`` to each known node's
executive (TiD 0), parses the logical configuration table from the
reply, and creates local proxies for every instance of the wanted
device class.  No name server, no extra protocol — the executives'
mandatory message set *is* the discovery protocol.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.core.device import Listener, decode_params
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import EXEC_LCT_NOTIFY
from repro.i2o.tid import EXECUTIVE_TID, Tid


class DiscoveryError(I2OError):
    """A node did not answer or discovery found nothing."""


class DiscoveryService(Listener):
    """Resolves device-class names to proxies across the cluster.

    ``nodes`` is the set of reachable node ids (the cluster membership
    a configuration system provides); ``pump`` drives the cluster while
    waiting for LCT replies.
    """

    device_class = "discovery"

    def __init__(
        self,
        name: str = "discovery",
        *,
        nodes: list[int] | None = None,
        pump: Callable[[], None] | None = None,
        max_pumps: int = 100_000,
    ) -> None:
        super().__init__(name)
        self.nodes: list[int] = list(nodes or [])
        self.pump = pump
        self.max_pumps = max_pumps
        self._contexts = itertools.count(1)
        self._replies: dict[int, dict[str, str]] = {}
        #: cache: node -> last seen LCT (tid string -> device class)
        self.tables: dict[int, dict[str, str]] = {}

    def on_plugin(self) -> None:
        self.table.bind(EXEC_LCT_NOTIFY, self._on_lct_reply)

    def add_node(self, node: int) -> None:
        if node not in self.nodes:
            self.nodes.append(node)

    # -- the wire protocol ---------------------------------------------------
    def _on_lct_reply(self, frame: Frame) -> None:
        if not frame.is_reply or frame.is_failure:
            if not frame.is_reply:
                self.reply(frame, fail=True)
            return
        self._replies[frame.initiator_context] = decode_params(frame.payload)

    def refresh(self, node: int) -> dict[str, str]:
        """Fetch one node's logical configuration table."""
        exe = self._require_live()
        context = next(self._contexts)
        proxy = exe.create_proxy(node, EXECUTIVE_TID)
        self.send(proxy, function=EXEC_LCT_NOTIFY, initiator_context=context,
                  priority=1)
        for _ in range(self.max_pumps):
            if context in self._replies:
                table = self._replies.pop(context)
                self.tables[node] = table
                return table
            if self.pump is not None:
                self.pump()
            exe.step()
        raise DiscoveryError(f"node {node} did not answer LCT request")

    # -- resolution -----------------------------------------------------------
    def find_all(self, device_class: str, *, refresh: bool = True) -> dict[
        tuple[int, Tid], Tid
    ]:
        """All instances of ``device_class`` cluster-wide.

        Returns ``{(node, remote_tid): local_proxy_tid}``, including
        local instances (whose 'proxy' is the real TiD).
        """
        exe = self._require_live()
        found: dict[tuple[int, Tid], Tid] = {}
        # Local devices first.
        for tid, dev in exe.devices().items():
            if dev.device_class == device_class:
                found[(exe.node, tid)] = tid
        for node in self.nodes:
            if node == exe.node:
                continue
            table = self.refresh(node) if refresh else self.tables.get(node, {})
            for tid_text, cls in table.items():
                if cls == device_class:
                    remote_tid = int(tid_text)
                    found[(node, remote_tid)] = exe.create_proxy(
                        node, remote_tid
                    )
        return found

    def find_one(self, device_class: str) -> Tid:
        """The proxy for exactly one instance; raises on zero or many."""
        found = self.find_all(device_class)
        if not found:
            raise DiscoveryError(f"no instance of {device_class!r} found")
        if len(found) > 1:
            where = sorted(node for node, _ in found)
            raise DiscoveryError(
                f"{len(found)} instances of {device_class!r} found "
                f"on nodes {where}; use find_all"
            )
        return next(iter(found.values()))
