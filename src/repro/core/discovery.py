"""Peer discovery: from device-class names to proxy TiDs.

Paper §4, on what a freshly plugged-in class does: *"It will also
request the availability of other device class instances on remote
IOPs and triggers the creation of proxy TiDs."*

:class:`DiscoveryService` implements that request with nothing but
standard messages: it sends ``EXEC_LCT_NOTIFY`` to each known node's
executive (TiD 0), parses the logical configuration table from the
reply, and creates local proxies for every instance of the wanted
device class.  No name server, no extra protocol — the executives'
mandatory message set *is* the discovery protocol.
"""

from __future__ import annotations

import itertools
import logging
from typing import Callable

from repro.core.device import Listener, decode_params
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import EXEC_LCT_NOTIFY
from repro.i2o.tid import EXECUTIVE_TID, Tid

logger = logging.getLogger(__name__)

#: ``select_replacement`` hook: (dead_node, dead_tid, device_class,
#: candidates) -> (node, tid) or None.  Candidates are the surviving
#: same-class instances known from the cached LCTs, sorted.
ReplacementSelector = Callable[
    [int, Tid, str, list[tuple[int, Tid]]], "tuple[int, Tid] | None"
]


class DiscoveryError(I2OError):
    """A node did not answer or discovery found nothing."""


class DiscoveryService(Listener):
    """Resolves device-class names to proxies across the cluster.

    ``nodes`` is the set of reachable node ids (the cluster membership
    a configuration system provides); ``pump`` drives the cluster while
    waiting for LCT replies.
    """

    device_class = "discovery"

    def __init__(
        self,
        name: str = "discovery",
        *,
        nodes: list[int] | None = None,
        pump: Callable[[], None] | None = None,
        max_pumps: int = 100_000,
    ) -> None:
        super().__init__(name)
        self.nodes: list[int] = list(nodes or [])
        self.pump = pump
        self.max_pumps = max_pumps
        self._contexts = itertools.count(1)
        self._replies: dict[int, dict[str, str]] = {}
        #: cache: node -> last seen LCT (tid string -> device class)
        self.tables: dict[int, dict[str, str]] = {}
        #: nodes declared DEAD and excluded until readmitted
        self.quarantined: set[int] = set()
        #: pluggable replica choice; default picks the lowest (node, tid)
        self.select_replacement: ReplacementSelector = (
            lambda node, tid, cls, candidates:
            candidates[0] if candidates else None
        )
        self.rebinds = 0
        self.parks = 0

    def on_plugin(self) -> None:
        self.table.bind(EXEC_LCT_NOTIFY, self._on_lct_reply)

    def add_node(self, node: int) -> None:
        if node not in self.nodes:
            self.nodes.append(node)

    # -- the wire protocol ---------------------------------------------------
    def _on_lct_reply(self, frame: Frame) -> None:
        if not frame.is_reply or frame.is_failure:
            if not frame.is_reply:
                self.reply(frame, fail=True)
            return
        self._replies[frame.initiator_context] = decode_params(frame.payload)

    def refresh(self, node: int) -> dict[str, str]:
        """Fetch one node's logical configuration table."""
        exe = self._require_live()
        context = next(self._contexts)
        proxy = exe.create_proxy(node, EXECUTIVE_TID)
        self.send(proxy, function=EXEC_LCT_NOTIFY, initiator_context=context,
                  priority=1)
        for _ in range(self.max_pumps):
            if context in self._replies:
                table = self._replies.pop(context)
                self.tables[node] = table
                return table
            if self.pump is not None:
                self.pump()
            exe.step()
        raise DiscoveryError(f"node {node} did not answer LCT request")

    # -- resolution -----------------------------------------------------------
    def find_all(self, device_class: str, *, refresh: bool = True) -> dict[
        tuple[int, Tid], Tid
    ]:
        """All instances of ``device_class`` cluster-wide.

        Returns ``{(node, remote_tid): local_proxy_tid}``, including
        local instances (whose 'proxy' is the real TiD).
        """
        exe = self._require_live()
        found: dict[tuple[int, Tid], Tid] = {}
        # Local devices first.
        for tid, dev in exe.devices().items():
            if dev.device_class == device_class:
                found[(exe.node, tid)] = tid
        for node in self.nodes:
            if node == exe.node or node in self.quarantined:
                continue
            table = self.refresh(node) if refresh else self.tables.get(node, {})
            for tid_text, cls in table.items():
                if cls == device_class:
                    remote_tid = int(tid_text)
                    found[(node, remote_tid)] = exe.create_proxy(
                        node, remote_tid
                    )
        return found

    def find_one(self, device_class: str) -> Tid:
        """The proxy for exactly one instance; raises on zero or many."""
        found = self.find_all(device_class)
        if not found:
            raise DiscoveryError(f"no instance of {device_class!r} found")
        if len(found) > 1:
            where = sorted(node for node, _ in found)
            raise DiscoveryError(
                f"{len(found)} instances of {device_class!r} found "
                f"on nodes {where}; use find_all"
            )
        return next(iter(found.values()))

    # -- failover -------------------------------------------------------------
    def candidates_for(self, device_class: str, *,
                       exclude: int) -> list[tuple[int, Tid]]:
        """Surviving instances of ``device_class`` from the cached LCTs.

        Only the cache is consulted — refreshing would mean messaging a
        cluster that just lost a node, and the dead node obviously
        cannot answer.  Local devices are excluded: a route must lead
        to a remote TiD.
        """
        exe = self._require_live()
        out: list[tuple[int, Tid]] = []
        for node, table in self.tables.items():
            if node == exclude or node == exe.node or node in self.quarantined:
                continue
            for tid_text, cls in table.items():
                if cls == device_class:
                    out.append((node, int(tid_text)))
        return sorted(out)

    def failover(self, node: int, *, policy: str = "rebind") -> dict[str, int]:
        """A peer died: re-bind or park every route leading to it.

        With ``policy="rebind"`` each affected proxy is pointed at a
        surviving replica of the same device class, chosen by the
        ``select_replacement`` hook (routes whose class has no replica
        are parked).  With ``policy="park"`` every route is parked:
        senders receive I2O failure replies — the paper's
        default-handler fault story — instead of silent stalls.
        """
        if policy not in ("rebind", "park"):
            raise DiscoveryError(f"unknown failover policy {policy!r}")
        exe = self._require_live()
        self.quarantined.add(node)
        dead_lct = self.tables.get(node, {})
        summary = {"rebound": 0, "parked": 0}
        for proxy_tid in exe.routes_to(node):
            route = exe.route_for(proxy_tid)
            replacement = None
            if policy == "rebind":
                cls = dead_lct.get(str(route.remote_tid))
                if cls is not None:
                    replacement = self.select_replacement(
                        node, route.remote_tid, cls,
                        self.candidates_for(cls, exclude=node),
                    )
            if replacement is not None:
                exe.rebind_route(
                    proxy_tid, replacement[0], replacement[1],
                    transport=route.transport,
                )
                summary["rebound"] += 1
                self.rebinds += 1
            else:
                exe.park_route(proxy_tid)
                summary["parked"] += 1
                self.parks += 1
        logger.info(
            "node %s: failover for dead node %s: %s", exe.node, node, summary
        )
        return summary

    def readmit(self, node: int) -> int:
        """A dead peer rejoined: lift the quarantine and un-park its
        routes (rebound routes stay rebound — the replicas own the
        state built up meanwhile).  Returns the unparked count."""
        exe = self._require_live()
        self.quarantined.discard(node)
        unparked = 0
        for proxy_tid in exe.routes_to(node, include_parked=True):
            route = exe.route_for(proxy_tid)
            if route is not None and route.parked:
                exe.unpark_route(proxy_tid)
                unparked += 1
        return unparked

    def export_counters(self) -> dict[str, object]:
        return {
            "known_tables": len(self.tables),
            "quarantined": len(self.quarantined),
            "rebinds": self.rebinds,
            "parks": self.parks,
        }
