"""The XDAQ executive core.

Paper §4: *"The executive accepts incoming messages and forwards them
to the device classes ... the loop of control remains in the executive
framework.  There exist multiple dispatch tables for all the device
class instances, but the executive performs the dispatching.
Furthermore the executive has control over all the memory that can be
accessed by the registered modules."*
"""

from repro.core.device import Listener, RETAIN
from repro.core.dispatcher import DispatchTable, Functor
from repro.core.executive import Executive, Route
from repro.core.liveness import HeartbeatService, PeerTable
from repro.core.probes import CostModel, Probes
from repro.core.queues import MessagingInstance
from repro.core.registry import ModuleRegistry, download_module
from repro.core.scheduler import PriorityScheduler
from repro.core.states import DeviceState, PeerState
from repro.core.timer import TimerService
from repro.core.watchdog import HandlerWatchdog, WatchdogTimeout

__all__ = [
    "CostModel",
    "DeviceState",
    "DispatchTable",
    "Executive",
    "Functor",
    "HandlerWatchdog",
    "HeartbeatService",
    "Listener",
    "MessagingInstance",
    "ModuleRegistry",
    "PeerState",
    "PeerTable",
    "PriorityScheduler",
    "Probes",
    "RETAIN",
    "Route",
    "TimerService",
    "WatchdogTimeout",
    "download_module",
]
