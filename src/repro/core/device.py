"""Device classes: the unit of application composition.

Paper §3.3: *"In our view, an application is merely a new, private
'device' class.  In addition to the standard messages it provides code
for all the private messages that are defined for this application
class by the programmer."*

:class:`Listener` is the reproduction's ``i2oListener``: it carries a
local dispatch table pre-bound with the standard **utility** and
**executive** message handlers (so every device is configurable and
controllable from day one, with fault-tolerant defaults), plus helpers
to allocate, send and reply to frames through its executive.
Subclasses bind private messages with :meth:`bind` and override the
``on_*`` lifecycle hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.dispatcher import DispatchTable, Handler
from repro.core.states import DeviceState, check_transition
from repro.i2o.errors import I2OError
from repro.i2o.frame import DEFAULT_PRIORITY, FLAG_FAIL, FLAG_REPLY, Frame
from repro.i2o.function_codes import (
    EXEC_DDM_ENABLE,
    EXEC_DDM_QUIESCE,
    EXEC_DDM_RESET,
    EXEC_INTERRUPT,
    EXEC_TIMER_EXPIRED,
    PRIVATE,
    UTIL_ABORT,
    UTIL_CLAIM,
    UTIL_EVENT_ACKNOWLEDGE,
    UTIL_EVENT_REGISTER,
    UTIL_NOP,
    UTIL_PARAMS_GET,
    UTIL_PARAMS_SET,
)
from repro.i2o.tid import Tid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive
    from repro.dataflow.registry import MessageType
    from repro.dataflow.routing import Edge, TypeRoutes

#: Sentinel a handler returns to take ownership of the frame's block
#: (suppressing the executive's automatic post-dispatch frame release).
RETAIN = object()


def encode_params(params: dict[str, str]) -> bytes:
    """Encode a parameter map for UtilParams{Get,Set} payloads."""
    for key, value in params.items():
        if "=" in key or "\n" in key or "\n" in str(value):
            raise I2OError(f"illegal characters in parameter {key!r}")
    return "\n".join(f"{k}={v}" for k, v in sorted(params.items())).encode("utf-8")


def decode_params(payload: bytes | memoryview) -> dict[str, str]:
    text = bytes(payload).decode("utf-8")
    result: dict[str, str] = {}
    for line in text.splitlines():
        if not line:
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise I2OError(f"malformed parameter line {line!r}")
        result[key] = value
    return result


class Listener:
    """Base class for all device modules (applications, transports, ...).

    The constructor only creates local structure; the device becomes
    live when the executive calls :meth:`plugin` (paper §4: *"a plugin
    method that is not defined by I2O is called by the executive, which
    allows us to register the downloaded object.  At this point the
    newly created class can obtain its TiD and retrieve parameter
    settings from the executive."*).
    """

    #: Class-level device-class name (I2O device class analogue).
    device_class = "private"

    #: Dataflow contract — the message types this class receives and
    #: originates.  Bootstrap reads these to build the static DAG and
    #: derive route tables; an empty contract means the device stays
    #: outside the dataflow layer entirely (hand wiring still works).
    consumes: "tuple[MessageType, ...]" = ()
    emits: "tuple[MessageType, ...]" = ()
    #: Inbound queue share (frames) granted to this device's consumed
    #: types; ``None`` falls back to the spec's ``edge_credits``.
    queue_capacity: int | None = None
    #: Opt out of the runtime thread-affinity guard
    #: (:mod:`repro.analysis.sanitize`).  Devices that run their own
    #: threads and serialise state with explicit locks (peer
    #: transports) set this True.
    affinity_exempt = False

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.table = DispatchTable(owner=self.name)
        self.executive: "Executive | None" = None
        self.tid: Tid | None = None
        self.state = DeviceState.INITIALISED
        self.parameters: dict[str, str] = {}
        self._event_subscribers: list[Tid] = []
        self._claimed_by: Tid | None = None
        self._type_routes: dict[str, "TypeRoutes"] = {}
        self._bind_standard()

    # -- standard message sets ---------------------------------------------
    def _bind_standard(self) -> None:
        self.table.bind(UTIL_NOP, self._on_nop)
        self.table.bind(UTIL_ABORT, self._on_abort)
        self.table.bind(UTIL_PARAMS_GET, self._on_params_get)
        self.table.bind(UTIL_PARAMS_SET, self._on_params_set)
        self.table.bind(UTIL_CLAIM, self._on_claim)
        self.table.bind(UTIL_EVENT_REGISTER, self._on_event_register)
        self.table.bind(EXEC_DDM_ENABLE, self._on_ddm_enable)
        self.table.bind(EXEC_DDM_QUIESCE, self._on_ddm_quiesce)
        self.table.bind(EXEC_DDM_RESET, self._on_ddm_reset)
        self.table.bind(EXEC_TIMER_EXPIRED, self._on_timer_frame)
        self.table.bind(EXEC_INTERRUPT, self._on_interrupt_frame)
        # The fault-tolerant default: unknown messages get a failure
        # reply instead of crashing the device (paper §3.2).
        self.table.bind_default(self._on_unhandled)

    # -- lifecycle ------------------------------------------------------------
    def plugin(self, executive: "Executive", tid: Tid) -> None:
        """Called by the executive at registration time."""
        self.executive = executive
        self.tid = tid
        self.on_plugin()

    def unplug(self) -> None:
        self.on_unplug()
        self.executive = None
        self.tid = None

    def set_state(self, target: DeviceState) -> None:
        self.state = check_transition(self.state, target)

    # Subclass hooks --------------------------------------------------------
    def on_plugin(self) -> None:
        """Override: obtain parameters, create proxies, bind messages."""

    def on_unplug(self) -> None:
        """Override: release resources before removal."""

    def on_enable(self) -> None:
        """Override: transition into active data taking."""

    def on_quiesce(self) -> None:
        """Override: drain and pause."""

    def on_reset(self) -> None:
        """Override: return to post-plugin state."""

    def on_timer(self, context: int, frame: Frame) -> None:
        """Override: a timer registered with ``start_timer`` expired."""

    def on_interrupt(self, irq: int, frame: Frame) -> None:
        """Override: an interrupt this device registered for fired
        (paper §3.2: interrupts arrive as messages)."""

    # -- messaging helpers ----------------------------------------------------
    def _require_live(self) -> "Executive":
        if self.executive is None or self.tid is None:
            raise I2OError(f"device {self.name!r} is not plugged in")
        return self.executive

    def alloc_frame(
        self,
        payload_size: int,
        *,
        target: Tid,
        xfunction: int = 0,
        function: int = PRIVATE,
        priority: int = DEFAULT_PRIORITY,
        flags: int = 0,
    ) -> Frame:
        """Allocate a pool-backed frame addressed from this device."""
        exe = self._require_live()
        return exe.frame_alloc(
            payload_size,
            target=target,
            initiator=self.tid,
            function=function,
            xfunction=xfunction,
            priority=priority,
            flags=flags,
        )

    def send(
        self,
        target: Tid,
        payload: bytes | bytearray | memoryview = b"",
        *,
        xfunction: int = 0,
        function: int = PRIVATE,
        priority: int = DEFAULT_PRIORITY,
        transaction_context: int = 0,
        initiator_context: int = 0,
        organization: int = 0,
    ) -> Frame:
        """frameSend: build a pool frame carrying ``payload`` and post it."""
        exe = self._require_live()
        frame = exe.frame_alloc(
            len(payload),
            target=target,
            initiator=self.tid,
            function=function,
            xfunction=xfunction,
            priority=priority,
            organization=organization,
        )
        if len(payload):
            frame.payload[:] = payload
        frame.transaction_context = transaction_context
        frame.initiator_context = initiator_context
        exe.frame_send(frame)
        return frame

    def send_into(
        self,
        target: Tid,
        payload_size: int,
        writer: Callable[[memoryview], None],
        *,
        xfunction: int = 0,
        function: int = PRIVATE,
        priority: int = DEFAULT_PRIORITY,
        transaction_context: int = 0,
        initiator_context: int = 0,
        organization: int = 0,
    ) -> Frame:
        """frameSend, zero-copy form: ``writer`` builds the payload
        directly in the loaned frame instead of handing over assembled
        bytes.  ``writer`` raising frees the frame; nothing is posted.
        """
        exe = self._require_live()
        frame = exe.frame_alloc(
            payload_size,
            target=target,
            initiator=self.tid,
            function=function,
            xfunction=xfunction,
            priority=priority,
            organization=organization,
        )
        try:
            if payload_size:
                writer(frame.payload)
            frame.transaction_context = transaction_context
            frame.initiator_context = initiator_context
        except BaseException:
            exe.frame_free(frame)
            raise
        exe.frame_send(frame)
        return frame

    # -- typed dataflow API ---------------------------------------------------
    def connect_route(
        self,
        mtype: "MessageType",
        targets: dict[Any, Tid],
        *,
        edges: "dict[Any, Edge] | None" = None,
        replace: bool = False,
    ) -> "TypeRoutes":
        """Install the route table for one emitted message type.

        ``targets`` maps consumer ``dataflow_key`` -> TiD and is held
        by reference — callers may share one live dict between types so
        a supervision drop updates all of them.  Bootstrap calls this
        from the declarations; tests and legacy paths may hand-wire the
        same structure.
        """
        from repro.dataflow.routing import TypeRoutes

        if mtype.name in self._type_routes and not replace:
            raise I2OError(
                f"device {self.name!r} already has routes for "
                f"message type {mtype.name!r}"
            )
        routes = TypeRoutes(mtype, targets, edges)
        self._type_routes[mtype.name] = routes
        return routes

    def routes_for(self, mtype: "MessageType | str") -> "TypeRoutes | None":
        name = mtype if isinstance(mtype, str) else mtype.name
        return self._type_routes.get(name)

    def dataflow_targets(self, mtype: "MessageType | str") -> dict[Any, Tid]:
        """The live key -> TiD mapping for one emitted type (empty when
        no routes are installed)."""
        routes = self.routes_for(mtype)
        return routes.targets if routes is not None else {}

    def drop_route_target(
        self,
        key: Any,
        *,
        types: "tuple[MessageType | str, ...] | None" = None,
    ) -> int:
        """Supervision hook: the consumer keyed ``key`` died — remove
        it from the installed route tables (reclaiming its credits)
        and return how many tables dropped it.  ``types`` restricts
        the drop to the named message types (keys are only unique per
        type: ru 0 and bu 0 are different consumers)."""
        exe = self.executive
        ledger = exe.dataflow if exe is not None else None
        names = None if types is None else {
            t if isinstance(t, str) else t.name for t in types
        }
        dropped = 0
        for name, routes in self._type_routes.items():
            if names is not None and name not in names:
                continue
            if routes.drop(key, ledger):
                dropped += 1
        return dropped

    def on_dataflow_connected(self) -> None:
        """Override: bootstrap finished installing this device's route
        tables (all ``connect_route`` calls done, graph analysed)."""

    def emit(
        self,
        mtype: "MessageType",
        payload: bytes | bytearray | memoryview = b"",
        *,
        key: Any | None = None,
        transaction_context: int = 0,
        initiator_context: int = 0,
    ) -> int:
        """Typed frameSend: post ``payload`` along the declared route.

        ``mode="one"`` needs no key (there is a single consumer);
        ``mode="keyed"`` selects one consumer by ``key``;
        ``mode="fanout"`` posts one frame per installed target.  When
        bootstrap wired backpressure, a saturated edge parks the
        payload in the node's outbox or sheds it, per the type's
        ``on_saturation`` policy.  Returns the number of frames posted
        *now* (parked/shed emissions are not counted).
        """
        routes = self._routes_required(mtype)
        if mtype.mode == "fanout":
            keys = list(routes.targets)
        else:
            keys = [self._resolve_key(routes, key)]
        sent = 0
        for k in keys:
            if self._emit_to(routes, k, payload,
                             transaction_context, initiator_context):
                sent += 1
        return sent

    def emit_into(
        self,
        mtype: "MessageType",
        payload_size: int,
        writer: Callable[[memoryview], None],
        *,
        key: Any | None = None,
        transaction_context: int = 0,
        initiator_context: int = 0,
    ) -> int:
        """Typed frameSend, zero-copy form: ``writer`` builds each
        payload directly in the loaned frame (once per target on
        fanout; also once into a scratch buffer if the emission must
        be parked or shed, so the writer must be repeatable)."""
        routes = self._routes_required(mtype)
        if mtype.mode == "fanout":
            keys = list(routes.targets)
        else:
            keys = [self._resolve_key(routes, key)]
        exe = self._require_live()
        ledger = exe.dataflow
        sent = 0
        for k in keys:
            edge = routes.edges.get(k) if routes.edges is not None else None
            if edge is not None and ledger is not None \
                    and not ledger.try_acquire(edge):
                scratch = bytearray(payload_size)
                if payload_size:
                    writer(memoryview(scratch))
                self._saturated(exe, routes, k, edge, bytes(scratch),
                                transaction_context, initiator_context)
                continue
            self.send_into(
                routes.targets[k], payload_size, writer,
                xfunction=mtype.xfunction, function=mtype.function,
                priority=mtype.priority, organization=mtype.organization,
                transaction_context=transaction_context,
                initiator_context=initiator_context,
            )
            sent += 1
        return sent

    def _routes_required(self, mtype: "MessageType") -> "TypeRoutes":
        routes = self._type_routes.get(mtype.name)
        if routes is None:
            raise I2OError(
                f"device {self.name!r} has no route for message type "
                f"{mtype.name!r}; declare it in 'emits' and bootstrap "
                f"with a consumer, or connect_route() by hand"
            )
        return routes

    def _resolve_key(self, routes: "TypeRoutes", key: Any) -> Any:
        if key is not None:
            if key not in routes.targets:
                raise I2OError(
                    f"device {self.name!r}: no consumer keyed {key!r} "
                    f"for message type {routes.mtype.name!r} "
                    f"(known: {sorted(map(repr, routes.targets))})"
                )
            return key
        if len(routes.targets) != 1:
            raise I2OError(
                f"device {self.name!r}: message type "
                f"{routes.mtype.name!r} has {len(routes.targets)} "
                f"targets; pass key=..."
            )
        return next(iter(routes.targets))

    def _emit_to(
        self,
        routes: "TypeRoutes",
        key: Any,
        payload: bytes | bytearray | memoryview,
        transaction_context: int,
        initiator_context: int,
    ) -> bool:
        exe = self._require_live()
        mtype = routes.mtype
        edge = routes.edges.get(key) if routes.edges is not None else None
        if edge is not None:
            ledger = exe.dataflow
            if ledger is not None and not ledger.try_acquire(edge):
                return self._saturated(
                    exe, routes, key, edge, bytes(payload),
                    transaction_context, initiator_context,
                )
        self.send(
            routes.targets[key], payload,
            xfunction=mtype.xfunction, function=mtype.function,
            priority=mtype.priority, organization=mtype.organization,
            transaction_context=transaction_context,
            initiator_context=initiator_context,
        )
        return True

    def _saturated(
        self,
        exe: "Executive",
        routes: "TypeRoutes",
        key: Any,
        edge: "Edge",
        payload: bytes,
        transaction_context: int,
        initiator_context: int,
    ) -> bool:
        """The edge is out of credits: park or shed per policy."""
        from repro.flightrec.records import (
            EV_DATAFLOW_PARK,
            EV_DATAFLOW_SHED,
            pack3,
        )

        mtype = routes.mtype
        outbox = exe.dataflow_outbox
        recorder = exe.flightrec
        if (
            mtype.on_saturation == "park"
            and outbox is not None
            and outbox.park(self, mtype, key, payload,
                            transaction_context, initiator_context)
        ):
            if recorder is not None:
                recorder.record(
                    EV_DATAFLOW_PARK,
                    pack3(edge.consumer_node, edge.consumer_tid,
                          mtype.xfunction),
                    outbox.depth,
                )
            return False
        if exe.dataflow is not None:
            exe.dataflow.note_shed(exe.node)
        if recorder is not None:
            recorder.record(
                EV_DATAFLOW_SHED,
                pack3(edge.consumer_node, edge.consumer_tid,
                      mtype.xfunction),
                outbox.depth if outbox is not None else 0,
            )
        return False

    def reply(
        self,
        request: Frame,
        payload: bytes | bytearray | memoryview = b"",
        *,
        fail: bool = False,
    ) -> Frame:
        """frameReply: answer ``request``, echoing its contexts."""
        exe = self._require_live()
        frame = exe.frame_alloc(
            len(payload),
            target=request.initiator,
            initiator=self.tid,
            function=request.function,
            xfunction=request.xfunction,
            priority=request.priority,
            flags=FLAG_REPLY | (FLAG_FAIL if fail else 0),
            organization=request.organization,
        )
        if len(payload):
            frame.payload[:] = payload
        frame.initiator_context = request.initiator_context
        frame.transaction_context = request.transaction_context
        exe.frame_send(frame)
        return frame

    def reply_into(
        self,
        request: Frame,
        payload_size: int,
        writer: Callable[[memoryview], None],
        *,
        fail: bool = False,
    ) -> Frame:
        """frameReply, zero-copy form: like :meth:`send_into` but
        echoing ``request``'s addressing and contexts."""
        exe = self._require_live()
        frame = exe.frame_alloc(
            payload_size,
            target=request.initiator,
            initiator=self.tid,
            function=request.function,
            xfunction=request.xfunction,
            priority=request.priority,
            flags=FLAG_REPLY | (FLAG_FAIL if fail else 0),
            organization=request.organization,
        )
        try:
            if payload_size:
                writer(frame.payload)
            frame.initiator_context = request.initiator_context
            frame.transaction_context = request.transaction_context
        except BaseException:
            exe.frame_free(frame)
            raise
        exe.frame_send(frame)
        return frame

    def bind(self, xfunction: int, handler: Handler) -> None:
        """Bind a private message of this application class."""
        self.table.bind(PRIVATE, handler, xfunction=xfunction)

    def start_timer(
        self, delay_ns: int, context: int = 0, period_ns: int | None = None
    ) -> int:
        """Arm a timer; expiry arrives as an EXEC_TIMER_EXPIRED frame
        routed through the ordinary queues (paper §3.2: even timer
        expirations trigger messages).  A ``period_ns`` keeps the timer
        re-arming itself until cancelled."""
        exe = self._require_live()
        return exe.timers.start(
            owner=self.tid, delay_ns=delay_ns, context=context,
            period_ns=period_ns,
        )

    def cancel_timer(self, timer_id: int) -> bool:
        exe = self._require_live()
        return exe.timers.cancel(timer_id)

    def notify_event(self, payload: bytes = b"") -> int:
        """Send UtilEventAcknowledge-style notifications to all TiDs
        that registered with UtilEventRegister; returns count."""
        for tid in self._event_subscribers:
            self.send(tid, payload, function=UTIL_EVENT_ACKNOWLEDGE)
        return len(self._event_subscribers)

    # -- standard handlers -----------------------------------------------------
    def _on_nop(self, frame: Frame) -> None:
        if not frame.is_reply:
            self.reply(frame)

    def _on_abort(self, frame: Frame) -> None:
        self.on_reset()
        if not frame.is_reply:
            self.reply(frame)

    def export_counters(self) -> dict[str, object]:
        """Override to publish live counters through UtilParamsGet —
        the uniform observation scheme of paper §2 (system management)."""
        return {}

    def _on_params_get(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.parameters.update(
            {key: str(value) for key, value in self.export_counters().items()}
        )
        if frame.payload_size:
            keys = decode_params(frame.payload).keys()
            subset = {k: self.parameters.get(k, "") for k in keys}
        else:
            subset = dict(self.parameters)
        self.reply(frame, encode_params(subset))

    def _on_params_set(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        try:
            updates = decode_params(frame.payload)
            self.on_parameters(updates)
            self.parameters.update(updates)
        except I2OError:
            self.reply(frame, fail=True)
        else:
            self.reply(frame)

    def on_parameters(self, updates: dict[str, str]) -> None:
        """Override to validate/apply parameter updates (raise
        :class:`I2OError` to refuse them)."""

    def _on_claim(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        if self._claimed_by is not None and self._claimed_by != frame.initiator:
            self.reply(frame, fail=True)
        else:
            self._claimed_by = frame.initiator
            self.reply(frame)

    def _on_event_register(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        if frame.initiator not in self._event_subscribers:
            self._event_subscribers.append(frame.initiator)
        self.reply(frame)

    def _on_ddm_enable(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.set_state(DeviceState.ENABLED)
        self.on_enable()
        self.reply(frame)

    def _on_ddm_quiesce(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.set_state(DeviceState.QUIESCED)
        self.on_quiesce()
        self.reply(frame)

    def _on_ddm_reset(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.state = DeviceState.INITIALISED
        self.on_reset()
        self.reply(frame)

    def _on_timer_frame(self, frame: Frame) -> None:
        self.on_timer(frame.transaction_context, frame)

    def _on_interrupt_frame(self, frame: Frame) -> None:
        self.on_interrupt(frame.transaction_context, frame)

    def _on_unhandled(self, frame: Frame) -> None:
        """Default procedure for messages with no supplied code."""
        if not frame.is_reply:
            self.reply(frame, fail=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} tid={self.tid}>"


class FunctionalListener(Listener):
    """A listener assembled from plain callables, for quick tests and
    scripts: ``FunctionalListener(handlers={0x01: fn})``."""

    def __init__(
        self,
        name: str = "",
        handlers: dict[int, Callable[[Frame], Any]] | None = None,
    ) -> None:
        super().__init__(name)
        for xfunc, handler in (handlers or {}).items():
            self.bind(xfunc, handler)
