"""Device classes: the unit of application composition.

Paper §3.3: *"In our view, an application is merely a new, private
'device' class.  In addition to the standard messages it provides code
for all the private messages that are defined for this application
class by the programmer."*

:class:`Listener` is the reproduction's ``i2oListener``: it carries a
local dispatch table pre-bound with the standard **utility** and
**executive** message handlers (so every device is configurable and
controllable from day one, with fault-tolerant defaults), plus helpers
to allocate, send and reply to frames through its executive.
Subclasses bind private messages with :meth:`bind` and override the
``on_*`` lifecycle hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core.dispatcher import DispatchTable, Handler
from repro.core.states import DeviceState, check_transition
from repro.i2o.errors import I2OError
from repro.i2o.frame import DEFAULT_PRIORITY, FLAG_FAIL, FLAG_REPLY, Frame
from repro.i2o.function_codes import (
    EXEC_DDM_ENABLE,
    EXEC_DDM_QUIESCE,
    EXEC_DDM_RESET,
    EXEC_INTERRUPT,
    EXEC_TIMER_EXPIRED,
    PRIVATE,
    UTIL_ABORT,
    UTIL_CLAIM,
    UTIL_EVENT_ACKNOWLEDGE,
    UTIL_EVENT_REGISTER,
    UTIL_NOP,
    UTIL_PARAMS_GET,
    UTIL_PARAMS_SET,
)
from repro.i2o.tid import Tid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive

#: Sentinel a handler returns to take ownership of the frame's block
#: (suppressing the executive's automatic post-dispatch frame release).
RETAIN = object()


def encode_params(params: dict[str, str]) -> bytes:
    """Encode a parameter map for UtilParams{Get,Set} payloads."""
    for key, value in params.items():
        if "=" in key or "\n" in key or "\n" in str(value):
            raise I2OError(f"illegal characters in parameter {key!r}")
    return "\n".join(f"{k}={v}" for k, v in sorted(params.items())).encode("utf-8")


def decode_params(payload: bytes | memoryview) -> dict[str, str]:
    text = bytes(payload).decode("utf-8")
    result: dict[str, str] = {}
    for line in text.splitlines():
        if not line:
            continue
        key, sep, value = line.partition("=")
        if not sep:
            raise I2OError(f"malformed parameter line {line!r}")
        result[key] = value
    return result


class Listener:
    """Base class for all device modules (applications, transports, ...).

    The constructor only creates local structure; the device becomes
    live when the executive calls :meth:`plugin` (paper §4: *"a plugin
    method that is not defined by I2O is called by the executive, which
    allows us to register the downloaded object.  At this point the
    newly created class can obtain its TiD and retrieve parameter
    settings from the executive."*).
    """

    #: Class-level device-class name (I2O device class analogue).
    device_class = "private"

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.table = DispatchTable(owner=self.name)
        self.executive: "Executive | None" = None
        self.tid: Tid | None = None
        self.state = DeviceState.INITIALISED
        self.parameters: dict[str, str] = {}
        self._event_subscribers: list[Tid] = []
        self._claimed_by: Tid | None = None
        self._bind_standard()

    # -- standard message sets ---------------------------------------------
    def _bind_standard(self) -> None:
        self.table.bind(UTIL_NOP, self._on_nop)
        self.table.bind(UTIL_ABORT, self._on_abort)
        self.table.bind(UTIL_PARAMS_GET, self._on_params_get)
        self.table.bind(UTIL_PARAMS_SET, self._on_params_set)
        self.table.bind(UTIL_CLAIM, self._on_claim)
        self.table.bind(UTIL_EVENT_REGISTER, self._on_event_register)
        self.table.bind(EXEC_DDM_ENABLE, self._on_ddm_enable)
        self.table.bind(EXEC_DDM_QUIESCE, self._on_ddm_quiesce)
        self.table.bind(EXEC_DDM_RESET, self._on_ddm_reset)
        self.table.bind(EXEC_TIMER_EXPIRED, self._on_timer_frame)
        self.table.bind(EXEC_INTERRUPT, self._on_interrupt_frame)
        # The fault-tolerant default: unknown messages get a failure
        # reply instead of crashing the device (paper §3.2).
        self.table.bind_default(self._on_unhandled)

    # -- lifecycle ------------------------------------------------------------
    def plugin(self, executive: "Executive", tid: Tid) -> None:
        """Called by the executive at registration time."""
        self.executive = executive
        self.tid = tid
        self.on_plugin()

    def unplug(self) -> None:
        self.on_unplug()
        self.executive = None
        self.tid = None

    def set_state(self, target: DeviceState) -> None:
        self.state = check_transition(self.state, target)

    # Subclass hooks --------------------------------------------------------
    def on_plugin(self) -> None:
        """Override: obtain parameters, create proxies, bind messages."""

    def on_unplug(self) -> None:
        """Override: release resources before removal."""

    def on_enable(self) -> None:
        """Override: transition into active data taking."""

    def on_quiesce(self) -> None:
        """Override: drain and pause."""

    def on_reset(self) -> None:
        """Override: return to post-plugin state."""

    def on_timer(self, context: int, frame: Frame) -> None:
        """Override: a timer registered with ``start_timer`` expired."""

    def on_interrupt(self, irq: int, frame: Frame) -> None:
        """Override: an interrupt this device registered for fired
        (paper §3.2: interrupts arrive as messages)."""

    # -- messaging helpers ----------------------------------------------------
    def _require_live(self) -> "Executive":
        if self.executive is None or self.tid is None:
            raise I2OError(f"device {self.name!r} is not plugged in")
        return self.executive

    def alloc_frame(
        self,
        payload_size: int,
        *,
        target: Tid,
        xfunction: int = 0,
        function: int = PRIVATE,
        priority: int = DEFAULT_PRIORITY,
        flags: int = 0,
    ) -> Frame:
        """Allocate a pool-backed frame addressed from this device."""
        exe = self._require_live()
        return exe.frame_alloc(
            payload_size,
            target=target,
            initiator=self.tid,
            function=function,
            xfunction=xfunction,
            priority=priority,
            flags=flags,
        )

    def send(
        self,
        target: Tid,
        payload: bytes | bytearray | memoryview = b"",
        *,
        xfunction: int = 0,
        function: int = PRIVATE,
        priority: int = DEFAULT_PRIORITY,
        transaction_context: int = 0,
        initiator_context: int = 0,
        organization: int = 0,
    ) -> Frame:
        """frameSend: build a pool frame carrying ``payload`` and post it."""
        exe = self._require_live()
        frame = exe.frame_alloc(
            len(payload),
            target=target,
            initiator=self.tid,
            function=function,
            xfunction=xfunction,
            priority=priority,
            organization=organization,
        )
        if len(payload):
            frame.payload[:] = payload
        frame.transaction_context = transaction_context
        frame.initiator_context = initiator_context
        exe.frame_send(frame)
        return frame

    def send_into(
        self,
        target: Tid,
        payload_size: int,
        writer: Callable[[memoryview], None],
        *,
        xfunction: int = 0,
        function: int = PRIVATE,
        priority: int = DEFAULT_PRIORITY,
        transaction_context: int = 0,
        initiator_context: int = 0,
        organization: int = 0,
    ) -> Frame:
        """frameSend, zero-copy form: ``writer`` builds the payload
        directly in the loaned frame instead of handing over assembled
        bytes.  ``writer`` raising frees the frame; nothing is posted.
        """
        exe = self._require_live()
        frame = exe.frame_alloc(
            payload_size,
            target=target,
            initiator=self.tid,
            function=function,
            xfunction=xfunction,
            priority=priority,
            organization=organization,
        )
        try:
            if payload_size:
                writer(frame.payload)
            frame.transaction_context = transaction_context
            frame.initiator_context = initiator_context
        except BaseException:
            exe.frame_free(frame)
            raise
        exe.frame_send(frame)
        return frame

    def reply(
        self,
        request: Frame,
        payload: bytes | bytearray | memoryview = b"",
        *,
        fail: bool = False,
    ) -> Frame:
        """frameReply: answer ``request``, echoing its contexts."""
        exe = self._require_live()
        frame = exe.frame_alloc(
            len(payload),
            target=request.initiator,
            initiator=self.tid,
            function=request.function,
            xfunction=request.xfunction,
            priority=request.priority,
            flags=FLAG_REPLY | (FLAG_FAIL if fail else 0),
            organization=request.organization,
        )
        if len(payload):
            frame.payload[:] = payload
        frame.initiator_context = request.initiator_context
        frame.transaction_context = request.transaction_context
        exe.frame_send(frame)
        return frame

    def reply_into(
        self,
        request: Frame,
        payload_size: int,
        writer: Callable[[memoryview], None],
        *,
        fail: bool = False,
    ) -> Frame:
        """frameReply, zero-copy form: like :meth:`send_into` but
        echoing ``request``'s addressing and contexts."""
        exe = self._require_live()
        frame = exe.frame_alloc(
            payload_size,
            target=request.initiator,
            initiator=self.tid,
            function=request.function,
            xfunction=request.xfunction,
            priority=request.priority,
            flags=FLAG_REPLY | (FLAG_FAIL if fail else 0),
            organization=request.organization,
        )
        try:
            if payload_size:
                writer(frame.payload)
            frame.initiator_context = request.initiator_context
            frame.transaction_context = request.transaction_context
        except BaseException:
            exe.frame_free(frame)
            raise
        exe.frame_send(frame)
        return frame

    def bind(self, xfunction: int, handler: Handler) -> None:
        """Bind a private message of this application class."""
        self.table.bind(PRIVATE, handler, xfunction=xfunction)

    def start_timer(
        self, delay_ns: int, context: int = 0, period_ns: int | None = None
    ) -> int:
        """Arm a timer; expiry arrives as an EXEC_TIMER_EXPIRED frame
        routed through the ordinary queues (paper §3.2: even timer
        expirations trigger messages).  A ``period_ns`` keeps the timer
        re-arming itself until cancelled."""
        exe = self._require_live()
        return exe.timers.start(
            owner=self.tid, delay_ns=delay_ns, context=context,
            period_ns=period_ns,
        )

    def cancel_timer(self, timer_id: int) -> bool:
        exe = self._require_live()
        return exe.timers.cancel(timer_id)

    def notify_event(self, payload: bytes = b"") -> int:
        """Send UtilEventAcknowledge-style notifications to all TiDs
        that registered with UtilEventRegister; returns count."""
        for tid in self._event_subscribers:
            self.send(tid, payload, function=UTIL_EVENT_ACKNOWLEDGE)
        return len(self._event_subscribers)

    # -- standard handlers -----------------------------------------------------
    def _on_nop(self, frame: Frame) -> None:
        if not frame.is_reply:
            self.reply(frame)

    def _on_abort(self, frame: Frame) -> None:
        self.on_reset()
        if not frame.is_reply:
            self.reply(frame)

    def export_counters(self) -> dict[str, object]:
        """Override to publish live counters through UtilParamsGet —
        the uniform observation scheme of paper §2 (system management)."""
        return {}

    def _on_params_get(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.parameters.update(
            {key: str(value) for key, value in self.export_counters().items()}
        )
        if frame.payload_size:
            keys = decode_params(frame.payload).keys()
            subset = {k: self.parameters.get(k, "") for k in keys}
        else:
            subset = dict(self.parameters)
        self.reply(frame, encode_params(subset))

    def _on_params_set(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        try:
            updates = decode_params(frame.payload)
            self.on_parameters(updates)
            self.parameters.update(updates)
        except I2OError:
            self.reply(frame, fail=True)
        else:
            self.reply(frame)

    def on_parameters(self, updates: dict[str, str]) -> None:
        """Override to validate/apply parameter updates (raise
        :class:`I2OError` to refuse them)."""

    def _on_claim(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        if self._claimed_by is not None and self._claimed_by != frame.initiator:
            self.reply(frame, fail=True)
        else:
            self._claimed_by = frame.initiator
            self.reply(frame)

    def _on_event_register(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        if frame.initiator not in self._event_subscribers:
            self._event_subscribers.append(frame.initiator)
        self.reply(frame)

    def _on_ddm_enable(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.set_state(DeviceState.ENABLED)
        self.on_enable()
        self.reply(frame)

    def _on_ddm_quiesce(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.set_state(DeviceState.QUIESCED)
        self.on_quiesce()
        self.reply(frame)

    def _on_ddm_reset(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.state = DeviceState.INITIALISED
        self.on_reset()
        self.reply(frame)

    def _on_timer_frame(self, frame: Frame) -> None:
        self.on_timer(frame.transaction_context, frame)

    def _on_interrupt_frame(self, frame: Frame) -> None:
        self.on_interrupt(frame.transaction_context, frame)

    def _on_unhandled(self, frame: Frame) -> None:
        """Default procedure for messages with no supplied code."""
        if not frame.is_reply:
            self.reply(frame, fail=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r} tid={self.tid}>"


class FunctionalListener(Listener):
    """A listener assembled from plain callables, for quick tests and
    scripts: ``FunctionalListener(handlers={0x01: fn})``."""

    def __init__(
        self,
        name: str = "",
        handlers: dict[int, Callable[[Frame], Any]] | None = None,
    ) -> None:
        super().__init__(name)
        for xfunc, handler in (handlers or {}).items():
            self.bind(xfunc, handler)
