"""Distributed frame tracing over the I2O context fields.

The I2O frame header carries two 64-bit fields that the architecture
already promises to preserve end-to-end: ``transaction_context``
(copied into replies, broadcast clones and dead-letter failures) and
``initiator_context`` (echoed untouched by the responder).  The tracer
exploits that: a trace id rides ``transaction_context`` across every
hop — peer transports serialise the full header, the reliable endpoint
tunnels whole frames, and the DAQ event builder leaves the field at
zero — so *no protocol gains a private verb* to become traceable.

Trace ids are tagged in the top 12 bits (:data:`TRACE_TAG`) so they
can never be confused with application or timer contexts, which are
small integers.  Layout::

    63          52 51      40 39                         0
    +-------------+----------+---------------------------+
    |  0xACE tag  |  node id |       local sequence      |
    +-------------+----------+---------------------------+

Each executive that has a :class:`FrameTracer` installed records one
:class:`Span` per dispatched frame belonging to a trace: node, target
TiD, function codes, enqueue-to-dispatch queue wait and dispatch
duration — the per-hop breakdown of paper §5's whitebox probes, but
stitched *across* nodes by the collector.  Spans live in a bounded
ring (old spans fall off; ``dropped`` counts them), so tracing can
stay on in production without growing memory.

When no tracer is installed the executive pays a single ``is not
None`` test per dispatch — the off-mode no-op discipline ``Probes``
already established.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.i2o.frame import Frame

#: Discriminator in the top 12 bits of a trace id.
TRACE_TAG = 0xACE
_TAG_SHIFT = 52
_NODE_SHIFT = 40
_SEQ_MASK = (1 << _NODE_SHIFT) - 1


def make_trace_id(node: int, seq: int) -> int:
    """Build a tagged 64-bit trace id rooted at ``node``."""
    return (
        (TRACE_TAG << _TAG_SHIFT)
        | ((node & 0xFFF) << _NODE_SHIFT)
        | (seq & _SEQ_MASK)
    )


def is_trace_context(value: int) -> bool:
    """True when a ``transaction_context`` value carries a trace id."""
    return (value >> _TAG_SHIFT) == TRACE_TAG


def trace_root_node(trace_id: int) -> int:
    """The node that rooted a trace (allocated its id)."""
    return (trace_id >> _NODE_SHIFT) & 0xFFF


@dataclass(frozen=True, slots=True)
class Span:
    """One dispatch hop of a traced operation."""

    trace_id: int
    span_id: int
    node: int
    tid: int
    function: int
    xfunction: int
    start_ns: int
    queue_wait_ns: int
    dispatch_ns: int


class FrameTracer:
    """Per-executive trace-id allocator and span ring.

    The executive drives it from four hook points, all passing the
    clock reading in (the tracer is clock-agnostic, so it works on
    both the native and simulation planes):

    * :meth:`stamp` at ``frame_send`` — roots a new trace for frames
      sent from outside any dispatch, or propagates the active trace
      to frames sent *during* a dispatch; never overwrites a non-zero
      ``transaction_context`` (application and timer contexts, and
      contexts already carried across the wire, pass untouched);
    * :meth:`note_enqueue` when a frame enters the scheduler;
    * :meth:`begin_dispatch` / :meth:`end_dispatch` around the upcall,
      recording the hop's span;
    * :meth:`forget` when a frame is released without dispatch.
    """

    def __init__(self, node: int | None = None, capacity: int = 1024) -> None:
        self.node = node
        self.capacity = capacity
        self.spans: deque[Span] = deque(maxlen=capacity)
        self.dropped = 0
        self.allocated = 0
        self._seq = 0
        self._span_seq = 0
        self._active = 0
        self._in_dispatch = False

    # -- trace-id allocation ------------------------------------------------
    def _fresh_id(self) -> int:
        self._seq += 1
        self.allocated += 1
        return make_trace_id(self.node or 0, self._seq)

    def stamp(self, frame: "Frame") -> None:
        if frame.transaction_context != 0 or frame.is_reply:
            return
        if self._in_dispatch:
            # Sends made by the handler continue the dispatched frame's
            # trace; an untraced dispatch lazily roots one so a chain
            # started by e.g. a timer handler is still stitched.
            if self._active == 0:
                self._active = self._fresh_id()
            frame.transaction_context = self._active
        else:
            frame.transaction_context = self._fresh_id()

    # -- scheduler hooks ----------------------------------------------------
    # The enqueue timestamp rides the frame itself (``trace_mark``),
    # not a dict keyed by ``id(frame)``: id() values recycle with the
    # allocator, so a released frame's stale entry could alias a new
    # frame at the same address and inflate its queue_wait_ns.
    def note_enqueue(self, frame: "Frame", now_ns: int) -> None:
        frame.trace_mark = now_ns

    def forget(self, frame: "Frame") -> None:
        frame.trace_mark = None

    # -- dispatch hooks -----------------------------------------------------
    def begin_dispatch(
        self, frame: "Frame", now_ns: int
    ) -> tuple[int, int, int, int, int]:
        enqueued = frame.trace_mark
        frame.trace_mark = None
        queue_wait = now_ns - enqueued if enqueued is not None else 0
        context = frame.transaction_context
        self._active = context if is_trace_context(context) else 0
        self._in_dispatch = True
        return (queue_wait, frame.target, frame.function, frame.xfunction, now_ns)

    def end_dispatch(
        self, token: tuple[int, int, int, int, int], now_ns: int
    ) -> None:
        trace_id = self._active
        self._active = 0
        self._in_dispatch = False
        if trace_id == 0:
            return
        queue_wait, target, function, xfunction, start_ns = token
        if len(self.spans) == self.capacity:
            self.dropped += 1
        self._span_seq += 1
        self.spans.append(
            Span(
                trace_id=trace_id,
                span_id=self._span_seq,
                node=self.node or 0,
                tid=target,
                function=function,
                xfunction=xfunction,
                start_ns=start_ns,
                queue_wait_ns=queue_wait,
                dispatch_ns=now_ns - start_ns,
            )
        )

    # -- export -------------------------------------------------------------
    def snapshot_spans(self) -> list[Span]:
        return list(self.spans)
