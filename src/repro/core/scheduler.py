"""The I2O dispatch scheduler: seven priority FIFOs, round-robin devices.

Paper §4: *"For scheduling the dispatching of messages we follow the
algorithm given in the I2O specification.  There exist seven priority
levels and for each one the messages are scheduled to a FIFO.  All
devices are then dispatched in round-robin manner."*

Concretely: within a priority level, frames are grouped per target
device, and the scheduler serves one frame from each non-empty device
queue in rotation.  A higher (numerically lower) priority level always
pre-empts a lower one; within a level no device can starve while
another is served twice (fairness is property-tested).
"""

from __future__ import annotations

from collections import OrderedDict, deque

from repro.i2o.errors import I2OError
from repro.i2o.frame import NUM_PRIORITIES, Frame
from repro.i2o.tid import Tid


class PriorityScheduler:
    """Seven priority levels × per-device FIFOs with round-robin service."""

    def __init__(self) -> None:
        # priority -> OrderedDict(tid -> deque of frames); the OrderedDict
        # order *is* the round-robin ring: serving a device moves it to
        # the back of the ring if it still has frames queued.
        self._levels: list[OrderedDict[Tid, deque[Frame]]] = [
            OrderedDict() for _ in range(NUM_PRIORITIES)
        ]
        self._depth = 0
        self.pushed = 0
        self.popped = 0

    def __len__(self) -> int:
        return self._depth

    @property
    def empty(self) -> bool:
        return self._depth == 0

    def push(self, frame: Frame) -> None:
        priority = frame.priority
        if not 0 <= priority < NUM_PRIORITIES:
            raise I2OError(f"frame priority {priority} out of range")
        level = self._levels[priority]
        queue = level.get(frame.target)
        if queue is None:
            queue = deque()
            level[frame.target] = queue
        queue.append(frame)
        self._depth += 1
        self.pushed += 1

    def pop(self) -> Frame | None:
        """Next frame by (priority, round-robin device) order, or None."""
        if self._depth == 0:
            return None
        for level in self._levels:
            if not level:
                continue
            # Serve the device at the front of the ring.
            tid, queue = next(iter(level.items()))
            frame = queue.popleft()
            del level[tid]
            if queue:
                level[tid] = queue  # re-insert at the back: round-robin
            self._depth -= 1
            self.popped += 1
            return frame
        raise I2OError("scheduler depth/level bookkeeping out of sync")

    def depth_of(self, priority: int) -> int:
        if not 0 <= priority < NUM_PRIORITIES:
            raise I2OError(f"priority {priority} out of range")
        return sum(len(q) for q in self._levels[priority].values())

    def pending_devices(self, priority: int) -> list[Tid]:
        """Devices with queued frames at ``priority``, in service order."""
        return list(self._levels[priority])

    def drop_device(self, tid: Tid) -> list[Frame]:
        """Remove and return all frames queued for ``tid`` (device
        destroyed / quarantined by the watchdog)."""
        dropped: list[Frame] = []
        for level in self._levels:
            queue = level.pop(tid, None)
            if queue:
                dropped.extend(queue)
        self._depth -= len(dropped)
        return dropped
