"""Dynamic module download.

Paper §4: *"After an implementation of the combined interface has been
provided, the device class is compiled and the object code is
downloaded dynamically into the running executives.  At this point a
plugin method ... is called by the executive, which allows us to
register the downloaded object."*

The Python analogue of downloading object code is compiling source
text into a fresh module namespace at runtime.  ``download_module``
takes device-class source, compiles it, instantiates the named class
and installs it into a *running* executive — used by the configuration
layer (`module` command of the Tcl-ish control script) and exercised
in tests to hot-add functionality mid-run.
"""

from __future__ import annotations

import itertools
import types
from typing import TYPE_CHECKING

from repro.core.device import Listener
from repro.i2o.errors import I2OError
from repro.i2o.tid import Tid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive


class ModuleDownloadError(I2OError):
    """Source did not compile or did not define the promised class."""


_download_counter = itertools.count(1)


def compile_module(source: str, module_name: str | None = None) -> types.ModuleType:
    """Compile device-class source text into a fresh module object."""
    if module_name is None:
        module_name = f"repro_downloaded_{next(_download_counter)}"
    module = types.ModuleType(module_name)
    module.__dict__["__builtins__"] = __builtins__
    try:
        code = compile(source, filename=f"<download:{module_name}>", mode="exec")
        exec(code, module.__dict__)
    except SyntaxError as exc:
        raise ModuleDownloadError(f"module source does not compile: {exc}") from exc
    return module


def download_module(
    executive: "Executive",
    source: str,
    class_name: str,
    *,
    parameters: dict[str, str] | None = None,
    name: str = "",
) -> Tid:
    """Compile, instantiate and install a device class; returns its TiD."""
    module = compile_module(source)
    cls = getattr(module, class_name, None)
    if cls is None:
        raise ModuleDownloadError(f"source defines no class {class_name!r}")
    if not (isinstance(cls, type) and issubclass(cls, Listener)):
        raise ModuleDownloadError(f"{class_name!r} is not a Listener subclass")
    instance = cls(name=name) if name else cls()
    if parameters:
        instance.parameters.update(parameters)
    return executive.install(instance)


class ModuleRegistry:
    """Bookkeeping of downloaded modules per executive."""

    def __init__(self) -> None:
        self._modules: dict[Tid, types.ModuleType] = {}

    def record(self, tid: Tid, module: types.ModuleType) -> None:
        self._modules[tid] = module

    def module_for(self, tid: Tid) -> types.ModuleType | None:
        return self._modules.get(tid)

    def forget(self, tid: Tid) -> None:
        self._modules.pop(tid, None)

    def __len__(self) -> int:
        return len(self._modules)
