"""Interrupts as I2O messages.

Paper §3.2: *"Even interrupts or timer expirations trigger messages
that are sent to device modules, if they have registered to listen to
such an event."*  Timers are handled by :mod:`repro.core.timer`; this
module covers the interrupt half:

* **native plane** — OS signals (SIGUSR1, SIGTERM, ...) are translated
  into ``EXEC_INTERRUPT`` frames posted to the inbound queue, so a
  device handles Ctrl-C-style events with the same dispatch machinery
  (and priority!) as any message;
* **any plane** — :meth:`InterruptController.raise_irq` injects a
  software interrupt directly, which is what hardware models use.

The frame carries the interrupt number in ``transaction_context``.
"""

from __future__ import annotations

import signal
import threading
from typing import TYPE_CHECKING

from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import EXEC_INTERRUPT
from repro.i2o.tid import EXECUTIVE_TID, Tid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive

#: Interrupts pre-empt everything, including timers.
INTERRUPT_PRIORITY = 0


class InterruptController:
    """Routes interrupt events to registered device TiDs."""

    def __init__(self, executive: "Executive") -> None:
        self._executive = executive
        self._listeners: dict[int, list[Tid]] = {}
        self._signal_tokens: dict[int, object] = {}
        self.raised = 0

    # -- registration -------------------------------------------------------
    def register(self, irq: int, tid: Tid) -> None:
        """Deliver interrupt ``irq`` to device ``tid`` (fan-out allowed)."""
        listeners = self._listeners.setdefault(irq, [])
        if tid not in listeners:
            listeners.append(tid)

    def unregister(self, irq: int, tid: Tid) -> None:
        listeners = self._listeners.get(irq, [])
        if tid in listeners:
            listeners.remove(tid)

    def listeners(self, irq: int) -> list[Tid]:
        return list(self._listeners.get(irq, ()))

    # -- delivery ---------------------------------------------------------
    def raise_irq(self, irq: int, payload: bytes = b"") -> int:
        """Inject interrupt ``irq``; returns the number of deliveries.

        Safe to call from any thread (signal handlers, hardware model
        callbacks): it only posts frames to the thread-safe inbound
        queue.
        """
        listeners = self._listeners.get(irq)
        if not listeners:
            return 0
        self.raised += 1
        for tid in listeners:
            frame = Frame.build(
                target=tid,
                initiator=EXECUTIVE_TID,
                function=EXEC_INTERRUPT,
                priority=INTERRUPT_PRIORITY,
                transaction_context=irq,
                payload=payload,
            )
            self._executive.post_inbound(frame)
        return len(listeners)

    # -- OS signal bridge (native plane) -----------------------------------
    def attach_signal(self, signum: int, irq: int | None = None) -> None:
        """Map an OS signal to an interrupt number (default: signum).

        Only callable from the main thread (a CPython restriction on
        ``signal.signal``); the handler itself is thread-agnostic.
        """
        if threading.current_thread() is not threading.main_thread():
            raise I2OError("signals can only be attached from the main thread")
        irq_number = signum if irq is None else irq
        previous = signal.signal(
            signum, lambda _sig, _frame: self.raise_irq(irq_number)
        )
        self._signal_tokens[signum] = previous

    def detach_signal(self, signum: int) -> None:
        previous = self._signal_tokens.pop(signum, None)
        if previous is not None:
            signal.signal(signum, previous)  # type: ignore[arg-type]
