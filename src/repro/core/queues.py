"""The messaging instance: inbound and outbound frame queues.

Paper figure 2 / §3.5: *"All communication travels through the inbound
and outbound queues of the local node."*  Devices post requests and
replies to the **outbound** queue; the executive routes each outbound
frame either to a local device (via the scheduler) or to a peer
transport.  Peer transports deposit received frames into the
**inbound** queue, from which the executive dispatches.

The queues are thread-safe because task-mode peer transports run in
their own threads (paper §4) while the dispatch loop drains them.  An
optional ``on_work`` callback lets the simulation plane (or a sleeping
native loop) wake up when work arrives.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

from repro.i2o.frame import Frame


class MessagingInstance:
    """Inbound + outbound FIFO pair with a work notification hook.

    ``deque.append``/``popleft`` are atomic under CPython's GIL, so the
    queues themselves need no lock — this sits on the per-message hot
    path.  The condition variable is only touched when a thread has
    actually parked in :meth:`wait_for_work` (tracked by a waiter
    count), so single-threaded use never pays for it.
    """

    def __init__(self, on_work: Callable[[], None] | None = None) -> None:
        self._inbound: deque[Frame] = deque()
        self._outbound: deque[Frame] = deque()
        self._work = threading.Condition()
        self._waiters = 0
        self.on_work = on_work
        self.posted_inbound = 0
        self.posted_outbound = 0

    def _notify(self) -> None:
        if self._waiters:
            with self._work:
                self._work.notify_all()
        if self.on_work is not None:
            self.on_work()

    # -- posting ------------------------------------------------------------
    def post_inbound(self, frame: Frame) -> None:
        """Deposit a frame arriving from the wire (or local loopback)."""
        self._inbound.append(frame)
        self.posted_inbound += 1
        self._notify()

    def post_outbound(self, frame: Frame) -> None:
        """Deposit a frame a local device wants sent (frameSend)."""
        self._outbound.append(frame)
        self.posted_outbound += 1
        self._notify()

    # -- draining -----------------------------------------------------------
    def take_inbound(self) -> Frame | None:
        try:
            return self._inbound.popleft()
        except IndexError:
            return None

    def take_outbound(self) -> Frame | None:
        try:
            return self._outbound.popleft()
        except IndexError:
            return None

    def wait_for_work(self, timeout: float | None = None) -> bool:
        """Block until either queue is non-empty (native thread mode).

        Callers must pass a bounded ``timeout``: the lock-free posting
        fast path can miss a waiter that is *just* parking, and the
        timeout converts that rare race into one bounded poll interval
        instead of a hang.
        """
        with self._work:
            if self._inbound or self._outbound:
                return True
            self._waiters += 1
            try:
                return self._work.wait(timeout)
            finally:
                self._waiters -= 1

    # -- introspection ------------------------------------------------------
    @property
    def inbound_depth(self) -> int:
        return len(self._inbound)

    @property
    def outbound_depth(self) -> int:
        return len(self._outbound)

    @property
    def idle(self) -> bool:
        return not self._inbound and not self._outbound
