"""The I2O core timer facility.

Paper §3.2: *"Even interrupts or timer expirations trigger messages
that are sent to device modules"* — a timer does not call back into
user code directly; on expiry the service builds an
``EXEC_TIMER_EXPIRED`` frame addressed to the owning device and posts
it through the ordinary inbound queue, so timer handling obeys the same
priority scheduling and probing as every other event.  The watchdog
(paper §4) is built on this facility.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING

from repro.flightrec.records import EV_TIMER_FIRE
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import EXEC_TIMER_EXPIRED
from repro.i2o.tid import EXECUTIVE_TID, Tid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive

#: Timer frames are urgent: they carry watchdog expirations.
TIMER_PRIORITY = 1


class TimerService:
    """Deadline heap polled by the executive loop."""

    def __init__(self, executive: "Executive") -> None:
        self._executive = executive
        self._heap: list[tuple[int, int]] = []  # (deadline_ns, timer_id)
        self._live: dict[int, tuple[Tid, int, int | None]] = {}
        # timer_id -> (owner, context, period_ns or None)
        self._ids = itertools.count(1)
        self.fired = 0

    def __len__(self) -> int:
        return len(self._live)

    def start(
        self,
        *,
        owner: Tid,
        delay_ns: int,
        context: int = 0,
        period_ns: int | None = None,
    ) -> int:
        """Arm a one-shot (or periodic) timer owned by device ``owner``."""
        if delay_ns < 0:
            raise I2OError(f"negative timer delay {delay_ns}")
        if period_ns is not None and period_ns <= 0:
            raise I2OError(f"period must be positive, got {period_ns}")
        timer_id = next(self._ids)
        deadline = self._executive.clock.now_ns() + delay_ns
        self._live[timer_id] = (owner, context, period_ns)
        heapq.heappush(self._heap, (deadline, timer_id))
        return timer_id

    def cancel(self, timer_id: int) -> bool:
        """Disarm; returns False if the timer already fired or never was."""
        return self._live.pop(timer_id, None) is not None

    def cancel_owned(self, owner: Tid) -> int:
        """Disarm every timer owned by ``owner``; returns the count.

        Called on device uninstall so a removed device cannot keep
        receiving expiry frames (which would be dead-lettered)."""
        doomed = [
            timer_id for timer_id, (tid, _, _) in self._live.items()
            if tid == owner
        ]
        for timer_id in doomed:
            del self._live[timer_id]
        return len(doomed)

    def cancel_all(self) -> int:
        """Disarm every timer; returns the count.

        The crash-teardown primitive (``Executive.hard_stop``): a dead
        node's deadlines must not keep generating expiry frames."""
        count = len(self._live)
        self._live.clear()
        self._heap.clear()
        return count

    def next_deadline_ns(self) -> int | None:
        """Earliest live deadline (lets a sleeping loop size its wait)."""
        while self._heap and self._heap[0][1] not in self._live:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def poll(self, now_ns: int | None = None) -> int:
        """Fire every timer whose deadline has passed; returns count."""
        if now_ns is None:
            now_ns = self._executive.clock.now_ns()
        count = 0
        fr = self._executive.flightrec
        while self._heap and self._heap[0][0] <= now_ns:
            deadline, timer_id = heapq.heappop(self._heap)
            entry = self._live.pop(timer_id, None)
            if entry is None:
                continue  # cancelled
            owner, context, period_ns = entry
            if fr is not None:
                fr.record(EV_TIMER_FIRE, timer_id, int(owner), context)
            self._post_expiry(owner, timer_id, context)
            count += 1
            self.fired += 1
            if period_ns is not None:
                self._live[timer_id] = (owner, context, period_ns)
                heapq.heappush(self._heap, (deadline + period_ns, timer_id))
        return count

    def _post_expiry(self, owner: Tid, timer_id: int, context: int) -> None:
        frame = Frame.build(
            target=owner,
            initiator=EXECUTIVE_TID,
            function=EXEC_TIMER_EXPIRED,
            priority=TIMER_PRIORITY,
            transaction_context=context,
            initiator_context=timer_id,
        )
        self._executive.post_inbound(frame)
