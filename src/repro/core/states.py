"""Device and executive operational states.

Paper §2 (system management requirement): configuration "has to include
the configuration and operational modes of the system in its scope".
The reproduction uses the XDAQ-style finite state machine; transitions
are driven exclusively by I2O executive messages (paper §3.5: every
device "has to implement the standard executive and utility message
handlers to be configurable and controllable").
"""

from __future__ import annotations

import enum

from repro.i2o.errors import I2OError


class StateError(I2OError):
    """Illegal state transition requested."""


class DeviceState(enum.Enum):
    """Operational states shared by devices and the executive."""

    INITIALISED = "initialised"  # plugged in, not yet configured
    CONFIGURED = "configured"  # parameters applied
    ENABLED = "enabled"  # processing application messages
    QUIESCED = "quiesced"  # drained, only control messages handled
    FAILED = "failed"  # quarantined (e.g. by the watchdog)
    HALTED = "halted"  # removed from service


class PeerState(enum.Enum):
    """Liveness states a node assigns to its peers (supervision layer).

    A peer starts ALIVE, degrades to SUSPECT after consecutive missed
    heartbeats, and to DEAD after further misses (triggering failover).
    A DEAD peer must deliver several consecutive heartbeats before it
    is readmitted — the backoff that keeps a flapping node from
    thrashing the failover machinery.
    """

    ALIVE = "alive"
    SUSPECT = "suspect"
    DEAD = "dead"


#: Legal transitions; anything else raises :class:`StateError`.
_TRANSITIONS: dict[DeviceState, frozenset[DeviceState]] = {
    DeviceState.INITIALISED: frozenset(
        {DeviceState.CONFIGURED, DeviceState.ENABLED, DeviceState.HALTED,
         DeviceState.FAILED}
    ),
    DeviceState.CONFIGURED: frozenset(
        {DeviceState.CONFIGURED, DeviceState.ENABLED, DeviceState.HALTED,
         DeviceState.FAILED}
    ),
    DeviceState.ENABLED: frozenset(
        {DeviceState.QUIESCED, DeviceState.HALTED, DeviceState.FAILED}
    ),
    DeviceState.QUIESCED: frozenset(
        {DeviceState.ENABLED, DeviceState.CONFIGURED, DeviceState.HALTED,
         DeviceState.FAILED}
    ),
    DeviceState.FAILED: frozenset({DeviceState.HALTED}),
    DeviceState.HALTED: frozenset(),
}


def check_transition(current: DeviceState, target: DeviceState) -> DeviceState:
    """Validate ``current -> target``; returns ``target`` for chaining."""
    if target not in _TRANSITIONS[current]:
        raise StateError(f"illegal transition {current.value} -> {target.value}")
    return target
