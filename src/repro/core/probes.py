"""Whitebox time probes and the simulation-plane cost model.

Paper §5 (whitebox benchmark): *"we instrumented our code with time
probes.  We measure the time difference between two probes in
nanoseconds.  The values are then again averaged over the 100,000
calls."*

The same probe points serve both planes:

* **native plane** — ``Probes(mode="wall")`` records real
  ``perf_counter_ns`` durations per stage;
* **simulation plane** — ``Probes(mode="model", model=...)`` *imposes*
  each stage's cost from a :class:`CostModel`, accruing virtual
  nanoseconds into a ledger that the node's simulation process converts
  into ``yield delay(...)``.  This is how Table 1 regenerates
  deterministically with paper-scale numbers.

Probe stages are named after Table 1 rows:

==================  ====================================================
``pt_processing``   handling an incoming message in the peer transport
``demultiplex``     scheduler pop + dispatch-table lookup
``upcall``          entering the functor (argument binding/validation)
``application``     the user handler body, including its frameSend
``postprocess``     releasing the frame and per-dispatch cleanup
``frame_alloc``     pool allocation (nested inside pt_processing)
``frame_free``      pool release (nested inside postprocess)
==================  ====================================================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.i2o.errors import I2OError

#: Exclusive stage costs in nanoseconds, calibrated so the *inclusive*
#: stage medians equal Table 1 of the paper:
#: pt_processing = 740 + frame_alloc 2180 = 2920 ns (2.92 µs), and
#: postprocess = 710 + frame_free 1780 = 2490 ns (2.49 µs).
PAPER_TABLE1_COSTS_NS: dict[str, int] = {
    "pt_processing": 740,
    "demultiplex": 220,
    "upcall": 470,
    # 1420 exclusive + the reply's nested frame_alloc (2180) = the
    # paper's 3.6 µs "Application (incl. frameSend)".
    "application": 1420,
    "postprocess": 710,
    "frame_alloc": 2180,
    "frame_free": 1780,
}

#: Costs with the §5 optimised allocator: *"the time needed to allocate
#: a frame shrinks dramatically"*, cutting the blackbox overhead by
#: ~4 µs (8.9 → 4.9 µs).  frame_alloc drops to ~0.2 µs and frame_free
#: symmetrically cheapens (LIFO free-list push).
OPTIMISED_ALLOC_COSTS_NS: dict[str, int] = {
    **PAPER_TABLE1_COSTS_NS,
    "frame_alloc": 500,
    "frame_free": 400,
}


@dataclass(frozen=True)
class CostModel:
    """Per-stage exclusive CPU costs for the simulation plane.

    ``jitter_frac`` adds seeded dispersion per span (fractional sigma
    of each stage cost), reproducing the run-to-run spread behind the
    paper's reported standard deviations (blackbox 8.9 µs, σ = 0.6)
    while keeping every run bit-reproducible.
    """

    costs_ns: dict[str, int] = field(
        default_factory=lambda: dict(PAPER_TABLE1_COSTS_NS)
    )
    default_ns: int = 0
    jitter_frac: float = 0.0
    jitter_seed: int = 0

    def cost(self, stage: str) -> int:
        return self.costs_ns.get(stage, self.default_ns)

    @classmethod
    def paper_table1(cls, jitter_frac: float = 0.0) -> "CostModel":
        return cls(dict(PAPER_TABLE1_COSTS_NS), jitter_frac=jitter_frac)

    @classmethod
    def optimised_allocator(cls, jitter_frac: float = 0.0) -> "CostModel":
        return cls(dict(OPTIMISED_ALLOC_COSTS_NS), jitter_frac=jitter_frac)


class Probes:
    """Records per-stage durations; in model mode also accrues cost.

    Durations are *inclusive* of nested probes, exactly like rdtsc
    probe pairs around nested code would be: ``frame_alloc`` measured
    inside ``pt_processing`` contributes to both, matching the paper's
    observation that "most of the PT processing time is spent in the
    frame allocation".
    """

    def __init__(
        self,
        mode: str = "off",
        model: CostModel | None = None,
        stages: tuple[str, ...] | None = None,
    ) -> None:
        if mode not in ("off", "wall", "model"):
            raise I2OError(f"unknown probe mode {mode!r}")
        if mode == "model" and model is None:
            model = CostModel.paper_table1()
        self.mode = mode
        self.model = model
        self._samples: dict[str, list[int]] = {}
        self._stages = stages
        self._accrued_ns = 0
        #: named event counters (liveness, failover, ...), live in every
        #: mode — counting is cheap enough for the hot path.
        self.counters: dict[str, int] = {}
        self._jitter_rng = None
        if model is not None and model.jitter_frac > 0.0:
            from repro.sim.rng import RngStreams

            self._jitter_rng = RngStreams(model.jitter_seed).stream(
                "cost-jitter"
            )

    def _jittered(self, cost: int) -> int:
        """Apply the model's dispersion to one span's cost (>= 0)."""
        if self._jitter_rng is None or cost == 0:
            return cost
        assert self.model is not None
        factor = 1.0 + self.model.jitter_frac * float(
            self._jitter_rng.standard_normal()
        )
        return max(0, int(cost * factor))

    # -- recording ----------------------------------------------------------
    def measure(self, stage: str) -> "_Span":
        """Context manager for one probe span.

        ``off`` mode returns a shared no-op object so the disabled
        probes cost two dict-free method calls per span — this sits on
        the per-message hot path of every executive.
        """
        if self.mode == "off":
            return _NULL_SPAN
        if self.mode == "wall":
            return _WallSpan(self, stage)
        return _ModelSpan(self, stage)

    def bump(self, name: str, count: int = 1) -> int:
        """Increment a named event counter; returns the new value."""
        value = self.counters.get(name, 0) + count
        self.counters[name] = value
        return value

    def _record(self, stage: str, duration_ns: int) -> None:
        if self._stages is not None and stage not in self._stages:
            return
        self._samples.setdefault(stage, []).append(duration_ns)

    # -- model-mode ledger -------------------------------------------------
    def drain_accrued_ns(self) -> int:
        """Return and reset virtual CPU time accrued since last drain."""
        ns, self._accrued_ns = self._accrued_ns, 0
        return ns

    def charge(self, stage: str, ns: int) -> None:
        """Impose an explicit cost (model mode only): used by hardware
        models for costs that are parameters of the *hardware* rather
        than of the framework (e.g. FIFO queue management, §7)."""
        if self.mode == "model":
            self._accrued_ns += ns
            self._record(stage, ns)

    @property
    def accrued_ns(self) -> int:
        """Peek at the undrained virtual CPU time (model mode).

        Simulation-plane transports read this at transmit time so the
        wire injection happens *after* the CPU work that preceded it —
        that serialisation is exactly the framework overhead the
        paper's figure 6 isolates.
        """
        return self._accrued_ns

    # -- analysis ----------------------------------------------------------
    def samples(self, stage: str) -> np.ndarray:
        return np.asarray(self._samples.get(stage, ()), dtype=np.int64)

    def median_us(self, stage: str) -> float:
        """Median stage duration in microseconds (Table 1 reports medians)."""
        data = self.samples(stage)
        if not len(data):
            raise I2OError(f"no samples for stage {stage!r}")
        return float(np.median(data)) / 1000.0

    def mean_us(self, stage: str) -> float:
        data = self.samples(stage)
        if not len(data):
            raise I2OError(f"no samples for stage {stage!r}")
        return float(np.mean(data)) / 1000.0

    def count(self, stage: str) -> int:
        return len(self._samples.get(stage, ()))

    def stage_names(self) -> list[str]:
        return sorted(self._samples)

    def reset(self) -> None:
        self._samples.clear()
        self.counters.clear()
        self._accrued_ns = 0


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _WallSpan:
    __slots__ = ("_probes", "_stage", "_start")

    def __init__(self, probes: Probes, stage: str) -> None:
        self._probes = probes
        self._stage = stage

    def __enter__(self) -> None:
        self._start = time.perf_counter_ns()

    def __exit__(self, *exc: object) -> None:
        self._probes._record(self._stage, time.perf_counter_ns() - self._start)


class _ModelSpan:
    """Imposes the stage's exclusive cost; the recorded duration is
    inclusive of nested stages, like rdtsc probe pairs around nested
    code would be."""

    __slots__ = ("_probes", "_stage", "_start_accrued")

    def __init__(self, probes: Probes, stage: str) -> None:
        self._probes = probes
        self._stage = stage

    def __enter__(self) -> None:
        self._start_accrued = self._probes._accrued_ns

    def __exit__(self, *exc: object) -> None:
        probes = self._probes
        assert probes.model is not None
        probes._accrued_ns += probes._jittered(probes.model.cost(self._stage))
        probes._record(self._stage, probes._accrued_ns - self._start_accrued)


_Span = _NullSpan | _WallSpan | _ModelSpan
