"""Cluster telemetry over the standard utility message scheme.

Paper §2 claims system management needs no side channel: every
component is observable "according to one common scheme" — the
standard executive/utility messages.  This module holds that line for
whole-cluster observability:

* :class:`TelemetryAgent` — one per node; exports the node's
  :class:`~repro.core.metrics.MetricsRegistry` snapshot and the
  :class:`~repro.core.tracing.FrameTracer` span ring as an ordinary
  ``UtilParamsGet`` parameter map.  It adds no private verbs.
* :class:`TelemetryCollector` — installed on one node; sweeps every
  agent through proxies with ``UtilParamsGet`` (exactly like
  :class:`~repro.daq.monitor.DaqMonitor`), aggregates per-node metric
  snapshots and cluster totals, stitches cross-node spans into
  end-to-end trace timelines, and renders Prometheus-text and JSON
  dumps.
* :class:`PeriodicSweeper` — a mixin turning any device with a
  ``sweep()`` method into a self-clocked one via the I2O timer
  facility (expirations arrive as frames through the ordinary queues,
  paper §3.2).  Shared by the collector and ``DaqMonitor``.

The collector's only view of a remote node is the byte payload of a
``UtilParamsGet`` reply: no private function codes, no cross-node
Python object access — the acceptance criterion of the observability
tentpole.
"""

from __future__ import annotations

import itertools
import json
import re

from repro.core.device import Listener, decode_params, encode_params
from repro.core.tracing import Span
from repro.dataflow.registry import message_type
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import UTIL_PARAMS_GET
from repro.i2o.tid import Tid
from repro.core.metrics import prometheus_lines

#: The sweep is an ordinary ``UtilParamsGet`` (no private verb); the
#: declared type exists so the collector->agent edges show up in the
#: dataflow DAG.
MT_PARAMS_SWEEP = message_type(
    "telemetry.params-sweep", 0, function=UTIL_PARAMS_GET, mode="fanout"
)

#: Timer context the sweeper arms its periodic timer with.  Small and
#: untagged, so the tracer never mistakes it for a trace id.
SWEEP_CONTEXT = 0x5EE9

#: Agent parameter keys carrying encoded spans: ``s<span_id>``.
_SPAN_KEY = re.compile(r"^s\d+$")

_SPAN_FIELDS = 9


def encode_span(span: Span) -> str:
    """One span as a compact ``;``-joined record (params-safe)."""
    return ";".join(
        (
            format(span.trace_id, "x"),
            str(span.span_id),
            str(span.node),
            str(span.tid),
            str(span.function),
            str(span.xfunction),
            str(span.start_ns),
            str(span.queue_wait_ns),
            str(span.dispatch_ns),
        )
    )


def decode_span(text: str) -> Span:
    parts = text.split(";")
    if len(parts) != _SPAN_FIELDS:
        raise I2OError(f"malformed span record {text!r}")
    return Span(
        trace_id=int(parts[0], 16),
        span_id=int(parts[1]),
        node=int(parts[2]),
        tid=int(parts[3]),
        function=int(parts[4]),
        xfunction=int(parts[5]),
        start_ns=int(parts[6]),
        queue_wait_ns=int(parts[7]),
        dispatch_ns=int(parts[8]),
    )


class PeriodicSweeper:
    """Mixin: drive ``self.sweep()`` from a periodic I2O timer.

    The interval comes from the device parameter named by
    ``sweep_param`` (nanoseconds; 0 or unset keeps the device
    manual-only, the pre-PR behaviour).  The timer is armed on enable
    and disarmed on quiesce, so a paused device stops generating
    monitoring traffic.
    """

    sweep_param = "sweep_interval_ns"
    _sweep_timer_id: int | None = None

    def sweep(self) -> int:  # pragma: no cover - satisfied by the host class
        raise NotImplementedError

    def sweep_interval_ns(self) -> int:
        raw = self.parameters.get(self.sweep_param, "0")  # type: ignore[attr-defined]
        try:
            return int(raw or "0")
        except ValueError:
            raise I2OError(f"bad {self.sweep_param} value {raw!r}")

    def on_enable(self) -> None:
        super().on_enable()  # type: ignore[misc]
        interval = self.sweep_interval_ns()
        if interval > 0 and self._sweep_timer_id is None:
            self._sweep_timer_id = self.start_timer(  # type: ignore[attr-defined]
                interval, context=SWEEP_CONTEXT, period_ns=interval
            )

    def on_quiesce(self) -> None:
        super().on_quiesce()  # type: ignore[misc]
        if self._sweep_timer_id is not None:
            self.cancel_timer(self._sweep_timer_id)  # type: ignore[attr-defined]
            self._sweep_timer_id = None

    def on_timer(self, context: int, frame: Frame) -> None:
        if context == SWEEP_CONTEXT:
            self.sweep()
        else:
            super().on_timer(context, frame)  # type: ignore[misc]


class TelemetryAgent(Listener):
    """Per-node exporter of metrics and trace spans.

    Answers ``UtilParamsGet`` with a *fresh* map on every request
    (overriding the accumulate-into-``parameters`` default: span keys
    churn every sweep and must not pile up as stale parameters).
    """

    device_class = "telemetry_agent"
    consumes = (MT_PARAMS_SWEEP,)

    def __init__(self, name: str = "telemetry-agent") -> None:
        super().__init__(name)
        self.exports = 0

    def local_snapshot(self) -> dict[str, str]:
        exe = self._require_live()
        out = {
            key: _fmt_number(value)
            for key, value in exe.metrics.snapshot().items()
        }
        out["node"] = str(exe.node)
        tracer = exe.tracer
        out["trace_enabled"] = "1" if tracer is not None else "0"
        if tracer is not None:
            for span in tracer.snapshot_spans():
                out[f"s{span.span_id}"] = encode_span(span)
        return out

    def _on_params_get(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.exports += 1
        snapshot = self.local_snapshot()
        if frame.payload_size:
            keys = decode_params(frame.payload).keys()
            snapshot = {k: snapshot.get(k, "") for k in keys}
        self.reply(frame, encode_params(snapshot))

    def export_counters(self) -> dict[str, object]:
        return {"exports": self.exports}


class TelemetryCollector(PeriodicSweeper, Listener):
    """Cluster-wide snapshot aggregation and trace stitching.

    ``watch(node, proxy_tid)`` registers one agent per node; every
    :meth:`sweep` (manual, or periodic via :class:`PeriodicSweeper`)
    pulls each agent's snapshot with a correlated ``UtilParamsGet``.
    Spans are deduplicated by ``(node, span_id)`` — the agent exports
    its whole ring each time — and indexed by trace id; ``keep_spans``
    bounds collector memory the same way the per-node ring bounds the
    tracer's.
    """

    device_class = "telemetry_collector"
    emits = (MT_PARAMS_SWEEP,)

    def __init__(self, name: str = "telemetry", *, keep_spans: int = 8192) -> None:
        super().__init__(name)
        self.keep_spans = keep_spans
        self.watched: dict[int, Tid] = {}
        #: node -> latest numeric metric snapshot
        self.node_metrics: dict[int, dict[str, float]] = {}
        #: node -> non-numeric reply values (e.g. state strings)
        self.node_info: dict[int, dict[str, str]] = {}
        self._contexts = itertools.count(1)
        self._context_node: dict[int, int] = {}
        self._spans: list[Span] = []
        self._by_trace: dict[int, list[Span]] = {}
        self._seen: set[tuple[int, int]] = set()
        self.sweeps = 0
        self.spans_collected = 0

    def on_plugin(self) -> None:
        self.table.bind(UTIL_PARAMS_GET, self._on_params_traffic)

    # -- sweeping -----------------------------------------------------------
    def watch(self, node: int, agent_tid: Tid) -> None:
        """Register ``node``'s telemetry agent, reachable at
        ``agent_tid`` (normally a local proxy)."""
        self.watched[node] = agent_tid

    def sweep(self) -> int:
        for node, tid in sorted(self.watched.items()):
            context = next(self._contexts)
            self._context_node[context] = node
            self.send(tid, function=UTIL_PARAMS_GET, initiator_context=context)
        self.sweeps += 1
        return len(self.watched)

    def _on_params_traffic(self, frame: Frame) -> None:
        if not frame.is_reply:
            # Someone is observing the observer through the same scheme.
            counters = {k: str(v) for k, v in self.export_counters().items()}
            self.reply(frame, encode_params({**self.parameters, **counters}))
            return
        node = self._context_node.pop(frame.initiator_context, None)
        if node is None or frame.is_failure:
            return
        metrics: dict[str, float] = {}
        info: dict[str, str] = {}
        for key, value in decode_params(frame.payload).items():
            if _SPAN_KEY.match(key):
                self._ingest_span(decode_span(value))
                continue
            number = _parse_number(value)
            if number is None:
                info[key] = value
            else:
                metrics[key] = number
        self.node_metrics[node] = metrics
        self.node_info[node] = info

    def _ingest_span(self, span: Span) -> None:
        key = (span.node, span.span_id)
        if key in self._seen:
            return
        self._seen.add(key)
        self._spans.append(span)
        self._by_trace.setdefault(span.trace_id, []).append(span)
        self.spans_collected += 1
        while len(self._spans) > self.keep_spans:
            old = self._spans.pop(0)
            self._seen.discard((old.node, old.span_id))
            per_trace = self._by_trace.get(old.trace_id)
            if per_trace is not None:
                per_trace.remove(old)
                if not per_trace:
                    del self._by_trace[old.trace_id]

    # -- stitched traces ----------------------------------------------------
    def trace_ids(self) -> list[int]:
        return sorted(self._by_trace)

    def trace(self, trace_id: int) -> list[Span]:
        """All collected spans of one trace, in start-time order.

        Cross-node ordering is meaningful on both planes: natively all
        nodes read the same ``perf_counter_ns`` domain, and in
        simulation all executives share the simulated clock.
        """
        return sorted(
            self._by_trace.get(trace_id, ()),
            key=lambda s: (s.start_ns, s.node, s.span_id),
        )

    def timeline(self, trace_id: int) -> list[dict[str, int]]:
        """One trace as an end-to-end list of hop records."""
        return [
            {
                "node": span.node,
                "tid": span.tid,
                "function": span.function,
                "xfunction": span.xfunction,
                "start_ns": span.start_ns,
                "queue_wait_ns": span.queue_wait_ns,
                "dispatch_ns": span.dispatch_ns,
            }
            for span in self.trace(trace_id)
        ]

    # -- aggregation and export ---------------------------------------------
    def cluster_totals(self) -> dict[str, float]:
        """Sum of every numeric metric across swept nodes."""
        totals: dict[str, float] = {}
        for metrics in self.node_metrics.values():
            for key, value in metrics.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def render_prometheus(self) -> str:
        """The latest cluster snapshot in the Prometheus text format."""
        lines = ["# repro cluster telemetry (one block per swept node)"]
        for node in sorted(self.node_metrics):
            lines.extend(
                prometheus_lines(self.node_metrics[node], {"node": node})
            )
        lines.extend(
            prometheus_lines(
                {
                    "collector_sweeps": self.sweeps,
                    "collector_spans": len(self._spans),
                    "collector_traces": len(self._by_trace),
                },
                {"node": self._node_label()},
            )
        )
        return "\n".join(lines) + "\n"

    def render_json(self) -> str:
        return json.dumps(
            {
                "nodes": {
                    str(node): metrics
                    for node, metrics in sorted(self.node_metrics.items())
                },
                "totals": self.cluster_totals(),
                "traces": {
                    format(trace_id, "x"): self.timeline(trace_id)
                    for trace_id in self.trace_ids()
                },
            },
            sort_keys=True,
        )

    def _node_label(self) -> int:
        return self.executive.node if self.executive is not None else -1

    def export_counters(self) -> dict[str, object]:
        return {
            "sweeps": self.sweeps,
            "nodes_watched": len(self.watched),
            "nodes_reporting": len(self.node_metrics),
            "spans": len(self._spans),
            "traces": len(self._by_trace),
        }


def _fmt_number(value: float) -> str:
    if isinstance(value, int):
        return str(value)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _parse_number(text: str) -> float | None:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return None
