"""The metrics registry: counters, gauges and fixed-bucket histograms.

The paper's system-management claim (§2) is that every component is
observable "according to one common scheme".  PR 1 grew ad-hoc event
counters (``Probes.counters``); this module replaces them with typed
instruments that one ``UtilParamsGet`` sweep can export verbatim:

* :class:`Counter` — a monotonically increasing event count;
* :class:`Gauge` — a point-in-time value, either set explicitly or
  sampled from a callback at snapshot time.  Callback gauges are the
  preferred way to expose hot-path state (queue depths, dispatch
  totals): the hot path keeps bumping a plain Python int and pays
  nothing for being observable;
* :class:`Histogram` — fixed inclusive upper-bound buckets with
  Prometheus ``le`` semantics (an observation equal to a bound lands
  in that bound's bucket; exported counts are cumulative).

Naming scheme: ``<subsystem>_<what>[_<unit>][_total]`` with
``snake_case`` and only ``[a-zA-Z0-9_]`` (use
:func:`sanitize_metric_name` when interpolating runtime names such as
transport names).  Subsystem prefixes in use: ``exe_`` (executive),
``pool_``, ``timer_``, ``pt_`` (peer transports), ``rel_`` (reliable
endpoint), ``hb_``/``peer_`` (liveness), ``trace_`` (frame tracer).
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from repro.i2o.errors import I2OError

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Upper bounds (ns) for journal-recovery latency histograms.  Replay
#: is file I/O plus one retransmission per live record, so the range
#: spans µs-scale empty-journal restarts to deep multi-ms replays.
RECOVERY_LATENCY_BUCKETS_NS: tuple[int, ...] = (
    10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
)


def sanitize_metric_name(name: str) -> str:
    """Map an arbitrary runtime name onto the metric alphabet.

    Transport and device names may contain ``-`` or ``.`` (e.g. the
    queued PT names itself ``q0-1``); Prometheus metric names may not.
    """
    return _NAME_RE.sub("_", name)


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value


class Gauge:
    """A point-in-time value.

    Either set explicitly with :meth:`set`, or constructed with a
    zero-argument callback that is invoked lazily — only when the
    gauge is read (snapshot or :meth:`get`), never on the hot path.
    """

    __slots__ = ("name", "_value", "_fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None) -> None:
        self.name = name
        self._value: float = 0
        self._fn = fn

    def set(self, value: float) -> None:
        self._fn = None
        self._value = value

    def rebind(self, fn: Callable[[], float]) -> None:
        """Replace the sampling callback (device re-plug paths)."""
        self._fn = fn

    def get(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value


@dataclass(frozen=True, slots=True)
class Exemplar:
    """One slow-observation exemplar pinned to a histogram bucket.

    Carries the trace id of a concrete observation that landed in the
    bucket, so a p99 spike in the exposition links straight to a
    stitched trace (``TelemetryCollector.timeline``) or a flight-
    recorder dump — the OpenMetrics exemplar model.
    """

    trace_id: int
    value: float
    ts: float

    def labels(self) -> dict[str, str]:
        return {"trace_id": format(self.trace_id, "x")}


class Histogram:
    """Fixed-bucket histogram with inclusive upper bounds.

    ``buckets`` are the finite upper bounds in increasing order; an
    implicit ``+Inf`` bucket catches the overflow.  ``observe(v)``
    places ``v`` in the first bucket whose bound is >= v (Prometheus
    ``le`` semantics), tracked per-bucket; the snapshot export is
    *cumulative*, matching the Prometheus text format.

    Exemplar capture is opt-in (:meth:`enable_exemplars`): when on,
    ``observe(v, exemplar=trace_id)`` remembers the latest exemplar
    per bucket — one slot per bucket, overwrite-newest, so the memory
    cost is fixed and the hot path pays one slot store only for
    observations that actually carry a trace id.
    """

    __slots__ = ("name", "buckets", "counts", "count", "sum", "exemplars")

    def __init__(self, name: str, buckets: Iterable[float]) -> None:
        bounds = list(buckets)
        if not bounds or any(b <= a for b, a in zip(bounds[1:], bounds)):
            raise I2OError(f"histogram {name!r} buckets must strictly increase")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot is +Inf
        self.count = 0
        self.sum = 0.0
        self.exemplars: list[Exemplar | None] | None = None

    def enable_exemplars(self) -> None:
        """Start capturing per-bucket exemplars (idempotent)."""
        if self.exemplars is None:
            self.exemplars = [None] * (len(self.buckets) + 1)

    def observe(self, value: float, exemplar: int = 0) -> None:
        index = bisect_left(self.buckets, value)
        self.counts[index] += 1
        self.count += 1
        self.sum += value
        if exemplar and self.exemplars is not None:
            self.exemplars[index] = Exemplar(exemplar, value, time.time())

    def exemplar_for(self, bound: float) -> Exemplar | None:
        """Latest exemplar of the bucket with upper bound ``bound``
        (``inf`` for the overflow bucket); ``None`` when capture is
        off or the bucket never saw a traced observation."""
        if self.exemplars is None:
            return None
        if bound == float("inf"):
            return self.exemplars[-1]
        index = bisect_left(self.buckets, bound)
        if index == len(self.buckets) or self.buckets[index] != bound:
            raise I2OError(f"histogram {self.name!r} has no bucket le={bound}")
        return self.exemplars[index]

    def bucket_count(self, bound: float) -> int:
        """Non-cumulative count of the bucket with upper bound ``bound``."""
        index = bisect_left(self.buckets, bound)
        if index == len(self.buckets) or self.buckets[index] != bound:
            raise I2OError(f"histogram {self.name!r} has no bucket le={bound}")
        return self.counts[index]

    def export(self) -> dict[str, float]:
        """Flatten to snapshot keys with cumulative bucket counts."""
        out: dict[str, float] = {}
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out[f"{self.name}_bucket_le_{_fmt_bound(bound)}"] = running
        out[f"{self.name}_bucket_le_inf"] = self.count
        out[f"{self.name}_count"] = self.count
        out[f"{self.name}_sum"] = self.sum
        return out


def _fmt_bound(bound: float) -> str:
    if float(bound).is_integer():
        return str(int(bound))
    return repr(float(bound)).replace(".", "p").replace("-", "m")


class MetricsRegistry:
    """One node's metric instruments, keyed by name.

    Every :class:`~repro.core.executive.Executive` owns one; devices
    and transports register instruments against it, and the
    telemetry agent exports :meth:`snapshot` over ``UtilParamsGet``.

    ``timing`` gates the per-dispatch latency histogram in the
    executive — the only instrument that would force a clock read on
    the hot path — and defaults off so observability costs nothing
    unless asked for.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self.timing = False

    # -- registration -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        found = self._counters.get(name)
        if found is None:
            found = self._counters[name] = Counter(name)
        return found

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        """Get-or-create a gauge; passing ``fn`` (re)binds its callback."""
        found = self._gauges.get(name)
        if found is None:
            found = self._gauges[name] = Gauge(name, fn)
        elif fn is not None:
            found.rebind(fn)
        return found

    def histogram(self, name: str, buckets: Iterable[float]) -> Histogram:
        """Get-or-create a histogram.

        Re-registering an existing name is fine (device re-plug paths
        reuse the instrument) — but only with the *same* buckets: a
        silent bucket swap would splice two incompatible series under
        one name, so a mismatch raises instead.
        """
        bounds = list(buckets)
        found = self._histograms.get(name)
        if found is None:
            found = self._histograms[name] = Histogram(name, bounds)
        elif bounds != found.buckets:
            raise I2OError(
                f"histogram {name!r} re-registered with different buckets: "
                f"{bounds} != {found.buckets}"
            )
        return found

    # -- convenience --------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> int:
        """Bump a counter, creating it on first use."""
        return self.counter(name).inc(n)

    def value(self, name: str) -> float:
        """Current value of a counter or gauge by name."""
        counter = self._counters.get(name)
        if counter is not None:
            return counter.value
        gauge = self._gauges.get(name)
        if gauge is not None:
            return gauge.get()
        raise I2OError(f"no metric named {name!r}")

    # -- export -------------------------------------------------------------
    def snapshot(self) -> dict[str, float]:
        """Flatten every instrument to ``name -> number``, sampling
        callback gauges and expanding histograms to cumulative
        ``_bucket_le_*`` / ``_count`` / ``_sum`` keys."""
        out: dict[str, float] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, gauge in self._gauges.items():
            out[name] = gauge.get()
        for histogram in self._histograms.values():
            out.update(histogram.export())
        return out

    def render_prometheus(self, labels: Mapping[str, object] | None = None) -> str:
        """This registry's snapshot in the Prometheus text format.

        Plain Prometheus mode: exemplars are *omitted* — the classic
        text parser chokes on the ``#`` exemplar suffix.  Use
        :meth:`render_openmetrics` to expose them.
        """
        return "\n".join(prometheus_lines(self.snapshot(), labels or {})) + "\n"

    def render_openmetrics(
        self, labels: Mapping[str, object] | None = None
    ) -> str:
        """The snapshot in OpenMetrics text format, exemplars included.

        Histogram bucket lines carry their latest captured exemplar in
        the OpenMetrics syntax (``... # {trace_id="..."} value ts``),
        linking a slow bucket straight to a stitched trace id; every
        other instrument renders exactly as in Prometheus mode.  Ends
        with the mandatory ``# EOF`` terminator.
        """
        return "\n".join(
            openmetrics_lines(
                self.snapshot(), labels or {},
                list(self._histograms.values()),
            )
        ) + "\n"


def prometheus_lines(
    flat: Mapping[str, float], labels: Mapping[str, object]
) -> list[str]:
    """Render a flat snapshot as ``repro_<name>{labels} value`` lines.

    Histogram keys produced by :meth:`Histogram.export` are folded back
    into a proper ``le`` label so Prometheus tooling sees a native
    histogram series.
    """
    base = ",".join(f'{k}="{v}"' for k, v in labels.items())
    lines: list[str] = []
    for key in sorted(flat, key=_bucket_sort_key):
        value = flat[key]
        name, sep, bound = key.partition("_bucket_le_")
        if sep:
            le = "+Inf" if bound == "inf" else bound.replace("p", ".").replace("m", "-")
            labelset = f'{base},le="{le}"' if base else f'le="{le}"'
            lines.append(f"repro_{name}_bucket{{{labelset}}} {_fmt_value(value)}")
        else:
            suffix = f"{{{base}}}" if base else ""
            lines.append(f"repro_{key}{suffix} {_fmt_value(value)}")
    return lines


def openmetrics_lines(
    flat: Mapping[str, float],
    labels: Mapping[str, object],
    histograms: Iterable[Histogram] = (),
) -> list[str]:
    """Render a flat snapshot in OpenMetrics text format.

    Identical line shape to :func:`prometheus_lines` except that label
    values are escaped per the OpenMetrics ABNF, bucket lines whose
    histogram captured an exemplar grow the
    `` # {trace_id="..."} value timestamp`` suffix, and the exposition
    ends with ``# EOF``.
    """
    by_name = {h.name: h for h in histograms}
    base = ",".join(
        f'{k}="{openmetrics_escape(str(v))}"' for k, v in labels.items()
    )
    lines: list[str] = []
    for key in sorted(flat, key=_bucket_sort_key):
        value = flat[key]
        name, sep, bound = key.partition("_bucket_le_")
        if sep:
            le = "+Inf" if bound == "inf" else bound.replace("p", ".").replace("m", "-")
            labelset = f'{base},le="{le}"' if base else f'le="{le}"'
            line = f"repro_{name}_bucket{{{labelset}}} {_fmt_value(value)}"
            hist = by_name.get(name)
            if hist is not None:
                numeric = float("inf") if bound == "inf" else float(
                    bound.replace("p", ".").replace("m", "-")
                )
                ex = hist.exemplar_for(numeric)
                if ex is not None:
                    line += _exemplar_suffix(ex)
            lines.append(line)
        else:
            suffix = f"{{{base}}}" if base else ""
            lines.append(f"repro_{key}{suffix} {_fmt_value(value)}")
    lines.append("# EOF")
    return lines


def openmetrics_escape(value: str) -> str:
    """Escape a label value per the OpenMetrics exposition ABNF:
    backslash, double-quote and newline, in that order."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _exemplar_suffix(ex: Exemplar) -> str:
    pairs = ",".join(
        f'{k}="{openmetrics_escape(v)}"' for k, v in ex.labels().items()
    )
    return f" # {{{pairs}}} {_fmt_value(ex.value)} {ex.ts:.3f}"


def _bucket_sort_key(key: str) -> tuple[str, float, str]:
    """Sort plain metrics lexically but bucket series by ascending bound."""
    name, sep, bound = key.partition("_bucket_le_")
    if not sep:
        return (key, float("-inf"), "")
    if bound == "inf":
        return (name, float("inf"), "")
    try:
        return (name, float(bound.replace("p", ".").replace("m", "-")), "")
    except ValueError:  # pragma: no cover - defensive
        return (name, float("inf"), bound)


def _fmt_value(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))
