"""The XDAQ executive: routing, dispatching, memory and lifecycle.

One executive runs per processing node.  It is deliberately *lean*
(paper §4: "After all, the executive is very lean as it acts only as a
delegate"): devices keep their own dispatch tables; the executive owns
only the loop of control, the frame memory, the TiD space and the
routes.

Message flow (paper figure 4):

1. a device calls :meth:`frame_send` → the frame is posted to the
   **outbound** queue of the messaging instance;
2. the executive routes it: a local target goes straight to the
   priority scheduler, a proxy target goes to the Peer Transport Agent
   (3) which hands it to the Peer Transport serving the route (4);
3. on the receiving node the PT (5) gives the frame to the PTA (6),
   which posts it to the **inbound** queue (7);
4. the dispatch loop demultiplexes the frame through the target
   device's dispatch table and upcalls the functor (8).
"""

from __future__ import annotations

import logging
import threading
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.device import RETAIN, Listener
from repro.core.interrupts import InterruptController
from repro.core.metrics import MetricsRegistry
from repro.core.probes import Probes
from repro.core.tracing import FrameTracer, is_trace_context
from repro.core.queues import MessagingInstance
from repro.core.registry import ModuleRegistry
from repro.core.scheduler import PriorityScheduler
from repro.core.states import DeviceState
from repro.core.timer import TimerService
from repro.core.watchdog import HandlerWatchdog, WatchdogTimeout
from repro.hw.clock import Clock, WallClock
from repro.i2o.errors import AddressingError, I2OError
from repro.i2o.frame import (
    DEFAULT_PRIORITY,
    FLAG_FAIL,
    FLAG_REPLY,
    HEADER_SIZE,
    NUM_PRIORITIES,
    Frame,
    SharedFrame,
)
from repro.i2o.function_codes import (
    EXEC_DDM_DESTROY,
    EXEC_LCT_NOTIFY,
    EXEC_PATH_CLAIM,
    EXEC_STATUS_GET,
    EXEC_SYS_ENABLE,
    EXEC_SYS_HALT,
    EXEC_SYS_QUIESCE,
    PRIVATE,
    function_name,
)
from repro.i2o.tid import (
    EXECUTIVE_TID,
    PTA_TID,
    TID_BROADCAST,
    Tid,
    TidAllocator,
    check_tid,
)
from repro.flightrec.records import (
    EV_DISPATCH_BEGIN,
    EV_DISPATCH_END,
    EV_DISPATCH_ERROR,
    EV_FRAME_ALLOC,
    EV_FRAME_RELEASE,
    EV_HARD_STOP,
    EV_LIVENESS,
    EV_POOL_EXHAUSTED,
    EV_SANITIZER,
    EV_WATCHDOG_TRIP,
    LIVE_ALIVE,
    LIVE_DEAD,
    LIVE_SUSPECT,
    SAN_DOUBLE_FREE,
    SAN_USE_AFTER_FREE,
    pack3,
)
from repro.mem.pool import BufferPool, PoolExhausted

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.dataflow.routing import CreditLedger, DataflowOutbox
    from repro.flightrec.recorder import FlightRecorder
    from repro.profile.sampler import DispatchSlot
    from repro.profile.watch import SlowFrameWatch
    from repro.transports.agent import PeerTransportAgent

logger = logging.getLogger(__name__)

#: Upper bounds (ns) for the optional dispatch-latency histogram.
#: Spaced to resolve both the paper's µs-scale framework overheads and
#: pathological multi-ms handlers.
DISPATCH_LATENCY_BUCKETS_NS: tuple[int, ...] = (
    1_000, 5_000, 10_000, 50_000, 100_000, 500_000, 1_000_000, 10_000_000,
)


@dataclass(frozen=True)
class Route:
    """Where a proxy TiD leads: a device on another node.

    ``transport`` optionally pins the route to a named peer transport
    (paper §4: "As it is possible to configure each device instance
    with a route, we can use multiple transports to send and receive in
    parallel"); ``None`` lets the PTA pick its default for the node.

    A ``parked`` route belongs to a peer declared DEAD by the
    supervision layer and no replica could take it over: frames sent
    to it are dead-lettered, so the initiator receives the standard
    I2O failure reply instead of waiting forever.
    """

    node: int
    remote_tid: Tid
    transport: str | None = None
    parked: bool = False


class _ExecutiveDevice(Listener):
    """The executive's own device personality (TiD 0).

    Paper §3.5: "All modules, user applications, the peer transports
    and even the executive get such a TiD.  Thus, they are all valid
    I2O devices."
    """

    device_class = "executive"

    def __init__(self, executive: "Executive") -> None:
        super().__init__(name=f"executive@{executive.node}")
        self._exe = executive
        self.table.bind(EXEC_STATUS_GET, self._on_status_get)
        self.table.bind(EXEC_SYS_ENABLE, self._on_sys_enable)
        self.table.bind(EXEC_SYS_QUIESCE, self._on_sys_quiesce)
        self.table.bind(EXEC_SYS_HALT, self._on_sys_halt)
        self.table.bind(EXEC_LCT_NOTIFY, self._on_lct_notify)
        self.table.bind(EXEC_DDM_DESTROY, self._on_ddm_destroy)
        self.table.bind(EXEC_PATH_CLAIM, self._on_path_claim)

    def _on_status_get(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        from repro.core.device import encode_params

        exe = self._exe
        self.reply(
            frame,
            encode_params(
                {
                    "node": str(exe.node),
                    "state": exe.state.value,
                    "devices": str(len(exe.devices())),
                    "dispatched": str(exe.dispatched),
                    "dropped": str(exe.dropped),
                    "rebinds": str(exe.rebinds),
                    "parks": str(exe.parks),
                    "peers_dead": str(len(exe.peers.dead_nodes())),
                }
            ),
        )

    def _broadcast_state(self, frame: Frame, target: DeviceState) -> None:
        if frame.is_reply:
            return
        failures = self._exe._set_all_states(target)
        self.reply(frame, fail=bool(failures))

    def _on_sys_enable(self, frame: Frame) -> None:
        self._broadcast_state(frame, DeviceState.ENABLED)

    def _on_sys_quiesce(self, frame: Frame) -> None:
        self._broadcast_state(frame, DeviceState.QUIESCED)

    def _on_sys_halt(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        self.reply(frame)
        self._exe.request_halt()

    def _on_lct_notify(self, frame: Frame) -> None:
        """Reply with the logical configuration table: tid=class pairs."""
        if frame.is_reply:
            return
        from repro.core.device import encode_params

        table = {
            str(tid): dev.device_class for tid, dev in self._exe._devices.items()
        }
        self.reply(frame, encode_params(table))

    def _on_ddm_destroy(self, frame: Frame) -> None:
        """Remove a device by TiD (ExecDdmDestroy over the wire).

        Payload: decimal TiD.  Infrastructure TiDs (executive, PTA,
        transports) are refused — a controller cannot saw off the
        branch the control channel sits on.
        """
        if frame.is_reply:
            return
        from repro.core.device import decode_params

        try:
            tid = int(bytes(frame.payload).decode("utf-8"))
            victim = self._exe.device(tid)
            if victim.device_class in (
                "executive", "peer_transport_agent", "peer_transport",
            ) or tid in (EXECUTIVE_TID, PTA_TID):
                raise I2OError(f"TiD {tid} is infrastructure")
            self._exe.uninstall(tid)
        except (ValueError, I2OError):
            self.reply(frame, fail=True)
        else:
            self.reply(frame)

    def _on_path_claim(self, frame: Frame) -> None:
        """Create a proxy on this node by request (ExecPathClaim).

        Payload: params map with ``node`` and ``tid`` (and optionally
        ``transport``); reply carries the local proxy TiD.  This is how
        a controller pre-builds routes for devices it is about to
        configure (paper §4: plugged-in classes trigger proxy creation).
        """
        if frame.is_reply:
            return
        from repro.core.device import decode_params, encode_params

        try:
            request = decode_params(frame.payload)
            proxy = self._exe.create_proxy(
                int(request["node"]),
                int(request["tid"]),
                transport=request.get("transport") or None,
            )
        except (KeyError, ValueError, I2OError):
            self.reply(frame, fail=True)
        else:
            self.reply(frame, encode_params({"proxy": str(proxy)}))


class Executive:
    """One processing node's executive program."""

    def __init__(
        self,
        node: int = 0,
        *,
        pool: BufferPool | None = None,
        clock: Clock | None = None,
        probes: Probes | None = None,
        watchdog: HandlerWatchdog | None = None,
        max_dispatch_per_step: int = 16,
        metrics: MetricsRegistry | None = None,
        tracer: FrameTracer | None = None,
        flightrec: "FlightRecorder | None" = None,
    ) -> None:
        self.node = node
        self.pool = pool if pool is not None else BufferPool()
        self.clock: Clock = clock if clock is not None else WallClock()
        self.probes = probes if probes is not None else Probes("off")
        self.watchdog = watchdog
        self.max_dispatch_per_step = max_dispatch_per_step
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        if tracer is not None and tracer.node is None:
            tracer.node = node
        #: ``None`` disables tracing entirely: the hot path pays one
        #: ``is not None`` test per hook, nothing else.
        self.tracer = tracer
        #: the black-box flight recorder; same off-mode discipline as
        #: the tracer (set via :meth:`attach_flight_recorder`).
        self.flightrec: "FlightRecorder | None" = None
        #: backpressure state, set by bootstrap when the spec enables
        #: the dataflow layer; ``None`` keeps the dispatch path at one
        #: ``is None`` test (the tracer/flightrec off-mode discipline).
        self.dataflow: "CreditLedger | None" = None
        self.dataflow_outbox: "DataflowOutbox | None" = None
        #: current-dispatch slot for the sampling profiler: the
        #: dispatch loop publishes ``(target, function, xfunction)``
        #: with one reference store per dispatch while a profiler is
        #: attached; ``None`` keeps the hot path at one ``is None``
        #: test (the tracer off-mode discipline).
        self.profile: "DispatchSlot | None" = None
        #: slow-frame watchdog: when set, a dispatch exceeding its
        #: budget records EV_SLOW_FRAME and spills the flight
        #: recorder; same ``is None`` off-mode contract.
        self.slow_watch: "SlowFrameWatch | None" = None

        self.tids = TidAllocator()
        self.scheduler = PriorityScheduler()
        self.msgi = MessagingInstance()
        self.timers = TimerService(self)
        self.interrupts = InterruptController(self)
        self.registry = ModuleRegistry()
        self.state = DeviceState.INITIALISED

        self._devices: dict[Tid, Listener] = {}
        #: name → TiD index behind ``find_device`` (bootstrap and
        #: telemetry sweeps look devices up by name per device, so the
        #: O(n) scan was quadratic across a sweep)
        self._names: dict[str, Tid] = {}
        self._routes: dict[Tid, Route] = {}
        self._proxies: dict[tuple[int, Tid, str | None], Tid] = {}
        #: Serialises proxy/route table writes: task-mode transports
        #: call ``create_proxy`` from their receive threads while the
        #: loop of control rebinds/parks routes on the dispatch thread.
        self._route_lock = threading.Lock()
        self.pta: "PeerTransportAgent | None" = None
        self._pollable: list[object] = []  # polling-mode PTs, set by the PTA

        # Peer liveness table (fed by a HeartbeatService, if installed).
        from repro.core.liveness import PeerTable

        self.peers = PeerTable()

        self.dispatched = 0
        self.dropped = 0
        self.handler_errors = 0
        self.rebinds = 0
        self.parks = 0
        self._halt_requested = False
        self._thread: threading.Thread | None = None
        self._thread_stop = threading.Event()

        # Install the executive's own device personality at TiD 0.
        self.tids.reserve(EXECUTIVE_TID)
        self._self_device = _ExecutiveDevice(self)
        self._self_device.plugin(self, EXECUTIVE_TID)
        self._devices[EXECUTIVE_TID] = self._self_device
        self._names[self._self_device.name] = EXECUTIVE_TID

        self._dispatch_hist = self.metrics.histogram(
            "exe_dispatch_ns", DISPATCH_LATENCY_BUCKETS_NS
        )
        self._register_core_metrics()
        if flightrec is not None:
            self.attach_flight_recorder(flightrec)

    def _register_core_metrics(self) -> None:
        """Expose hot-path state through callback gauges.

        The dispatch loop keeps bumping plain ints; the registry only
        reads them when a snapshot is taken, so being observable costs
        the hot path nothing.
        """
        m = self.metrics
        m.gauge("exe_dispatched_total", lambda: self.dispatched)
        m.gauge("exe_dropped_total", lambda: self.dropped)
        m.gauge("exe_handler_errors_total", lambda: self.handler_errors)
        m.gauge("exe_route_rebinds_total", lambda: self.rebinds)
        m.gauge("exe_route_parks_total", lambda: self.parks)
        m.gauge("exe_devices", lambda: len(self._devices))
        m.gauge("exe_scheduler_depth", lambda: len(self.scheduler))
        for priority in range(NUM_PRIORITIES):
            m.gauge(
                f"exe_fifo_depth_p{priority}",
                lambda p=priority: self.scheduler.depth_of(p),
            )
        m.gauge("exe_scheduler_pushed_total", lambda: self.scheduler.pushed)
        m.gauge("pool_blocks_in_flight", lambda: self.pool.in_flight)
        m.gauge(
            "pool_bytes_internal_fragmentation",
            lambda: self.pool.internal_fragmentation,
        )
        m.gauge("timer_fired_total", lambda: self.timers.fired)
        m.gauge(
            "exe_watchdog_trips_total",
            lambda: self.watchdog.overruns if self.watchdog is not None else 0,
        )
        m.gauge(
            "trace_spans_dropped_total",
            lambda: self.tracer.dropped if self.tracer is not None else 0,
        )

    def attach_flight_recorder(self, recorder: "FlightRecorder") -> None:
        """Wire a black-box :class:`~repro.flightrec.FlightRecorder`.

        Adopts this executive's node id and clock when the recorder
        has none, subscribes liveness transitions from the peer table,
        hooks sanitizer violations (when the pool's allocator exposes
        the ``on_violation`` callback slot) so a use-after-free or
        double free spills the ring before raising, and exposes the
        recorder's own accounting as callback gauges.  The dispatch
        hot path then pays one ``is None`` test plus one ring write
        per hook — the tracer discipline.
        """
        if self.flightrec is not None:
            raise I2OError(
                f"node {self.node} already has a flight recorder attached"
            )
        if recorder.node is None:
            recorder.node = self.node
        if recorder.clock is None:
            recorder.clock = self.clock
        self.flightrec = recorder
        record = recorder.record
        self.peers.on_alive(lambda node: record(EV_LIVENESS, node, LIVE_ALIVE))
        self.peers.on_suspect(
            lambda node: record(EV_LIVENESS, node, LIVE_SUSPECT)
        )
        self.peers.on_dead(lambda node: record(EV_LIVENESS, node, LIVE_DEAD))
        allocator = self.pool.allocator
        if hasattr(allocator, "on_violation"):
            codes = {
                "double-free": SAN_DOUBLE_FREE,
                "use-after-free": SAN_USE_AFTER_FREE,
            }

            def spill_violation(kind: str) -> None:
                record(EV_SANITIZER, codes.get(kind, 0))
                recorder.spill("sanitizer")

            allocator.on_violation = spill_violation
        m = self.metrics
        m.gauge("flightrec_records_total", lambda: recorder.total_records)
        m.gauge("flightrec_dropped_total", lambda: recorder.dropped_records)
        m.gauge("flightrec_spills_total", lambda: recorder.spills)

    # ------------------------------------------------------------------
    # device management
    # ------------------------------------------------------------------
    def install(self, device: Listener, tid: Tid | None = None) -> Tid:
        """Register a device module; returns its freshly assigned TiD."""
        if device.executive is not None:
            raise I2OError(f"device {device.name!r} is already installed")
        if tid is None:
            tid = self.tids.allocate()
        else:
            self.tids.reserve(tid)
        self._devices[tid] = device
        # First installation wins a contested name, matching the old
        # scan-in-insertion-order lookup.
        self._names.setdefault(device.name, tid)
        device.plugin(self, tid)
        logger.debug("node %s: installed %s at TiD %d", self.node, device.name, tid)
        return tid

    def uninstall(self, tid: Tid) -> Listener:
        """Remove a device (ExecDdmDestroy); drops its queued frames
        and disarms every timer the device still owns."""
        device = self._devices.pop(tid, None)
        if device is None:
            raise AddressingError(f"no device at TiD {tid}")
        if self._names.get(device.name) == tid:
            del self._names[device.name]
            # Promote the next device carrying the same name, if any —
            # again in insertion order, like the old scan.
            for other_tid, other in self._devices.items():
                if other.name == device.name:
                    self._names[device.name] = other_tid
                    break
        for frame in self.scheduler.drop_device(tid):
            self._release_frame(frame)
        self.timers.cancel_owned(tid)
        device.unplug()
        self.tids.release(tid)
        self.registry.forget(tid)
        return device

    def device(self, tid: Tid) -> Listener:
        dev = self._devices.get(tid)
        if dev is None:
            raise AddressingError(f"no device at TiD {tid} on node {self.node}")
        return dev

    def devices(self) -> dict[Tid, Listener]:
        return dict(self._devices)

    def find_device(self, name: str) -> Listener:
        tid = self._names.get(name)
        if tid is None:
            raise AddressingError(
                f"no device named {name!r} on node {self.node}"
            )
        return self._devices[tid]

    def _set_all_states(self, target: DeviceState) -> list[Tid]:
        """Drive every application device to ``target``; returns failures."""
        failures: list[Tid] = []
        for tid, dev in list(self._devices.items()):
            if tid == EXECUTIVE_TID:
                continue
            try:
                dev.set_state(target)
                if target is DeviceState.ENABLED:
                    dev.on_enable()
                elif target is DeviceState.QUIESCED:
                    dev.on_quiesce()
            except I2OError:
                failures.append(tid)
        self.state = target
        return failures

    # ------------------------------------------------------------------
    # proxies and routes
    # ------------------------------------------------------------------
    def create_proxy(
        self, node: int, remote_tid: Tid, transport: str | None = None
    ) -> Tid:
        """Allocate a local TiD standing in for a device on ``node``.

        Paper §3.4: "To communicate with a remote device, the executive
        creates a local TiD for the target device along with information
        how to reach this device ... compared to the Proxy pattern."
        Idempotent per ``(node, remote_tid)``.
        """
        check_tid(remote_tid)
        if node == self.node:
            # A proxy for a local device is just the device itself.
            return remote_tid
        with self._route_lock:
            existing = self._proxies.get((node, remote_tid, transport))
            if existing is not None:
                return existing
            tid = self.tids.allocate()
            self._routes[tid] = Route(
                node=node, remote_tid=remote_tid, transport=transport)
            self._proxies[(node, remote_tid, transport)] = tid
            return tid

    def route_for(self, tid: Tid) -> Route | None:
        return self._routes.get(tid)

    def routes_to(self, node: int, *, include_parked: bool = False) -> list[Tid]:
        """Proxy TiDs whose route currently leads to ``node``."""
        return sorted(
            tid for tid, route in self._routes.items()
            if route.node == node and (include_parked or not route.parked)
        )

    def rebind_route(
        self,
        proxy_tid: Tid,
        node: int,
        remote_tid: Tid,
        transport: str | None = None,
    ) -> Route:
        """Point an existing proxy at a different remote device.

        This is the failover primitive: every frame already addressed
        to ``proxy_tid`` — pending replies included — now reaches the
        replacement device, without any sender learning a new TiD.
        """
        old = self._routes.get(proxy_tid)
        if old is None:
            raise AddressingError(f"TiD {proxy_tid} is not a proxy")
        check_tid(remote_tid)
        if node == self.node:
            raise AddressingError("cannot rebind a route to the local node")
        new = Route(node=node, remote_tid=remote_tid, transport=transport)
        with self._route_lock:
            self._proxies.pop((old.node, old.remote_tid, old.transport), None)
            self._routes[proxy_tid] = new
            # Keep proxy idempotency pointing at the earliest binding.
            self._proxies.setdefault((node, remote_tid, transport), proxy_tid)
        self.rebinds += 1
        logger.info(
            "node %s: rebound proxy %d: %s:%d -> %s:%d",
            self.node, proxy_tid, old.node, old.remote_tid, node, remote_tid,
        )
        return new

    def park_route(self, proxy_tid: Tid) -> Route:
        """Mark a proxy's route unusable; senders get failure replies."""
        old = self._routes.get(proxy_tid)
        if old is None:
            raise AddressingError(f"TiD {proxy_tid} is not a proxy")
        if not old.parked:
            with self._route_lock:
                self._routes[proxy_tid] = Route(
                    node=old.node, remote_tid=old.remote_tid,
                    transport=old.transport, parked=True,
                )
            self.parks += 1
        return self._routes[proxy_tid]

    def unpark_route(self, proxy_tid: Tid) -> Route:
        """Restore a parked route (the peer rejoined)."""
        old = self._routes.get(proxy_tid)
        if old is None:
            raise AddressingError(f"TiD {proxy_tid} is not a proxy")
        if old.parked:
            with self._route_lock:
                self._routes[proxy_tid] = Route(
                    node=old.node, remote_tid=old.remote_tid,
                    transport=old.transport,
                )
        return self._routes[proxy_tid]

    def is_local(self, tid: Tid) -> bool:
        return tid in self._devices

    # ------------------------------------------------------------------
    # frame API (the narrow component interface of paper §1)
    # ------------------------------------------------------------------
    def frame_alloc(
        self,
        payload_size: int,
        *,
        target: Tid,
        initiator: Tid = EXECUTIVE_TID,
        function: int = PRIVATE,
        xfunction: int = 0,
        priority: int = DEFAULT_PRIORITY,
        flags: int = 0,
        organization: int = 0,
    ) -> Frame:
        """Loan a pool block and shape it into an addressed frame.

        The payload size is declared in the header; content is written
        by the caller directly into ``frame.payload`` (zero-copy
        buffer loaning).
        """
        with self.probes.measure("frame_alloc"):
            try:
                block = self.pool.alloc(HEADER_SIZE + payload_size)
            except PoolExhausted:
                if self.flightrec is not None:
                    self.flightrec.record(
                        EV_POOL_EXHAUSTED, HEADER_SIZE + payload_size
                    )
                raise
            frame = Frame(block.memory[: HEADER_SIZE + payload_size], block=block)
            frame.set_header(
                target=target,
                initiator=initiator,
                function=function,
                payload_size=payload_size,
                priority=priority,
                flags=flags,
                xfunction=xfunction,
                organization=organization,
            )
        if self.flightrec is not None:
            self.flightrec.record(
                EV_FRAME_ALLOC, HEADER_SIZE + payload_size,
                self.pool.in_flight,
            )
        return frame

    def frame_send(self, frame: Frame) -> None:
        """Post a frame for routing (frameSend).

        Pool-backed frames were header-validated at ``frame_alloc`` and
        their payload views cannot overrun the header, so only foreign
        buffers (hand-built bytearrays) are re-validated here; wire
        input is always validated at ingest.
        """
        if frame.block is None:
            frame.validate()
        if self.tracer is not None:
            self.tracer.stamp(frame)
        self.msgi.post_outbound(frame)

    def frame_free(self, frame: Frame) -> None:
        """Release a frame's block back to the pool (frameFree)."""
        with self.probes.measure("frame_free"):
            if frame.block is not None:
                if self.flightrec is not None:
                    # Context read *before* the free: afterwards the
                    # block may recycle under the sanitizer's poison.
                    self.flightrec.record(
                        EV_FRAME_RELEASE, frame.transaction_context
                    )
                self.pool.free(frame.block)
                frame.block = None

    def post_inbound(self, frame: Frame) -> None:
        """Entry point for peer transports and the timer service."""
        self.msgi.post_inbound(frame)

    # ------------------------------------------------------------------
    # the loop of control
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """One scheduling quantum; returns True if any work was done."""
        worked = False
        if len(self.timers) and self.timers.poll(self.clock.now_ns()):
            worked = True
        for pt in self._pollable:
            if pt.poll():  # type: ignore[attr-defined]
                worked = True
        if self._route_outbound():
            worked = True
        if self._intake_inbound():
            worked = True
        for _ in range(self.max_dispatch_per_step):
            if not self._dispatch_one():
                break
            worked = True
            # Dispatching may have generated sends: route them before
            # the next dispatch so request/reply chains complete within
            # one call in single-threaded use.
            self._route_outbound()
            self._intake_inbound()
        return worked

    def run_until_idle(self, max_steps: int = 1_000_000) -> int:
        """Step until no work remains; returns steps executed.

        Only meaningful in single-threaded use (tests, simulation);
        raises if the budget is exhausted, which almost always means a
        message loop.
        """
        for count in range(max_steps):
            if not self.step():
                return count
        raise I2OError(f"run_until_idle exceeded {max_steps} steps")

    @property
    def idle(self) -> bool:
        if not self.msgi.idle or not self.scheduler.empty:
            return False
        return not any(
            getattr(pt, "has_pending", False) for pt in self._pollable
        )

    def request_halt(self) -> None:
        self._halt_requested = True
        self._thread_stop.set()

    # -- native thread mode -------------------------------------------------
    def start(self, poll_interval: float = 0.001) -> None:
        """Run the loop of control in a dedicated thread (native plane)."""
        if self._thread is not None:
            raise I2OError("executive already started")
        self._thread_stop.clear()
        self._halt_requested = False

        def loop() -> None:
            while not self._thread_stop.is_set():
                if not self.step():
                    self.msgi.wait_for_work(timeout=poll_interval)
                if self._halt_requested:
                    break

        self._thread = threading.Thread(
            target=loop, name=f"executive-{self.node}", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        self._thread_stop.set()
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise I2OError(f"executive thread on node {self.node} did not stop")
        self._thread = None
        self._report_pool_leaks()

    def hard_stop(self) -> None:
        """Kill this executive as a crashed process (``kill -9``).

        The in-process analogue of abrupt node death, for durability
        and rejoin tests: every frame this executive still holds — in
        the messaging queues, the scheduler, or staged inside its
        transports — is released, exactly as the OS reclaims a dead
        process's memory (staged blocks may belong to *other* nodes'
        pools; they must not leak).  Timers are disarmed, transports
        detach from shared media so peers fail fast and a replacement
        can rejoin under the same node id.  Nothing is flushed and no
        device hook runs: anything not already journaled or
        snapshotted is gone — that is the point.  Recovery happens in
        a *new* executive built from the durable state, never by
        reusing this object.
        """
        if self._thread is not None:
            self._thread_stop.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._halt_requested = True
        if self.flightrec is not None:
            self.flightrec.record(EV_HARD_STOP)
        self.timers.cancel_all()
        detached: set[int] = set()
        for pt in self._pollable:
            pt.crash_detach()  # type: ignore[attr-defined]
            detached.add(id(pt))
        if self.pta is not None:
            for pt in self.pta.transports():
                if id(pt) not in detached:
                    pt.crash_detach()
        while (frame := self.msgi.take_outbound()) is not None:
            self._release_frame(frame)
        while (frame := self.msgi.take_inbound()) is not None:
            self._release_frame(frame)
        while (frame := self.scheduler.pop()) is not None:
            self._release_frame(frame)
        self.state = DeviceState.FAILED
        if self.flightrec is not None:
            # Spill last so the drain's frame-release records make it
            # into the black box before the ring goes to disk.
            self.flightrec.spill("hard_stop")

    def _report_pool_leaks(self) -> None:
        """Under ``REPRO_SANITIZE=1``, surface any blocks still loaned
        at shutdown with the tracebacks of the allocations that leaked
        them.  A warning, not an exception: ``stop()`` runs in teardown
        paths where raising would mask the original failure — strict
        callers use :func:`repro.analysis.sanitize.assert_clean`.
        """
        from repro.analysis.sanitize import leak_report

        leaks = leak_report(self.pool)
        if leaks:
            warnings.warn(
                f"executive {self.node} shut down with "
                f"{len(leaks)} leaked pool block(s):\n" + "\n".join(leaks),
                ResourceWarning,
                stacklevel=3,
            )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _route_outbound(self) -> bool:
        routed = False
        while True:
            frame = self.msgi.take_outbound()
            if frame is None:
                return routed
            routed = True
            self._route(frame)

    def _route(self, frame: Frame) -> None:
        target = frame.target
        if target == TID_BROADCAST:
            self._broadcast(frame)
        elif target in self._devices:
            self._enqueue(frame)
        elif target in self._routes:
            route = self._routes[target]
            if route.parked:
                self._dead_letter(
                    frame,
                    f"route parked: node {route.node} is dead",
                )
            elif self.pta is None:
                self._dead_letter(frame, "no peer transport agent installed")
            else:
                try:
                    self.pta.forward(frame, route)
                except I2OError as exc:
                    self._dead_letter(frame, f"transport failure: {exc}")
        else:
            self._dead_letter(frame, f"unroutable TiD {target}")

    def _broadcast(self, frame: Frame) -> None:
        """Deliver one shared, refcounted frame to every local device
        except the initiator.

        The paper's buffer loaning applied to fan-out: instead of N
        alloc+copy clones, every listener gets a :class:`SharedFrame`
        aliasing the same pool block (one ``addref`` per delivery);
        the block recycles when the last dispatch — or a RETAINing
        handler's eventual ``frame_free`` — drops its reference.
        """
        block = frame.block
        view = frame.view
        for tid in list(self._devices):
            if tid == frame.initiator:
                continue
            if block is not None:
                block.addref()
            self._enqueue(SharedFrame(view, block=block, target=tid))
        self._release_frame(frame)

    def _dead_letter(self, frame: Frame, reason: str) -> None:
        self.dropped += 1
        logger.warning(
            "node %s: dropping %s: %s", self.node, function_name(frame.function), reason
        )
        initiator = frame.initiator
        # Tell the initiator its request went nowhere — whether it is a
        # local device or a proxy for a remote one (an inbound frame's
        # initiator was rewritten to a local proxy TiD at ingest, so the
        # failure reply routes back across the wire).
        if not frame.is_reply and (
            initiator in self._devices or initiator in self._routes
        ):
            # Snapshot the headers the reply needs, then release the
            # original *before* allocating: if the pool is exhausted the
            # dropped frame must not leak on top of the lost reply.
            function = frame.function
            xfunction = frame.xfunction
            priority = frame.priority
            initiator_context = frame.initiator_context
            transaction_context = frame.transaction_context
            self._release_frame(frame)
            try:
                failure = self.frame_alloc(
                    0,
                    target=initiator,
                    initiator=EXECUTIVE_TID,
                    function=function,
                    xfunction=xfunction,
                    priority=priority,
                    flags=FLAG_REPLY | FLAG_FAIL,
                )
            except PoolExhausted:
                logger.warning(
                    "node %s: pool exhausted, failure reply to TiD %s lost",
                    self.node, initiator,
                )
                return
            failure.initiator_context = initiator_context
            failure.transaction_context = transaction_context
            self._route(failure)
            return
        self._release_frame(frame)

    def _intake_inbound(self) -> bool:
        took = False
        while True:
            frame = self.msgi.take_inbound()
            if frame is None:
                return took
            took = True
            if frame.target in self._devices:
                self._enqueue(frame)
            else:
                self._dead_letter(frame, f"inbound for unknown TiD {frame.target}")

    def _enqueue(self, frame: Frame) -> None:
        """Push a frame for dispatch, noting its queue-entry time when
        a tracer is installed (queue wait is a per-hop span field)."""
        if self.tracer is not None:
            self.tracer.note_enqueue(frame, self.clock.now_ns())
        self.scheduler.push(frame)

    def _dispatch_one(self) -> bool:
        frame = self.scheduler.pop()
        if frame is None:
            return False
        if self.dataflow is not None:
            # The frame left its priority FIFO: the consumer's queue
            # slot is free, so the emitting edge gets its credit back.
            self.dataflow.on_dispatched(
                self.node, frame.target, frame.function, frame.xfunction
            )
        tracer = self.tracer
        timed = self.metrics.timing
        fr = self.flightrec
        sw = self.slow_watch
        prof = self.profile
        if prof is not None:
            # Publish the dispatch context for the sampler thread: one
            # reference store of an immutable tuple, read racily but
            # atomically from the sampler side.
            prof.current = (frame.target, frame.function, frame.xfunction)
        if tracer is not None or timed or fr is not None or sw is not None:
            start_ns = self.clock.now_ns()
            token = tracer.begin_dispatch(frame, start_ns) if tracer else None
            # Snapshot before dispatch: the handler may free the frame,
            # after which reading it is a use-after-free.
            dispatch_ctx = frame.transaction_context
            dispatch_hdr = pack3(frame.target, frame.function, frame.xfunction)
        else:
            start_ns, token = 0, None
            dispatch_ctx = dispatch_hdr = 0
        if fr is not None:
            fr.record(
                EV_DISPATCH_BEGIN, dispatch_ctx, dispatch_hdr, t_ns=start_ns
            )
        try:
            with self.probes.measure("demultiplex"):
                device = self._devices.get(frame.target)
                if device is None:
                    # Device vanished between queueing and dispatch.
                    self._release_frame(frame)
                    self.dropped += 1
                    if prof is not None:
                        prof.current = None
                    if tracer is not None:
                        tracer.end_dispatch(token, self.clock.now_ns())
                    if fr is not None:
                        fr.record(EV_DISPATCH_END, dispatch_ctx, dispatch_hdr)
                    return True
                functor = device.table.lookup(frame)
            with self.probes.measure("upcall"):
                thunk = functor.prepare(frame)
            accrued_before = self.probes.accrued_ns
            with self.probes.measure("application"):
                if self.watchdog is not None and self.probes.mode != "model":
                    with self.watchdog.guard(label=device.name):
                        result = thunk()
                else:
                    result = thunk()
            if (
                self.watchdog is not None
                and self.probes.mode == "model"
                and (self.probes.accrued_ns - accrued_before)
                > self.watchdog.limit_ns
            ):
                # Simulation plane: the handler's *modelled* cost blew
                # the budget — same quarantine as a wall-clock overrun.
                self.watchdog.overruns += 1
                raise WatchdogTimeout(
                    f"handler {device.name} modelled cost exceeded "
                    f"{self.watchdog.limit_ns} ns"
                )
        except WatchdogTimeout as exc:
            self._quarantine(frame.target, str(exc))
            result = None
        except Exception as exc:  # fault tolerance: a bad handler must
            # never take the executive down (paper §3.2)
            self.handler_errors += 1
            logger.error(
                "node %s: handler error for %s at TiD %d: %s",
                self.node,
                function_name(frame.function),
                frame.target,
                exc,
            )
            if fr is not None:
                fr.record(EV_DISPATCH_ERROR, dispatch_ctx, dispatch_hdr)
                fr.spill("dispatch-exception")
            if not frame.is_reply and frame.initiator != frame.target:
                self._send_failure_reply(frame)
            result = None
        except BaseException:
            # A non-Exception escape — crash injection
            # (repro.analysis.crashpoints), KeyboardInterrupt — is
            # *meant* to take the loop of control down; ``except
            # Exception`` above deliberately lets it through.  But the
            # frame being dispatched must still return to its pool, or
            # the simulated process death leaks a real block.
            self._release_frame(frame)
            raise
        self.dispatched += 1
        with self.probes.measure("postprocess"):
            if result is not RETAIN:
                self.frame_free(frame)
        if prof is not None:
            prof.current = None
        if tracer is not None or timed or fr is not None or sw is not None:
            end_ns = self.clock.now_ns()
            elapsed = end_ns - start_ns
            if tracer is not None:
                tracer.end_dispatch(token, end_ns)
            if timed:
                # Traced dispatches pin their trace id to the latency
                # bucket they land in (OpenMetrics exemplars).
                self._dispatch_hist.observe(
                    elapsed,
                    dispatch_ctx if is_trace_context(dispatch_ctx) else 0,
                )
            if fr is not None:
                fr.record(
                    EV_DISPATCH_END, dispatch_ctx, dispatch_hdr,
                    elapsed, t_ns=end_ns,
                )
            if sw is not None and elapsed > sw.budget_ns:
                sw.note(dispatch_ctx, dispatch_hdr, elapsed, end_ns)
        return True

    def _send_failure_reply(self, request: Frame) -> None:
        device = self._devices.get(request.target)
        if device is None:
            return
        try:
            device.reply(request, fail=True)
        except I2OError:  # pragma: no cover - defensive
            logger.exception("failure reply failed")

    def _quarantine(self, tid: Tid, reason: str) -> None:
        """Watchdog action: mark the device FAILED and drop its queue."""
        device = self._devices.get(tid)
        if device is None:
            return
        logger.error("node %s: quarantining TiD %d: %s", self.node, tid, reason)
        device.state = DeviceState.FAILED
        if self.flightrec is not None:
            self.flightrec.record(EV_WATCHDOG_TRIP, int(tid))
        for frame in self.scheduler.drop_device(tid):
            self._release_frame(frame)
        if self.flightrec is not None:
            self.flightrec.spill("watchdog")

    def _release_frame(self, frame: Frame) -> None:
        if self.tracer is not None:
            self.tracer.forget(frame)
        if frame.block is not None:
            if self.flightrec is not None:
                self.flightrec.record(
                    EV_FRAME_RELEASE, frame.transaction_context
                )
            self.pool.free(frame.block)
            frame.block = None
