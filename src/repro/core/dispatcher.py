"""Per-device dispatch tables and functors.

Paper §3.2: *"Each device module in this concept is an active object
that contains a local dispatcher ... It is the sole responsibility of
each device to know what it shall do with the incoming message."* and
§4: *"There exist multiple dispatch tables for all the device class
instances, but the executive performs the dispatching."*

A :class:`DispatchTable` maps a message discriminator — the function
code, plus the ``XFunctionCode`` for private messages — to a
:class:`Functor`.  The two-step ``prepare``/``invoke`` split of the
functor mirrors the paper's whitebox stages: *upcall of functor*
(argument binding and validation) versus *application* (the user
code).
"""

from __future__ import annotations

from typing import Callable

from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.function_codes import PRIVATE, function_name

Handler = Callable[[Frame], object]

#: Key type: (function_code, xfunction_code); xfunction is 0 for
#: non-private functions.
DispatchKey = tuple[int, int]


class DispatchError(I2OError):
    """No handler bound and no default available."""


class Functor:
    """A bound message handler with an explicit upcall step."""

    __slots__ = ("handler", "key", "calls")

    def __init__(self, handler: Handler, key: DispatchKey) -> None:
        if not callable(handler):
            raise I2OError(f"handler for {key} is not callable")
        self.handler = handler
        self.key = key
        self.calls = 0

    def prepare(self, frame: Frame) -> Callable[[], object]:
        """The upcall: validate the frame against the binding and
        return the zero-argument application thunk."""
        func, xfunc = self.key
        is_default = self.key == (-1, -1)
        if not is_default and (
            frame.function != func or (func == PRIVATE and frame.xfunction != xfunc)
        ):
            raise DispatchError(
                f"frame {function_name(frame.function)}/0x{frame.xfunction:04X} "
                f"reached functor bound to {function_name(func)}/0x{xfunc:04X}"
            )
        self.calls += 1
        handler = self.handler
        return lambda: handler(frame)


class DispatchTable:
    """The local dispatcher of one device class instance.

    ``default`` (if set) catches any message without an exact binding —
    this implements the paper's *"The system can provide default
    procedures if for a given event no code is supplied.  This is also
    a way to come to a homogeneous view of software components with
    fault tolerant behaviour."*
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self._table: dict[DispatchKey, Functor] = {}
        self.default: Functor | None = None

    @staticmethod
    def key_for(function: int, xfunction: int = 0) -> DispatchKey:
        if function != PRIVATE and xfunction != 0:
            raise I2OError(
                f"xfunction only discriminates private messages, "
                f"got {function_name(function)} with xfunc 0x{xfunction:04X}"
            )
        return (function, xfunction if function == PRIVATE else 0)

    def bind(self, function: int, handler: Handler, xfunction: int = 0) -> Functor:
        """Associate ``handler`` with a message type (configuration-time
        association of code with events, paper §3.2).  Rebinding replaces
        the previous functor — that is how code download upgrades a
        running device."""
        key = self.key_for(function, xfunction)
        functor = Functor(handler, key)
        self._table[key] = functor
        return functor

    def bind_default(self, handler: Handler) -> Functor:
        self.default = Functor(handler, (-1, -1))
        return self.default

    def unbind(self, function: int, xfunction: int = 0) -> None:
        key = self.key_for(function, xfunction)
        if key not in self._table:
            raise DispatchError(f"{self.owner}: no binding for {key}")
        del self._table[key]

    def lookup(self, frame: Frame) -> Functor:
        """Demultiplex a frame to its functor (whitebox stage
        ``demultiplex``)."""
        key = (
            frame.function,
            frame.xfunction if frame.function == PRIVATE else 0,
        )
        functor = self._table.get(key)
        if functor is not None:
            return functor
        if self.default is not None:
            return self.default
        raise DispatchError(
            f"{self.owner or 'device'}: no handler for "
            f"{function_name(frame.function)}/0x{frame.xfunction:04X} "
            "and no default bound"
        )

    def bindings(self) -> list[DispatchKey]:
        return sorted(self._table)

    def __len__(self) -> int:
        return len(self._table)
