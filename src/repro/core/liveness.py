"""Cluster supervision: heartbeat liveness, peer tables, failover.

The paper's domain (§1: air-traffic control, physics DAQ) makes node
death a first-class event, yet the architecture it describes only
bounds *local* misbehaviour (watchdog quarantine).  This module adds
the missing cluster dimension with nothing but the framework's own
vocabulary:

* liveness beacons are ordinary private frames (``XF_HB_BEAT`` in the
  reserved 0xF0xx framework space);
* the beat cadence rides the **I2O timer facility** — expirations
  arrive as frames through the same queues (paper §3.2), so
  supervision obeys the same scheduling and probing as every other
  message;
* failover is expressed through the executive's route table: proxy
  TiDs of a DEAD node are re-bound to a surviving replica or *parked*
  so that senders get the paper's default-handler failure reply.

The division of labour:

:class:`PeerTable`
    Pure bookkeeping: per-peer ALIVE → SUSPECT → DEAD state machine
    with configurable miss thresholds and a consecutive-beat rejoin
    backoff.  One table lives on every :class:`Executive`.

:class:`HeartbeatService`
    The device that feeds the table: sends beats to the peers it
    monitors, counts the silence in between, and on a DEAD verdict
    runs the failover cascade — :class:`DiscoveryService` re-binds or
    parks the routes, then every local device exposing an
    ``on_peer_dead(node)`` hook is upcalled (ascending TiD order) so
    reliable endpoints abort retransmission and DAQ devices degrade
    gracefully.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable

from repro.config.schema import ParamSchema, ParamSpec, SchemaListenerMixin
from repro.core.device import Listener
from repro.core.states import PeerState
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.tid import Tid

#: Liveness beacon, one-way (0xF0xx is reserved framework space).
XF_HB_BEAT = 0xF010

_NODE = struct.Struct("<I")

PeerCallback = Callable[[int], None]


@dataclass
class PeerHealth:
    """One peer's liveness bookkeeping."""

    state: PeerState = PeerState.ALIVE
    misses: int = 0  # consecutive intervals without a beat
    rejoin_hits: int = 0  # consecutive beats while DEAD
    beats_seen: int = 0
    last_seen_ns: int = 0
    deaths: int = 0


@dataclass
class PeerTable:
    """ALIVE → SUSPECT → DEAD tracking for every watched peer.

    ``suspect_after`` and ``dead_after`` are *total* consecutive miss
    counts (``dead_after`` must exceed ``suspect_after``); a DEAD peer
    needs ``rejoin_after`` consecutive beats — any further miss resets
    the count — before it is readmitted as ALIVE.
    """

    suspect_after: int = 2
    dead_after: int = 4
    rejoin_after: int = 3
    _peers: dict[int, PeerHealth] = field(default_factory=dict)
    _on_dead: list[PeerCallback] = field(default_factory=list)
    _on_alive: list[PeerCallback] = field(default_factory=list)
    _on_suspect: list[PeerCallback] = field(default_factory=list)
    deaths: int = 0
    rejoins: int = 0
    suspicions: int = 0

    def configure(
        self,
        *,
        suspect_after: int | None = None,
        dead_after: int | None = None,
        rejoin_after: int | None = None,
    ) -> None:
        if suspect_after is not None:
            self.suspect_after = suspect_after
        if dead_after is not None:
            self.dead_after = dead_after
        if rejoin_after is not None:
            self.rejoin_after = rejoin_after
        if self.suspect_after < 1 or self.rejoin_after < 1:
            raise I2OError("liveness thresholds must be >= 1")
        if self.dead_after <= self.suspect_after:
            raise I2OError(
                f"dead_after ({self.dead_after}) must exceed "
                f"suspect_after ({self.suspect_after})"
            )

    # -- membership --------------------------------------------------------
    def watch(self, node: int) -> PeerHealth:
        """Start tracking ``node`` (idempotent); peers begin ALIVE."""
        return self._peers.setdefault(node, PeerHealth())

    def forget(self, node: int) -> None:
        self._peers.pop(node, None)

    def nodes(self) -> list[int]:
        return sorted(self._peers)

    def state(self, node: int) -> PeerState:
        peer = self._peers.get(node)
        if peer is None:
            raise I2OError(f"node {node} is not watched")
        return peer.state

    def health(self, node: int) -> PeerHealth:
        return self.watch(node)

    def alive_nodes(self) -> list[int]:
        return sorted(
            node for node, p in self._peers.items()
            if p.state is not PeerState.DEAD
        )

    def dead_nodes(self) -> list[int]:
        return sorted(
            node for node, p in self._peers.items()
            if p.state is PeerState.DEAD
        )

    # -- observer registration --------------------------------------------
    def on_dead(self, callback: PeerCallback) -> None:
        self._on_dead.append(callback)

    def on_alive(self, callback: PeerCallback) -> None:
        """Fires on *rejoin* only, not on the initial watch."""
        self._on_alive.append(callback)

    def on_suspect(self, callback: PeerCallback) -> None:
        self._on_suspect.append(callback)

    # -- evidence ----------------------------------------------------------
    def heartbeat_seen(self, node: int, now_ns: int = 0) -> None:
        """A beat from ``node`` arrived."""
        peer = self.watch(node)
        peer.beats_seen += 1
        peer.last_seen_ns = now_ns
        peer.misses = 0
        if peer.state is PeerState.DEAD:
            peer.rejoin_hits += 1
            if peer.rejoin_hits >= self.rejoin_after:
                peer.state = PeerState.ALIVE
                peer.rejoin_hits = 0
                self.rejoins += 1
                for callback in self._on_alive:
                    callback(node)
        elif peer.state is PeerState.SUSPECT:
            peer.state = PeerState.ALIVE

    def interval_missed(self, node: int) -> PeerState:
        """One beat interval elapsed without a beat from ``node``."""
        peer = self.watch(node)
        peer.misses += 1
        peer.rejoin_hits = 0  # a miss resets the rejoin backoff
        if peer.state is PeerState.ALIVE and peer.misses >= self.suspect_after:
            peer.state = PeerState.SUSPECT
            self.suspicions += 1
            for callback in self._on_suspect:
                callback(node)
        if peer.state is PeerState.SUSPECT and peer.misses >= self.dead_after:
            peer.state = PeerState.DEAD
            peer.deaths += 1
            self.deaths += 1
            for callback in self._on_dead:
                callback(node)
        return peer.state

    def export_counters(self) -> dict[str, object]:
        return {
            "watched": len(self._peers),
            "alive": sum(
                p.state is PeerState.ALIVE for p in self._peers.values()
            ),
            "suspect": sum(
                p.state is PeerState.SUSPECT for p in self._peers.values()
            ),
            "dead": sum(
                p.state is PeerState.DEAD for p in self._peers.values()
            ),
            "deaths": self.deaths,
            "rejoins": self.rejoins,
            "suspicions": self.suspicions,
        }


class HeartbeatService(SchemaListenerMixin, Listener):
    """Periodic liveness beacons plus the failover cascade.

    Every monitored peer is sent an ``XF_HB_BEAT`` each interval; the
    intervals in which a monitored peer stayed silent are charged to
    the executive's :class:`PeerTable`.  When the table declares a peer
    DEAD, the cascade runs on this node:

    1. the attached :class:`DiscoveryService` (if any) re-binds the
       dead node's proxy routes to surviving replicas of the same
       device class, or parks them (policy ``rebind`` | ``park``);
    2. every other local device exposing ``on_peer_dead(node)`` is
       upcalled in ascending TiD order (install order therefore fixes
       the cascade order).

    Rejoin runs the same cascade through ``on_peer_alive``.
    """

    device_class = "heartbeat"

    schema = ParamSchema([
        ParamSpec("interval_ns", int, default=1_000_000, minimum=1,
                  description="beat period"),
        ParamSpec("suspect_after", int, default=2, minimum=1,
                  description="consecutive misses before SUSPECT"),
        ParamSpec("dead_after", int, default=4, minimum=2,
                  description="consecutive misses before DEAD"),
        ParamSpec("rejoin_after", int, default=3, minimum=1,
                  description="consecutive beats a DEAD peer needs back"),
        ParamSpec("failover_policy", str, default="rebind",
                  choices=("rebind", "park", "none"),
                  description="what to do with a dead peer's routes"),
    ])

    def __init__(
        self,
        name: str = "heartbeat",
        *,
        discovery: "object | None" = None,
    ) -> None:
        super().__init__(name)
        #: optional DiscoveryService running the route failover
        self.discovery = discovery
        self._targets: dict[int, Tid] = {}  # node -> beat proxy TiD
        #: node -> the beat route as bound at monitor() time; failover
        #: must never park or rebind it (it carries the rejoin probes)
        self._beat_routes: dict[int, "object"] = {}
        self._seen_since_tick: set[int] = set()
        self._timer_id: int | None = None
        self.running = False
        self.beats_sent = 0
        self.beats_received = 0
        self.peer_deaths = 0
        self.peer_rejoins = 0

    # -- wiring ------------------------------------------------------------
    def on_plugin(self) -> None:
        self.bind(XF_HB_BEAT, self._on_beat)
        exe = self._require_live()
        exe.peers.on_dead(self._peer_dead)
        exe.peers.on_alive(self._peer_alive)

    def on_unplug(self) -> None:
        self.stop()

    @property
    def peers(self) -> PeerTable:
        return self._require_live().peers

    def monitor(self, node: int, beat_target: Tid) -> None:
        """Beat to (and expect beats from) the peer ``node``, whose
        HeartbeatService is reachable at the proxy ``beat_target``."""
        exe = self._require_live()
        if node == exe.node:
            raise I2OError("a node does not monitor itself")
        self._targets[node] = beat_target
        self._beat_routes[node] = exe.route_for(beat_target)
        exe.peers.watch(node)

    def unmonitor(self, node: int) -> None:
        self._targets.pop(node, None)
        self._beat_routes.pop(node, None)
        self._require_live().peers.forget(node)

    # -- operation ---------------------------------------------------------
    def start(self) -> None:
        """Apply thresholds and begin beating; idempotent."""
        exe = self._require_live()
        exe.peers.configure(
            suspect_after=self.typed_param("suspect_after"),
            dead_after=self.typed_param("dead_after"),
            rejoin_after=self.typed_param("rejoin_after"),
        )
        self.typed_param("failover_policy")  # reject typos now, not at death
        if self.running:
            return
        self.running = True
        self._send_beats()
        self._timer_id = self.start_timer(self.typed_param("interval_ns"))

    def stop(self) -> None:
        self.running = False
        if self._timer_id is not None:
            self.cancel_timer(self._timer_id)
            self._timer_id = None

    def on_enable(self) -> None:
        self.start()

    def on_quiesce(self) -> None:
        self.stop()

    def on_timer(self, context: int, frame: Frame) -> None:
        if not self.running:
            return
        exe = self._require_live()
        for node in sorted(self._targets):
            if node not in self._seen_since_tick:
                exe.peers.interval_missed(node)
        self._seen_since_tick.clear()
        self._send_beats()
        self._timer_id = self.start_timer(self.typed_param("interval_ns"))

    def _send_beats(self) -> None:
        exe = self._require_live()
        payload = _NODE.pack(exe.node)
        for node in sorted(self._targets):
            self.send(self._targets[node], payload, xfunction=XF_HB_BEAT)
            self.beats_sent += 1

    def _on_beat(self, frame: Frame) -> None:
        if frame.is_reply:
            return  # a parked route's failure reply; the miss count rules
        if frame.payload_size < _NODE.size:
            return
        (node,) = _NODE.unpack_from(frame.payload, 0)
        exe = self._require_live()
        self.beats_received += 1
        exe.metrics.inc("hb_beats_received_total")
        exe.peers.heartbeat_seen(node, exe.clock.now_ns())
        self._seen_since_tick.add(node)

    # -- the failover cascade ---------------------------------------------
    def _peer_dead(self, node: int) -> None:
        exe = self._require_live()
        self.peer_deaths += 1
        exe.metrics.inc("peer_deaths_total")
        policy = self.typed_param("failover_policy")
        if policy == "none":
            return
        if self.discovery is not None:
            self.discovery.failover(node, policy=policy)
        else:
            # No directory to find replicas in: park every route to the
            # dead peer so senders get failure replies, not silence.
            for proxy_tid in exe.routes_to(node):
                exe.park_route(proxy_tid)
        self._restore_beat_route(node)
        self._cascade("on_peer_dead", node)

    def _restore_beat_route(self, node: int) -> None:
        """Failover parks or rebinds every route to a dead peer — but
        the beat route is the rejoin probe: without it a symmetric
        partition never heals (both sides drop their own beats at the
        parked route and stay mutually DEAD forever)."""
        beat = self._targets.get(node)
        orig = self._beat_routes.get(node)
        if beat is None or orig is None:
            return
        exe = self._require_live()
        cur = exe.route_for(beat)
        if cur.node != orig.node or cur.remote_tid != orig.remote_tid:
            exe.rebind_route(beat, orig.node, orig.remote_tid,
                             transport=orig.transport)
        elif cur.parked:
            exe.unpark_route(beat)

    def _peer_alive(self, node: int) -> None:
        exe = self._require_live()
        self.peer_rejoins += 1
        exe.metrics.inc("peer_rejoins_total")
        if self.typed_param("failover_policy") == "none":
            return
        if self.discovery is not None:
            self.discovery.readmit(node)
        else:
            for proxy_tid in exe.routes_to(node, include_parked=True):
                exe.unpark_route(proxy_tid)
        self._cascade("on_peer_alive", node)

    def _cascade(self, hook_name: str, node: int) -> None:
        devices = self._require_live().devices()
        for tid in sorted(devices):
            device = devices[tid]
            if device is self or device is self.discovery:
                continue
            hook = getattr(device, hook_name, None)
            if callable(hook):
                hook(node)

    def export_counters(self) -> dict[str, object]:
        exe = self.executive
        counters: dict[str, object] = {
            "beats_sent": self.beats_sent,
            "beats_received": self.beats_received,
            "peer_deaths": self.peer_deaths,
            "peer_rejoins": self.peer_rejoins,
        }
        if exe is not None:
            counters.update(
                {f"peers_{k}": v for k, v in exe.peers.export_counters().items()}
            )
        return counters
