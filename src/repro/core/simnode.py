"""Hosting an executive on the discrete-event kernel.

A :class:`SimNode` models one processing node's CPU: it steps the
executive whenever there is work, converts the virtual CPU cost the
probes accrued (see :class:`~repro.core.probes.Probes` model mode)
into simulated time, and sleeps on a wake event otherwise.  Because
all of a node's costs serialise through its single process, the model
naturally captures the paper's single-CPU executive ("the loop of
control remains in the executive framework").
"""

from __future__ import annotations

from typing import Generator

from repro.core.executive import Executive
from repro.core.probes import CostModel, Probes
from repro.hw.clock import SimClock
from repro.sim.kernel import Event, Simulator, delay


class SimNode:
    """One node = one executive driven by one simulation process."""

    def __init__(
        self,
        sim: Simulator,
        executive: Executive,
        *,
        cost_model: CostModel | None = None,
    ) -> None:
        self.sim = sim
        self.executive = executive
        executive.clock = SimClock(sim)
        if executive.probes.mode != "model":
            executive.probes = Probes(
                "model", model=cost_model or CostModel.paper_table1()
            )
        executive.msgi.on_work = self.wake
        self._wake_event: Event | None = None
        self._halted = False
        self.busy_ns = 0
        self.process = sim.process(self._run(), name=f"node{executive.node}")

    def attach_transport_hooks(self) -> None:
        """Point every registered transport's wake hook at this node.

        Call after the PTA and its transports are registered.
        """
        if self.executive.pta is not None:
            for pt in self.executive.pta.transports():
                if hasattr(pt, "wake_hook"):
                    pt.wake_hook = self.wake

    def wake(self) -> None:
        ev = self._wake_event
        if ev is not None and not ev.fired:
            self._wake_event = None
            ev.succeed()

    def halt(self) -> None:
        self._halted = True
        self.wake()

    def _run(self) -> Generator:
        exe = self.executive
        while not self._halted and not exe._halt_requested:
            worked = exe.step()
            cost = exe.probes.drain_accrued_ns()
            if cost:
                self.busy_ns += cost
                yield delay(cost)
                continue
            if worked:
                continue
            # Idle: sleep until new work or the next timer deadline.
            deadline = exe.timers.next_deadline_ns()
            self._wake_event = self.sim.event(f"node{exe.node}.wake")
            if deadline is not None:
                remaining = max(0, deadline - self.sim.now)
                yield self.sim.any_of(
                    [self._wake_event, self.sim.timeout(remaining)]
                )
                self._wake_event = None
            else:
                yield self._wake_event
