"""Reliable delivery on top of unreliable peer transports.

The framework core deliberately provides *unreliable* datagram
semantics (like GM and like the I2O messaging layer); applications
needing guarantees layer them on top.  :class:`ReliableEndpoint` is
that layer, built entirely from the architectural pieces the paper
provides:

* sequencing and acknowledgements are ordinary private messages;
* retransmission deadlines use the **I2O timer facility** (expirations
  arrive as frames through the same queues, paper §3.2);
* every data and ack frame carries a CRC32 over its payload, so a
  corrupted frame is discarded instead of delivering garbage or —
  worse — acknowledging a sequence number that was never received;
* duplicate suppression keeps at-most-once delivery to the consumer,
  so the combination is exactly-once as long as the wire eventually
  delivers (tested against the fault-injecting transport);
* with ``ordered=True`` the endpoint additionally delivers *in
  sequence* per sending peer: out-of-order arrivals are parked in a
  hold-back buffer until the gap closes (the gap's retransmission is
  already scheduled on the sender).

When the supervision layer declares a peer DEAD, the endpoint's
``on_peer_dead`` hook aborts every in-flight retransmission toward
that node — retrying into a black hole only wastes wire and timers —
and reports each aborted message through ``on_failed``.

xfunctions 0xF0xx are reserved framework space (below the RMI method
hash range).
"""

from __future__ import annotations

import struct
import zlib
from collections import OrderedDict
from typing import Callable

from repro.core.device import Listener
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.tid import Tid

XF_REL_DATA = 0xF001
XF_REL_ACK = 0xF002

#: seq (u64) + CRC32 of the bytes that follow (u32)
_HEADER = struct.Struct("<QI")


def _data_crc(seq: int, payload: bytes) -> int:
    """CRC over the sequence number *and* the payload."""
    return zlib.crc32(payload, zlib.crc32(_HEADER.pack(seq, 0)))

Consumer = Callable[[Tid, bytes], None]
FailureHandler = Callable[[int, Tid, bytes], None]


class ReliableEndpoint(Listener):
    """Sequenced, acknowledged, checksummed, deduplicated endpoint.

    Sequence numbers are global to the endpoint (not per target): an
    ack only carries the seq, and the proxy TiD an ack arrives from
    need not equal the proxy the data was sent to (transports rewrite
    initiators at ingest), so the seq alone must identify the pending
    entry.  Consequently ``ordered=True`` assumes the peer-pair usage
    pattern — one remote endpoint per sender — because a receiver
    reconstructs each sender's sequence independently and a sender
    interleaving targets would create permanent gaps.
    """

    device_class = "reliable_endpoint"

    def __init__(
        self,
        name: str = "reliable",
        *,
        retransmit_ns: int = 1_000_000,
        max_retries: int = 25,
        dedup_window: int = 4096,
        ordered: bool = False,
    ) -> None:
        super().__init__(name)
        if max_retries < 0:
            raise I2OError(f"max_retries must be >= 0, got {max_retries}")
        self.retransmit_ns = retransmit_ns
        self.max_retries = max_retries
        self.dedup_window = dedup_window
        self.ordered = ordered
        self.consumer: Consumer | None = None
        self.on_failed: FailureHandler | None = None
        self._next_seq = 1
        #: seq -> (target, payload, retries_left, timer_id)
        self._pending: dict[int, tuple[Tid, bytes, int, int]] = {}
        #: (initiator, seq) -> None, LRU-bounded (unordered mode)
        self._seen: OrderedDict[tuple[Tid, int], None] = OrderedDict()
        #: ordered mode: initiator -> next seq to deliver
        self._expected: dict[Tid, int] = {}
        #: ordered mode: initiator -> {future seq: payload}
        self._holdback: dict[Tid, dict[int, bytes]] = {}
        self.delivered = 0
        self.duplicates_suppressed = 0
        self.retransmissions = 0
        self.failures = 0
        self.aborted = 0
        self.corrupt_discarded = 0

    def on_plugin(self) -> None:
        self.bind(XF_REL_DATA, self._on_data)
        self.bind(XF_REL_ACK, self._on_ack)
        from repro.core.metrics import sanitize_metric_name

        metrics = self._require_live().metrics
        prefix = f"rel_{sanitize_metric_name(self.name)}"
        for attr in (
            "delivered", "duplicates_suppressed", "retransmissions",
            "failures", "aborted", "corrupt_discarded", "in_flight",
            "held_back",
        ):
            metrics.gauge(f"{prefix}_{attr}", lambda a=attr: getattr(self, a))

    # -- sending ----------------------------------------------------------
    def send_reliable(self, target: Tid, payload: bytes) -> int:
        """Queue ``payload`` for guaranteed delivery; returns its seq."""
        seq = self._next_seq
        self._next_seq += 1
        data = bytes(payload)
        timer_id = self.start_timer(self.retransmit_ns, context=seq)
        self._pending[seq] = (target, data, self.max_retries, timer_id)
        self._transmit(seq, target, data)
        return seq

    def _transmit(self, seq: int, target: Tid, payload: bytes) -> None:
        # Header and payload are written straight into the loaned
        # frame — no intermediate header+payload concatenation.
        def write(view: memoryview) -> None:
            _HEADER.pack_into(view, 0, seq, _data_crc(seq, payload))
            view[_HEADER.size:] = payload

        self.send_into(
            target, _HEADER.size + len(payload), write, xfunction=XF_REL_DATA
        )

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    @property
    def held_back(self) -> int:
        return sum(len(h) for h in self._holdback.values())

    # -- receive path -----------------------------------------------------
    def _on_data(self, frame: Frame) -> None:
        if frame.is_reply:
            return  # e.g. a parked route's failure reply to our send
        if frame.payload_size < _HEADER.size:
            return  # corrupt beyond recognition; let retransmit handle it
        seq, crc = _HEADER.unpack_from(frame.payload, 0)
        payload = bytes(frame.payload[_HEADER.size:])
        if _data_crc(seq, payload) != crc:
            # A flipped bit anywhere (seq, crc or body) lands here;
            # dropping it leaves recovery to the sender's timer.  The
            # CRC is seeded with the seq so a damaged sequence number
            # cannot deliver (and ack) intact bytes at the wrong
            # position in the stream.
            self.corrupt_discarded += 1
            return
        # Always ack - the previous ack may have been lost.
        def write_ack(view: memoryview) -> None:
            _HEADER.pack_into(view, 0, seq, zlib.crc32(_HEADER.pack(seq, 0)))

        self.send_into(
            frame.initiator, _HEADER.size, write_ack, xfunction=XF_REL_ACK
        )
        if self.ordered:
            self._deliver_ordered(frame.initiator, seq, payload)
        else:
            self._deliver_unordered(frame.initiator, seq, payload)

    def _deliver_unordered(self, source: Tid, seq: int, payload: bytes) -> None:
        key = (source, seq)
        if key in self._seen:
            self.duplicates_suppressed += 1
            return
        self._seen[key] = None
        while len(self._seen) > self.dedup_window:
            self._seen.popitem(last=False)
        self._consume(source, payload)

    def _deliver_ordered(self, source: Tid, seq: int, payload: bytes) -> None:
        expected = self._expected.get(source, 1)
        held = self._holdback.setdefault(source, {})
        if seq < expected or seq in held:
            self.duplicates_suppressed += 1
            return
        held[seq] = payload
        while expected in held:
            self._consume(source, held.pop(expected))
            expected += 1
        self._expected[source] = expected

    def _consume(self, source: Tid, payload: bytes) -> None:
        self.delivered += 1
        if self.consumer is not None:
            self.consumer(source, payload)

    def _on_ack(self, frame: Frame) -> None:
        if frame.is_reply or frame.payload_size < _HEADER.size:
            return
        seq, crc = _HEADER.unpack_from(frame.payload, 0)
        if zlib.crc32(_HEADER.pack(seq, 0)) != crc:
            # A corrupted ack could otherwise cancel an arbitrary
            # pending seq and lose that message forever.
            self.corrupt_discarded += 1
            return
        entry = self._pending.pop(seq, None)
        if entry is not None:
            self.cancel_timer(entry[3])

    # -- retransmission ------------------------------------------------------
    def on_timer(self, context: int, frame: Frame) -> None:
        seq = context
        entry = self._pending.get(seq)
        if entry is None:
            return  # acked in the meantime
        target, payload, retries_left, _old_timer = entry
        if retries_left <= 0:
            del self._pending[seq]
            self.failures += 1
            if self.on_failed is not None:
                self.on_failed(seq, target, payload)
            return
        self.retransmissions += 1
        timer_id = self.start_timer(self.retransmit_ns, context=seq)
        self._pending[seq] = (target, payload, retries_left - 1, timer_id)
        self._transmit(seq, target, payload)

    # -- failover ------------------------------------------------------------
    def abort_node(self, node: int) -> int:
        """Abort every in-flight message routed to ``node``.

        The supervision layer calls this (via ``on_peer_dead``) when a
        peer is declared DEAD: the retransmit timers are disarmed and
        each aborted message is reported through ``on_failed`` exactly
        like an exhausted retry.  Returns the abort count.
        """
        exe = self._require_live()
        doomed = []
        for seq, (target, _, _, _) in self._pending.items():
            route = exe.route_for(target)
            if route is not None and route.node == node:
                doomed.append(seq)
        for seq in doomed:
            target, payload, _, timer_id = self._pending.pop(seq)
            self.cancel_timer(timer_id)
            self.aborted += 1
            self.failures += 1
            if self.on_failed is not None:
                self.on_failed(seq, target, payload)
        return len(doomed)

    # The supervision cascade's uniform hook name.
    on_peer_dead = abort_node

    def export_counters(self) -> dict[str, object]:
        return {
            "delivered": self.delivered,
            "duplicates_suppressed": self.duplicates_suppressed,
            "retransmissions": self.retransmissions,
            "failures": self.failures,
            "aborted": self.aborted,
            "corrupt_discarded": self.corrupt_discarded,
            "in_flight": len(self._pending),
            "held_back": self.held_back,
        }
