"""Reliable delivery on top of unreliable peer transports.

The framework core deliberately provides *unreliable* datagram
semantics (like GM and like the I2O messaging layer); applications
needing guarantees layer them on top.  :class:`ReliableEndpoint` is
that layer, built entirely from the architectural pieces the paper
provides:

* sequencing and acknowledgements are ordinary private messages;
* retransmission deadlines use the **I2O timer facility** (expirations
  arrive as frames through the same queues, paper §3.2);
* every data and ack frame carries a CRC32 over its payload, so a
  corrupted frame is discarded instead of delivering garbage or —
  worse — acknowledging a sequence number that was never received;
* duplicate suppression keeps at-most-once delivery to the consumer,
  so the combination is exactly-once as long as the wire eventually
  delivers (tested against the fault-injecting transport);
* with ``ordered=True`` the endpoint additionally delivers *in
  sequence* per sending peer: out-of-order arrivals are parked in a
  hold-back buffer until the gap closes (the gap's retransmission is
  already scheduled on the sender).

When the supervision layer declares a peer DEAD, the endpoint's
``on_peer_dead`` hook aborts every in-flight retransmission toward
that node — retrying into a black hole only wastes wire and timers —
and reports each aborted message through ``on_failed``.

An endpoint given a :class:`~repro.durable.segments.SegmentStore`
journal additionally survives its *own* death: every send is appended
to the journal (write-ahead: the record is committed before the first
transmission) and retired on ack, so a restarted endpoint replays the
unacknowledged tail from disk and resumes its sequence space where it
left off.  The receiver's dedup window absorbs any overlap between
the pre-crash transmissions and the replay, keeping delivery exactly
once across the restart — provided the endpoint is reinstalled at its
recorded TiD, which the journal enforces.

xfunctions 0xF0xx are reserved framework space (below the RMI method
hash range).
"""

from __future__ import annotations

import struct
import time
import zlib
from collections import OrderedDict
from typing import TYPE_CHECKING, Callable

from repro.core.device import Listener
# The journal codec's payload CRC *is* the wire CRC (one integrity
# discipline end to end: RAM, wire and disk).
from repro.durable.journal import seeded_crc as _data_crc
from repro.flightrec.records import (
    CRASH_POINT_CODES,
    EV_CRASH_POINT,
    EV_JOURNAL_COMMIT,
    EV_JOURNAL_RETIRE,
    EV_REL_ACK,
    EV_REL_DELIVER,
    EV_REL_RETRANSMIT,
    EV_REL_SEND,
)
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.tid import Tid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.durable.segments import SegmentStore
    from repro.flightrec.recorder import FlightRecorder

XF_REL_DATA = 0xF001
XF_REL_ACK = 0xF002

#: seq (u64) + CRC32 of the bytes that follow (u32)
_HEADER = struct.Struct("<QI")

#: Named crash points for fault-injection tests (see
#: repro.analysis.crashpoints): the three torn states the journal
#: write-ahead ordering can leave behind.
CRASH_PRE_APPEND = "pre-journal-append"
CRASH_POST_APPEND = "post-append-pre-transmit"
CRASH_PRE_ACK_RECORD = "post-transmit-pre-ack-record"

Consumer = Callable[[Tid, bytes], None]
FailureHandler = Callable[[int, Tid, bytes], None]
#: test hook: called with a crash-point name at instrumented spots
CrashHook = Callable[[str], None]


class ReliableEndpoint(Listener):
    """Sequenced, acknowledged, checksummed, deduplicated endpoint.

    Sequence numbers are global to the endpoint (not per target): an
    ack only carries the seq, and the proxy TiD an ack arrives from
    need not equal the proxy the data was sent to (transports rewrite
    initiators at ingest), so the seq alone must identify the pending
    entry.  Consequently ``ordered=True`` assumes the peer-pair usage
    pattern — one remote endpoint per sender — because a receiver
    reconstructs each sender's sequence independently and a sender
    interleaving targets would create permanent gaps.
    """

    device_class = "reliable_endpoint"

    def __init__(
        self,
        name: str = "reliable",
        *,
        retransmit_ns: int = 1_000_000,
        max_retries: int = 25,
        dedup_window: int = 4096,
        ordered: bool = False,
        journal: "SegmentStore | None" = None,
    ) -> None:
        super().__init__(name)
        if max_retries < 0:
            raise I2OError(f"max_retries must be >= 0, got {max_retries}")
        self.retransmit_ns = retransmit_ns
        self.max_retries = max_retries
        self.dedup_window = dedup_window
        self.ordered = ordered
        self.consumer: Consumer | None = None
        self.on_failed: FailureHandler | None = None
        self.journal = journal
        #: fault-injection hook (repro.analysis.crashpoints.crash_at)
        self.crash_hook: CrashHook | None = None
        self._next_seq = 1
        #: seq -> (target, payload, retries_left, timer_id)
        self._pending: dict[int, tuple[Tid, bytes, int, int]] = {}
        #: (initiator, seq) -> None, LRU-bounded (unordered mode)
        self._seen: OrderedDict[tuple[Tid, int], None] = OrderedDict()
        #: ordered mode: initiator -> next seq to deliver
        self._expected: dict[Tid, int] = {}
        #: ordered mode: initiator -> {future seq: payload}
        self._holdback: dict[Tid, dict[int, bytes]] = {}
        self.delivered = 0
        self.duplicates_suppressed = 0
        self.retransmissions = 0
        self.failures = 0
        self.aborted = 0
        self.corrupt_discarded = 0
        self.replayed = 0
        self.recoveries = 0
        self.recovery_ns = 0

    def on_plugin(self) -> None:
        self.bind(XF_REL_DATA, self._on_data)
        self.bind(XF_REL_ACK, self._on_ack)
        from repro.core.metrics import (
            RECOVERY_LATENCY_BUCKETS_NS,
            sanitize_metric_name,
        )

        metrics = self._require_live().metrics
        prefix = f"rel_{sanitize_metric_name(self.name)}"
        for attr in (
            "delivered", "duplicates_suppressed", "retransmissions",
            "failures", "aborted", "corrupt_discarded", "in_flight",
            "held_back", "replayed", "recoveries",
        ):
            metrics.gauge(f"{prefix}_{attr}", lambda a=attr: getattr(self, a))
        metrics.gauge(f"{prefix}_journal_depth", lambda: self.journal_depth)
        metrics.gauge(f"{prefix}_recovery_latency_ns", lambda: self.recovery_ns)
        self._recovery_hist = metrics.histogram(
            f"{prefix}_recovery_ns", RECOVERY_LATENCY_BUCKETS_NS
        )
        if self.journal is not None:
            self._recover()

    def on_unplug(self) -> None:
        # Clean uninstall: push buffered journal records to disk so a
        # later restart replays a complete write-ahead record.  The
        # store stays open — the endpoint may be re-plugged.
        if self.journal is not None:
            self.journal.flush()

    # -- durability --------------------------------------------------------
    def attach_journal(self, journal: "SegmentStore") -> None:
        """Bind a journal; recovers immediately if already installed."""
        if self.journal is not None:
            raise I2OError(
                f"endpoint {self.name!r} already has a journal attached"
            )
        self.journal = journal
        if self.executive is not None:
            self._recover()

    @property
    def journal_depth(self) -> int:
        """Unacknowledged records on disk (0 without a journal)."""
        return self.journal.depth if self.journal is not None else 0

    def _recover(self) -> None:
        """Replay the journal's unacknowledged tail and resume the
        sequence space past everything the journal has ever seen."""
        exe = self._require_live()
        journal = self.journal
        assert journal is not None
        start_ns = time.perf_counter_ns()
        # Enforce identity before anything else: replaying under a new
        # TiD would bypass the receiver's dedup keying entirely.
        journal.ensure_identity(exe.node, int(self.tid))
        state = journal.recovered
        if state.next_seq > self._next_seq:
            self._next_seq = state.next_seq
        pending = journal.pending()
        for seq in sorted(pending):
            record = pending[seq]
            if record.node == exe.node:
                target = Tid(record.tid)
            else:
                target = exe.create_proxy(record.node, Tid(record.tid))
            timer_id = self.start_timer(self.retransmit_ns, context=seq)
            self._pending[seq] = (
                target, record.payload, self.max_retries, timer_id,
            )
            # Replay bypasses send_reliable, so the send is recorded
            # here: a restarted node's black box shows the same seqs
            # leaving again.
            fr = self._flightrec
            if fr is not None:
                fr.record(
                    EV_REL_SEND, seq, record.node, len(record.payload)
                )
            self._transmit(seq, target, record.payload)
            self.replayed += 1
        if state.records:
            self.recoveries += 1
        self.recovery_ns = time.perf_counter_ns() - start_ns
        self._recovery_hist.observe(self.recovery_ns)

    def _stable_address(self, target: Tid) -> tuple[int, Tid]:
        """Resolve ``target`` to ``(node, remote_tid)`` for the journal.

        Proxy TiDs are process-local and do not survive a restart; the
        route they stand for does.  A local target is recorded under
        this executive's own node.
        """
        exe = self._require_live()
        route = exe.route_for(target)
        if route is not None:
            return route.node, route.remote_tid
        return exe.node, target

    @property
    def _flightrec(self) -> "FlightRecorder | None":
        exe = self.executive
        return exe.flightrec if exe is not None else None

    def _crash(self, point: str) -> None:
        if self.crash_hook is not None:
            # Record *before* invoking the hook: when it raises
            # ExecutiveCrashed the subsequent hard_stop spills the
            # ring, and the black box must already name the torn state.
            fr = self._flightrec
            if fr is not None:
                fr.record(EV_CRASH_POINT, CRASH_POINT_CODES.get(point, 0))
            self.crash_hook(point)

    # -- sending ----------------------------------------------------------
    def send_reliable(
        self, target: Tid, payload: bytes | bytearray | memoryview
    ) -> int:
        """Queue ``payload`` for guaranteed delivery; returns its seq.

        The payload bytes are snapshotted at this commit point, so the
        caller may pass a view into a pool frame it is about to free:
        retransmissions, the journal record and any eventual
        ``on_failed`` report all use the private copy, never the
        caller's (possibly recycled) buffer.
        """
        seq = self._next_seq
        data = bytes(payload)
        self._crash(CRASH_PRE_APPEND)
        if self.journal is not None:
            node, remote_tid = self._stable_address(target)
            self.journal.append_send(seq, node, int(remote_tid), data)
            fr = self._flightrec
            if fr is not None:
                fr.record(EV_JOURNAL_COMMIT, seq)
        self._crash(CRASH_POST_APPEND)
        self._next_seq = seq + 1
        timer_id = self.start_timer(self.retransmit_ns, context=seq)
        self._pending[seq] = (target, data, self.max_retries, timer_id)
        fr = self._flightrec
        if fr is not None:
            fr.record(
                EV_REL_SEND, seq, self._stable_address(target)[0], len(data)
            )
        self._transmit(seq, target, data)
        return seq

    def _transmit(self, seq: int, target: Tid, payload: bytes) -> None:
        # Header and payload are written straight into the loaned
        # frame — no intermediate header+payload concatenation.
        def write(view: memoryview) -> None:
            _HEADER.pack_into(view, 0, seq, _data_crc(seq, payload))
            view[_HEADER.size:] = payload

        self.send_into(
            target, _HEADER.size + len(payload), write, xfunction=XF_REL_DATA
        )

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    @property
    def held_back(self) -> int:
        return sum(len(h) for h in self._holdback.values())

    # -- receive path -----------------------------------------------------
    def _on_data(self, frame: Frame) -> None:
        if frame.is_reply:
            return  # e.g. a parked route's failure reply to our send
        if frame.payload_size < _HEADER.size:
            return  # corrupt beyond recognition; let retransmit handle it
        seq, crc = _HEADER.unpack_from(frame.payload, 0)
        payload = bytes(frame.payload[_HEADER.size:])
        if _data_crc(seq, payload) != crc:
            # A flipped bit anywhere (seq, crc or body) lands here;
            # dropping it leaves recovery to the sender's timer.  The
            # CRC is seeded with the seq so a damaged sequence number
            # cannot deliver (and ack) intact bytes at the wrong
            # position in the stream.
            self.corrupt_discarded += 1
            return
        # Always ack - the previous ack may have been lost.
        def write_ack(view: memoryview) -> None:
            _HEADER.pack_into(view, 0, seq, zlib.crc32(_HEADER.pack(seq, 0)))

        self.send_into(
            frame.initiator, _HEADER.size, write_ack, xfunction=XF_REL_ACK
        )
        fr = self._flightrec
        if fr is not None:
            exe = self._require_live()
            route = exe.route_for(frame.initiator)
            src = route.node if route is not None else exe.node
            fr.record(EV_REL_DELIVER, seq, src, len(payload))
        if self.ordered:
            self._deliver_ordered(frame.initiator, seq, payload)
        else:
            self._deliver_unordered(frame.initiator, seq, payload)

    def _deliver_unordered(self, source: Tid, seq: int, payload: bytes) -> None:
        key = (source, seq)
        if key in self._seen:
            self.duplicates_suppressed += 1
            return
        self._seen[key] = None
        while len(self._seen) > self.dedup_window:
            self._seen.popitem(last=False)
        self._consume(source, payload)

    def _deliver_ordered(self, source: Tid, seq: int, payload: bytes) -> None:
        expected = self._expected.get(source, 1)
        held = self._holdback.setdefault(source, {})
        if seq < expected or seq in held:
            self.duplicates_suppressed += 1
            return
        held[seq] = payload
        while expected in held:
            self._consume(source, held.pop(expected))
            expected += 1
        self._expected[source] = expected

    def _consume(self, source: Tid, payload: bytes) -> None:
        self.delivered += 1
        if self.consumer is not None:
            self.consumer(source, payload)

    def _on_ack(self, frame: Frame) -> None:
        if frame.is_reply or frame.payload_size < _HEADER.size:
            return
        seq, crc = _HEADER.unpack_from(frame.payload, 0)
        if zlib.crc32(_HEADER.pack(seq, 0)) != crc:
            # A corrupted ack could otherwise cancel an arbitrary
            # pending seq and lose that message forever.
            self.corrupt_discarded += 1
            return
        entry = self._pending.pop(seq, None)
        if entry is not None:
            self.cancel_timer(entry[3])
            fr = self._flightrec
            if fr is not None:
                fr.record(EV_REL_ACK, seq)
            self._crash(CRASH_PRE_ACK_RECORD)
            if self.journal is not None:
                # Crash window: the peer has the message but this ack
                # record may die unflushed.  Replay then re-transmits
                # and the receiver's dedup absorbs the duplicate —
                # at-least-once on the wire, exactly-once delivered.
                self.journal.append_ack(seq)
                if fr is not None:
                    fr.record(EV_JOURNAL_RETIRE, seq)

    # -- retransmission ------------------------------------------------------
    def on_timer(self, context: int, frame: Frame) -> None:
        seq = context
        entry = self._pending.get(seq)
        if entry is None:
            return  # acked in the meantime
        target, payload, retries_left, _old_timer = entry
        if retries_left <= 0:
            del self._pending[seq]
            self.failures += 1
            if self.journal is not None:
                # Permanently failed: retire the record so a restart
                # does not resurrect a message the application was
                # already told is dead.
                self.journal.append_ack(seq)
            if self.on_failed is not None:
                self.on_failed(seq, target, bytes(payload))
            return
        self.retransmissions += 1
        timer_id = self.start_timer(self.retransmit_ns, context=seq)
        self._pending[seq] = (target, payload, retries_left - 1, timer_id)
        fr = self._flightrec
        if fr is not None:
            fr.record(EV_REL_RETRANSMIT, seq, retries_left - 1)
        self._transmit(seq, target, payload)

    # -- failover ------------------------------------------------------------
    def abort_node(self, node: int) -> int:
        """Abort every in-flight message routed to ``node``.

        The supervision layer calls this (via ``on_peer_dead``) when a
        peer is declared DEAD: the retransmit timers are disarmed and
        each aborted message is reported through ``on_failed`` exactly
        like an exhausted retry.  The payload handed to ``on_failed``
        is snapshotted (``bytes``) at abort time, so the callback may
        keep it indefinitely even if the pending table ever holds
        views into pool blocks that recycle underneath it.  Returns
        the abort count.
        """
        exe = self._require_live()
        doomed = []
        for seq, (target, _, _, _) in self._pending.items():
            route = exe.route_for(target)
            if route is not None and route.node == node:
                doomed.append(seq)
        for seq in doomed:
            target, payload, _, timer_id = self._pending.pop(seq)
            self.cancel_timer(timer_id)
            self.aborted += 1
            self.failures += 1
            if self.journal is not None:
                self.journal.append_ack(seq)
            if self.on_failed is not None:
                self.on_failed(seq, target, bytes(payload))
        return len(doomed)

    # The supervision cascade's uniform hook name.
    on_peer_dead = abort_node

    def export_counters(self) -> dict[str, object]:
        return {
            "delivered": self.delivered,
            "duplicates_suppressed": self.duplicates_suppressed,
            "retransmissions": self.retransmissions,
            "failures": self.failures,
            "aborted": self.aborted,
            "corrupt_discarded": self.corrupt_discarded,
            "in_flight": len(self._pending),
            "held_back": self.held_back,
            "replayed": self.replayed,
            "recoveries": self.recoveries,
            "journal_depth": self.journal_depth,
        }
