"""Reliable delivery on top of unreliable peer transports.

The framework core deliberately provides *unreliable* datagram
semantics (like GM and like the I2O messaging layer); applications
needing guarantees layer them on top.  :class:`ReliableEndpoint` is
that layer, built entirely from the architectural pieces the paper
provides:

* sequencing and acknowledgements are ordinary private messages;
* retransmission deadlines use the **I2O timer facility** (expirations
  arrive as frames through the same queues, paper §3.2);
* duplicate suppression keeps at-most-once delivery to the consumer,
  so the combination is exactly-once as long as the wire eventually
  delivers (tested against the fault-injecting transport).

xfunctions 0xF0xx are reserved framework space (below the RMI method
hash range).
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from typing import Callable

from repro.core.device import Listener
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.tid import Tid

XF_REL_DATA = 0xF001
XF_REL_ACK = 0xF002

_SEQ = struct.Struct("<Q")

Consumer = Callable[[Tid, bytes], None]
FailureHandler = Callable[[int, Tid, bytes], None]


class ReliableEndpoint(Listener):
    """Sequenced, acknowledged, deduplicated messaging endpoint."""

    device_class = "reliable_endpoint"

    def __init__(
        self,
        name: str = "reliable",
        *,
        retransmit_ns: int = 1_000_000,
        max_retries: int = 25,
        dedup_window: int = 4096,
    ) -> None:
        super().__init__(name)
        if max_retries < 0:
            raise I2OError(f"max_retries must be >= 0, got {max_retries}")
        self.retransmit_ns = retransmit_ns
        self.max_retries = max_retries
        self.dedup_window = dedup_window
        self.consumer: Consumer | None = None
        self.on_failed: FailureHandler | None = None
        self._next_seq = 1
        #: seq -> (target, payload, retries_left, timer_id)
        self._pending: dict[int, tuple[Tid, bytes, int, int]] = {}
        #: (initiator, seq) -> None, LRU-bounded
        self._seen: OrderedDict[tuple[Tid, int], None] = OrderedDict()
        self.delivered = 0
        self.duplicates_suppressed = 0
        self.retransmissions = 0
        self.failures = 0

    def on_plugin(self) -> None:
        self.bind(XF_REL_DATA, self._on_data)
        self.bind(XF_REL_ACK, self._on_ack)

    # -- sending ----------------------------------------------------------
    def send_reliable(self, target: Tid, payload: bytes) -> int:
        """Queue ``payload`` for guaranteed delivery; returns its seq."""
        seq = self._next_seq
        self._next_seq += 1
        data = bytes(payload)
        timer_id = self.start_timer(self.retransmit_ns, context=seq)
        self._pending[seq] = (target, data, self.max_retries, timer_id)
        self._transmit(seq, target, data)
        return seq

    def _transmit(self, seq: int, target: Tid, payload: bytes) -> None:
        self.send(target, _SEQ.pack(seq) + payload, xfunction=XF_REL_DATA)

    @property
    def in_flight(self) -> int:
        return len(self._pending)

    # -- receive path -----------------------------------------------------
    def _on_data(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        if frame.payload_size < _SEQ.size:
            return  # corrupt beyond recognition; let retransmit handle it
        (seq,) = _SEQ.unpack_from(frame.payload, 0)
        payload = bytes(frame.payload[_SEQ.size:])
        # Always ack - the previous ack may have been lost.
        self.send(frame.initiator, _SEQ.pack(seq), xfunction=XF_REL_ACK)
        key = (frame.initiator, seq)
        if key in self._seen:
            self.duplicates_suppressed += 1
            return
        self._seen[key] = None
        while len(self._seen) > self.dedup_window:
            self._seen.popitem(last=False)
        self.delivered += 1
        if self.consumer is not None:
            self.consumer(frame.initiator, payload)

    def _on_ack(self, frame: Frame) -> None:
        if frame.is_reply or frame.payload_size < _SEQ.size:
            return
        (seq,) = _SEQ.unpack_from(frame.payload, 0)
        entry = self._pending.pop(seq, None)
        if entry is not None:
            self.cancel_timer(entry[3])

    # -- retransmission ------------------------------------------------------
    def on_timer(self, context: int, frame: Frame) -> None:
        seq = context
        entry = self._pending.get(seq)
        if entry is None:
            return  # acked in the meantime
        target, payload, retries_left, _old_timer = entry
        if retries_left <= 0:
            del self._pending[seq]
            self.failures += 1
            if self.on_failed is not None:
                self.on_failed(seq, target, payload)
            return
        self.retransmissions += 1
        timer_id = self.start_timer(self.retransmit_ns, context=seq)
        self._pending[seq] = (target, payload, retries_left - 1, timer_id)
        self._transmit(seq, target, payload)
