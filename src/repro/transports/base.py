"""The PeerTransport base class.

A peer transport is an ordinary device module (it has a TiD, answers
utility messages, is configured through UtilParamsSet) whose private
job is moving frames to other nodes.  Subclasses implement
:meth:`transmit`; the receive side funnels through :meth:`ingest_into`
(pool-block-first: allocate, then let the transport write the wire
bytes straight into it) or :meth:`ingest_block` (intra-process block
handoff, zero copies).  Both are the probe point for the whitebox
stage ``pt_processing`` ("Handling an incoming message in the GM PT
accounts for most of the time ... most of the PT processing time is
spent in the frame allocation", paper §5).

Copy accounting: every transport maintains ``tx_copies`` /
``rx_copies`` — the number of whole-frame payload copies it performed
on each side.  The X7 benchmark divides these by the frame counters to
gate the zero-copy guarantees (intra-process 0, wire exactly 1 per
node).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.device import Listener
from repro.flightrec.records import EV_FRAME_INGEST, pack3
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive, Route
    from repro.mem.block import PoolBlock

#: A staged in-process delivery: either ``(src_node, block, frame_len)``
#: — the sender's pool block handed over wholesale (the receiver owns
#: the reference) — or ``(src_node, frame_bytes)`` for serialised data.
StagedItem = tuple


class TransportError(I2OError):
    """Transmission or reception failure in a peer transport."""


class PeerTransport(Listener):
    """Base class for all peer transports.

    ``mode`` selects the paper's two operation styles:

    * ``"polling"`` — the executive's loop calls :meth:`poll` every
      quantum; the PT must never block in it;
    * ``"task"`` — the PT owns a thread (or, in the simulation plane,
      a process) that pushes received frames asynchronously.
    """

    device_class = "peer_transport"
    #: Task-mode PTs account traffic from their own receive threads
    #: and guard shared state with explicit locks, so the runtime
    #: affinity guard skips them.
    affinity_exempt = True

    def __init__(self, name: str = "", mode: str = "polling") -> None:
        if mode not in ("polling", "task"):
            raise TransportError(f"unknown PT mode {mode!r}")
        super().__init__(name)
        self.mode = mode
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.tx_copies = 0
        self.rx_copies = 0
        self.suspended = False

    # -- subclass contract ---------------------------------------------------
    def transmit(self, frame: Frame, route: "Route") -> None:
        """Move ``frame`` to ``route.node``.

        The frame's ``target`` has already been rewritten to the
        receiver-local TiD by the PTA.  Ownership transfers only on
        success: if ``transmit`` raises, the frame (and its block)
        stay with the caller, so the PTA can restore the frame's
        original target and dead-letter it truthfully.  Once the send
        is committed the transport owns the block: it releases it
        (``frame_free``) when the bytes are on the wire, hands it to
        the peer executive (:meth:`make_handoff`), or holds a
        reference across an asynchronous completion.
        """
        raise NotImplementedError

    def poll(self) -> bool:
        """Polling mode: ingest pending data; True if anything arrived.

        Task-mode transports keep the default no-op (their thread
        delivers), so the executive may scan all PTs uniformly.
        """
        return False

    @property
    def has_pending(self) -> bool:
        """True when data is staged awaiting the next ``poll`` — the
        executive's idleness test must include this, or work parked in
        a polling transport would be invisible."""
        return False

    def suspend(self) -> None:
        """Paper §4: it is "advisable ... to suspend other PTs during
        periods in which low latency communication is required"."""
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    def crash_detach(self) -> None:
        """Abandon the medium as a crashed node would: no draining, no
        farewells (``Executive.hard_stop``).  The base implementation
        only suspends; transports that hold staged pool blocks or a
        registration in a shared medium override this to release the
        blocks and leave the registry, so frames addressed to the dead
        node fail fast and a replacement transport can rejoin under
        the same node id."""
        self.suspended = True

    # -- shared receive path ---------------------------------------------------
    def ingest_into(
        self, src_node: int, frame_len: int, fill: Callable[[memoryview], None]
    ) -> Frame:
        """Pool-block-first receive: alloc, let the transport fill, post.

        This is the ``pt_processing`` probe span: allocate a pool block
        (nested ``frame_alloc`` probe) and hand its view to ``fill``,
        which writes the wire bytes straight into it — the single
        unavoidable copy off the wire (e.g. ``recv_into`` for TCP) —
        then resolve the initiator to a local proxy TiD and post to the
        inbound queue.  ``fill`` raising (or the frame failing
        validation) frees the block; nothing leaks.
        """
        exe = self._require_live()
        with exe.probes.measure("pt_processing"):
            with exe.probes.measure("frame_alloc"):
                block = exe.pool.alloc(frame_len)
            try:
                view = block.memory[:frame_len]
                fill(view)
                self.rx_copies += 1
                frame = Frame(view, block=block)
                frame.validate()
                return self._post_ingested(exe, src_node, frame)
            except BaseException:
                exe.pool.free(block)
                raise

    def ingest_block(
        self, src_node: int, block: "PoolBlock", frame_len: int
    ) -> Frame:
        """Zero-copy receive: adopt a pool block handed over wholesale.

        Intra-process transports move the sender's block itself across
        executives (the paper's buffer-loaning, §4); the reference the
        staged item carried becomes the inbound frame's reference.  On
        validation failure the reference is dropped here.
        """
        exe = self._require_live()
        with exe.probes.measure("pt_processing"):
            try:
                frame = Frame(block.memory[:frame_len], block=block)
                frame.validate()
                return self._post_ingested(exe, src_node, frame)
            except BaseException:
                block.release()
                raise

    def ingest_frame_bytes(self, src_node: int, frame_bytes) -> Frame:
        """Compat shim: rebuild an arriving frame from serialised bytes.

        Kept for transports whose medium genuinely yields a byte string
        (the simulation planes' packet payloads); the copy into the
        pool block is counted by :meth:`ingest_into`.
        """

        def fill(view: memoryview, data=frame_bytes) -> None:
            view[:] = data

        return self.ingest_into(src_node, len(frame_bytes), fill)

    def _post_ingested(self, exe: "Executive", src_node: int, frame: Frame) -> Frame:
        frame.initiator = exe.create_proxy(
            src_node, frame.initiator, transport=self.name
        )
        self.frames_received += 1
        self.bytes_received += frame.total_size
        if exe.flightrec is not None:
            exe.flightrec.record(
                EV_FRAME_INGEST,
                frame.transaction_context,
                pack3(src_node, int(frame.target), frame.xfunction),
                frame.total_size,
            )
        exe.post_inbound(frame)
        return frame

    # -- intra-process staging helpers ----------------------------------------
    def make_handoff(self, frame: Frame) -> StagedItem:
        """Detach the frame's block for delivery to a peer executive.

        Returns a staged item carrying the block itself when the frame
        is pool-backed (the sender's reference travels with the item —
        zero copies), or the serialised bytes otherwise.  Caller has
        committed to delivery: the frame no longer owns its block.
        """
        exe = self._require_live()
        size = frame.total_size
        block = frame.block
        if block is not None:
            frame.block = None  # ownership moves with the staged item
            return (exe.node, block, size)
        self.tx_copies += 1
        return (exe.node, frame.tobytes())

    def ingest_staged(self, item: StagedItem) -> Frame:
        """Deliver a staged item through the matching ingest path."""
        if len(item) == 3:
            return self.ingest_block(item[0], item[1], item[2])
        return self.ingest_frame_bytes(item[0], item[1])

    @staticmethod
    def release_staged(item: StagedItem) -> None:
        """Drop a staged item undelivered (fault injection, partition)."""
        if len(item) == 3:
            item[1].release()

    # -- shared transmit-side bookkeeping -----------------------------------
    def account_sent(self, nbytes: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += nbytes

    def _require_live(self) -> "Executive":
        if self.executive is None:
            raise TransportError(f"peer transport {self.name!r} is not installed")
        return self.executive
