"""The PeerTransport base class.

A peer transport is an ordinary device module (it has a TiD, answers
utility messages, is configured through UtilParamsSet) whose private
job is moving frames to other nodes.  Subclasses implement
:meth:`transmit`; the receive side funnels through :meth:`ingest_wire`,
which is the probe point for the whitebox stage ``pt_processing``
("Handling an incoming message in the GM PT accounts for most of the
time ... most of the PT processing time is spent in the frame
allocation", paper §5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.device import Listener
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive, Route


class TransportError(I2OError):
    """Transmission or reception failure in a peer transport."""


class PeerTransport(Listener):
    """Base class for all peer transports.

    ``mode`` selects the paper's two operation styles:

    * ``"polling"`` — the executive's loop calls :meth:`poll` every
      quantum; the PT must never block in it;
    * ``"task"`` — the PT owns a thread (or, in the simulation plane,
      a process) that pushes received frames asynchronously.
    """

    device_class = "peer_transport"

    def __init__(self, name: str = "", mode: str = "polling") -> None:
        if mode not in ("polling", "task"):
            raise TransportError(f"unknown PT mode {mode!r}")
        super().__init__(name)
        self.mode = mode
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.suspended = False

    # -- subclass contract ---------------------------------------------------
    def transmit(self, frame: Frame, route: "Route") -> None:
        """Move ``frame`` to ``route.node``.

        The frame's ``target`` has already been rewritten to the
        receiver-local TiD by the PTA.  The transport owns the frame's
        block from this point: it must release it (``frame_free``)
        once the bytes are on the wire, or hold a reference across an
        asynchronous send.
        """
        raise NotImplementedError

    def poll(self) -> bool:
        """Polling mode: ingest pending data; True if anything arrived.

        Task-mode transports keep the default no-op (their thread
        delivers), so the executive may scan all PTs uniformly.
        """
        return False

    @property
    def has_pending(self) -> bool:
        """True when data is staged awaiting the next ``poll`` — the
        executive's idleness test must include this, or work parked in
        a polling transport would be invisible."""
        return False

    def suspend(self) -> None:
        """Paper §4: it is "advisable ... to suspend other PTs during
        periods in which low latency communication is required"."""
        self.suspended = True

    def resume(self) -> None:
        self.suspended = False

    # -- shared receive path ---------------------------------------------------
    def ingest_frame_bytes(self, src_node: int, frame_bytes: bytes) -> Frame:
        """Rebuild an arriving frame in pool memory and post it inbound.

        This is the ``pt_processing`` probe span: allocate a pool block
        (nested ``frame_alloc`` probe), copy the wire bytes in — the
        single unavoidable copy off the wire — resolve the initiator to
        a local proxy TiD, and post to the inbound queue.
        """
        exe = self._require_live()
        with exe.probes.measure("pt_processing"):
            size = len(frame_bytes)
            with exe.probes.measure("frame_alloc"):
                block = exe.pool.alloc(size)
            view = block.memory[:size]
            view[:] = frame_bytes
            frame = Frame(view, block=block)
            frame.validate()
            frame.initiator = exe.create_proxy(
                src_node, frame.initiator, transport=self.name
            )
            self.frames_received += 1
            self.bytes_received += size
            exe.post_inbound(frame)
        return frame

    # -- shared transmit-side bookkeeping -----------------------------------
    def account_sent(self, nbytes: int) -> None:
        self.frames_sent += 1
        self.bytes_sent += nbytes

    def _require_live(self) -> "Executive":
        if self.executive is None:
            raise TransportError(f"peer transport {self.name!r} is not installed")
        return self.executive
