"""The Myrinet/GM peer transport (simulation plane).

Paper §5: *"We implemented a peer transport based on the Myrinet GM
1.1.3 library for our XDAQ I2O executive and performed the round-trip
test."*  This is that PT, running over the modelled fabric of
:mod:`repro.hw`.

Timing semantics in the simulation plane:

* **transmit** — the frame is serialised immediately (so its block can
  be recycled), but wire injection is scheduled after the CPU cost the
  framework has accrued since the node last yielded
  (``probes.accrued_ns``): software overhead delays the wire, which is
  precisely what figure 6 measures.  The sent frame's block is
  released at DMA completion, off the critical path, mirroring GM's
  send-callback buffer ownership.
* **receive** — the GM receive handler stages the packet and wakes the
  node; the executive's next polling quantum runs ``ingest_frame_bytes``
  (the ``pt_processing`` probe span) at properly accounted CPU cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.hw.gm import GmPacket, GmPort
from repro.hw.myrinet import Fabric
from repro.i2o.frame import Frame
from repro.transports.base import PeerTransport
from repro.transports.wire import decode_wire, encode_wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Route


class SimGmTransport(PeerTransport):
    """XDAQ peer transport over the GM port abstraction."""

    def __init__(
        self,
        fabric: Fabric,
        name: str = "gm",
        *,
        send_tokens: int = 16,
        recv_tokens: int = 64,
    ) -> None:
        super().__init__(name=name, mode="polling")
        self.fabric = fabric
        self._send_tokens = send_tokens
        self._recv_tokens = recv_tokens
        self.port: GmPort | None = None
        #: (src_node, frame view into the packet's payload) — copied
        #: into pool memory by ``ingest_frame_bytes`` at poll time
        self._staged: list[tuple[int, memoryview]] = []
        #: frames awaiting a free send token (GM back-pressure):
        #: (wire bytes, destination node, pool block)
        self._tx_backlog: list[tuple[bytes, int, object]] = []
        self.backlogged = 0
        #: set by the SimNode so arrivals wake a sleeping node process
        self.wake_hook: Callable[[], None] | None = None

    def on_plugin(self) -> None:
        exe = self._require_live()
        self.port = GmPort(
            self.fabric,
            exe.node,
            send_tokens=self._send_tokens,
            recv_tokens=self._recv_tokens,
        )
        self.port.set_receive_handler(self._on_packet)

    # -- transmit -----------------------------------------------------------
    def transmit(self, frame: Frame, route: "Route") -> None:
        exe = self._require_live()
        assert self.port is not None, "transport not plugged in"
        data = encode_wire(exe.node, frame)
        self.tx_copies += 1  # host-side staging copy into the DMA region
        self.account_sent(frame.total_size)
        block = frame.block
        frame.block = None  # ownership moves to the send completion
        offset = exe.probes.accrued_ns
        if offset:
            self.fabric.sim.after(
                offset, lambda: self._inject(data, route.node, block)
            )
        else:
            self._inject(data, route.node, block)

    def _inject(self, data: bytes, node: int, block: object) -> None:
        """Send now, or park behind GM's send-token back-pressure."""
        assert self.port is not None
        if self.port.send_tokens <= 0:
            self._tx_backlog.append((data, node, block))
            self.backlogged += 1
            return
        exe = self._require_live()

        def on_sent() -> None:
            # GM send callback: the DMA drained the host buffer.
            if block is not None:
                exe.pool.free(block)  # type: ignore[arg-type]
            self._drain_backlog()

        self.port.send_with_callback(data, node, on_sent)

    def _drain_backlog(self) -> None:
        assert self.port is not None
        while self._tx_backlog and self.port.send_tokens > 0:
            data, node, block = self._tx_backlog.pop(0)
            self._inject(data, node, block)

    # -- receive ------------------------------------------------------------
    def _on_packet(self, packet: GmPacket) -> None:
        src_node, frame_bytes = decode_wire(packet.data)
        self._staged.append((src_node, frame_bytes))
        if self.wake_hook is not None:
            self.wake_hook()

    def poll(self) -> bool:
        if not self._staged or self.suspended:
            return False
        staged, self._staged = self._staged, []
        for src_node, frame_bytes in staged:
            self.ingest_frame_bytes(src_node, frame_bytes)
            assert self.port is not None
            self.port.provide_receive_buffer()
        return True

    @property
    def staged(self) -> int:
        return len(self._staged)

    @property
    def has_pending(self) -> bool:
        return bool(self._staged)
