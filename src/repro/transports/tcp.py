"""TCP peer transport.

The paper's benchmark setup ran *"another PT thread ... handling TCP
communication for configuration and control purposes"* alongside the
Myrinet/GM data PT — the classic control/data plane split.  This
transport provides that role in the native plane: real sockets on
localhost (or anywhere), lazy outbound connections, and a task-mode
accept/reader thread per peer.

Both directions take the zero-copy path: transmit puts the frame's
pool buffer on the wire with vectored ``sendmsg`` (no serialisation
copy), and receive re-frames on the 12-byte wire header, allocates the
receiving pool block first, and ``recv_into``s the frame straight into
it — exactly one copy per node, the one off the wire.
"""

from __future__ import annotations

import socket
import threading
from typing import TYPE_CHECKING

from repro.i2o.errors import FrameFormatError
from repro.i2o.frame import Frame
from repro.transports.base import PeerTransport, TransportError
from repro.transports.wire import (
    encode_wire_parts,
    read_wire_header,
    recv_into_exact,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Route


def _sendmsg_all(sock: socket.socket, parts: list) -> None:
    """Vectored send of all ``parts``, looping on partial writes."""
    views = [memoryview(p) for p in parts]
    while views:
        sent = sock.sendmsg(views)
        while sent:
            if sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][sent:]
                sent = 0


class TcpTransport(PeerTransport):
    """Task-mode TCP endpoint.

    ``peers`` maps node id → ``(host, port)``.  The local endpoint
    listens on ``listen_port`` (0 = ephemeral; read ``bound_port``
    after install).  Connections are made lazily on first transmit and
    cached; each accepted or initiated socket gets a reader thread.
    """

    def __init__(
        self,
        name: str = "tcp",
        *,
        listen_host: str = "127.0.0.1",
        listen_port: int = 0,
        peers: dict[int, tuple[str, int]] | None = None,
    ) -> None:
        super().__init__(name=name, mode="task")
        self.listen_host = listen_host
        self.listen_port = listen_port
        self.peers: dict[int, tuple[str, int]] = dict(peers or {})
        self.bound_port: int | None = None
        self._server: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._conns: dict[int, socket.socket] = {}
        self._conn_lock = threading.Lock()
        self._readers: list[threading.Thread] = []
        self._stop = threading.Event()

    # -- lifecycle ------------------------------------------------------------
    def on_plugin(self) -> None:
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind((self.listen_host, self.listen_port))
        server.listen(16)
        self._server = server
        self.bound_port = server.getsockname()[1]
        self._stop.clear()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"pt-{self.name}-accept", daemon=True
        )
        self._accept_thread.start()

    def on_unplug(self) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        self._stop.set()
        if self._server is not None:
            try:
                self._server.close()
            except OSError:  # pragma: no cover - defensive
                pass
            self._server = None
        with self._conn_lock:
            conns = list(self._conns.values())
            self._conns.clear()
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            conn.close()
        for reader in self._readers:
            reader.join(timeout=2)
        self._readers.clear()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2)
            self._accept_thread = None

    def add_peer(self, node: int, host: str, port: int) -> None:
        self.peers[node] = (host, port)

    # -- transmit ---------------------------------------------------------------
    def transmit(self, frame: Frame, route: "Route") -> None:
        exe = self._require_live()
        sock = self._connection_to(route.node)
        # Scatter-gather: [wire header, frame's pool buffer].  The
        # frame stays with the caller until the send succeeds, then the
        # block is released — no serialisation copy on this side.
        parts = encode_wire_parts(exe.node, frame)
        try:
            _sendmsg_all(sock, list(parts))
        except OSError as exc:
            self._drop_connection(route.node)
            raise TransportError(f"send to node {route.node} failed: {exc}") from exc
        self.account_sent(frame.total_size)
        exe.frame_free(frame)

    def _connection_to(self, node: int) -> socket.socket:
        with self._conn_lock:
            sock = self._conns.get(node)
            if sock is not None:
                return sock
        address = self.peers.get(node)
        if address is None:
            raise TransportError(f"no TCP address configured for node {node}")
        try:
            sock = socket.create_connection(address, timeout=5)
        except OSError as exc:
            raise TransportError(f"connect to node {node} {address}: {exc}") from exc
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._conn_lock:
            self._conns[node] = sock
        self._spawn_reader(sock)
        return sock

    def _drop_connection(self, node: int) -> None:
        with self._conn_lock:
            sock = self._conns.pop(node, None)
        if sock is not None:
            sock.close()

    # -- receive ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        assert self._server is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._server.accept()
            except OSError:
                return  # socket closed during shutdown
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._spawn_reader(conn)

    def _spawn_reader(self, sock: socket.socket) -> None:
        reader = threading.Thread(
            target=self._reader_loop,
            args=(sock,),
            name=f"pt-{self.name}-reader",
            daemon=True,
        )
        reader.start()
        # Spawned from both the accept thread and (lazily, on first
        # transmit) the dispatch thread; shutdown() joins the list.
        with self._conn_lock:
            self._readers.append(reader)

    def _reader_loop(self, sock: socket.socket) -> None:
        while not self._stop.is_set():
            try:
                parsed = read_wire_header(sock.recv_into)
            except (OSError, FrameFormatError):
                return
            if parsed is None:
                return  # orderly shutdown at a message boundary
            src_node, frame_len = parsed
            # Learn the reverse path: an accepted connection can serve
            # replies to its originating node.
            with self._conn_lock:
                self._conns.setdefault(src_node, sock)

            def fill(view: memoryview, _sock: socket.socket = sock) -> None:
                if not recv_into_exact(_sock.recv_into, view):
                    raise TransportError("connection closed mid-frame")

            try:
                self.ingest_into(src_node, frame_len, fill)
            except (OSError, TransportError, FrameFormatError):
                return
