"""Fault-injecting transports for resilience testing.

The paper's domain (§1: air traffic control, physics DAQ) makes
delivery failure a first-class concern, and its fault-tolerance story
(default handlers, watchdogs, failure replies) needs an adversarial
wire to be tested against.  :class:`FaultyLoopbackTransport` wraps the
loopback medium with deterministic, seeded fault injection:

* **drop** — the message vanishes;
* **duplicate** — delivered twice;
* **corrupt** — one byte of the frame body is flipped (the receiver's
  validation or the application's CRC must catch it);
* **delay** — the message is re-queued behind later traffic
  (reordering);
* **partition** — a whole node (or set of nodes) is cut off: nothing
  this endpoint sends reaches them and nothing they sent is ingested.
  ``partition()`` with no arguments isolates this endpoint entirely —
  the node-death injection the supervision layer is tested against.
  ``heal()`` reconnects.

Faults are driven by a named RNG substream, so a failing test replays
identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.i2o.frame import HEADER_SIZE, Frame
from repro.sim.rng import RngStreams
from repro.transports.base import StagedItem
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport

#: Sentinel for "partitioned from every peer".
ALL_NODES = object()


@dataclass(frozen=True)
class FaultPlan:
    """Per-message fault probabilities (independent draws)."""

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate",
                     "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class FaultyLoopbackTransport(LoopbackTransport):
    """Loopback with seeded fault injection on the transmit side."""

    def __init__(
        self,
        network: LoopbackNetwork,
        plan: FaultPlan,
        name: str = "faulty",
        *,
        seed: int = 0,
    ) -> None:
        super().__init__(network, name=name)
        self.plan = plan
        self._rng = RngStreams(seed).stream(f"faults/{name}")
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.delayed = 0
        self.partition_dropped = 0
        self._delayed_queue: list[StagedItem] = []
        self._partitioned: set[int] | object = set()

    # -- partition fault ---------------------------------------------------
    def partition(self, *nodes: int) -> None:
        """Cut the link to ``nodes`` in both directions; with no
        arguments, isolate this endpoint from the whole cluster
        (models this node's death as seen by everyone else)."""
        if not nodes:
            self._partitioned = ALL_NODES
        elif self._partitioned is not ALL_NODES:
            self._partitioned.update(nodes)  # type: ignore[union-attr]

    def heal(self, *nodes: int) -> None:
        """Reconnect ``nodes`` (or everything, with no arguments)."""
        if not nodes or self._partitioned is ALL_NODES:
            self._partitioned = set()
        else:
            self._partitioned.difference_update(nodes)  # type: ignore[union-attr]

    def is_cut(self, node: int) -> bool:
        return self._partitioned is ALL_NODES or node in self._partitioned  # type: ignore[operator]

    # -- transmit-side faults ----------------------------------------------
    def transmit(self, frame: Frame, route) -> None:
        src_size = frame.total_size
        dest = self.network.endpoint(route.node)
        self.account_sent(src_size)
        # A clean delivery hands the block over zero-copy like the
        # plain loopback; faults that mutate or multiply the message
        # are copy-on-mutate, so injection can never scribble on a
        # buffer the sender's pool already recycled.
        item = self.make_handoff(frame)
        if self.is_cut(route.node):
            self.partition_dropped += 1
            self.release_staged(item)
            return
        plan = self.plan
        draw = self._rng.random
        if draw() < plan.drop_rate:
            self.dropped += 1
            self.release_staged(item)
            return
        if draw() < plan.corrupt_rate and src_size > HEADER_SIZE:
            # Flip a payload byte: the frame still parses, so only an
            # end-to-end integrity check (application CRC) catches it.
            self.corrupted += 1
            mutable = bytearray(self._staged_bytes(item))
            index = HEADER_SIZE + int(
                self._rng.integers(0, src_size - HEADER_SIZE)
            )
            mutable[index] ^= 0xFF
            src_node = item[0]
            self.release_staged(item)
            item = (src_node, bytes(mutable))
        copies = 2 if draw() < plan.duplicate_rate else 1
        if copies == 2:
            self.duplicated += 1
        deliveries = [item]
        if copies == 2:
            deliveries.append((item[0], self._staged_bytes(item)))
        delay_hook = getattr(dest, "_delay_stage", None)
        for delivery in deliveries:
            if delay_hook is not None and draw() < plan.delay_rate:
                self.delayed += 1
                delay_hook(delivery)
            else:
                dest._staged.append(delivery)
        self.network.messages += 1

    def _staged_bytes(self, item: StagedItem) -> bytes:
        """Serialise a staged item's frame (the copy-on-mutate copy)."""
        if len(item) == 3:
            self.tx_copies += 1
            return bytes(item[1].memory[: item[2]])
        return item[1]

    def _delay_stage(self, item: StagedItem) -> None:
        """Hold one message back until the next poll round."""
        self._delayed_queue.append(item)

    # -- receive side ------------------------------------------------------
    def poll(self) -> bool:
        """Ingest staged traffic, then promote delayed traffic so it is
        delivered on the *next* round — unconditionally, so a delayed
        message cannot starve behind a continuous stream of later
        arrivals, and an idle wire still drains within one extra poll.
        """
        if self.suspended:
            return False
        got = False
        staged, self._staged = self._staged, []
        for item in staged:
            if self.is_cut(item[0]):
                self.partition_dropped += 1
                self.release_staged(item)
                got = True  # consumed (dropped) — the queue did move
                continue
            self.ingest_staged(item)
            got = True
        if self._delayed_queue:
            self._staged.extend(self._delayed_queue)
            self._delayed_queue.clear()
            got = True
        return got

    def flush(self) -> bool:
        """Idle-drain: deliver everything — including delayed traffic —
        right now instead of one poll round later.  Drivers that stop
        pumping on idle call this to guarantee no message is stranded
        in the delay queue."""
        if not (self._staged or self._delayed_queue):
            return False
        self._staged.extend(self._delayed_queue)
        self._delayed_queue.clear()
        return self.poll()

    def crash_detach(self) -> None:
        for item in self._delayed_queue:
            self.release_staged(item)
        self._delayed_queue.clear()
        super().crash_detach()

    @property
    def has_pending(self) -> bool:
        return bool(self._staged) or bool(self._delayed_queue)
