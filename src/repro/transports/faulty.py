"""Fault-injecting transports for resilience testing.

The paper's domain (§1: air traffic control, physics DAQ) makes
delivery failure a first-class concern, and its fault-tolerance story
(default handlers, watchdogs, failure replies) needs an adversarial
wire to be tested against.  :class:`FaultyLoopbackTransport` wraps the
loopback medium with deterministic, seeded fault injection:

* **drop** — the message vanishes;
* **duplicate** — delivered twice;
* **corrupt** — one byte of the frame body is flipped (the receiver's
  validation or the application's CRC must catch it);
* **delay** — the message is re-queued behind later traffic
  (reordering).

Faults are driven by a named RNG substream, so a failing test replays
identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.rng import RngStreams
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport
from repro.transports.wire import decode_wire, encode_wire
from repro.i2o.frame import Frame


@dataclass(frozen=True)
class FaultPlan:
    """Per-message fault probabilities (independent draws)."""

    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "corrupt_rate",
                     "delay_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


class FaultyLoopbackTransport(LoopbackTransport):
    """Loopback with seeded fault injection on the transmit side."""

    def __init__(
        self,
        network: LoopbackNetwork,
        plan: FaultPlan,
        name: str = "faulty",
        *,
        seed: int = 0,
    ) -> None:
        super().__init__(network, name=name)
        self.plan = plan
        self._rng = RngStreams(seed).stream(f"faults/{name}")
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.delayed = 0
        self._delayed_queue: list[tuple[int, bytes]] = []

    def transmit(self, frame: Frame, route) -> None:
        exe = self._require_live()
        dest = self.network.endpoint(route.node)
        data = encode_wire(exe.node, frame)
        self.account_sent(frame.total_size)
        exe.frame_free(frame)
        src_node, frame_bytes = decode_wire(data)
        plan = self.plan
        draw = self._rng.random
        if draw() < plan.drop_rate:
            self.dropped += 1
            return
        if draw() < plan.corrupt_rate and len(frame_bytes) > 32:
            # Flip a payload byte: the frame still parses, so only an
            # end-to-end integrity check (application CRC) catches it.
            self.corrupted += 1
            mutable = bytearray(frame_bytes)
            index = 32 + int(self._rng.integers(0, len(mutable) - 32))
            mutable[index] ^= 0xFF
            frame_bytes = bytes(mutable)
        copies = 2 if draw() < plan.duplicate_rate else 1
        if copies == 2:
            self.duplicated += 1
        for _ in range(copies):
            delay_hook = getattr(dest, "_delay_stage", None)
            if delay_hook is not None and draw() < plan.delay_rate:
                self.delayed += 1
                delay_hook(src_node, frame_bytes)
            else:
                dest._staged.append((src_node, frame_bytes))
        self.network.messages += 1

    def _delay_stage(self, src_node: int, frame_bytes: bytes) -> None:
        """Hold one message back until after the next poll round."""
        self._delayed_queue.append((src_node, bytes(frame_bytes)))

    def poll(self) -> bool:
        got = super().poll()
        if self._delayed_queue and not self._staged:
            # Release delayed traffic one poll round later.
            self._staged.extend(self._delayed_queue)
            self._delayed_queue.clear()
            return True
        return got

    @property
    def has_pending(self) -> bool:
        return bool(self._staged) or bool(self._delayed_queue)
