"""Peer Transports: the pluggable wire layer.

Paper §4: *"The Peer Transports (PT) perform the actual communication.
They encapsulate all details about a specific transport layer ... we
can use multiple transports to send and receive in parallel ...
Concerning Peer Transports we distinguish two ways of operation.  In
polling mode, the executive periodically scans all registered PTs for
pending data.  In task mode each PT has its own thread of control."*

PTs are themselves device driver modules with TiDs (paper §3.5), which
is why :class:`~repro.transports.base.PeerTransport` subclasses
:class:`~repro.core.device.Listener`.
"""

from repro.transports.agent import PeerTransportAgent
from repro.transports.base import PeerTransport, TransportError
from repro.transports.faulty import FaultPlan, FaultyLoopbackTransport
from repro.transports.loopback import LoopbackNetwork, LoopbackTransport
from repro.transports.queued import QueuePair, QueueTransport
from repro.transports.simgm import SimGmTransport
from repro.transports.simib import SimIbTransport
from repro.transports.simpci import SimPciTransport
from repro.transports.tcp import TcpTransport
from repro.transports.wire import (
    decode_wire,
    encode_wire,
    encode_wire_into,
    encode_wire_parts,
    read_wire_header,
    recv_into_exact,
)

__all__ = [
    "FaultPlan",
    "FaultyLoopbackTransport",
    "LoopbackNetwork",
    "LoopbackTransport",
    "PeerTransport",
    "PeerTransportAgent",
    "QueuePair",
    "QueueTransport",
    "SimGmTransport",
    "SimIbTransport",
    "SimPciTransport",
    "TcpTransport",
    "TransportError",
    "decode_wire",
    "encode_wire",
    "encode_wire_into",
    "encode_wire_parts",
    "read_wire_header",
    "recv_into_exact",
]
