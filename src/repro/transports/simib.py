"""The InfiniBand peer transport: the §8 claim, executable.

*"This approach allows us to exploit any future networking technology
without the need to modify the applications."*  This PT speaks the
verbs interface of :mod:`repro.hw.infiniband` — a different NIC
generation than the GM transport — behind exactly the same
:class:`~repro.transports.base.PeerTransport` contract.  The
transparency tests run the identical benchmark devices and DAQ
application over both and only the latency changes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.hw.infiniband import IbFabric, QueuePairEndpoint
from repro.i2o.frame import Frame
from repro.transports.base import PeerTransport
from repro.transports.wire import decode_wire, encode_wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Route


class SimIbTransport(PeerTransport):
    """XDAQ peer transport over IB verbs (simulation plane).

    The executive's node id doubles as the LID.  Same timing
    conventions as the GM transport: wire injection is delayed by the
    CPU cost accrued since the node last yielded, and sent blocks are
    released at DMA completion.
    """

    def __init__(
        self,
        fabric: IbFabric,
        name: str = "ib",
        *,
        send_depth: int = 64,
        recv_depth: int = 256,
    ) -> None:
        super().__init__(name=name, mode="polling")
        self.fabric = fabric
        self._send_depth = send_depth
        self._recv_depth = recv_depth
        self.qp: QueuePairEndpoint | None = None
        self._staged: list[tuple[int, memoryview]] = []
        self._tx_backlog: list[tuple[bytes, int, object]] = []
        #: blocks of posted sends, FIFO: the HCA's single DMA engine
        #: completes sends in post order, so the oldest block is the
        #: one each send completion releases.
        self._inflight_blocks: list[object] = []
        self.wake_hook: Callable[[], None] | None = None

    def on_plugin(self) -> None:
        exe = self._require_live()
        self.qp = QueuePairEndpoint(
            self.fabric, exe.node,
            send_depth=self._send_depth, recv_depth=self._recv_depth,
        )
        self.qp.comp_handler = self._on_completion

    # -- transmit -----------------------------------------------------------
    def transmit(self, frame: Frame, route: "Route") -> None:
        exe = self._require_live()
        assert self.qp is not None, "transport not plugged in"
        data = encode_wire(exe.node, frame)
        self.tx_copies += 1  # host-side staging copy into the send WR
        self.account_sent(frame.total_size)
        block = frame.block
        frame.block = None
        offset = exe.probes.accrued_ns
        if offset:
            self.fabric.sim.after(
                offset, lambda: self._post(data, route.node, block)
            )
        else:
            self._post(data, route.node, block)

    def _post(self, data: bytes, lid: int, block: object) -> None:
        assert self.qp is not None
        if self.qp._send_slots <= 0:
            self._tx_backlog.append((data, lid, block))
            return
        self._inflight_blocks.append(block)
        self.qp.post_send(data, lid)

    # -- completion handling ----------------------------------------------------
    def _on_completion(self) -> None:
        assert self.qp is not None
        exe = self._require_live()
        for completion in self.qp.poll_cq(max_entries=64):
            if completion.kind == "send":
                block = self._inflight_blocks.pop(0)
                if block is not None:
                    exe.pool.free(block)  # type: ignore[arg-type]
                while self._tx_backlog and self.qp._send_slots > 0:
                    data, lid, blk = self._tx_backlog.pop(0)
                    self._post(data, lid, blk)
            else:
                assert completion.data is not None
                src_node, frame_bytes = decode_wire(completion.data)
                self._staged.append((src_node, frame_bytes))
                self.qp.post_recv()
                if self.wake_hook is not None:
                    self.wake_hook()

    def poll(self) -> bool:
        if not self._staged or self.suspended:
            return False
        staged, self._staged = self._staged, []
        for src_node, frame_bytes in staged:
            self.ingest_frame_bytes(src_node, frame_bytes)
        return True

    @property
    def has_pending(self) -> bool:
        return bool(self._staged)
