"""In-process loopback transport.

Connects executives living in the same Python process with no wire at
all: the frame's *bytes* are re-staged into the destination node's own
pool through the standard ``ingest_frame_bytes`` path, so the receive
side exercises exactly the same code (and probes) as any real
transport.  Used heavily by tests and by the quickstart example; also
the lowest-latency option in the native plane.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.i2o.frame import Frame
from repro.transports.base import PeerTransport, TransportError
from repro.transports.wire import decode_wire, encode_wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive, Route


class LoopbackNetwork:
    """The shared 'medium': a registry of loopback endpoints by node id."""

    def __init__(self) -> None:
        self._endpoints: dict[int, "LoopbackTransport"] = {}
        self.messages = 0

    def join(self, node: int, transport: "LoopbackTransport") -> None:
        if node in self._endpoints:
            raise TransportError(f"node {node} already on loopback network")
        self._endpoints[node] = transport

    def endpoint(self, node: int) -> "LoopbackTransport":
        ep = self._endpoints.get(node)
        if ep is None:
            raise TransportError(f"no loopback endpoint for node {node}")
        return ep

    def nodes(self) -> list[int]:
        return sorted(self._endpoints)


class LoopbackTransport(PeerTransport):
    """Zero-wire transport over a :class:`LoopbackNetwork`.

    Polling mode by default: delivery deposits the wire bytes into the
    destination endpoint's staging list, drained by the destination
    executive's next ``poll``.  With ``immediate=True`` the frame is
    ingested synchronously at transmit time (handy for single-threaded
    tests that drive both executives by hand).
    """

    def __init__(
        self,
        network: LoopbackNetwork,
        name: str = "loopback",
        *,
        immediate: bool = False,
    ) -> None:
        super().__init__(name=name, mode="polling")
        self.network = network
        self.immediate = immediate
        self._staged: list[tuple[int, bytes]] = []

    def on_plugin(self) -> None:
        exe = self._require_live()
        self.network.join(exe.node, self)

    def transmit(self, frame: Frame, route: "Route") -> None:
        exe = self._require_live()
        dest = self.network.endpoint(route.node)  # resolve before taking
        # ownership of the frame, so failures leave it with the caller
        data = encode_wire(exe.node, frame)
        self.account_sent(frame.total_size)
        exe.frame_free(frame)
        self.network.messages += 1
        src_node, frame_bytes = decode_wire(data)
        if dest.immediate:
            dest.ingest_frame_bytes(src_node, frame_bytes)
        else:
            dest._staged.append((src_node, frame_bytes))

    def poll(self) -> bool:
        if not self._staged or self.suspended:
            return False
        staged, self._staged = self._staged, []
        for src_node, frame_bytes in staged:
            self.ingest_frame_bytes(src_node, frame_bytes)
        return True

    @property
    def has_pending(self) -> bool:
        return bool(self._staged)
