"""In-process loopback transport.

Connects executives living in the same Python process with no wire at
all: the frame's *pool block* is handed to the destination endpoint
wholesale — the sender's reference travels with the staged item and
becomes the inbound frame's reference (the paper's buffer loaning,
with zero copies).  The receive side still runs the standard ingest
path, so it exercises exactly the same code (and probes) as any real
transport.  Used heavily by tests and by the quickstart example; also
the lowest-latency option in the native plane.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.i2o.frame import Frame
from repro.transports.base import PeerTransport, StagedItem, TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Route


class LoopbackNetwork:
    """The shared 'medium': a registry of loopback endpoints by node id."""

    def __init__(self) -> None:
        self._endpoints: dict[int, "LoopbackTransport"] = {}
        self.messages = 0

    def join(self, node: int, transport: "LoopbackTransport") -> None:
        if node in self._endpoints:
            raise TransportError(f"node {node} already on loopback network")
        self._endpoints[node] = transport

    def leave(self, node: int,
              transport: "LoopbackTransport | None" = None) -> None:
        """Remove ``node``'s endpoint (crash detach / rejoin support).

        Passing ``transport`` makes the removal conditional on it still
        being the registered endpoint, so a stale crash teardown can
        never evict the replacement that already rejoined."""
        current = self._endpoints.get(node)
        if current is not None and (transport is None or current is transport):
            del self._endpoints[node]

    def endpoint(self, node: int) -> "LoopbackTransport":
        ep = self._endpoints.get(node)
        if ep is None:
            raise TransportError(f"no loopback endpoint for node {node}")
        return ep

    def nodes(self) -> list[int]:
        return sorted(self._endpoints)


class LoopbackTransport(PeerTransport):
    """Zero-wire, zero-copy transport over a :class:`LoopbackNetwork`.

    Polling mode by default: delivery deposits the block-handoff item
    into the destination endpoint's staging list, drained by the
    destination executive's next ``poll``.  With ``immediate=True`` the
    frame is ingested synchronously at transmit time (handy for
    single-threaded tests that drive both executives by hand).
    """

    def __init__(
        self,
        network: LoopbackNetwork,
        name: str = "loopback",
        *,
        immediate: bool = False,
    ) -> None:
        super().__init__(name=name, mode="polling")
        self.network = network
        self.immediate = immediate
        self._staged: list[StagedItem] = []

    def on_plugin(self) -> None:
        exe = self._require_live()
        self.network.join(exe.node, self)

    def transmit(self, frame: Frame, route: "Route") -> None:
        dest = self.network.endpoint(route.node)  # resolve before taking
        # ownership of the frame, so failures leave it with the caller
        self.account_sent(frame.total_size)
        item = self.make_handoff(frame)
        self.network.messages += 1
        if dest.immediate:
            dest.ingest_staged(item)
        else:
            dest._staged.append(item)

    def poll(self) -> bool:
        if not self._staged or self.suspended:
            return False
        staged, self._staged = self._staged, []
        for item in staged:
            self.ingest_staged(item)
        return True

    def crash_detach(self) -> None:
        """Die abruptly: release every staged block (they may belong to
        *other* nodes' pools — the OS analogue is reclaiming a dead
        process's mapped memory) and leave the network so senders get
        fail-fast transport errors until a replacement rejoins."""
        for item in self._staged:
            self.release_staged(item)
        self._staged.clear()
        exe = self.executive
        if exe is not None:
            self.network.leave(exe.node, self)
        super().crash_detach()

    @property
    def has_pending(self) -> bool:
        return bool(self._staged)
