"""The inter-node wire encapsulation.

A frame leaving a node is prefixed with a small transport header
carrying the source node (for proxy resolution at the receiver) and the
total length (for stream transports like TCP that must re-frame).  The
frame's ``target`` field has already been rewritten by the PTA to the
TiD that is *local at the receiver*; the ``initiator`` still names the
sender-local TiD and is proxied on arrival.

Layout (little-endian)::

    offset  size  field
    ------  ----  ---------------------------
       0      4   magic  (0x58444151 = "XDAQ" backwards-friendly)
       4      4   source node id
       8      4   frame length (header + payload)
      12      ..  the I2O frame bytes
"""

from __future__ import annotations

import struct

from repro.i2o.errors import FrameFormatError
from repro.i2o.frame import HEADER_SIZE, MAX_FRAME_SIZE, Frame

WIRE_MAGIC = 0x58444151
_WIRE = struct.Struct("<III")
WIRE_HEADER_SIZE = _WIRE.size  # 12


def encode_wire(src_node: int, frame: Frame) -> bytes:
    """Serialise a frame for transmission from ``src_node``."""
    body = frame.tobytes()
    return _WIRE.pack(WIRE_MAGIC, src_node, len(body)) + body


def decode_wire(data: bytes | bytearray | memoryview) -> tuple[int, bytes]:
    """Split a wire message into ``(src_node, frame_bytes)``.

    Raises :class:`FrameFormatError` on any structural problem — a
    transport receiving garbage must fail loudly, not deliver it.
    """
    if len(data) < WIRE_HEADER_SIZE + HEADER_SIZE:
        raise FrameFormatError(f"wire message of {len(data)} bytes is too short")
    magic, src_node, length = _WIRE.unpack_from(data, 0)
    if magic != WIRE_MAGIC:
        raise FrameFormatError(f"bad wire magic 0x{magic:08X}")
    if length < HEADER_SIZE or length > MAX_FRAME_SIZE:
        raise FrameFormatError(f"implausible frame length {length}")
    if WIRE_HEADER_SIZE + length != len(data):
        raise FrameFormatError(
            f"length field {length} disagrees with message size {len(data)}"
        )
    return src_node, bytes(data[WIRE_HEADER_SIZE:])
