"""The inter-node wire encapsulation.

A frame leaving a node is prefixed with a small transport header
carrying the source node (for proxy resolution at the receiver) and the
total length (for stream transports like TCP that must re-frame).  The
frame's ``target`` field has already been rewritten by the PTA to the
TiD that is *local at the receiver*; the ``initiator`` still names the
sender-local TiD and is proxied on arrival.

Layout (little-endian)::

    offset  size  field
    ------  ----  ---------------------------
       0      4   magic  (0x58444151 = "XDAQ" backwards-friendly)
       4      4   source node id
       8      4   frame length (header + payload)
      12      ..  the I2O frame bytes

Zero-copy forms (paper §4: "All communication employs a zero-copy
scheme as the message buffers are taken from the executive's memory
pool"):

* :func:`encode_wire_parts` returns ``(wire_header, frame_view)``
  iovecs for ``sendmsg``-style vectored writers — the frame's pool
  buffer goes on the wire without serialisation;
* :func:`decode_wire` returns a :class:`memoryview` of the frame bytes
  instead of forcing a copy;
* :func:`read_wire_header` / :func:`recv_into_exact` re-frame a byte
  stream by reading the 12-byte header and then ``recv_into`` the
  frame straight into a receiver-side pool block.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.i2o.errors import FrameFormatError
from repro.i2o.frame import HEADER_SIZE, MAX_FRAME_SIZE, Frame

WIRE_MAGIC = 0x58444151
_WIRE = struct.Struct("<III")
WIRE_HEADER_SIZE = _WIRE.size  # 12

#: ``socket.recv_into``-shaped reader: fills the given buffer (possibly
#: partially), returns the byte count, 0 on end of stream.
ReadInto = Callable[[memoryview], int]


def encode_wire_parts(src_node: int, frame: Frame) -> tuple[bytes, memoryview]:
    """Scatter-gather form of :func:`encode_wire`.

    Returns the 12-byte wire header plus a zero-copy view of the frame,
    ready for a ``sendmsg``-style vectored writer.  The view aliases
    the frame's (pool) buffer — it must be consumed before the frame's
    block is freed.
    """
    return _WIRE.pack(WIRE_MAGIC, src_node, frame.total_size), frame.view


def encode_wire_into(
    src_node: int, frame: Frame, out: memoryview | bytearray
) -> int:
    """Write the complete wire message into ``out``; returns its size.

    For transports that own a contiguous staging buffer (a DMA region,
    a ring slot): one copy, no intermediate ``bytes`` objects.
    """
    total = frame.total_size
    needed = WIRE_HEADER_SIZE + total
    if len(out) < needed:
        raise FrameFormatError(
            f"wire buffer of {len(out)} bytes too small for {needed}"
        )
    _WIRE.pack_into(out, 0, WIRE_MAGIC, src_node, total)
    out[WIRE_HEADER_SIZE:needed] = frame.view
    return needed


def encode_wire(src_node: int, frame: Frame) -> bytes:
    """Serialise a frame for transmission from ``src_node`` (one flat
    copy; vectored writers use :func:`encode_wire_parts` instead)."""
    header, body = encode_wire_parts(src_node, frame)
    return header + bytes(body)


def decode_wire(data: bytes | bytearray | memoryview) -> tuple[int, memoryview]:
    """Split a wire message into ``(src_node, frame_view)``.

    The returned view aliases ``data`` — zero-copy.  A caller that
    keeps the frame beyond the buffer's lifetime must land it in pool
    memory (``PeerTransport.ingest_into`` does exactly that).

    Raises :class:`FrameFormatError` on any structural problem — a
    transport receiving garbage must fail loudly, not deliver it.
    """
    view = memoryview(data)
    if len(view) < WIRE_HEADER_SIZE + HEADER_SIZE:
        raise FrameFormatError(f"wire message of {len(view)} bytes is too short")
    magic, src_node, length = _WIRE.unpack_from(view, 0)
    if magic != WIRE_MAGIC:
        raise FrameFormatError(f"bad wire magic 0x{magic:08X}")
    if length < HEADER_SIZE or length > MAX_FRAME_SIZE:
        raise FrameFormatError(f"implausible frame length {length}")
    if WIRE_HEADER_SIZE + length != len(view):
        raise FrameFormatError(
            f"length field {length} disagrees with message size {len(view)}"
        )
    return src_node, view[WIRE_HEADER_SIZE:]


def read_wire_header(recv_into: ReadInto) -> tuple[int, int] | None:
    """Read and validate one wire header from a byte stream.

    Returns ``(src_node, frame_len)`` so the caller can allocate the
    receiving pool block *before* pulling the frame off the stream
    (see :func:`recv_into_exact`), or ``None`` on a clean end of
    stream at a message boundary.  An EOF mid-header or a malformed
    header raises :class:`FrameFormatError`.
    """
    header = bytearray(WIRE_HEADER_SIZE)
    view = memoryview(header)
    got = recv_into(view)
    if got == 0:
        return None
    pos = got
    while pos < WIRE_HEADER_SIZE:
        got = recv_into(view[pos:])
        if got == 0:
            raise FrameFormatError("stream ended mid wire header")
        pos += got
    magic, src_node, length = _WIRE.unpack(header)
    if magic != WIRE_MAGIC:
        raise FrameFormatError(f"bad wire magic 0x{magic:08X}")
    if length < HEADER_SIZE or length > MAX_FRAME_SIZE:
        raise FrameFormatError(f"implausible frame length {length}")
    return src_node, length


def recv_into_exact(recv_into: ReadInto, view: memoryview) -> bool:
    """Fill ``view`` completely from a byte stream; False on EOF.

    This is the stream half of the pool-first receive path: the view
    is a slice of an already-allocated pool block, so the wire bytes
    land in their final resting place in one copy.
    """
    pos = 0
    total = len(view)
    while pos < total:
        got = recv_into(view[pos:])
        if got == 0:
            return False
        pos += got
    return True
