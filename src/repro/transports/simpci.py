"""PCI-segment peer transport: host and IOP on one bus (paper §7).

Models the ongoing-work experiment of the paper: a host executive and
an IOP-board executive exchanging I2O frames across a PCI segment,
where the messaging-instance queues are either hardware FIFOs (the
PLX IOP 480 board's I2O support) or software-managed queues whose
management cost lands on the CPU.  Bench X3 measures the difference.

One :class:`SimPciTransport` is installed per endpoint (host side and
IOP side), sharing an :class:`~repro.hw.pci.IopBoard`; direction
determines which FIFO each endpoint posts to (figure 2: host posts to
the inbound queue, the IOP replies through the outbound queue).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.hw.pci import HardwareFifo, IopBoard
from repro.i2o.frame import Frame
from repro.sim.kernel import Simulator
from repro.transports.base import PeerTransport, TransportError
from repro.transports.wire import decode_wire, encode_wire

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Route


class SimPciTransport(PeerTransport):
    """One endpoint of a host↔IOP PCI message path."""

    def __init__(
        self,
        sim: Simulator,
        board: IopBoard,
        *,
        side: str,
        peer_node: int,
        name: str = "",
    ) -> None:
        if side not in ("host", "iop"):
            raise TransportError(f"side must be 'host' or 'iop', got {side!r}")
        super().__init__(name=name or f"pci-{side}", mode="polling")
        self.sim = sim
        self.board = board
        self.side = side
        self.peer_node = peer_node
        self.wake_hook: Callable[[], None] | None = None
        self._staged: list[tuple[int, bytes]] = []

    # FIFO orientation: the host posts into board.inbound and fetches
    # from board.outbound; the IOP does the opposite (paper figure 2).
    @property
    def _tx_fifo(self) -> HardwareFifo:
        return self.board.inbound if self.side == "host" else self.board.outbound

    @property
    def _rx_fifo(self) -> HardwareFifo:
        return self.board.outbound if self.side == "host" else self.board.inbound

    # -- transmit ----------------------------------------------------------
    def transmit(self, frame: Frame, route: "Route") -> None:
        exe = self._require_live()
        if route.node != self.peer_node:
            raise TransportError(
                f"PCI PT reaches only node {self.peer_node}, not {route.node}"
            )
        data = encode_wire(exe.node, frame)
        self.tx_copies += 1  # staging copy DMA'd across the PCI segment
        self.account_sent(frame.total_size)
        exe.frame_free(frame)
        # Queue-management CPU cost: ~free with hardware FIFOs, real
        # with software queues — charge it to this node's ledger.
        exe.probes.charge("fifo_post", self._tx_fifo.post_cost_ns())
        fifo = self._tx_fifo
        offset = exe.probes.accrued_ns

        def post() -> None:
            def dma_done(_t: int) -> None:
                if not fifo.post(data):
                    # Back-pressure: retry after one bus round.
                    self.sim.after(
                        self.board.bus.transfer_time_ns(64),
                        lambda: dma_done(_t),
                    )
                    return
                peer = self._peer_endpoint
                if peer is not None and peer.wake_hook is not None:
                    peer.wake_hook()

            self.board.bus.transfer(len(data), dma_done)

        self.sim.after(offset, post) if offset else post()

    _peer_endpoint: "SimPciTransport | None" = None

    @classmethod
    def pair(
        cls,
        sim: Simulator,
        board: IopBoard,
        *,
        host_node: int,
        iop_node: int,
    ) -> tuple["SimPciTransport", "SimPciTransport"]:
        """Create the two coupled endpoints of one PCI segment."""
        host = cls(sim, board, side="host", peer_node=iop_node)
        iop = cls(sim, board, side="iop", peer_node=host_node)
        host._peer_endpoint = iop
        iop._peer_endpoint = host
        return host, iop

    # -- receive -----------------------------------------------------------
    def poll(self) -> bool:
        exe = self._require_live()
        got = False
        while True:
            item = self._rx_fifo.fetch()
            if item is None:
                break
            got = True
            exe.probes.charge("fifo_fetch", self._rx_fifo.fetch_cost_ns())
            src_node, frame_bytes = decode_wire(item)  # type: ignore[arg-type]
            self.ingest_frame_bytes(src_node, frame_bytes)
        return got
