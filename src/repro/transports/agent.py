"""The Peer Transport Agent (PTA).

Paper §4: *"The Peer Transport Agent receives messages and memory
pools are used for zero-copy operation"* and figure 4: outbound frames
travel Messenger Instance → PTA → PT → wire.  The PTA owns the
route-to-transport mapping; since every device instance can be
configured with a route, different destinations (or even different
device pairs) may use different transports concurrently — the paper's
multi-rail operation ("a vital functionality that is not covered by
other comparable middleware products yet").
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.device import Listener
from repro.flightrec.records import EV_FRAME_TRANSMIT, pack3
from repro.i2o.frame import Frame
from repro.i2o.tid import PTA_TID
from repro.transports.base import PeerTransport, TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Executive, Route


class PeerTransportAgent(Listener):
    """Routes outbound frames to the peer transport serving each route."""

    device_class = "peer_transport_agent"

    def __init__(self, name: str = "pta") -> None:
        super().__init__(name)
        self._by_name: dict[str, PeerTransport] = {}
        self._by_node: dict[int, PeerTransport] = {}
        self._default: PeerTransport | None = None
        self.forwarded = 0

    # -- wiring ---------------------------------------------------------------
    @classmethod
    def attach(cls, executive: "Executive") -> "PeerTransportAgent":
        """Install a PTA at the well-known TiD 1 of ``executive``."""
        pta = cls()
        executive.install(pta, tid=PTA_TID)
        executive.pta = pta
        return pta

    def register(
        self,
        transport: PeerTransport,
        *,
        nodes: list[int] | None = None,
        default: bool = False,
    ) -> PeerTransport:
        """Install (if needed) and index a peer transport.

        ``nodes`` pins specific destination nodes to this transport;
        ``default`` makes it the fallback for unpinned nodes.
        """
        exe = self._require_live()
        if transport.executive is None:
            exe.install(transport)
        elif transport.executive is not exe:
            raise TransportError(
                f"transport {transport.name!r} belongs to another executive"
            )
        if transport.name in self._by_name:
            raise TransportError(f"duplicate transport name {transport.name!r}")
        self._by_name[transport.name] = transport
        for node in nodes or ():
            self._by_node[node] = transport
        if default or self._default is None:
            self._default = transport
        if transport.mode == "polling":
            exe._pollable.append(transport)
        from repro.core.metrics import sanitize_metric_name

        prefix = f"pt_{sanitize_metric_name(transport.name)}"
        for attr in ("frames_sent", "frames_received", "bytes_sent",
                     "bytes_received", "tx_copies", "rx_copies"):
            exe.metrics.gauge(
                f"{prefix}_{attr}", lambda pt=transport, a=attr: getattr(pt, a)
            )
        return transport

    def transport(self, name: str) -> PeerTransport:
        pt = self._by_name.get(name)
        if pt is None:
            raise TransportError(f"no transport named {name!r}")
        return pt

    def transports(self) -> list[PeerTransport]:
        return list(self._by_name.values())

    # -- forwarding -------------------------------------------------------------
    def resolve(self, route: "Route") -> PeerTransport:
        """Transport selection order: route pin → per-node map → default."""
        if route.transport is not None:
            pt = self._by_name.get(route.transport)
            if pt is None:
                raise TransportError(
                    f"route names unknown transport {route.transport!r}"
                )
            return pt
        pt = self._by_node.get(route.node) or self._default
        if pt is None:
            raise TransportError(f"no transport can reach node {route.node}")
        return pt

    def forward(self, frame: Frame, route: "Route") -> None:
        """Hand an outbound frame to its transport (figure 4, step 3).

        Rewrites ``target`` from the sender-local proxy TiD to the TiD
        that is real at the receiver — the wire never carries proxy
        identifiers, which is what makes proxies purely local objects.
        A failed send restores the original target before re-raising
        (so the dead-letter path logs and fails the *sender-local*
        address, not the receiver's) and does not count as forwarded.
        """
        pt = self.resolve(route)
        if pt.suspended:
            raise TransportError(
                f"transport {pt.name!r} is suspended; route to node "
                f"{route.node} is unavailable"
            )
        original_target = frame.target
        owned = frame.block is not None
        exe = self.executive
        fr = exe.flightrec if exe is not None else None
        if fr is not None:
            # Snapshot before transmit: afterwards the block may have
            # been detached to the wire and the frame is not ours to
            # read.
            rec_args = (
                frame.transaction_context,
                pack3(route.node, int(route.remote_tid), frame.xfunction),
                frame.total_size,
            )
        frame.target = route.remote_tid
        try:
            pt.transmit(frame, route)
        except Exception:
            # Restore only while the frame still owns its buffer: if
            # the transport detached the block before failing, the
            # memory may already be recycled and is not ours to write.
            if frame.block is not None or not owned:
                frame.target = original_target
            raise
        self.forwarded += 1
        if fr is not None:
            fr.record(EV_FRAME_TRANSMIT, *rec_args)
