"""Queue-pair transport for threaded (native-plane) executives.

Two executives running in their own threads exchange staged deliveries
through a pair of thread-safe queues — the software analogue of the
inbound/outbound hardware FIFOs of paper figure 2.  What travels on
the queue is the sender's *pool block* itself (buffer loaning, zero
copies); the block's refcount is guarded by its allocator's lock, so
the cross-thread handoff is safe.  Supports both PT operation modes:

* **polling** — the executive's loop drains the receive queue each
  quantum (non-blocking);
* **task** — the PT runs a reader thread that blocks on the queue and
  posts frames the moment they arrive, like the paper's Myrinet/GM PT
  which "ran as a thread".
"""

from __future__ import annotations

import queue
import threading
from typing import TYPE_CHECKING

from repro.i2o.frame import Frame
from repro.transports.base import PeerTransport, StagedItem, TransportError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.executive import Route


class QueuePair:
    """A bidirectional channel: two unbounded FIFO queues."""

    def __init__(self, node_a: int, node_b: int) -> None:
        if node_a == node_b:
            raise TransportError("queue pair endpoints must differ")
        self.nodes = (node_a, node_b)
        self._queues: dict[int, queue.Queue[object]] = {
            node_a: queue.Queue(),
            node_b: queue.Queue(),
        }

    def send_to(self, node: int, item: object) -> None:
        q = self._queues.get(node)
        if q is None:
            raise TransportError(f"queue pair does not reach node {node}")
        q.put(item)

    def receive_queue(self, node: int) -> "queue.Queue[object]":
        q = self._queues.get(node)
        if q is None:
            raise TransportError(f"node {node} is not an endpoint")
        return q


class QueueTransport(PeerTransport):
    """One endpoint of a :class:`QueuePair`."""

    def __init__(
        self,
        pair: QueuePair,
        name: str = "queue",
        mode: str = "polling",
        *,
        artificial_delay_s: float = 0.0,
    ) -> None:
        super().__init__(name=name, mode=mode)
        self.pair = pair
        #: deliberately slows ``poll``/reads — used by the X1 bench to
        #: reproduce the paper's "a slow PT ... would negate the
        #: benefits" claim about mixing PTs in polling mode.
        self.artificial_delay_s = artificial_delay_s
        self._rx: "queue.Queue[object] | None" = None
        self._reader: threading.Thread | None = None
        self._stop = threading.Event()

    def on_plugin(self) -> None:
        exe = self._require_live()
        if exe.node not in self.pair.nodes:
            raise TransportError(
                f"executive node {exe.node} is not an endpoint of this pair"
            )
        self._rx = self.pair.receive_queue(exe.node)
        if self.mode == "task":
            self._stop.clear()
            self._reader = threading.Thread(
                target=self._reader_loop, name=f"pt-{self.name}", daemon=True
            )
            self._reader.start()

    def on_unplug(self) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        if self._reader is not None:
            self._stop.set()
            # Unblock the reader with a sentinel.
            assert self._rx is not None
            self._rx.put(None)
            self._reader.join(timeout=5)
            self._reader = None

    # -- transmit ---------------------------------------------------------
    def transmit(self, frame: Frame, route: "Route") -> None:
        # Resolve the receive queue before taking ownership of the
        # frame, so an unreachable peer leaves it with the caller.
        rx = self.pair.receive_queue(route.node)
        self.account_sent(frame.total_size)
        rx.put(self.make_handoff(frame))

    # -- receive: polling mode ----------------------------------------------
    def poll(self) -> bool:
        if self._rx is None or self.mode != "polling" or self.suspended:
            return False
        if self.artificial_delay_s:
            # A deliberately slow poll (e.g. a select() on a TCP socket
            # in the paper's warning about polling-mode mixing).
            import time

            time.sleep(self.artificial_delay_s)
        got = False
        while True:
            try:
                item = self._rx.get_nowait()
            except queue.Empty:
                return got
            if item is None:  # shutdown sentinel
                continue
            got = True
            self.ingest_staged(item)

    @property
    def has_pending(self) -> bool:
        return (
            self.mode == "polling"
            and self._rx is not None
            and not self._rx.empty()
        )

    # -- receive: task mode -------------------------------------------------
    def _reader_loop(self) -> None:
        assert self._rx is not None
        while not self._stop.is_set():
            item = self._rx.get()
            if item is None:  # shutdown sentinel
                continue
            if self.artificial_delay_s:
                import time

                time.sleep(self.artificial_delay_s)
            self.ingest_staged(item)
