"""repro — reproduction of *Architectural Software Support for
Processing Clusters* (Gutleber et al., IEEE CLUSTER 2000).

The package implements the paper's XDAQ toolkit — an I2O-based
peer-operation framework for processing clusters — together with the
substrates its evaluation ran on (a Myrinet/GM fabric model, PCI
segments with hardware FIFOs) and the full benchmark harness for the
paper's figure 6 and table 1 plus every quantitative claim made in
prose.  See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.

Quickstart::

    from repro import Executive, Listener, PeerTransportAgent
    from repro.transports import LoopbackNetwork, LoopbackTransport

    class Echo(Listener):
        def on_plugin(self):
            self.bind(0x01, self.on_ping)
        def on_ping(self, frame):
            self.reply(frame, bytes(frame.payload))

See ``examples/quickstart.py`` for the complete two-node program.
"""

from repro.config.bootstrap import Cluster, bootstrap
from repro.core.device import FunctionalListener, Listener, RETAIN
from repro.core.discovery import DiscoveryService
from repro.core.executive import Executive, Route
from repro.core.probes import CostModel, Probes
from repro.core.registry import download_module
from repro.core.reliable import ReliableEndpoint
from repro.core.simnode import SimNode
from repro.core.states import DeviceState
from repro.core.watchdog import HandlerWatchdog, WatchdogTimeout
from repro.i2o.frame import Frame
from repro.i2o.sgl import Fragmenter, Reassembler, ScatterGatherList
from repro.mem.pool import BufferPool, OriginalAllocator, TableAllocator
from repro.sim.kernel import Simulator
from repro.transports.agent import PeerTransportAgent

__version__ = "1.0.0"

__all__ = [
    "BufferPool",
    "Cluster",
    "CostModel",
    "DeviceState",
    "DiscoveryService",
    "Executive",
    "Fragmenter",
    "Frame",
    "FunctionalListener",
    "HandlerWatchdog",
    "Listener",
    "OriginalAllocator",
    "PeerTransportAgent",
    "Probes",
    "RETAIN",
    "Reassembler",
    "ReliableEndpoint",
    "Route",
    "bootstrap",
    "ScatterGatherList",
    "SimNode",
    "Simulator",
    "TableAllocator",
    "WatchdogTimeout",
    "download_module",
    "__version__",
]
