"""The flight-recorder record codec: one packed layout for every event.

A flight-recorder record is a fixed 48-byte packed struct — small
enough that a bounded ring of a few thousand records costs a couple
hundred kilobytes per node, fixed-size so the ring can be preallocated
once and written with ``pack_into`` (no per-event allocation on the
hot path, matching the ``Probes``/tracer discipline)::

    offset  size  field
    ------  ----  ---------------------------------------------------
       0      8   seq     monotonically increasing record number
       8      8   t_ns    clock reading (executive clock domain)
      16      8   a       event argument (see table below)
      24      8   b       event argument
      32      8   c       event argument
      40      1   kind    event kind (EV_*)
      41      7   padding (zero)

Event argument meanings — the contract the decoder and the timeline
merge rely on (``ctx`` is the frame's 64-bit ``transaction_context``,
which carries the 0xACE-tagged trace id when a tracer is installed;
``hdr`` is :func:`pack3` of addressing fields):

======================  =====================  ==================  ============
kind                    a                      b                   c
======================  =====================  ==================  ============
EV_DISPATCH_BEGIN       ctx                    pack3(tgt,fn,xfn)   0
EV_DISPATCH_END         ctx                    pack3(tgt,fn,xfn)   duration_ns
EV_DISPATCH_ERROR       ctx                    pack3(tgt,fn,xfn)   0
EV_FRAME_ALLOC          total size             blocks in flight    0
EV_FRAME_RELEASE        ctx                    0                   0
EV_FRAME_TRANSMIT       ctx                    pack3(node,tid,xfn) total size
EV_FRAME_INGEST         ctx                    pack3(src,tgt,xfn)  total size
EV_POOL_EXHAUSTED       requested size         0                   0
EV_REL_SEND             seq                    dest node           payload len
EV_REL_DELIVER          seq                    source node         payload len
EV_REL_ACK              seq                    0                   0
EV_REL_RETRANSMIT       seq                    retries left        0
EV_JOURNAL_COMMIT       seq                    0                   0
EV_JOURNAL_RETIRE       seq                    0                   0
EV_TIMER_FIRE           timer id               owner TiD           context
EV_LIVENESS             peer node              state code          0
EV_CRASH_POINT          crash-point code       0                   0
EV_WATCHDOG_TRIP        quarantined TiD        0                   0
EV_SANITIZER            violation code         0                   0
EV_HARD_STOP            0                      0                   0
EV_DATAFLOW_SHED        pack3(node,tid,xfn)    outbox backlog      0
EV_DATAFLOW_PARK        pack3(node,tid,xfn)    outbox backlog      0
EV_DATAFLOW_RESUME      pack3(node,tid,xfn)    outbox backlog      0
EV_SLOW_FRAME           ctx                    pack3(tgt,fn,xfn)   duration_ns
======================  =====================  ==================  ============
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.i2o.errors import I2OError
from repro.i2o.function_codes import function_name

#: seq, t_ns, a, b, c (u64 each) + kind (u8) + 7 pad bytes
RECORD_STRUCT = struct.Struct("<QQQQQB7x")
RECORD_SIZE = RECORD_STRUCT.size  # 48

_U64 = 0xFFFFFFFFFFFFFFFF

EV_DISPATCH_BEGIN = 1
EV_DISPATCH_END = 2
EV_DISPATCH_ERROR = 3
EV_FRAME_ALLOC = 4
EV_FRAME_RELEASE = 5
EV_FRAME_TRANSMIT = 6
EV_FRAME_INGEST = 7
EV_POOL_EXHAUSTED = 8
EV_REL_SEND = 9
EV_REL_DELIVER = 10
EV_REL_ACK = 11
EV_REL_RETRANSMIT = 12
EV_JOURNAL_COMMIT = 13
EV_JOURNAL_RETIRE = 14
EV_TIMER_FIRE = 15
EV_LIVENESS = 16
EV_CRASH_POINT = 17
EV_WATCHDOG_TRIP = 18
EV_SANITIZER = 19
EV_HARD_STOP = 20
EV_DATAFLOW_SHED = 21
EV_DATAFLOW_PARK = 22
EV_DATAFLOW_RESUME = 23
EV_SLOW_FRAME = 24

KIND_NAMES: dict[int, str] = {
    EV_DISPATCH_BEGIN: "dispatch-begin",
    EV_DISPATCH_END: "dispatch-end",
    EV_DISPATCH_ERROR: "dispatch-error",
    EV_FRAME_ALLOC: "frame-alloc",
    EV_FRAME_RELEASE: "frame-release",
    EV_FRAME_TRANSMIT: "frame-transmit",
    EV_FRAME_INGEST: "frame-ingest",
    EV_POOL_EXHAUSTED: "pool-exhausted",
    EV_REL_SEND: "rel-send",
    EV_REL_DELIVER: "rel-deliver",
    EV_REL_ACK: "rel-ack",
    EV_REL_RETRANSMIT: "rel-retransmit",
    EV_JOURNAL_COMMIT: "journal-commit",
    EV_JOURNAL_RETIRE: "journal-retire",
    EV_TIMER_FIRE: "timer-fire",
    EV_LIVENESS: "liveness",
    EV_CRASH_POINT: "crash-point",
    EV_WATCHDOG_TRIP: "watchdog-trip",
    EV_SANITIZER: "sanitizer",
    EV_HARD_STOP: "hard-stop",
    EV_DATAFLOW_SHED: "dataflow-shed",
    EV_DATAFLOW_PARK: "dataflow-park",
    EV_DATAFLOW_RESUME: "dataflow-resume",
    EV_SLOW_FRAME: "slow-frame",
}

#: EV_LIVENESS state codes (b argument)
LIVE_ALIVE = 0
LIVE_SUSPECT = 1
LIVE_DEAD = 2
LIVENESS_NAMES = {LIVE_ALIVE: "ALIVE", LIVE_SUSPECT: "SUSPECT", LIVE_DEAD: "DEAD"}

#: EV_SANITIZER violation codes (a argument)
SAN_DOUBLE_FREE = 1
SAN_USE_AFTER_FREE = 2
SANITIZER_NAMES = {SAN_DOUBLE_FREE: "double-free",
                   SAN_USE_AFTER_FREE: "use-after-free"}

#: EV_CRASH_POINT codes, keyed by the crash-point names defined in
#: repro.core.reliable (stable strings; a code of 0 decodes as the
#: unknown point).
CRASH_POINT_CODES: dict[str, int] = {
    "pre-journal-append": 1,
    "post-append-pre-transmit": 2,
    "post-transmit-pre-ack-record": 3,
}
CRASH_POINT_NAMES = {code: name for name, code in CRASH_POINT_CODES.items()}


class FlightRecError(I2OError):
    """A flight-recorder dump is malformed, torn or truncated."""


def pack3(hi: int, mid: int, lo: int) -> int:
    """Pack three addressing fields into one 64-bit record argument:
    ``hi`` (32 bits, node-sized) | ``mid`` (16 bits) | ``lo`` (16 bits)."""
    return (
        ((hi & 0xFFFFFFFF) << 32) | ((mid & 0xFFFF) << 16) | (lo & 0xFFFF)
    )


def unpack3(value: int) -> tuple[int, int, int]:
    return (value >> 32) & 0xFFFFFFFF, (value >> 16) & 0xFFFF, value & 0xFFFF


@dataclass(frozen=True, slots=True)
class FlightRecord:
    """One decoded ring record."""

    seq: int
    t_ns: int
    a: int
    b: int
    c: int
    kind: int

    @property
    def kind_name(self) -> str:
        return KIND_NAMES.get(self.kind, f"unknown({self.kind})")

    def describe(self) -> str:
        """Human-readable event line (symbolic names, not raw ints)."""
        k, a, b, c = self.kind, self.a, self.b, self.c
        if k in (EV_DISPATCH_BEGIN, EV_DISPATCH_END, EV_DISPATCH_ERROR):
            target, function, xfunction = unpack3(b)
            detail = (
                f"ctx={a:#x} tid={target} fn={function_name(function)} "
                f"xfn={xfunction:#06x}"
            )
            if k == EV_DISPATCH_END:
                detail += f" took={c}ns"
            return f"{self.kind_name:<16} {detail}"
        if k == EV_FRAME_ALLOC:
            return f"{self.kind_name:<16} size={a} in_flight={b}"
        if k == EV_FRAME_RELEASE:
            return f"{self.kind_name:<16} ctx={a:#x}"
        if k == EV_FRAME_TRANSMIT:
            node, tid, xfunction = unpack3(b)
            return (
                f"{self.kind_name:<16} ctx={a:#x} dest=node{node}/tid{tid} "
                f"xfn={xfunction:#06x} size={c}"
            )
        if k == EV_FRAME_INGEST:
            src, target, xfunction = unpack3(b)
            return (
                f"{self.kind_name:<16} ctx={a:#x} src=node{src} tid={target} "
                f"xfn={xfunction:#06x} size={c}"
            )
        if k == EV_POOL_EXHAUSTED:
            return f"{self.kind_name:<16} requested={a}"
        if k == EV_REL_SEND:
            return f"{self.kind_name:<16} seq={a} dest=node{b} len={c}"
        if k == EV_REL_DELIVER:
            return f"{self.kind_name:<16} seq={a} src=node{b} len={c}"
        if k in (EV_REL_ACK, EV_JOURNAL_COMMIT, EV_JOURNAL_RETIRE):
            return f"{self.kind_name:<16} seq={a}"
        if k == EV_REL_RETRANSMIT:
            return f"{self.kind_name:<16} seq={a} retries_left={b}"
        if k == EV_TIMER_FIRE:
            return f"{self.kind_name:<16} timer={a} owner=tid{b} context={c:#x}"
        if k == EV_LIVENESS:
            state = LIVENESS_NAMES.get(b, f"state{b}")
            return f"{self.kind_name:<16} peer=node{a} -> {state}"
        if k == EV_CRASH_POINT:
            point = CRASH_POINT_NAMES.get(a, f"code{a}")
            return f"{self.kind_name:<16} {point}"
        if k == EV_WATCHDOG_TRIP:
            return f"{self.kind_name:<16} quarantined=tid{a}"
        if k == EV_SANITIZER:
            return f"{self.kind_name:<16} {SANITIZER_NAMES.get(a, f'code{a}')}"
        if k == EV_SLOW_FRAME:
            target, function, xfunction = unpack3(b)
            return (
                f"{self.kind_name:<16} ctx={a:#x} tid={target} "
                f"fn={function_name(function)} xfn={xfunction:#06x} "
                f"took={c}ns"
            )
        if k in (EV_DATAFLOW_SHED, EV_DATAFLOW_PARK, EV_DATAFLOW_RESUME):
            node, tid, xfunction = unpack3(a)
            return (
                f"{self.kind_name:<16} edge=node{node}/tid{tid} "
                f"xfn={xfunction:#06x} backlog={b}"
            )
        return self.kind_name

    def pack(self) -> bytes:
        return RECORD_STRUCT.pack(
            self.seq & _U64, self.t_ns & _U64, self.a & _U64,
            self.b & _U64, self.c & _U64, self.kind & 0xFF,
        )
