"""Decoding flight-recorder dumps.

The reader side of :mod:`repro.flightrec.recorder`: load a dump file,
verify its integrity end to end (magic, version, record size, CRC32
over the record bytes) and decode the records.  A dump that fails any
check raises :class:`~repro.flightrec.records.FlightRecError` — the
spill discipline (tmp + fsync + replace) means a torn file on disk is
a bug, not a condition to limp through.
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.flightrec.records import (
    RECORD_SIZE,
    RECORD_STRUCT,
    FlightRecError,
    FlightRecord,
)
from repro.flightrec.recorder import (
    DUMP_HEADER,
    DUMP_HEADER_SIZE,
    DUMP_MAGIC,
    DUMP_VERSION,
)


@dataclass(frozen=True)
class FlightDump:
    """One decoded dump: header fields plus the records, oldest first."""

    path: Path
    node: int
    capacity: int
    total: int
    reason: str
    records: tuple[FlightRecord, ...]

    @property
    def dropped(self) -> int:
        """Records the ring overwrote before the spill."""
        return self.total - len(self.records)

    def of_kind(self, *kinds: int) -> list[FlightRecord]:
        wanted = set(kinds)
        return [r for r in self.records if r.kind in wanted]


def load_dump(path: str | os.PathLike[str]) -> FlightDump:
    """Read, verify and decode one ``.flightrec`` dump."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < DUMP_HEADER_SIZE:
        raise FlightRecError(
            f"{path}: {len(data)} bytes is too short for a dump header"
        )
    (magic, version, node, record_size, _reserved, capacity, total,
     crc, reason_raw) = DUMP_HEADER.unpack_from(data, 0)
    if magic != DUMP_MAGIC:
        raise FlightRecError(f"{path}: bad magic {magic:#010x}")
    if version != DUMP_VERSION:
        raise FlightRecError(
            f"{path}: unsupported dump version {version}"
        )
    if record_size != RECORD_SIZE:
        raise FlightRecError(
            f"{path}: record size {record_size} != expected {RECORD_SIZE}"
        )
    body = data[DUMP_HEADER_SIZE:]
    if len(body) % RECORD_SIZE:
        raise FlightRecError(
            f"{path}: torn dump — {len(body)} body bytes is not a whole "
            f"number of {RECORD_SIZE}-byte records"
        )
    if zlib.crc32(body) != crc:
        raise FlightRecError(f"{path}: CRC mismatch — dump is corrupt")
    stored = len(body) // RECORD_SIZE
    if stored != min(total, capacity):
        raise FlightRecError(
            f"{path}: header claims {min(total, capacity)} stored "
            f"record(s), body holds {stored}"
        )
    records = tuple(
        FlightRecord(*RECORD_STRUCT.unpack_from(body, i * RECORD_SIZE))
        for i in range(stored)
    )
    return FlightDump(
        path=path,
        node=node,
        capacity=capacity,
        total=total,
        reason=reason_raw.rstrip(b"\0").decode("ascii", "replace"),
        records=records,
    )


def describe_dump(dump: FlightDump) -> str:
    """A human-readable decode of one dump (the ``decode`` CLI body)."""
    lines = [
        f"=== {dump.path.name}: node {dump.node}, reason "
        f"{dump.reason!r}, {len(dump.records)} record(s) "
        f"(capacity {dump.capacity}, {dump.dropped} dropped) ===",
    ]
    for record in dump.records:
        lines.append(
            f"{record.seq:>8}  {record.t_ns:>16}  {record.describe()}"
        )
    return "\n".join(lines)
