"""Stitching per-node dumps into one causal cluster timeline.

Each flight recorder is a *per-node* black box; after an incident you
hold one dump per executive (dead nodes included — their spill happened
at ``hard_stop``).  This module joins them on the two identifiers that
already cross the wire:

* **trace ids** — the 0xACE-tagged ``transaction_context`` a
  :class:`~repro.core.tracing.FrameTracer` stamps on every rooted
  frame.  A ``frame-transmit`` on node A and a ``dispatch-begin`` on
  node B carrying the same trace id are the same message leaving and
  arriving;
* **reliable sequence numbers** — a ``rel-send`` on the sender and a
  ``rel-deliver`` on the receiver with the same seq (and matching
  node pair) are one reliable message's send and arrival.

The joins drive two diagnoses:

* :meth:`MergedTimeline.gaps` — sends with *no* matching arrival
  anywhere in the merged record (a message that left a node and was
  never seen again: lost on the wire past every retransmission, or
  addressed to a node whose dump is missing);
* :func:`in_flight_sends` — per dump, reliable sends never acked
  within that dump: exactly the frames that were in flight at the
  crash window when the node died.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.tracing import is_trace_context
from repro.flightrec.dump import FlightDump
from repro.flightrec.records import (
    EV_DISPATCH_BEGIN,
    EV_DISPATCH_END,
    EV_DISPATCH_ERROR,
    EV_FRAME_INGEST,
    EV_FRAME_TRANSMIT,
    EV_REL_ACK,
    EV_REL_DELIVER,
    EV_REL_RETRANSMIT,
    EV_REL_SEND,
    FlightRecord,
    unpack3,
)

#: record kinds whose ``a`` argument is a frame ``transaction_context``
_CTX_KINDS = frozenset((
    EV_DISPATCH_BEGIN, EV_DISPATCH_END, EV_DISPATCH_ERROR,
    EV_FRAME_TRANSMIT, EV_FRAME_INGEST,
))


@dataclass(frozen=True, slots=True)
class TimelineEvent:
    """One record placed in the merged, cluster-wide order."""

    node: int
    record: FlightRecord

    def describe(self) -> str:
        return f"node {self.node:>3}  {self.record.describe()}"


@dataclass(frozen=True, slots=True)
class Gap:
    """A send that never matched an arrival anywhere in the merge."""

    kind: str  # "send-no-deliver" | "transmit-no-dispatch"
    node: int  # the sending node
    record: FlightRecord

    def describe(self) -> str:
        record = self.record
        if self.kind == "send-no-deliver":
            return (
                f"send->no-deliver: node {self.node} rel seq {record.a} "
                f"(dest node {record.b}) never seen by the receiver"
            )
        return (
            f"transmit->no-dispatch: node {self.node} ctx {record.a:#x} "
            f"(dest node {unpack3(record.b)[0]}) never dispatched remotely"
        )


class MergedTimeline:
    """The cross-node causal timeline built from a set of dumps."""

    def __init__(self, dumps: list[FlightDump]) -> None:
        self.dumps = list(dumps)
        self.events: list[TimelineEvent] = sorted(
            (
                TimelineEvent(dump.node, record)
                for dump in dumps
                for record in dump.records
            ),
            key=lambda ev: (ev.record.t_ns, ev.node, ev.record.seq),
        )
        # (sender node, dest node, seq) seen leaving / arriving.
        self._sent: dict[tuple[int, int, int], TimelineEvent] = {}
        self._delivered: set[tuple[int, int, int]] = set()
        # trace ctx -> transmit event / set of nodes that dispatched it.
        self._transmits: dict[int, TimelineEvent] = {}
        self._dispatched_ctx: dict[int, set[int]] = {}
        for event in self.events:
            record = event.record
            if record.kind in (EV_REL_SEND, EV_REL_RETRANSMIT):
                dest = record.b if record.kind == EV_REL_SEND else None
                if dest is not None:
                    self._sent.setdefault(
                        (event.node, dest, record.a), event
                    )
            elif record.kind == EV_REL_DELIVER:
                self._delivered.add((record.b, event.node, record.a))
            elif record.kind == EV_FRAME_TRANSMIT \
                    and is_trace_context(record.a):
                self._transmits.setdefault(record.a, event)
            elif record.kind == EV_DISPATCH_BEGIN \
                    and is_trace_context(record.a):
                self._dispatched_ctx.setdefault(record.a, set()).add(
                    event.node
                )

    @property
    def nodes(self) -> list[int]:
        return sorted({dump.node for dump in self.dumps})

    # -- joins ---------------------------------------------------------------
    def stream(self, sender: int, seq: int) -> list[TimelineEvent]:
        """Every reliable-stream record for ``seq`` sent by ``sender``:
        sends and retransmissions on the sender (any incarnation of its
        node id), the deliver on the receiver, the ack back home —
        chronological, cross-node."""
        out = []
        for event in self.events:
            record = event.record
            if record.kind in (EV_REL_SEND, EV_REL_RETRANSMIT, EV_REL_ACK):
                if event.node == sender and record.a == seq:
                    out.append(event)
            elif record.kind == EV_REL_DELIVER:
                if record.b == sender and record.a == seq:
                    out.append(event)
        return out

    def trace(self, trace_id: int) -> list[TimelineEvent]:
        """Every record carrying ``trace_id`` as its frame context."""
        return [
            event for event in self.events
            if event.record.kind in _CTX_KINDS
            and event.record.a == trace_id
        ]

    def delivered(self, sender: int, dest: int, seq: int) -> bool:
        return (sender, dest, seq) in self._delivered

    # -- diagnoses -----------------------------------------------------------
    def gaps(self) -> list[Gap]:
        """Sends with no matching arrival anywhere in the merge.

        A reliable send is matched by a ``rel-deliver`` with the same
        (sender, dest, seq); a traced transmit is matched by a
        ``dispatch-begin`` with the same trace id on *another* node
        (the same message may hop several times; any remote dispatch
        counts as arrival).
        """
        out: list[Gap] = []
        for (sender, dest, _seq), event in sorted(self._sent.items()):
            if (sender, dest, event.record.a) not in self._delivered:
                out.append(Gap("send-no-deliver", event.node, event.record))
        for ctx, event in sorted(self._transmits.items()):
            dispatchers = self._dispatched_ctx.get(ctx, set())
            if not (dispatchers - {event.node}):
                out.append(
                    Gap("transmit-no-dispatch", event.node, event.record)
                )
        return out

    def describe(self) -> str:
        lines = [
            f"=== merged timeline: {len(self.dumps)} dump(s), "
            f"nodes {self.nodes}, {len(self.events)} event(s) ===",
            f"{'t_ns':>16}  {'':>9}  event",
        ]
        for event in self.events:
            lines.append(
                f"{event.record.t_ns:>16}  {event.describe()}"
            )
        gaps = self.gaps()
        lines.append(f"=== {len(gaps)} gap(s) ===")
        lines.extend(gap.describe() for gap in gaps)
        return "\n".join(lines)


def merge_dumps(dumps: list[FlightDump]) -> MergedTimeline:
    """Stitch per-node dumps into one causal timeline."""
    return MergedTimeline(dumps)


def in_flight_sends(dump: FlightDump) -> list[FlightRecord]:
    """Reliable sends never acked *within this dump* — the frames in
    flight at the moment the ring was spilled.  For a dump written by
    a crash (``hard_stop``), this identifies the in-flight frames at
    the crash window from the black box alone, no journal needed."""
    acked = {r.a for r in dump.records if r.kind == EV_REL_ACK}
    latest: dict[int, FlightRecord] = {}
    for record in dump.records:
        if record.kind in (EV_REL_SEND, EV_REL_RETRANSMIT) \
                and record.a not in acked:
            latest[record.a] = record
    return [latest[seq] for seq in sorted(latest)]
