"""CLI: decode and merge flight-recorder dumps.

Usage::

    python -m repro.flightrec decode crash/node005.flightrec
    python -m repro.flightrec merge crash/*.flightrec

``decode`` prints one dump's records with symbolic event names;
``merge`` stitches several nodes' dumps into one causal timeline,
lists the send→no-matching-dispatch gaps and, per dump, the reliable
sends that were still in flight when that ring was spilled (for a
crashed node: the frames in flight at the crash window).
"""

from __future__ import annotations

import argparse
import sys

from repro.flightrec.dump import describe_dump, load_dump
from repro.flightrec.records import FlightRecError
from repro.flightrec.timeline import in_flight_sends, merge_dumps


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.flightrec",
        description="Decode and merge black-box flight-recorder dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    decode = sub.add_parser("decode", help="decode one dump")
    decode.add_argument("dump", help="path to a .flightrec dump")
    merge = sub.add_parser(
        "merge", help="stitch multiple nodes' dumps into one timeline"
    )
    merge.add_argument("dumps", nargs="+", help=".flightrec dump paths")
    args = parser.parse_args(argv)

    try:
        if args.command == "decode":
            print(describe_dump(load_dump(args.dump)))
            return 0
        dumps = [load_dump(path) for path in args.dumps]
    except (FlightRecError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    timeline = merge_dumps(dumps)
    print(timeline.describe())
    for dump in dumps:
        pending = in_flight_sends(dump)
        if pending:
            seqs = ", ".join(str(record.a) for record in pending)
            print(
                f"in flight when node {dump.node} spilled "
                f"({dump.reason!r}): rel seq(s) {seqs}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
