"""The black-box flight recorder: a bounded, preallocated binary ring.

Every executive can carry one :class:`FlightRecorder`; the fabric
(dispatch loop, pool, transports, reliable endpoint, timers, liveness,
watchdog, sanitizer) writes fixed 48-byte records into its ring.  The
ring is a single ``bytearray`` allocated once at construction and
written in place with ``struct.pack_into`` — recording an event costs
one pack and an index increment, never an allocation, so the recorder
can stay on in production (the aircraft-flight-recorder model the
XDAQ deployments at CMS paired with their recovery machinery).

When the node dies — ``hard_stop()``, a watchdog trip, a sanitizer
violation, an uncaught dispatch exception — the ring is *spilled* to
disk with the same tmp + flush + ``fsync`` + ``os.replace`` discipline
as :class:`~repro.durable.segments.SnapshotStore`, so a dump on disk
is never torn: either the previous complete dump or the new complete
dump, nothing in between.

Dump layout (little-endian)::

    offset  size  field
    ------  ----  ---------------------------------------------------
       0      4   magic       b"FREC"
       4      2   version     (1)
       6      2   node        recording executive's node id
       8      2   record size (48; readers refuse other sizes)
      10      2   reserved    (0)
      12      4   ring capacity (records)
      16      8   total records ever written (dropped = total - stored)
      24      4   CRC32 over the record bytes that follow
      28     24   spill reason (NUL-padded ASCII)
      52      ..  records, oldest first (ring unwrapped)
"""

from __future__ import annotations

import logging
import os
import struct
import time
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

from repro.flightrec.records import (
    RECORD_SIZE,
    RECORD_STRUCT,
    FlightRecError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hw.clock import Clock

logger = logging.getLogger(__name__)

DUMP_MAGIC = 0x43455246  # b"FREC" little-endian
DUMP_VERSION = 1
#: magic, version, node, record size, reserved, capacity, total, crc, reason
DUMP_HEADER = struct.Struct("<IHHHHIQI24s")
DUMP_HEADER_SIZE = DUMP_HEADER.size  # 52

_U64 = 0xFFFFFFFFFFFFFFFF


class FlightRecorder:
    """Per-executive bounded event ring with crash spill-to-disk.

    ``node`` and ``clock`` may be left unset; they are adopted from
    the executive at :meth:`~repro.core.executive.Executive.attach_flight_recorder`
    time.  Without a ``dump_dir`` the recorder still records (useful
    for overhead benchmarks and in-process inspection) but
    :meth:`spill` is a no-op returning ``None``.

    ``name`` controls the dump filename (``<name>.flightrec``); give
    replacement executives that reuse a dead node's id a distinct name
    so their eventual spill does not overwrite the victim's black box.
    """

    def __init__(
        self,
        node: int | None = None,
        *,
        capacity: int = 4096,
        dump_dir: str | os.PathLike[str] | None = None,
        clock: "Clock | None" = None,
        name: str | None = None,
    ) -> None:
        if capacity < 1:
            raise FlightRecError(f"ring capacity must be >= 1, got {capacity}")
        self.node = node
        self.capacity = capacity
        self.dump_dir = Path(dump_dir) if dump_dir is not None else None
        self.clock = clock
        self.name = name
        self._ring = bytearray(capacity * RECORD_SIZE)
        self._seq = 0
        self.spills = 0
        self.last_spill_path: Path | None = None

    # -- accounting ----------------------------------------------------------
    @property
    def total_records(self) -> int:
        """Records ever written (including those the ring dropped)."""
        return self._seq

    @property
    def stored_records(self) -> int:
        return min(self._seq, self.capacity)

    @property
    def dropped_records(self) -> int:
        return max(0, self._seq - self.capacity)

    # -- the hot path --------------------------------------------------------
    def record(
        self, kind: int, a: int = 0, b: int = 0, c: int = 0,
        t_ns: int | None = None,
    ) -> None:
        """Write one event into the ring (wrapping over the oldest).

        Callers that already hold a clock reading (the dispatch loop's
        ``start_ns``/``end_ns``) pass it as ``t_ns`` to avoid a second
        clock read; otherwise the recorder reads its own clock.
        """
        if t_ns is None:
            clock = self.clock
            t_ns = clock.now_ns() if clock is not None \
                else time.perf_counter_ns()
        seq = self._seq
        self._seq = seq + 1
        RECORD_STRUCT.pack_into(
            self._ring, (seq % self.capacity) * RECORD_SIZE,
            seq, t_ns & _U64, a & _U64, b & _U64, c & _U64, kind & 0xFF,
        )

    # -- spill ---------------------------------------------------------------
    def ring_bytes(self) -> bytes:
        """The stored records, oldest first (ring unwrapped)."""
        if self._seq < self.capacity:
            return bytes(self._ring[: self._seq * RECORD_SIZE])
        cut = (self._seq % self.capacity) * RECORD_SIZE
        return bytes(self._ring[cut:]) + bytes(self._ring[:cut])

    def dump_bytes(self, reason: str) -> bytes:
        body = self.ring_bytes()
        header = DUMP_HEADER.pack(
            DUMP_MAGIC,
            DUMP_VERSION,
            (self.node or 0) & 0xFFFF,
            RECORD_SIZE,
            0,
            self.capacity,
            self._seq,
            zlib.crc32(body),
            reason.encode("ascii", "replace")[:24],
        )
        return header + body

    def dump_path(self) -> Path | None:
        if self.dump_dir is None:
            return None
        stem = self.name if self.name else f"node{self.node or 0:03d}"
        return self.dump_dir / f"{stem}.flightrec"

    def spill(self, reason: str) -> Path | None:
        """Write the ring to disk atomically; returns the dump path.

        Runs on crash paths (``hard_stop``, watchdog quarantine,
        dispatch exception handlers, sanitizer violations), so a disk
        failure is logged and swallowed — forensics must never turn a
        survivable fault into a fatal one.  No-op without a dump dir.
        """
        path = self.dump_path()
        if path is None:
            return None
        data = self.dump_bytes(reason)
        tmp = path.with_name(path.name + ".tmp")
        try:
            self.dump_dir.mkdir(parents=True, exist_ok=True)  # type: ignore[union-attr]
            with open(tmp, "wb") as fh:
                fh.write(data)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError:
            logger.exception(
                "node %s: flight-recorder spill (%s) to %s failed",
                self.node, reason, path,
            )
            return None
        self.spills += 1
        self.last_spill_path = path
        logger.info(
            "node %s: flight recorder spilled %d record(s) to %s (%s)",
            self.node, self.stored_records, path, reason,
        )
        return path
