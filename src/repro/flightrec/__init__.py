"""repro.flightrec — per-executive black-box flight recorder.

* :class:`FlightRecorder` — the bounded, preallocated binary event
  ring every subsystem writes into, spilled to disk on crash paths;
* :func:`load_dump` / :class:`FlightDump` — dump verification and
  decoding;
* :func:`merge_dumps` / :class:`MergedTimeline` — multi-node causal
  stitching by trace id and reliable sequence number;
* ``python -m repro.flightrec decode|merge`` — the post-mortem CLI.
"""

from repro.flightrec.dump import FlightDump, describe_dump, load_dump
from repro.flightrec.recorder import FlightRecorder
from repro.flightrec.records import (
    EV_CRASH_POINT,
    EV_DISPATCH_BEGIN,
    EV_DISPATCH_END,
    EV_DISPATCH_ERROR,
    EV_FRAME_ALLOC,
    EV_FRAME_INGEST,
    EV_FRAME_RELEASE,
    EV_FRAME_TRANSMIT,
    EV_HARD_STOP,
    EV_JOURNAL_COMMIT,
    EV_JOURNAL_RETIRE,
    EV_LIVENESS,
    EV_POOL_EXHAUSTED,
    EV_REL_ACK,
    EV_REL_DELIVER,
    EV_REL_RETRANSMIT,
    EV_REL_SEND,
    EV_SANITIZER,
    EV_TIMER_FIRE,
    EV_WATCHDOG_TRIP,
    KIND_NAMES,
    FlightRecError,
    FlightRecord,
    pack3,
    unpack3,
)
from repro.flightrec.timeline import (
    Gap,
    MergedTimeline,
    TimelineEvent,
    in_flight_sends,
    merge_dumps,
)

__all__ = [
    "FlightRecorder",
    "FlightDump",
    "FlightRecError",
    "FlightRecord",
    "Gap",
    "MergedTimeline",
    "TimelineEvent",
    "describe_dump",
    "in_flight_sends",
    "load_dump",
    "merge_dumps",
    "pack3",
    "unpack3",
    "KIND_NAMES",
    "EV_DISPATCH_BEGIN",
    "EV_DISPATCH_END",
    "EV_DISPATCH_ERROR",
    "EV_FRAME_ALLOC",
    "EV_FRAME_RELEASE",
    "EV_FRAME_TRANSMIT",
    "EV_FRAME_INGEST",
    "EV_POOL_EXHAUSTED",
    "EV_REL_SEND",
    "EV_REL_DELIVER",
    "EV_REL_ACK",
    "EV_REL_RETRANSMIT",
    "EV_JOURNAL_COMMIT",
    "EV_JOURNAL_RETIRE",
    "EV_TIMER_FIRE",
    "EV_LIVENESS",
    "EV_CRASH_POINT",
    "EV_WATCHDOG_TRIP",
    "EV_SANITIZER",
    "EV_HARD_STOP",
]
