"""The controller's console: the end of the real-time path.

Records track updates and conflict alerts *in dispatch order*, which
is how the tests prove the priority claim: an alert injected behind a
queue of routine updates is nevertheless dispatched first.
"""

from __future__ import annotations

from repro.atc.protocol import (
    MT_CONFLICT_ALERT,
    MT_TRACK_UPDATE,
    XF_CONFLICT_ALERT,
    XF_TRACK_UPDATE,
    unpack_alert,
    unpack_position,
)
from repro.core.device import Listener
from repro.i2o.frame import Frame


class AlertConsole(Listener):
    """Receives the correlator's output."""

    device_class = "atc_console"
    consumes = (MT_TRACK_UPDATE, MT_CONFLICT_ALERT)

    def __init__(self, name: str = "console") -> None:
        super().__init__(name)
        #: dispatch-ordered log of ("update", aircraft) / ("alert", (a, b))
        self.log: list[tuple[str, object]] = []
        self.alerts: list[tuple[int, int, float, float]] = []
        #: latest fused state per aircraft
        self.picture: dict[int, tuple[float, float, float]] = {}

    def on_plugin(self) -> None:
        self.bind(XF_TRACK_UPDATE, self._on_update)
        self.bind(XF_CONFLICT_ALERT, self._on_alert)

    def _on_update(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        aircraft, _radar, x, y, fl, _t = unpack_position(frame.payload)
        self.picture[aircraft] = (x, y, fl)
        self.log.append(("update", aircraft))

    def _on_alert(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        a, b, horizontal, vertical = unpack_alert(frame.payload)
        self.alerts.append((a, b, horizontal, vertical))
        self.log.append(("alert", (a, b)))

    def export_counters(self) -> dict[str, object]:
        return {
            "updates": sum(1 for kind, _ in self.log if kind == "update"),
            "alerts": len(self.alerts),
            "tracked": len(self.picture),
        }
