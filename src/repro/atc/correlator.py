"""The track correlator: fusion plus conflict detection.

Fuses per-radar position reports into one track per aircraft (mean of
the latest report from each radar) and checks every pair against the
separation minima.  Routine track updates leave at ``UPDATE_PRIORITY``;
separation violations leave as ``XF_CONFLICT_ALERT`` at priority 0, so
however deep the console's queue of routine updates is, the alert is
dispatched first — the real-time path of paper §1, carried entirely by
the I2O scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.atc.protocol import (
    MIN_HORIZONTAL_KM,
    MIN_VERTICAL_FL,
    MT_CONFLICT_ALERT,
    MT_POSITION,
    MT_TRACK_UPDATE,
    XF_POSITION,
    pack_alert,
    pack_position,
    unpack_position,
)
from repro.core.device import Listener
from repro.i2o.frame import Frame
from repro.i2o.tid import Tid


@dataclass
class Track:
    """Fused state of one aircraft."""

    aircraft_id: int
    x_km: float = 0.0
    y_km: float = 0.0
    fl: float = 0.0
    #: radar_id -> (x, y, fl) latest report
    reports: dict = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.reports is None:
            self.reports = {}

    def fuse(self) -> None:
        n = len(self.reports)
        self.x_km = sum(r[0] for r in self.reports.values()) / n
        self.y_km = sum(r[1] for r in self.reports.values()) / n
        self.fl = sum(r[2] for r in self.reports.values()) / n


class TrackCorrelator(Listener):
    """Multi-radar fusion and separation monitoring."""

    device_class = "atc_correlator"
    consumes = (MT_POSITION,)
    emits = (MT_TRACK_UPDATE, MT_CONFLICT_ALERT)

    def __init__(self, name: str = "correlator") -> None:
        super().__init__(name)
        self.tracks: dict[int, Track] = {}
        self.reports_received = 0
        self.updates_sent = 0
        self.alerts_sent = 0
        #: (a, b) pairs currently in conflict, to avoid alert storms
        self._active_conflicts: set[tuple[int, int]] = set()

    def connect(self, console_tid: Tid) -> None:
        self.connect_route(
            MT_TRACK_UPDATE, {"console": console_tid}, replace=True
        )
        self.connect_route(
            MT_CONFLICT_ALERT, {"console": console_tid}, replace=True
        )

    @property
    def console_tid(self) -> Tid | None:
        targets = self.dataflow_targets(MT_TRACK_UPDATE)
        return next(iter(targets.values()), None)

    def on_plugin(self) -> None:
        self.bind(XF_POSITION, self._on_position)

    def on_reset(self) -> None:
        self.tracks.clear()
        self._active_conflicts.clear()

    # -- report intake -----------------------------------------------------
    def _on_position(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        aircraft, radar, x, y, fl, t_ns = unpack_position(frame.payload)
        self.reports_received += 1
        track = self.tracks.get(aircraft)
        if track is None:
            track = Track(aircraft_id=aircraft)
            self.tracks[aircraft] = track
        track.reports[radar] = (x, y, fl)
        track.fuse()
        self._publish_update(track, t_ns)
        self._check_separation(track)

    def _publish_update(self, track: Track, t_ns: int) -> None:
        if not self.dataflow_targets(MT_TRACK_UPDATE):
            return
        self.emit(
            MT_TRACK_UPDATE,
            pack_position(track.aircraft_id, 0xFFFF, track.x_km,
                          track.y_km, track.fl, t_ns),
        )
        self.updates_sent += 1

    # -- separation monitoring ----------------------------------------------
    def _check_separation(self, track: Track) -> None:
        for other in self.tracks.values():
            if other.aircraft_id == track.aircraft_id:
                continue
            horizontal = (
                (track.x_km - other.x_km) ** 2
                + (track.y_km - other.y_km) ** 2
            ) ** 0.5
            vertical = abs(track.fl - other.fl)
            pair = (min(track.aircraft_id, other.aircraft_id),
                    max(track.aircraft_id, other.aircraft_id))
            in_conflict = (
                horizontal < MIN_HORIZONTAL_KM and vertical < MIN_VERTICAL_FL
            )
            if in_conflict and pair not in self._active_conflicts:
                self._active_conflicts.add(pair)
                self._raise_alert(pair, horizontal, vertical)
            elif not in_conflict:
                self._active_conflicts.discard(pair)

    def _raise_alert(self, pair: tuple[int, int], horizontal: float,
                     vertical: float) -> None:
        if not self.dataflow_targets(MT_CONFLICT_ALERT):
            return
        # MT_CONFLICT_ALERT is declared at ALERT_PRIORITY — the
        # real-time path rides on the type, not on call sites.
        self.emit(
            MT_CONFLICT_ALERT,
            pack_alert(pair[0], pair[1], horizontal, vertical),
        )
        self.alerts_sent += 1

    def export_counters(self) -> dict[str, object]:
        return {
            "reports_received": self.reports_received,
            "updates_sent": self.updates_sent,
            "alerts_sent": self.alerts_sent,
            "tracks": len(self.tracks),
            "active_conflicts": len(self._active_conflicts),
        }
