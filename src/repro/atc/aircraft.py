"""Synthetic traffic: deterministic aircraft kinematics.

Straight-line constant-velocity flights over a sector, generated from
a seeded stream.  Two aircraft can be put on a deliberate collision
course for the conflict-detection tests; the rest fly well-separated
lanes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.rng import RngStreams


@dataclass
class AircraftState:
    aircraft_id: int
    x_km: float
    y_km: float
    fl: float  # flight level
    vx_km_s: float
    vy_km_s: float

    def at(self, dt_s: float) -> "AircraftState":
        return AircraftState(
            self.aircraft_id,
            self.x_km + self.vx_km_s * dt_s,
            self.y_km + self.vy_km_s * dt_s,
            self.fl,
            self.vx_km_s,
            self.vy_km_s,
        )


class SyntheticTraffic:
    """A sector's worth of flights, advanced in lockstep."""

    def __init__(self, n_aircraft: int = 8, *, seed: int = 0,
                 conflict_pair: bool = False) -> None:
        rng = RngStreams(seed).stream("atc-traffic")
        self._states: dict[int, AircraftState] = {}
        self.t_s = 0.0
        for i in range(n_aircraft):
            # Well-separated lanes: 40 km apart, distinct levels.
            self._states[i] = AircraftState(
                aircraft_id=i,
                x_km=float(rng.uniform(-200, 200)),
                y_km=float(i * 40.0),
                fl=float(200 + 20 * i),
                vx_km_s=float(rng.uniform(0.20, 0.26)),  # ~ Mach 0.7
                vy_km_s=0.0,
            )
        if conflict_pair and n_aircraft >= 2:
            # Head-on at the same level, meeting at the origin.
            self._states[0] = AircraftState(0, -50.0, 0.0, 300.0, 0.25, 0.0)
            self._states[1] = AircraftState(1, 50.0, 0.0, 300.0, -0.25, 0.0)

    def aircraft_ids(self) -> list[int]:
        return sorted(self._states)

    def advance(self, dt_s: float) -> None:
        self.t_s += dt_s
        for aircraft_id, state in self._states.items():
            self._states[aircraft_id] = state.at(dt_s)

    def state(self, aircraft_id: int) -> AircraftState:
        return self._states[aircraft_id]

    def positions(self) -> list[AircraftState]:
        return [self._states[i] for i in self.aircraft_ids()]

    def closest_pair_km(self) -> float:
        states = self.positions()
        xy = np.array([[s.x_km, s.y_km] for s in states])
        deltas = xy[:, None, :] - xy[None, :, :]
        distances = np.sqrt((deltas ** 2).sum(axis=2))
        n = len(states)
        distances[np.arange(n), np.arange(n)] = np.inf
        return float(distances.min())
