"""The private message vocabulary of the ATC application class.

All positions are in a flat kilometre grid (good enough for a sector);
altitudes in flight levels (hundreds of feet).  One wire format for
position reports, one for alerts — fixed layouts, zero-copy friendly.
"""

from __future__ import annotations

import struct

from repro.dataflow.registry import message_type
from repro.i2o.errors import I2OError

ATC_ORG = 0xA7C0

# radar -> correlator: one position report
XF_POSITION = 0x0301
# correlator -> console: routine track update
XF_TRACK_UPDATE = 0x0302
# correlator -> console: separation-violation alert (priority 0!)
XF_CONFLICT_ALERT = 0x0303

#: aircraft id u32, radar id u16, x km f32, y km f32, fl f32, t_ns u64
_POSITION = struct.Struct("<IHfffQ")
#: aircraft a u32, aircraft b u32, horizontal km f32, vertical FL f32
_ALERT = struct.Struct("<IIff")

#: ICAO-ish separation minima: 5 NM ~ 9.3 km horizontal, 10 FL vertical.
MIN_HORIZONTAL_KM = 9.3
MIN_VERTICAL_FL = 10.0

#: Alerts pre-empt everything; track updates are routine traffic.
ALERT_PRIORITY = 0
UPDATE_PRIORITY = 4

MT_POSITION = message_type(
    "atc.position", XF_POSITION, organization=ATC_ORG, mode="one",
    priority=UPDATE_PRIORITY,
)
#: Routine updates are droppable under load — the next sweep
#: supersedes them anyway; alerts are not.
MT_TRACK_UPDATE = message_type(
    "atc.track-update", XF_TRACK_UPDATE, organization=ATC_ORG, mode="one",
    priority=UPDATE_PRIORITY, on_saturation="shed",
)
MT_CONFLICT_ALERT = message_type(
    "atc.conflict-alert", XF_CONFLICT_ALERT, organization=ATC_ORG,
    mode="one", priority=ALERT_PRIORITY,
)


def pack_position(aircraft: int, radar: int, x_km: float, y_km: float,
                  fl: float, t_ns: int) -> bytes:
    return _POSITION.pack(aircraft, radar, x_km, y_km, fl, t_ns)


def unpack_position(payload) -> tuple[int, int, float, float, float, int]:
    if len(payload) != _POSITION.size:
        raise I2OError(f"bad position report of {len(payload)} bytes")
    return _POSITION.unpack_from(payload, 0)


def pack_alert(a: int, b: int, horizontal_km: float, vertical_fl: float) -> bytes:
    return _ALERT.pack(a, b, horizontal_km, vertical_fl)


def unpack_alert(payload) -> tuple[int, int, float, float]:
    if len(payload) != _ALERT.size:
        raise I2OError(f"bad alert of {len(payload)} bytes")
    return _ALERT.unpack_from(payload, 0)
