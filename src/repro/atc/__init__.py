"""Air-traffic monitoring: the paper's *other* motivating domain.

Paper §1: *"Air-traffic monitoring [3] or nuclear/particle physics
data acquisition [4] systems are examples from this domain that rely
on custom embedded devices and contain real-time paths."*

Where the DAQ kit (:mod:`repro.daq`) exercises bulk event building,
this kit exercises the framework's **real-time path** machinery:

* :class:`RadarSource` — emits periodic position reports for a set of
  simulated aircraft (timer-driven, like real sensor heads);
* :class:`TrackCorrelator` — fuses reports from multiple radars into
  tracks, detects separation violations, and raises **conflict alerts
  at priority 0** while routine track updates travel at default
  priority — the seven-level I2O scheduler doing the job it exists
  for;
* :class:`AlertConsole` — receives alerts and updates, proving the
  priority inversion never happens (alerts always arrive first);
* a watchdog-guarded correlator variant for the §4 misbehaving-handler
  scenario in a realistic role.
"""

from repro.atc.aircraft import AircraftState, SyntheticTraffic
from repro.atc.console import AlertConsole
from repro.atc.correlator import TrackCorrelator
from repro.atc.radar import RadarSource

__all__ = [
    "AircraftState",
    "AlertConsole",
    "RadarSource",
    "SyntheticTraffic",
    "TrackCorrelator",
]
