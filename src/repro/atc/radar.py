"""Radar sources: sensor heads emitting position reports.

A radar sweeps its share of the traffic picture and sends one
``XF_POSITION`` frame per aircraft per sweep.  Sweeps are driven
either manually (``sweep()``) or by the I2O timer facility when the
device is enabled with a ``sweep_interval_ns`` parameter — the same
timer-as-message machinery as the DAQ trigger, in the domain the
paper's reference [3] comes from.

Measurement noise is seeded per radar, so two radars disagree slightly
about the same aircraft — which is what gives the correlator a fusion
job.
"""

from __future__ import annotations

from repro.atc.aircraft import SyntheticTraffic
from repro.atc.protocol import MT_POSITION, pack_position
from repro.config.schema import ParamSchema, ParamSpec, SchemaListenerMixin
from repro.core.device import Listener
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.tid import Tid
from repro.sim.rng import RngStreams


class RadarSource(SchemaListenerMixin, Listener):
    """One radar head watching a shared traffic picture."""

    device_class = "atc_radar"
    emits = (MT_POSITION,)

    schema = ParamSchema([
        ParamSpec("sweep_interval_ns", int, default=0, minimum=0,
                  description="0 = manual sweeps only"),
        ParamSpec("noise_km", float, default=0.1, minimum=0.0,
                  description="1-sigma position noise"),
    ])

    def __init__(self, name: str = "", radar_id: int = 0,
                 traffic: SyntheticTraffic | None = None, *,
                 seed: int = 0) -> None:
        super().__init__(name or f"radar{radar_id}")
        self.radar_id = radar_id
        self.traffic = traffic
        self._rng = RngStreams(seed).stream(f"radar{radar_id}-noise")
        self.sweeps = 0
        self.reports_sent = 0
        self._timer_id: int | None = None

    def connect(self, correlator_tid: Tid) -> None:
        self.connect_route(
            MT_POSITION, {"correlator": correlator_tid}, replace=True
        )

    @property
    def correlator_tid(self) -> Tid | None:
        targets = self.dataflow_targets(MT_POSITION)
        return next(iter(targets.values()), None)

    # -- sweeping ------------------------------------------------------------
    def sweep(self) -> int:
        """Report every aircraft once; returns the report count."""
        if not self.dataflow_targets(MT_POSITION):
            raise I2OError(f"radar {self.name} is not connected")
        if self.traffic is None:
            raise I2OError(f"radar {self.name} has no traffic picture")
        noise = self.typed_param("noise_km")
        now_ns = self._require_live().clock.now_ns()
        count = 0
        for state in self.traffic.positions():
            nx, ny = self._rng.normal(0.0, noise or 1e-9, size=2)
            self.emit(
                MT_POSITION,
                pack_position(
                    state.aircraft_id, self.radar_id,
                    state.x_km + float(nx), state.y_km + float(ny),
                    state.fl, now_ns,
                ),
            )
            count += 1
        self.sweeps += 1
        self.reports_sent += count
        return count

    # -- timer drive ------------------------------------------------------------
    def on_enable(self) -> None:
        interval = self.typed_param("sweep_interval_ns")
        if interval > 0:
            self._timer_id = self.start_timer(interval, context=interval)

    def on_quiesce(self) -> None:
        if self._timer_id is not None:
            self.cancel_timer(self._timer_id)
            self._timer_id = None

    def on_timer(self, context: int, frame: Frame) -> None:
        self.sweep()
        if context > 0:
            self._timer_id = self.start_timer(context, context=context)

    def export_counters(self) -> dict[str, object]:
        return {"sweeps": self.sweeps, "reports_sent": self.reports_sent}
