"""The LAN device class: a network port as an I2O device.

A :class:`LanDevice` is a port on a shared :class:`LanSegment`
(broadcast domain).  Applications hand it Ethernet-style packets
(destination MAC + payload) as private frames; the device delivers
them to the port(s) whose MAC matches, where registered listeners
receive them — again through ordinary I2O messages, so "network card"
and "application" are operationally identical device classes.

Class-specific messages:

====================  ======
``XF_LAN_SEND``       0x0221  payload: dst_mac u48, src ignored, data
``XF_LAN_RECEIVED``   0x0222  unsolicited-style delivery to subscribers
====================  ======

Subscription uses the standard ``UtilEventRegister`` machinery —
received packets are forwarded to every TiD that registered with the
port, carried in ``XF_LAN_RECEIVED`` frames.
"""

from __future__ import annotations

import struct

from repro.core.device import Listener
from repro.dataflow.registry import message_type
from repro.i2o.errors import I2OError
from repro.i2o.frame import Frame
from repro.i2o.tid import Tid

XF_LAN_SEND = 0x0221
XF_LAN_RECEIVED = 0x0222

MT_LAN_SEND = message_type("lan.send", XF_LAN_SEND, mode="one")
MT_LAN_RECEIVED = message_type("lan.received", XF_LAN_RECEIVED, mode="fanout")

_MAC = struct.Struct("<Q")  # 48-bit MAC in the low bits
BROADCAST_MAC = 0xFFFFFFFFFFFF


class LanSegment:
    """The shared medium: MAC → attached LanDevice."""

    def __init__(self, name: str = "lan0") -> None:
        self.name = name
        self._ports: dict[int, "LanDevice"] = {}
        self.packets = 0
        self.broadcasts = 0

    def attach(self, mac: int, port: "LanDevice") -> None:
        if mac in self._ports:
            raise I2OError(f"MAC {mac:012x} already on segment {self.name}")
        if not 0 <= mac < BROADCAST_MAC:
            raise I2OError(f"invalid unicast MAC {mac:x}")
        self._ports[mac] = port

    def carry(self, src_mac: int, dst_mac: int, data: bytes) -> int:
        """Deliver a packet; returns the number of ports reached."""
        self.packets += 1
        if dst_mac == BROADCAST_MAC:
            self.broadcasts += 1
            reached = 0
            for mac, port in self._ports.items():
                if mac != src_mac:
                    port._deliver(src_mac, data)
                    reached += 1
            return reached
        port = self._ports.get(dst_mac)
        if port is None:
            return 0
        port._deliver(src_mac, data)
        return 1


class LanDevice(Listener):
    """One port on a LAN segment."""

    device_class = "i2o_lan"
    consumes = (MT_LAN_SEND,)
    emits = (MT_LAN_RECEIVED,)

    def __init__(self, segment: LanSegment, mac: int, name: str = "") -> None:
        super().__init__(name or f"lan-{mac:04x}")
        self.segment = segment
        self.mac = mac
        segment.attach(mac, self)
        self.sent = 0
        self.received = 0
        self.dropped = 0

    def on_plugin(self) -> None:
        self.bind(XF_LAN_SEND, self._on_send)

    def export_counters(self) -> dict[str, object]:
        return {"sent": self.sent, "received": self.received,
                "dropped": self.dropped}

    # -- the application-facing side ------------------------------------------
    def _on_send(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        if frame.payload_size < _MAC.size:
            self.reply(frame, fail=True)
            return
        (dst_mac,) = _MAC.unpack_from(frame.payload, 0)
        data = bytes(frame.payload[_MAC.size:])
        reached = self.segment.carry(self.mac, dst_mac, data)
        self.sent += 1
        if reached == 0:
            self.dropped += 1
        self.reply(frame, bytes([1 if reached else 0]))

    # -- the wire-facing side ---------------------------------------------------
    def _deliver(self, src_mac: int, data: bytes) -> None:
        """A packet arrived from the segment: forward to subscribers."""
        self.received += 1
        if self.executive is None:
            return
        payload = _MAC.pack(src_mac) + data
        for tid in self._event_subscribers:
            self.send(tid, payload, xfunction=XF_LAN_RECEIVED)


class LanClient(Listener):
    """A protocol endpoint: sends through a port, collects deliveries."""

    device_class = "i2o_lan_client"
    consumes = (MT_LAN_RECEIVED,)
    emits = (MT_LAN_SEND,)

    def __init__(self, name: str = "lan-client") -> None:
        super().__init__(name)
        self.inbox: list[tuple[int, bytes]] = []  # (src_mac, data)
        self.send_results: list[bool] = []

    def on_plugin(self) -> None:
        self.bind(XF_LAN_SEND, self._on_send_reply)
        self.bind(XF_LAN_RECEIVED, self._on_packet)

    def subscribe(self, port_tid: Tid) -> None:
        """Register for packet delivery via standard UtilEventRegister."""
        from repro.i2o.function_codes import UTIL_EVENT_REGISTER

        self.send(port_tid, function=UTIL_EVENT_REGISTER)

    def transmit(self, port_tid: Tid, dst_mac: int, data: bytes) -> None:
        self.send(port_tid, _MAC.pack(dst_mac) + data, xfunction=XF_LAN_SEND)

    def _on_send_reply(self, frame: Frame) -> None:
        if frame.is_reply and frame.payload_size:
            self.send_results.append(bool(frame.payload[0]))

    def _on_packet(self, frame: Frame) -> None:
        if frame.is_reply:
            return
        (src_mac,) = _MAC.unpack_from(frame.payload, 0)
        self.inbox.append((src_mac, bytes(frame.payload[_MAC.size:])))
